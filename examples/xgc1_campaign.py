#!/usr/bin/env python
"""A production-style campaign: XGC1 writing restart output every 30
simulated minutes on a shared, noisy file system.

The paper's motivation in one picture: applications budget ~5% of
wall-clock for IO, so what hurts is not the *average* write time but
the *variance* — one slow output step blows the budget.  This example
runs 8 output steps through both transports on the same evolving
system and compares means and spreads.

Run:  python examples/xgc1_campaign.py
"""

import numpy as np

from repro.apps import xgc1
from repro.core import Adios
from repro.interference import install_production_noise
from repro.machines import jaguar

N_RANKS = 384
N_OSTS = 48
N_STEPS = 8
COMPUTE_INTERVAL = 1800.0  # 30 minutes between outputs


def campaign(method: str, seed: int) -> np.ndarray:
    spec = jaguar(n_osts=N_OSTS).with_overrides(max_stripe_count=12)
    machine = spec.build(n_ranks=N_RANKS, seed=seed)
    install_production_noise(machine, live=True)
    io = Adios(machine, method=method)
    times = []
    for step in range(N_STEPS):
        res = io.write_output(xgc1(), name=f"xgc1.{step:05d}")
        times.append(res.reported_time)

        def compute(env):
            yield env.timeout(COMPUTE_INTERVAL)

        machine.env.run(until=machine.env.process(compute(machine.env)))
    return np.array(times)


def main() -> None:
    print(
        f"XGC1 campaign: {N_STEPS} restart dumps, {N_RANKS} procs x "
        f"38 MB, every 30 simulated minutes\n"
    )
    for method in ("mpiio", "adaptive"):
        times = campaign(method, seed=11)
        steps = "  ".join(f"{t:6.1f}" for t in times)
        print(f"{method:>8} write times (s): {steps}")
        print(
            f"{'':>8} mean {times.mean():6.1f} s   std {times.std():5.1f} "
            f"s   worst {times.max():6.1f} s\n"
        )
    print(
        "Lower variance means a predictable IO budget — the paper's "
        "Fig. 7 claim,\nvisible here as a tighter spread for the "
        "adaptive transport."
    )


if __name__ == "__main__":
    main()
