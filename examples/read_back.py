#!/usr/bin/env python
"""Write with adaptive IO, then exercise the full read path:

1. single-lookup block reads through the global index,
2. a restart-style read of a whole variable across all sub-files,
3. value-range queries pruned by data characteristics, and
4. the interim "no global index" mode the paper describes (a
   systematic search of each file's local index), for comparison.

Run:  python examples/read_back.py
"""

from repro.apps import s3d
from repro.core import Adios
from repro.core.bp import BpReader
from repro.machines import jaguar
from repro.units import fmt_bytes

N_RANKS = 64
N_OSTS = 16


def main() -> None:
    app = s3d(grid=32, n_species=4)
    machine = jaguar(n_osts=N_OSTS).build(n_ranks=N_RANKS, seed=5)
    io = Adios(machine, method="adaptive")
    res = io.write_output(app, name="s3d.chk")
    print(
        f"wrote {fmt_bytes(res.total_bytes)} over {len(res.files)} files "
        f"({res.index.n_blocks} indexed blocks, "
        f"{len(res.index.variables)} variables)\n"
    )

    reader = BpReader(machine.fs, res.index)

    # 1. Single-block read.
    proc = machine.env.process(
        reader.read_block(node=0, var="temp", writer=42)
    )
    entry, secs = machine.env.run(until=proc)
    print(
        f"block read: temp of writer 42 -> {fmt_bytes(entry.nbytes)} "
        f"at offset {entry.offset:.0f} in {secs:.3f} s"
    )

    # 2. Restart read of a full variable.
    proc = machine.env.process(reader.read_variable(node=0, var="pressure"))
    nbytes, secs = machine.env.run(until=proc)
    print(f"variable read: pressure -> {fmt_bytes(nbytes)} in {secs:.2f} s")

    # 3. Characteristics-based pruning.
    total = len(res.index.lookup("temp"))
    hot = reader.query_value_range("temp", 2200.0, 2500.0)
    print(
        f"query temp in [2200, 2500] K: {len(hot)}/{total} candidate "
        f"blocks after min/max pruning"
    )

    # 4. The interim mode: search every file's local index instead.
    scanning_reader = BpReader(
        machine.fs, index=None,
        files=[p for p in res.files if "index" not in p],
    )
    hits = scanning_reader.locate("temp", writer=42)
    print(
        f"no-global-index mode: scanned "
        f"{len(scanning_reader.files)} file indices to find the same "
        f"block ({hits[0][0]})"
    )


if __name__ == "__main__":
    main()
