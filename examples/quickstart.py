#!/usr/bin/env python
"""Quickstart: adaptive IO vs the tuned MPI-IO baseline, in 30 lines.

Builds a scaled-down Jaguar (84 storage targets, stripe cap 20 — the
same 672/160 proportions as the real machine), runs one XGC1 output
step through both ADIOS transports under identical ambient noise, and
prints the comparison.

Run:  python examples/quickstart.py [seed]
"""

import sys

from repro.apps import xgc1
from repro.core import Adios
from repro.interference import install_production_noise
from repro.machines import jaguar
from repro.units import fmt_rate

N_RANKS = 512
SEED = int(sys.argv[1]) if len(sys.argv) > 1 else 42


def run_once(method: str) -> None:
    spec = jaguar(n_osts=84).with_overrides(max_stripe_count=20)
    machine = spec.build(n_ranks=N_RANKS, seed=SEED)
    install_production_noise(machine, live=True)
    io = Adios(machine, method=method)
    result = io.write_output(xgc1(), name="restart.00000")
    print(
        f"{method:>8}: {fmt_rate(result.aggregate_bandwidth):>12}  "
        f"write+flush+close = {result.reported_time:6.2f} s  "
        f"imbalance = {result.imbalance_factor:5.2f}  "
        f"files = {len(result.files)}"
        + (
            f"  (adaptive rewrites steered: {result.n_adaptive_writes})"
            if method == "adaptive"
            else ""
        )
    )


def main() -> None:
    print(
        f"XGC1 output step: {N_RANKS} processes x 38 MB "
        f"on a 1/8-scale Jaguar (seed {SEED})\n"
    )
    for method in ("mpiio", "adaptive"):
        run_once(method)
    print(
        "\nAdaptive IO writes one sub-file per storage target, one "
        "writer at a time per target,\nand steers waiting writers from "
        "slow targets to fast ones (Lofstead et al., SC'10)."
    )


if __name__ == "__main__":
    main()
