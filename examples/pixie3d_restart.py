#!/usr/bin/env python
"""Pixie3D extra-large restart dump under heavy interference, then a
restart-style read-back through the global index.

This is the paper's most dramatic configuration (Fig. 5(c)): 1 GB per
process, more writers than storage targets, a continuously-writing
co-tenant job — the regime where adaptive IO's steering pays off ~4.8x.

Run:  python examples/pixie3d_restart.py
"""

from repro.apps import pixie3d
from repro.core import Adios
from repro.core.bp import BpReader
from repro.interference import BackgroundWriterJob, install_production_noise
from repro.machines import jaguar
from repro.units import GB, fmt_bytes, fmt_rate

N_RANKS = 256
N_OSTS = 48


def build_machine(seed: int):
    spec = jaguar(n_osts=N_OSTS).with_overrides(max_stripe_count=12)
    machine = spec.build(n_ranks=N_RANKS, seed=seed,
                         extra_service_nodes=2)
    install_production_noise(machine, live=True)
    job = BackgroundWriterJob(
        machine, n_osts=8, writers_per_ost=3, write_size=1 * GB
    )
    job.start()
    return machine


def main() -> None:
    app = pixie3d("xl")
    print(
        f"Pixie3D XL: {N_RANKS} procs x "
        f"{fmt_bytes(app.per_process_bytes)} = "
        f"{fmt_bytes(app.total_bytes(N_RANKS))} per output step, "
        f"{N_OSTS} OSTs, 24-process interference job running\n"
    )

    results = {}
    for method in ("mpiio", "adaptive"):
        machine = build_machine(seed=7)
        io = Adios(machine, method=method)
        res = io.write_output(app, name="pixie3d.r0")
        results[method] = (machine, res)
        print(
            f"{method:>8}: {fmt_rate(res.aggregate_bandwidth):>12}   "
            f"time {res.reported_time:7.1f} s   "
            f"steered writes: {res.n_adaptive_writes}"
        )

    speedup = (
        results["adaptive"][1].aggregate_bandwidth
        / results["mpiio"][1].aggregate_bandwidth
    )
    print(f"\nadaptive / mpiio speedup: {speedup:.2f}x")

    # Restart read: locate and read back one rank's magnetic field via
    # the global index — a single lookup plus a direct read.
    machine, res = results["adaptive"]
    reader = BpReader(machine.fs, res.index)
    proc = machine.env.process(reader.read_block(node=0, var="bx",
                                                 writer=17))
    entry, seconds = machine.env.run(until=proc)
    print(
        f"\nread back 'bx' of writer 17: {fmt_bytes(entry.nbytes)} "
        f"from {reader.locate('bx', writer=17)[0][0]} "
        f"in {seconds:.2f} s (simulated)"
    )

    # Characteristics query: which blocks could contain |B| > 1.9?
    hot = reader.query_value_range("bx", 1.9, 2.0)
    print(
        f"blocks possibly containing bx in [1.9, 2.0]: "
        f"{len(hot)} of {len(res.index.lookup('bx'))} "
        f"(pruned by min/max characteristics without reading data)"
    )


if __name__ == "__main__":
    main()
