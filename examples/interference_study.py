#!/usr/bin/env python
"""Reproduce Section II's diagnosis in miniature: measure internal and
external interference with IOR probes.

Part 1 (internal): scale writers per storage target on a quiet system
and watch per-writer bandwidth collapse while aggregate peaks and
then declines — Fig. 1's mechanism.

Part 2 (external): probe a production-noisy system twice, three
simulated minutes apart, and watch the per-writer imbalance factor
change completely — Fig. 3's transience.

Run:  python examples/interference_study.py
"""

from repro.interference import install_production_noise
from repro.ior import IorConfig, run_ior
from repro.machines import jaguar
from repro.metrics import WriterTimeline, imbalance_factor
from repro.units import MB

N_OSTS = 32


def internal() -> None:
    print(f"-- internal interference (quiet system, {N_OSTS} OSTs, "
          f"128 MB/writer) --")
    print(f"{'w/OST':>6} {'writers':>8} {'aggregate GB/s':>15} "
          f"{'per-writer MB/s':>16}")
    for ratio in (1, 2, 4, 8, 16, 32):
        n = ratio * N_OSTS
        machine = jaguar(n_osts=N_OSTS).build(n_ranks=n, seed=1)
        res = run_ior(
            machine,
            IorConfig(n_writers=n, block_size=128 * MB, api="posix",
                      n_osts_used=N_OSTS),
        )
        print(
            f"{ratio:>6} {n:>8} {res.write_bandwidth / 1e9:>15.2f} "
            f"{res.per_writer_bandwidths.mean() / 1e6:>16.1f}"
        )


def external() -> None:
    print("\n-- external interference (production noise, 1 writer/OST) --")
    machine = jaguar(n_osts=N_OSTS).build(n_ranks=N_OSTS, seed=3)
    install_production_noise(machine, live=True)
    cfg = IorConfig(n_writers=N_OSTS, block_size=128 * MB, api="posix",
                    n_osts_used=N_OSTS)

    res1 = run_ior(machine, cfg, output_name="probe1")
    t1 = WriterTimeline.of(res1.per_writer)

    def wait(env):
        yield env.timeout(180.0)

    machine.env.run(until=machine.env.process(wait(machine.env)))
    res2 = run_ior(machine, cfg, output_name="probe2")
    t2 = WriterTimeline.of(res2.per_writer)

    for label, t in (("test 1", t1), ("test 2 (+3 min)", t2)):
        print(
            f"{label:>16}: fastest {t.fastest:6.2f} s, slowest "
            f"{t.slowest:6.2f} s, imbalance factor "
            f"{t.imbalance_factor:5.2f}, slow writers "
            f"{t.slow_writer_ranks()}"
        )
    print(
        "\nOverall write time is gated by the slowest writer — "
        "the work adaptive IO steers away."
    )


if __name__ == "__main__":
    internal()
    external()
