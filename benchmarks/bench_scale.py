"""Jaguar-scale validation: one full-machine cell per headline figure.

Not a statistics run — this proves the fabric's churn-path machinery
(incremental max-min reallocation + same-instant settle coalescing)
sustains the paper's *actual* machine size in tractable wall time:

* **fig1 cell** — IOR at the ``large`` preset: 672 OSTs, 12
  writers/OST = 8064 writers, 8 MB each, one sample.
* **fig6 cells** — XGC1 at the ``large`` preset: 672-OST pool, 8192
  processes, interference condition, MPI-IO and adaptive transports.

* **exa cell** — XGC1 at the ``exa`` preset: 5000-OST pool, 65 536
  processes, adaptive transport under interference.  Only tractable
  with the batched protocol, whose simulation cost scales with
  groups x OSTs rather than writers x writes.

Results land in ``benchmarks/results/BENCH_scale.json``.  The
``previous`` block holds the same cells measured on the pre-batched
protocol (one simulated process and one fabric flow per writer),
captured once before this change landed; the ratio of ``run_seconds``
/ ``wall_seconds`` against it is the headline number of the batching.
The earlier fabric-optimization before/after record (batch
reallocation vs incremental) lives in this file's git history.

``adaptive_8192_seconds`` is surfaced as a top-level scalar so the CI
perf gate (``repro.tools.bench_report --gate``) can track the adaptive
cell without digging through the cell dicts.

Unlike the other benches this file pins its own scale: running it at
``smoke``/``small`` would measure nothing of interest.
"""

import gc
import time

import pytest

from repro.harness.experiment import Scale
from repro.harness.figures import fig1
from repro.harness.figures.appbench import _run_cell, preset_for

# Pre-batched-protocol numbers for the identical cells (same seeds,
# same presets), measured with one simulated process and one fabric
# flow per writer.  Frozen here — the point of the file is the
# before/after record.
_PREVIOUS = {
    "fig1_cell": {
        "n_osts": 672,
        "n_writers": 8064,
        "size_mb": 8,
        "run_seconds": 1.3976,
        "write_bandwidth": 231824585438.7,
        "settle_count": 674,
        "realloc_count": 672,
    },
    "fig6_cell": {
        "mpiio": {
            "wall_seconds": 1.4208,
            "reported_time": 120.2062,
            "bandwidth": 2589682467.6,
        },
        "adaptive": {
            "wall_seconds": 7.3174,
            "reported_time": 8.1823,
            "bandwidth": 38045057583.6,
        },
    },
}

# Hard ceiling for the exascale cell: it must stay comfortably inside
# a CI job's patience, not just terminate.
_EXA_WALL_BOUND = 600.0


def _fig1_large_cell(seed: int = 0):
    """The fig1 ``large`` cell, instrumented: wall time + fabric counters."""
    from repro.interference import install_production_noise
    from repro.interference.markov import global_chain, per_ost_chain
    from repro.interference.production import NoisePreset
    from repro.ior import IorConfig, run_ior
    from repro.machines import jaguar
    from repro.units import MB

    preset = fig1._PRESETS[Scale.LARGE]
    n_osts = preset["n_osts"]
    n_writers = preset["ratios"][0] * n_osts
    size_mb = preset["sizes_mb"][0]

    machine = jaguar(n_osts=n_osts).build(n_ranks=n_writers, seed=seed)
    install_production_noise(
        machine,
        preset=NoisePreset(per_ost_chain(), global_chain(), intensity=0.25),
        live=False,
    )
    gc.collect()  # clean-heap timing, as in the kernel microbench
    t0 = time.perf_counter()
    res = run_ior(
        machine,
        IorConfig(
            n_writers=n_writers,
            block_size=size_mb * MB,
            api="posix",
            n_osts_used=n_osts,
        ),
    )
    dt = time.perf_counter() - t0
    fab = machine.fs.fabric
    return {
        "n_osts": n_osts,
        "n_writers": n_writers,
        "size_mb": size_mb,
        "run_seconds": dt,
        "write_bandwidth": res.write_bandwidth,
        "settle_count": int(fab.settle_count),
        "realloc_count": int(fab.realloc_count),
        "incremental_count": int(fab.incremental_count),
        "coalesced_count": int(fab.coalesced_count),
    }


def _fig6_large_cells(seed: int = 0):
    """Both transports' interference cells at the ``large`` preset."""
    from repro.apps.xgc1 import xgc1

    cfg = preset_for(Scale.LARGE)
    n_procs = cfg.proc_counts[0]
    out = {}
    for transport in ("mpiio", "adaptive"):
        gc.collect()  # isolate each cell from the previous one's garbage
        t0 = time.perf_counter()
        sample = _run_cell(
            xgc1(), transport, "interference", n_procs, seed, cfg=cfg
        )
        out[transport] = {
            "wall_seconds": time.perf_counter() - t0,
            "reported_time": sample.reported_time,
            "bandwidth": sample.bandwidth,
        }
    return out


def _exa_adaptive_cell(seed: int = 0):
    """The ``exa`` preset's adaptive cell: 5000 OSTs, 65 536 writers."""
    from repro.apps.xgc1 import xgc1

    cfg = preset_for(Scale.EXA)
    n_procs = cfg.proc_counts[0]
    gc.collect()
    t0 = time.perf_counter()
    sample = _run_cell(
        xgc1(), "adaptive", "interference", n_procs, seed, cfg=cfg
    )
    return {
        "pool_osts": cfg.pool_osts,
        "adaptive_osts": cfg.adaptive_osts,
        "n_procs": n_procs,
        "wall_seconds": time.perf_counter() - t0,
        "reported_time": sample.reported_time,
        "bandwidth": sample.bandwidth,
    }


@pytest.mark.benchmark(group="scale")
def test_jaguar_scale_cells(benchmark, save_result):
    fig1_cell, fig6_cell, exa_cell = benchmark.pedantic(
        lambda: (_fig1_large_cell(), _fig6_large_cells(),
                 _exa_adaptive_cell()),
        rounds=1,
        iterations=1,
    )
    data = {
        "scale": "large",
        "fig1_cell": fig1_cell,
        "fig6_cell": fig6_cell,
        "exa_cell": exa_cell,
        "adaptive_8192_seconds": fig6_cell["adaptive"]["wall_seconds"],
        "previous": _PREVIOUS,
    }
    prev = _PREVIOUS["fig1_cell"]
    speedup = prev["run_seconds"] / fig1_cell["run_seconds"]
    text = (
        "Jaguar-scale cells (672 OSTs)\n"
        f"  fig1  8064 writers x 8 MB   "
        f"{fig1_cell['run_seconds']:8.2f}s  "
        f"(was {prev['run_seconds']:.2f}s, {speedup:.1f}x)\n"
        f"        settles {fig1_cell['settle_count']}, "
        f"reallocs {fig1_cell['realloc_count']}, "
        f"incremental {fig1_cell['incremental_count']}, "
        f"coalesced {fig1_cell['coalesced_count']}"
    )
    for transport in ("mpiio", "adaptive"):
        cell = fig6_cell[transport]
        was = _PREVIOUS["fig6_cell"][transport]["wall_seconds"]
        text += (
            f"\n  fig6  {transport:8s} 8192 procs "
            f"{cell['wall_seconds']:8.2f}s  "
            f"(was {was:.2f}s, {was / cell['wall_seconds']:.1f}x)"
        )
    text += (
        f"\n  exa   adaptive {exa_cell['n_procs']} procs / "
        f"{exa_cell['pool_osts']} OSTs "
        f"{exa_cell['wall_seconds']:8.2f}s"
    )
    save_result("scale", text, data=data)

    # The cells must complete and must actually exercise the machinery.
    assert fig1_cell["n_writers"] >= 8000
    assert fig1_cell["write_bandwidth"] > 0
    assert fig6_cell["adaptive"]["bandwidth"] > 0
    assert (
        fig1_cell["incremental_count"] + fig1_cell["coalesced_count"] > 0
    )
    # Headline win condition of the batched protocol: >=3x on the
    # 8192-proc adaptive cell against the per-writer implementation.
    prev_adaptive = _PREVIOUS["fig6_cell"]["adaptive"]["wall_seconds"]
    assert prev_adaptive / fig6_cell["adaptive"]["wall_seconds"] >= 3.0
    # And the exascale cell must be CI-tractable, not merely finite.
    assert exa_cell["wall_seconds"] < _EXA_WALL_BOUND
    assert exa_cell["bandwidth"] > 0
