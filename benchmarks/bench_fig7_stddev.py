"""Regenerates Fig. 7 — standard deviation of write time (4 panels).

Shape target: "once the caches on the storage targets start to be
taxed, adaptive IO reduces variability" — at the largest process
count the adaptive std must not exceed MPI-IO's, for every case.
"""

import pytest

from repro.harness.figures import fig7


@pytest.mark.benchmark(group="fig7")
def test_fig7_write_time_stddev(benchmark, scale, save_result):
    result = benchmark.pedantic(
        lambda: fig7.run(scale, base_seed=100), rounds=1, iterations=1
    )
    save_result(
        "fig7_stddev",
        result.render(),
        data={c: r.to_dict() for c, r in result.sweeps.items()},
    )

    if scale.value == "smoke":
        return  # one sample -> std is 0/degenerate
    wins = [
        case
        for case in result.sweeps
        if result.adaptive_less_variable_at_scale(case)
    ]
    # Variability is itself noisy with few samples; require the claim
    # to hold for the clear majority of the four cases.
    assert len(wins) >= max(1, len(result.sweeps) - 1), (
        f"adaptive reduced write-time std only for {wins} "
        f"out of {list(result.sweeps)}"
    )
