"""Regenerates Fig. 6 — XGC1 (38 MB/process), adaptive vs MPI-IO.

Shape target: "the performance improvement ranges from 30% to greater
than 224%" — i.e., adaptive wins everywhere, between the small and
large Pixie3D regimes.
"""

import pytest

from repro.harness.figures import fig6


@pytest.mark.benchmark(group="fig6")
def test_fig6_xgc1(benchmark, scale, save_result):
    result = benchmark.pedantic(
        lambda: fig6.run(scale, base_seed=0), rounds=1, iterations=1
    )
    save_result("fig6_xgc1", result.render(), data=result.sweep.to_dict())

    sweep = result.sweep
    if scale.value == "smoke":
        n = sweep.config.proc_counts[-1]
        assert sweep.speedup("base", n) > 1.0
        return
    counts = sweep.config.proc_counts
    # Adaptive wins at every process count in both conditions once
    # writers meaningfully outnumber targets; at the smallest count it
    # must at least not lose badly.
    for cond in ("base", "interference"):
        for n in counts:
            s = sweep.speedup(cond, n)
            if n >= 4 * sweep.config.adaptive_osts:
                assert s > 1.2, (
                    f"XGC1 {cond} @ {n} procs: speedup {s:.2f}x "
                    f"below the paper's 30%-224% band"
                )
            else:
                assert s > 0.8
