"""Regenerates Fig. 5 — Pixie3D small/large/XL, adaptive vs MPI-IO.

Shape targets from the paper:
* (a) small 2 MB/process: modest adaptive benefit, growing with
  process count;
* (b) large 128 MB/process: adaptive consistently better, up to
  several-x at scale;
* (c) XL 1 GB/process: adaptive >3x better once processes outnumber
  storage targets (paper: ~4.8x overall with 3.2x more targets).
"""

import pytest

from repro.harness.figures import fig5


@pytest.mark.benchmark(group="fig5")
def test_fig5_pixie3d(benchmark, scale, save_result):
    result = benchmark.pedantic(
        lambda: fig5.run(scale, base_seed=0), rounds=1, iterations=1
    )
    save_result(
        "fig5_pixie3d",
        result.render(),
        data={m: r.to_dict() for m, r in result.panels.items()},
    )

    if scale.value == "smoke":
        # The smoke machine is too small for the paper's ratios; just
        # check adaptive wins at all on the biggest XL cell.
        xl = result.panels["xl"]
        assert xl.speedup("base", xl.config.proc_counts[-1]) > 1.2
        return

    xl = result.panels["xl"]
    counts = xl.config.proc_counts
    n_big = counts[-1]

    # (c) the headline: >3x at scale, both conditions.
    for cond in ("base", "interference"):
        speedup = xl.speedup(cond, n_big)
        assert speedup > 3.0, (
            f"XL {cond} speedup {speedup:.2f}x below the paper's >3x "
            f"regime (4.8x overall)"
        )

    # (b) large: adaptive wins at scale.
    large = result.panels["large"]
    assert large.speedup("base", n_big) > 1.5
    assert large.speedup("interference", n_big) > 1.5

    # (a) small: adaptive at least competitive at scale (paper: ~10%
    # base, up to 35% under interference at 16k procs).
    small = result.panels["small"]
    assert small.speedup("base", n_big) > 0.9
    assert small.speedup("interference", n_big) > 0.9

    # Benefit grows with writers-per-target pressure.
    assert xl.speedup("base", counts[-1]) > xl.speedup("base", counts[0])
