"""Multi-tenant QoS sweep — bandwidth contracts vs raw fair sharing.

N tenants with mixed SLOs (reserved-floor victims + a ceiling-capped
scavenger aggressor) share one fabric.  The QoS control plane must beat
the no-contract baseline on both victim p99 completion latency and the
floor-normalized Jain fairness index, degrade the aggressor gracefully
(zero errored writes, every throttled byte ledgered), and hold the
contracts through mid-run OST fail-stops.
"""

import pytest

from repro.harness.figures import qos


@pytest.mark.benchmark(group="qos")
def test_qos(benchmark, scale, save_result):
    result = benchmark.pedantic(
        lambda: qos.run(scale, 0), rounds=1, iterations=1
    )
    save_result(
        "qos",
        result.render(),
        data=result.to_dict(),
    )
    for n in result.tenant_counts:
        base = result.cells[n]["base"]
        quo = result.cells[n]["qos"]
        assert quo["victim_p99_seconds"] < base["victim_p99_seconds"], (
            f"N={n}: QoS must strictly improve the victims' p99 tail"
        )
        assert quo["jain_index"] >= base["jain_index"], (
            f"N={n}: QoS must not lose floor-normalized fairness"
        )
        assert quo["errored_tenants"] == 0, (
            f"N={n}: over-contract tenants must be backpressured, "
            "never errored"
        )
        assert quo["throttled_gb"] > 0, (
            f"N={n}: the aggressor must actually be throttled, and the "
            "throttled bytes ledgered"
        )
    fault = result.fault_check
    assert fault, "the largest-N cell must run the fault cross-check"
    assert fault["fault_starved_tenants"] == 0, (
        "no tenant may starve under mid-run OST failure"
    )
    assert fault["fault_errored_tenants"] == 0, (
        "tenants must recover in-run under QoS, not error out"
    )
    assert fault["fault_max_slowdown"] <= qos._FAULT_SLOWDOWN_TOL, (
        "contracts must hold within tolerance through OST fail-stops"
    )
    assert not result.failure_report()
