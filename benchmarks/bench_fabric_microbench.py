"""Microbenchmarks of the simulator's hot paths.

Not a paper artifact — this guards the performance properties the
repo-scale experiments depend on: the max-min fair allocator must stay
O(rounds x flows) vectorized, and an end-to-end settle must stay
cheap at 16k concurrent flows.
"""

import numpy as np
import pytest

from repro.net.fabric import FlowNetwork, UniformSinkPool, max_min_fair_rates
from repro.sim import Environment


def _random_case(n_flows, n_src, n_dst, seed=0):
    rng = np.random.default_rng(seed)
    return (
        rng.integers(0, n_src, n_flows),
        rng.integers(0, n_dst, n_flows),
        rng.uniform(1e8, 2e9, n_src),
        rng.uniform(1e7, 5e8, n_dst),
        rng.uniform(1e6, 3e8, n_flows),
    )


@pytest.mark.benchmark(group="fabric-micro")
@pytest.mark.parametrize("n_flows", [1024, 16384])
def test_max_min_allocation_speed(benchmark, n_flows):
    src, dst, cs, cd, fcap = _random_case(n_flows, 1400, 672)
    rates = benchmark(max_min_fair_rates, src, dst, cs, cd, fcap)
    per_dst = np.bincount(dst, weights=rates, minlength=672)
    assert (per_dst <= cd * (1 + 1e-9)).all()


@pytest.mark.benchmark(group="fabric-micro")
def test_settle_speed_16k_flows(benchmark):
    """One flow-arrival settle with 16k concurrent flows."""
    env = Environment()
    pool = UniformSinkPool(672, 1.8e8)
    net = FlowNetwork(env, np.full(1400, 1.6e9), pool,
                      default_flow_cap=3e8)
    rng = np.random.default_rng(1)
    for _ in range(16384):
        net.start_flow(
            int(rng.integers(0, 1400)), int(rng.integers(0, 672)), 1e12
        )

    def one_settle():
        net.invalidate()

    benchmark(one_settle)
    assert net.active_flow_count == 16384
