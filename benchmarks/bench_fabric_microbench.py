"""Microbenchmarks of the simulator's hot paths.

Not a paper artifact — this guards the performance properties the
repo-scale experiments depend on: the max-min fair allocator must stay
O(rounds x flows) vectorized, and an end-to-end settle must stay
cheap at 16k concurrent flows.
"""

import numpy as np
import pytest

from repro.net.fabric import FlowNetwork, UniformSinkPool, max_min_fair_rates
from repro.sim import Environment


def _random_case(n_flows, n_src, n_dst, seed=0):
    rng = np.random.default_rng(seed)
    return (
        rng.integers(0, n_src, n_flows),
        rng.integers(0, n_dst, n_flows),
        rng.uniform(1e8, 2e9, n_src),
        rng.uniform(1e7, 5e8, n_dst),
        rng.uniform(1e6, 3e8, n_flows),
    )


def _bench_stats(benchmark):
    """JSON-safe summary of a pytest-benchmark run (best effort)."""
    try:
        s = benchmark.stats.stats
        return {"mean_s": s.mean, "min_s": s.min, "rounds": s.rounds}
    except Exception:  # pragma: no cover - plugin internals moved
        return None


@pytest.mark.benchmark(group="fabric-micro")
@pytest.mark.parametrize("n_flows", [1024, 16384])
def test_max_min_allocation_speed(benchmark, n_flows, save_result):
    src, dst, cs, cd, fcap = _random_case(n_flows, 1400, 672)
    rates = benchmark(max_min_fair_rates, src, dst, cs, cd, fcap)
    per_dst = np.bincount(dst, weights=rates, minlength=672)
    assert (per_dst <= cd * (1 + 1e-9)).all()
    stats = _bench_stats(benchmark)
    save_result(
        f"fabric_maxmin_{n_flows}",
        f"max-min allocation, {n_flows} flows: "
        + (f"{stats['mean_s'] * 1e3:.3f} ms mean" if stats else "n/a"),
        data={"n_flows": n_flows, "stats": stats},
    )


@pytest.mark.benchmark(group="fabric-micro")
def test_settle_speed_16k_flows(benchmark, save_result):
    """One flow-arrival settle with 16k concurrent flows.

    Repeated settles over an unchanged flow set exercise the
    skip-reallocation fast path, so this times the steady-state settle
    cost the simulation pays on every quiescent re-validation.
    """
    env = Environment()
    pool = UniformSinkPool(672, 1.8e8)
    net = FlowNetwork(env, np.full(1400, 1.6e9), pool,
                      default_flow_cap=3e8)
    rng = np.random.default_rng(1)
    for _ in range(16384):
        net.start_flow(
            int(rng.integers(0, 1400)), int(rng.integers(0, 672)), 1e12
        )

    def one_settle():
        net.invalidate()

    benchmark(one_settle)
    assert net.active_flow_count == 16384
    stats = _bench_stats(benchmark)
    save_result(
        "fabric_settle_16k",
        "steady settle, 16k flows: "
        + (f"{stats['mean_s'] * 1e6:.1f} us mean" if stats else "n/a"),
        data={"n_flows": 16384, "stats": stats},
    )
