"""Extension — adaptive IO on systems beyond Jaguar's Lustre.

The paper's future work: "examine the benefits of adaptive IO on
systems beyond Lustre at ORNL, including Franklin at NERSC, PanFS on
Sandia's XTP, and perhaps, GPFS on a BlueGene/P machine."

This bench runs the adaptive-vs-MPI-IO comparison on all four machine
models under each machine's ambient noise.  Measured shape (a genuine
finding of this reproduction): the benefit is largest where a stripe
cap structurally starves the baseline (Jaguar), positive wherever
production interference gives steering something to dodge (Franklin,
BG/P), and can go *negative* on a quiet, capless PanFS system —
serializing one writer per target forgoes concurrency and there is no
interference to avoid.  Adaptive IO is a remedy for contention, not a
universal accelerator.
"""

from functools import partial

import numpy as np
import pytest

from repro.apps.pixie3d import pixie3d
from repro.core.transports import AdaptiveTransport, MpiIoTransport
from repro.harness.experiment import n_samples_override
from repro.harness.parallel import parallel_map
from repro.harness.report import format_table
from repro.interference import install_production_noise
from repro.machines import bluegene_p, franklin, jaguar, xtp

_SCALES = {
    "smoke": dict(samples=1, scale_div=8),
    "small": dict(samples=3, scale_div=8),
    "paper": dict(samples=5, scale_div=1),
}


def _machines(scale_div):
    # (spec factory, n_ranks, adaptive target count)
    return {
        "jaguar": (
            lambda: jaguar(n_osts=672 // scale_div).with_overrides(
                max_stripe_count=160 // scale_div
            ),
            4096 // scale_div,
            512 // scale_div,
        ),
        "franklin": (
            lambda: franklin(n_osts=96 // max(1, scale_div // 4)),
            1536 // scale_div,
            96 // max(1, scale_div // 4),
        ),
        "xtp": (lambda: xtp(), 1440 // scale_div, 40),
        "bluegene_p": (
            lambda: bluegene_p(n_nsd_servers=128 // max(1, scale_div // 4)),
            4096 // scale_div,
            128 // max(1, scale_div // 4),
        ),
    }


def _one_sample(machine_name, scale_div, seed):
    """Adaptive/MPI-IO speedup for one machine at one seed.

    Module-level (resolving the machine spec by name) so the parallel
    executor can pickle a partial of it.
    """
    spec_factory, n_ranks, ad_osts = _machines(scale_div)[machine_name]
    bw = {}
    for method in ("mpiio", "adaptive"):
        machine = spec_factory().build(n_ranks=n_ranks, seed=seed)
        install_production_noise(machine, live=True)
        transport = (
            AdaptiveTransport(n_osts_used=ad_osts)
            if method == "adaptive"
            else MpiIoTransport(build_index=False)
        )
        res = transport.run(machine, pixie3d("large"), output_name="ext")
        bw[method] = res.aggregate_bandwidth
    return bw["adaptive"] / bw["mpiio"]


@pytest.mark.benchmark(group="extension-machines")
def test_extension_other_machines(benchmark, scale, save_result):
    cfg = _SCALES[scale.value]
    n_samples = n_samples_override(cfg["samples"])

    def sweep():
        out = {}
        for name in _machines(cfg["scale_div"]):
            speedups = parallel_map(
                partial(_one_sample, name, cfg["scale_div"]),
                [6000 + s for s in range(n_samples)],
            )
            out[name] = float(np.mean(speedups))
        return out

    out = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [(name, s) for name, s in out.items()]
    save_result(
        "extension_machines",
        format_table(
            ["machine", "adaptive/mpiio speedup"],
            rows,
            title=(
                "Extension — adaptive IO beyond Jaguar "
                "(Pixie3D large, production noise)"
            ),
        ),
        data={
            "config": {**cfg, "samples": n_samples},
            "speedup_by_machine": dict(out),
        },
    )

    # Stripe-capped Lustre under production noise: the paper's regime.
    assert out["jaguar"] > 1.5, f"jaguar speedup {out['jaguar']:.2f}x"
    # Noisy systems without the structural cap: steering still helps.
    assert out["franklin"] > 1.0
    assert out["bluegene_p"] > 1.0
    # Quiet capless PanFS: no contention to dodge — adaptive may lose,
    # but serialization at the per-stream cap bounds how badly.
    assert out["xtp"] > 0.4
    assert out["jaguar"] > out["xtp"], (
        "the structural (stripe-cap) win must exceed the"
        " steering-only win"
    )
