"""Ablation — how many storage targets should adaptive IO use?

The paper evaluates with 512 of Jaguar's 672 OSTs and reports the
full 672 shows "no penalties".  This bench sweeps the target count:
crossing the MPI-IO stripe cap (the 160-of-672 proportion) is where
the structural win comes from; beyond that, more targets help until
each group has ~1 writer.
"""

from functools import partial

import numpy as np
import pytest

from repro.apps.pixie3d import pixie3d
from repro.core.transports import AdaptiveTransport
from repro.harness.experiment import n_samples_override
from repro.harness.parallel import parallel_map
from repro.harness.report import format_table
from repro.machines import jaguar

_SCALES = {
    # ost counts scaled ~1/8 of (160, 512, 672)
    "smoke": dict(n_ranks=64, pool=16, counts=(4, 8, 16), samples=1),
    "small": dict(n_ranks=512, pool=84, counts=(20, 64, 84), samples=3),
    "paper": dict(n_ranks=8192, pool=672, counts=(160, 512, 672),
                  samples=5),
}


def _one_sample(n_osts, cfg, seed):
    machine = jaguar(n_osts=cfg["pool"]).build(
        n_ranks=cfg["n_ranks"], seed=seed
    )
    res = AdaptiveTransport(n_osts_used=n_osts).run(
        machine, pixie3d("large"), output_name="abl"
    )
    return res.aggregate_bandwidth


@pytest.mark.benchmark(group="ablation-ost-count")
def test_ablation_ost_count(benchmark, scale, save_result):
    cfg = _SCALES[scale.value]
    n_samples = n_samples_override(cfg["samples"])

    def sweep():
        out = {}
        for n_osts in cfg["counts"]:
            bws = parallel_map(
                partial(_one_sample, n_osts, cfg),
                [3000 + s for s in range(n_samples)],
            )
            out[n_osts] = float(np.mean(bws))
        return out

    out = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [(k, bw / 1e9) for k, bw in out.items()]
    save_result(
        "ablation_ost_count",
        format_table(
            ["targets used", "GB/s"],
            rows,
            title=(
                "Ablation — adaptive target count "
                f"({cfg['n_ranks']} procs, pool {cfg['pool']})"
            ),
        ),
        data={
            "config": {**cfg, "samples": n_samples},
            "mean_bandwidth_by_targets": {
                str(k): bw for k, bw in out.items()
            },
        },
    )

    counts = list(cfg["counts"])
    # More targets must monotonically help (within noise) ...
    assert out[counts[-1]] >= out[counts[0]]
    # ... and using the whole pool shows "no penalties" vs the paper's
    # 512-of-672 evaluation point.
    assert out[counts[-1]] >= out[counts[-2]] * 0.9
