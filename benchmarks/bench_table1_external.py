"""Regenerates Table I — IO variability due to external interference.

Shape targets from the paper: production systems show CoV in the
40-60% band (Jaguar ~40%, Franklin ~59%); XTP with a second job ~43%;
XTP alone is far tighter than any of them.
"""

import pytest

from repro.harness.figures import table1


@pytest.mark.benchmark(group="table1")
def test_table1_external_variability(benchmark, scale, save_result):
    result = benchmark.pedantic(
        lambda: table1.run(scale, base_seed=0), rounds=1, iterations=1
    )
    save_result(
        "table1_external", result.render(), data=result.to_dict()
    )

    jag = result.cov_percent("jaguar")
    fra = result.cov_percent("franklin")
    with_int = result.cov_percent("xtp_with_int")
    without = result.cov_percent("xtp_without_int")

    if scale.value != "smoke":  # too few samples for stable CoV
        assert 25 <= jag <= 75, f"Jaguar CoV {jag:.0f}% off the paper band"
        assert 25 <= fra <= 80, f"Franklin CoV {fra:.0f}% off the band"
        assert with_int >= 15, (
            f"XTP with a co-running job must vary (got {with_int:.0f}%)"
        )
    assert without < with_int, (
        "a lone XTP job must be steadier than two simultaneous jobs"
    )
    assert without < jag, (
        "non-production XTP must be steadier than production Jaguar"
    )
