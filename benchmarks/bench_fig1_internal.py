"""Regenerates Fig. 1 — internal interference (IOR scaling on Jaguar).

Shape targets from the paper:
* per-writer bandwidth decreases monotonically with writer count (1b);
* aggregate bandwidth peaks at a small writers-per-OST ratio and then
  declines for drain-bound sizes (1a);
* >=128 MB sizes lose ~16-28% of aggregate bandwidth scaling from
  16:1 to 32:1 writers per OST;
* the cache-friendly 1 MB size never declines.
"""

import pytest

from repro.harness.figures import fig1


@pytest.mark.benchmark(group="fig1")
def test_fig1_internal_interference(benchmark, scale, save_result):
    result = benchmark.pedantic(
        lambda: fig1.run(scale, base_seed=0), rounds=1, iterations=1
    )
    save_result(
        "fig1_internal", result.render(), data=result.to_dict()
    )

    large_sizes = [s for s in result.sizes_mb if s >= 128]
    for size in large_sizes:
        assert result.per_writer_monotone_decline(size), (
            f"per-writer bandwidth must fall with writer count "
            f"({size} MB)"
        )
        assert result.aggregate_eventually_declines(size), (
            f"aggregate bandwidth must peak then decline ({size} MB)"
        )
    if large_sizes and 32 * result.n_osts in {
        r * result.n_osts for r in result.ratios
    } and 16 in result.ratios and 32 in result.ratios:
        size = large_sizes[0]
        agg16 = result.aggregate_stats(size, 16 * result.n_osts).mean
        agg32 = result.aggregate_stats(size, 32 * result.n_osts).mean
        drop = 1 - agg32 / agg16
        assert 0.10 <= drop <= 0.40, (
            f"16:1 -> 32:1 aggregate drop {drop:.0%} out of the "
            f"paper's 16-28% neighbourhood"
        )
    # The 1 MB cache-friendly case must not collapse.
    if 1 in result.sizes_mb:
        ratios = result.ratios
        first = result.aggregate_stats(1, ratios[0] * result.n_osts).mean
        last = result.aggregate_stats(1, ratios[-1] * result.n_osts).mean
        assert last >= first, "1 MB writers must keep scaling (caches)"
