"""Shared fixtures for the benchmark suite.

Every bench regenerates one paper artifact (table/figure) or ablation.
Scale comes from REPRO_SCALE ("smoke" | "small" | "paper"); the
default "small" keeps full experimental shape on a 1/8-size machine so
the whole suite runs in minutes.  Rendered tables are written to
``benchmarks/results/*.txt`` (and echoed to stdout) so the artifacts
survive pytest's capture.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.harness.experiment import Scale, scale_from_env

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def scale() -> Scale:
    return scale_from_env(Scale.SMALL)


@pytest.fixture(scope="session")
def save_result():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save
