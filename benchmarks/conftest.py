"""Shared fixtures for the benchmark suite.

Every bench regenerates one paper artifact (table/figure) or ablation.
Scale comes from REPRO_SCALE ("smoke" | "small" | "paper"); the
default "small" keeps full experimental shape on a 1/8-size machine so
the whole suite runs in minutes.  Rendered tables are written to
``benchmarks/results/*.txt`` plus a machine-readable
``benchmarks/results/BENCH_*.json`` (and echoed to stdout) so the
artifacts survive pytest's capture.

Pass ``--trace PATH`` (or ``--trace-json PATH``) to export a Chrome
trace-event JSON covering every simulation run in the session (open in
Perfetto, or summarize with ``python -m repro.tools.trace PATH``).
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.harness.experiment import Scale, scale_from_env

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def _repurpose_builtin_trace(parser) -> bool:
    """Turn pytest's own ``--trace`` (break into pdb before each test,
    pointless for a benchmark suite) into ``--trace PATH``.

    Best-effort: rewrites the already-registered argparse action, so if
    a pytest release moves things around we silently keep only the
    ``--trace-json`` spelling.
    """
    import argparse

    try:
        optparser = getattr(parser, "optparser", None)
        if optparser is None:
            return False
        for action in optparser._actions:
            if "--trace" in action.option_strings:
                action.__class__ = argparse._StoreAction
                action.nargs = None
                action.const = None
                action.default = None
                action.type = str
                action.metavar = "PATH"
                action.help = (
                    "export a Chrome trace-event JSON of every "
                    "simulation run in this benchmark session"
                )
                return True
        return False
    except Exception:  # pragma: no cover - pytest internals moved
        return False


def pytest_addoption(parser):
    _repurpose_builtin_trace(parser)
    parser.addoption(
        "--trace-json",
        action="store",
        default=None,
        metavar="PATH",
        help="export a Chrome trace-event JSON of every simulation run "
        "in this benchmark session (alias of --trace)",
    )
    parser.addoption(
        "--jobs",
        action="store",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for sample fan-out inside each benchmark "
        "(0 = all cores; default: REPRO_JOBS, else serial).  Results "
        "are bit-identical to serial runs",
    )
    parser.addoption(
        "--journal",
        action="store",
        default=None,
        metavar="DIR",
        help="checkpoint every completed sweep cell to DIR "
        "(append-only JSON-lines journal; re-running the suite with "
        "the same DIR resumes finished cells bit-identically.  "
        "Equivalent to setting REPRO_JOURNAL; inspect progress with "
        "python -m repro.tools.serve status --state-dir DIR)",
    )


def _trace_path(config) -> "str | None":
    path = config.getoption("--trace-json")
    if path:
        return path
    val = config.getoption("trace", default=None)
    return val if isinstance(val, str) else None


def pytest_configure(config):
    jobs = config.getoption("--jobs")
    if jobs is not None:
        import os

        os.environ["REPRO_JOBS"] = str(jobs)
    journal = config.getoption("--journal")
    if journal is not None:
        import os

        os.environ["REPRO_JOURNAL"] = journal
    # If --trace carried a path, make sure pytest's debugging plugin
    # never sees it as a truthy "break into pdb" request.
    if isinstance(getattr(config.option, "trace", None), str):
        config._repro_trace_path = config.option.trace
        config.option.trace = False
        pm = config.pluginmanager
        if pm.has_plugin("pdbtrace"):
            pm.unregister(name="pdbtrace")


@pytest.fixture(scope="session", autouse=True)
def _session_trace(request):
    path = getattr(request.config, "_repro_trace_path", None) or _trace_path(
        request.config
    )
    if not path:
        yield None
        return
    from repro.harness.experiment import trace_to

    with trace_to(path) as tracer:
        yield tracer
    print(f"\n[trace: {len(tracer.events)} events -> {path}]")


@pytest.fixture(scope="session")
def scale() -> Scale:
    return scale_from_env(Scale.SMALL)


@pytest.fixture(scope="session")
def save_result():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str, data=None) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        json_path = RESULTS_DIR / f"BENCH_{name}.json"
        payload = {"name": name, "text": text, "data": data}
        json_path.write_text(json.dumps(payload, indent=2, default=float) + "\n")
        print(f"\n{text}\n[saved to {path} and {json_path}]")

    return _save
