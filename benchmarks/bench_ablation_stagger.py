"""Ablation — is *steering* the active ingredient, or would
serialization alone (the prior stagger method) suffice?

Three methods on the same machine with one pathologically slow
storage target (a hot external reader parked on it):

* ``stagger``  — staggered opens + per-target serialization, static;
* ``adaptive(steering=False)`` — adaptive's machinery, coordinator
  disabled;
* ``adaptive`` — the full method.

Expected: the static methods are gated by the slow target's group;
full adaptive steers that group's writers elsewhere and wins.  This is
the paper's core delta over its own prior work (CUG'09 stagger).
"""

from functools import partial

import numpy as np
import pytest

from repro.apps.pixie3d import pixie3d
from repro.core.transports import AdaptiveTransport, StaggerTransport
from repro.harness.experiment import n_samples_override
from repro.harness.parallel import parallel_map
from repro.harness.report import format_table
from repro.machines import jaguar

_SCALES = {
    "smoke": dict(n_ranks=32, n_osts=8, samples=1),
    "small": dict(n_ranks=256, n_osts=32, samples=3),
    "paper": dict(n_ranks=4096, n_osts=512, samples=5),
}


def _make_transport(method_name):
    if method_name == "stagger":
        return StaggerTransport()
    if method_name == "adaptive-nosteer":
        return AdaptiveTransport(steering=False)
    return AdaptiveTransport()


def _run(method_name, cfg, seed):
    machine = jaguar(n_osts=cfg["n_osts"]).build(
        n_ranks=cfg["n_ranks"], seed=seed
    )
    # One very slow target: e.g. an analysis cluster hammering it.
    machine.pool.set_load_multiplier(0.08, osts=np.array([0]))
    transport = _make_transport(method_name)
    res = transport.run(machine, pixie3d("large"), output_name="abl")
    return res.reported_time, res.aggregate_bandwidth


@pytest.mark.benchmark(group="ablation-stagger")
def test_ablation_steering_vs_serialization(benchmark, scale, save_result):
    cfg = _SCALES[scale.value]
    n_samples = n_samples_override(cfg["samples"])
    methods = ("stagger", "adaptive-nosteer", "adaptive")

    def sweep():
        out = {}
        for name in methods:
            times = parallel_map(
                partial(_run, name, cfg),
                [1000 + s for s in range(n_samples)],
            )
            out[name] = (
                float(np.mean([t for t, _ in times])),
                float(np.mean([b for _, b in times])),
            )
        return out

    out = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        (name, t, bw / 1e9) for name, (t, bw) in out.items()
    ]
    save_result(
        "ablation_stagger",
        format_table(
            ["method", "time (s)", "GB/s"],
            rows,
            title=(
                "Ablation — steering vs serialization "
                f"({cfg['n_ranks']} procs, {cfg['n_osts']} OSTs, "
                "one target at 8% speed)"
            ),
        ),
        data={
            "config": {**cfg, "samples": n_samples},
            "methods": {
                name: {"mean_time": t, "mean_bandwidth": bw}
                for name, (t, bw) in out.items()
            },
        },
    )

    t_stagger, _ = out["stagger"]
    t_nosteer, _ = out["adaptive-nosteer"]
    t_adaptive, _ = out["adaptive"]
    assert t_adaptive < t_nosteer, (
        "steering must beat serialization-only under a slow target"
    )
    assert t_adaptive < t_stagger, "adaptive must beat stagger"
    # Without steering, time is gated by the slow group: the win must
    # be substantial, not marginal.
    assert t_nosteer / t_adaptive > 1.5
