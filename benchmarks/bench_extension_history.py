"""Extension — history-aware adaptation (paper future work, §VI).

"there are likely more complex and/or state-rich methods for system
adaptation, including those that take into account past usage data."

A campaign of output steps on a machine with *persistently* slow
targets (a co-located long-running reader study parked on a few
OSTs).  Vanilla adaptive re-discovers the slow targets every step,
paying the first-write penalty each time; the history-aware variant
seeds group sizes from past bandwidth estimates and should win from
the second step on — and must NOT lose when the slowness is purely
transient (no exploitable history).
"""

import numpy as np
import pytest

from repro.apps.xgc1 import xgc1
from repro.core.transports import (
    AdaptiveTransport,
    HistoryAwareAdaptiveTransport,
)
from repro.harness.report import format_table
from repro.machines import jaguar

_SCALES = {
    "smoke": dict(n_ranks=64, n_osts=8, steps=3, slow=(0,)),
    "small": dict(n_ranks=512, n_osts=32, steps=4, slow=(0, 1, 2)),
    "paper": dict(n_ranks=8192, n_osts=512, steps=6,
                  slow=tuple(range(24))),
}


def _campaign(transport_factory, cfg, seed_base, persistent):
    transport = transport_factory()
    times = []
    rng = np.random.default_rng(seed_base)
    for step in range(cfg["steps"]):
        machine = jaguar(n_osts=cfg["n_osts"]).build(
            n_ranks=cfg["n_ranks"], seed=seed_base + step
        )
        if persistent:
            slow = np.array(cfg["slow"])
        else:
            slow = rng.choice(cfg["n_osts"], size=len(cfg["slow"]),
                              replace=False)
        machine.pool.set_load_multiplier(0.07, osts=slow)
        res = transport.run(machine, xgc1(), output_name=f"c{step}")
        times.append(res.reported_time)
    return times


@pytest.mark.benchmark(group="extension-history")
def test_extension_history_aware(benchmark, scale, save_result):
    cfg = _SCALES[scale.value]

    def sweep():
        out = {}
        for label, persistent in (("persistent", True),
                                  ("transient", False)):
            out[("adaptive", label)] = _campaign(
                AdaptiveTransport, cfg, 7000, persistent
            )
            out[("history", label)] = _campaign(
                HistoryAwareAdaptiveTransport, cfg, 7000, persistent
            )
        return out

    out = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for (method, cond), times in out.items():
        rows.append(
            (method, cond, float(np.mean(times)),
             float(np.mean(times[1:])))
        )
    save_result(
        "extension_history",
        format_table(
            ["method", "slow targets", "mean step (s)",
             "mean after warm-up (s)"],
            rows,
            title=(
                "Extension — history-aware adaptation "
                f"({cfg['n_ranks']} procs, {cfg['n_osts']} targets, "
                f"{len(cfg['slow'])} slow)"
            ),
        ),
        data={
            "config": dict(cfg),
            "campaigns": {
                f"{method}/{cond}": {
                    "step_times": [float(t) for t in times],
                    "mean": float(np.mean(times)),
                    "mean_after_warmup": float(np.mean(times[1:])),
                }
                for (method, cond), times in out.items()
            },
        },
    )

    if scale.value == "smoke":
        return  # one slow target of eight never gates the critical path
    # Persistent slowness: history must help after warm-up.
    ad = np.mean(out[("adaptive", "persistent")][1:])
    hi = np.mean(out[("history", "persistent")][1:])
    assert hi <= ad * 1.02, (
        f"history-aware ({hi:.2f}s) failed to beat vanilla ({ad:.2f}s) "
        f"under persistent slow targets"
    )
    # Transient slowness: history must not hurt much.
    ad_t = np.mean(out[("adaptive", "transient")])
    hi_t = np.mean(out[("history", "transient")])
    assert hi_t <= ad_t * 1.25, (
        f"history-aware degraded transient case {hi_t / ad_t:.2f}x"
    )
