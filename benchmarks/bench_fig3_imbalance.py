"""Regenerates Fig. 3 — imbalanced concurrent writers.

Shape targets: per-writer imbalance factors of order 1.2-5 within one
output; two probes minutes apart can differ substantially (transient
interference); the all-sample mean sits in the neighbourhood of the
paper's 4.07.
"""

import pytest

from repro.harness.figures import fig3


@pytest.mark.benchmark(group="fig3")
def test_fig3_writer_imbalance(benchmark, scale, save_result):
    result = benchmark.pedantic(
        lambda: fig3.run(scale, base_seed=0), rounds=1, iterations=1
    )
    save_result(
        "fig3_imbalance", result.render(), data=result.to_dict()
    )

    assert result.imbalance_test1 >= 1.0
    assert result.imbalance_test2 >= 1.0
    # The displayed pair is chosen for contrast: the two probes of the
    # same system minutes apart must differ meaningfully.
    contrast = abs(result.imbalance_test1 - result.imbalance_test2)
    assert contrast > 0.2, "interference must be visibly transient"
    if scale.value != "smoke":
        assert 1.5 <= result.mean_imbalance <= 8.0, (
            f"mean imbalance {result.mean_imbalance:.2f} far from the "
            f"paper's 4.07 neighbourhood"
        )
