"""Ablation — simultaneous writers per storage target.

The paper implements one writer per target at a time and notes "one
might use 2 or 3 simultaneous writers per storage location ... We
have not experimented with these generalizations" (Section III-B3).
We did: this bench sweeps writers_per_target over {1, 2, 4, 8} on a
quiet system.  The efficiency curve peaks at 2-4 concurrent streams,
so a small amount of concurrency can actually beat strict
serialization — and heavy concurrency recreates the internal
interference the method exists to avoid.
"""

from functools import partial

import numpy as np
import pytest

from repro.apps.pixie3d import pixie3d
from repro.core.transports import AdaptiveTransport
from repro.harness.experiment import n_samples_override
from repro.harness.parallel import parallel_map
from repro.harness.report import format_table
from repro.machines import jaguar

_SCALES = {
    "smoke": dict(n_ranks=64, n_osts=8, samples=1, fanouts=(1, 2, 4)),
    "small": dict(n_ranks=512, n_osts=32, samples=3, fanouts=(1, 2, 4, 8)),
    "paper": dict(n_ranks=8192, n_osts=512, samples=5,
                  fanouts=(1, 2, 3, 4, 8)),
}


def _one_sample(fanout, cfg, seed):
    machine = jaguar(n_osts=cfg["n_osts"]).build(
        n_ranks=cfg["n_ranks"], seed=seed
    )
    res = AdaptiveTransport(writers_per_target=fanout).run(
        machine, pixie3d("large"), output_name="abl"
    )
    return res.aggregate_bandwidth


@pytest.mark.benchmark(group="ablation-writers-per-target")
def test_ablation_writers_per_target(benchmark, scale, save_result):
    cfg = _SCALES[scale.value]
    n_samples = n_samples_override(cfg["samples"])

    def sweep():
        out = {}
        for k in cfg["fanouts"]:
            bws = parallel_map(
                partial(_one_sample, k, cfg),
                [2000 + s for s in range(n_samples)],
            )
            out[k] = float(np.mean(bws))
        return out

    out = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [(k, bw / 1e9) for k, bw in out.items()]
    save_result(
        "ablation_writers_per_target",
        format_table(
            ["writers/target", "GB/s"],
            rows,
            title=(
                "Ablation — simultaneous writers per storage target "
                f"({cfg['n_ranks']} procs, {cfg['n_osts']} OSTs, quiet)"
            ),
        ),
        data={
            "config": {**cfg, "samples": n_samples},
            "mean_bandwidth_by_fanout": {
                str(k): bw for k, bw in out.items()
            },
        },
    )

    fanouts = list(cfg["fanouts"])
    # 2-4 concurrent streams sit at the disk efficiency peak: small
    # fanout must not lose to strict serialization.
    assert out[2] >= out[1] * 0.95
    # The largest fanout must not beat the efficiency-peak fanout:
    # interference returns.
    best_small = max(out[k] for k in fanouts if k <= 4)
    assert out[fanouts[-1]] <= best_small * 1.05
