"""Ablation — coordination cost scaling (paper Section III-B3).

"This adaptive mechanism scales according to the number of storage
targets rather than the number of writers.  The coordinator is only
involved in the process once the bulk of writers are complete."

We quadruple the writer count at a fixed target count and check the
coordinator's message traffic stays ~flat, while the per-SC traffic
grows with its group size (each of its writers reports to it).
"""

from functools import partial

import pytest

from repro.apps.pixie3d import pixie3d
from repro.core.transports import AdaptiveTransport
from repro.harness.experiment import n_samples_override
from repro.harness.parallel import parallel_map
from repro.harness.report import format_table
from repro.machines import jaguar

_SCALES = {
    "smoke": dict(n_osts=8, writer_counts=(16, 64), samples=1),
    "small": dict(n_osts=32, writer_counts=(64, 256, 1024), samples=3),
    "paper": dict(n_osts=512, writer_counts=(1024, 4096, 16384),
                  samples=3),
}


def _one_sample(n_writers, cfg, seed):
    machine = jaguar(n_osts=cfg["n_osts"]).build(
        n_ranks=n_writers, seed=seed
    )
    res = AdaptiveTransport().run(
        machine, pixie3d("small"), output_name="abl"
    )
    return (
        res.coordinator_messages,
        res.messages_sent,
        res.n_adaptive_writes,
    )


@pytest.mark.benchmark(group="ablation-message-load")
def test_ablation_coordinator_message_load(benchmark, scale, save_result):
    cfg = _SCALES[scale.value]
    n_samples = n_samples_override(cfg["samples"])

    def sweep():
        out = {}
        for n in cfg["writer_counts"]:
            samples = parallel_map(
                partial(_one_sample, n, cfg),
                [4000 + s for s in range(n_samples)],
            )
            coord_msgs = [c for c, _, _ in samples]
            total_msgs = [t for _, t, _ in samples]
            adaptive_ct = [a for _, _, a in samples]
            out[n] = (
                sum(coord_msgs) / len(coord_msgs),
                sum(total_msgs) / len(total_msgs),
                sum(adaptive_ct) / len(adaptive_ct),
            )
        return out

    out = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        (n, c, t, a, t / n) for n, (c, t, a) in out.items()
    ]
    save_result(
        "ablation_message_load",
        format_table(
            ["writers", "coord msgs", "total msgs", "steered",
             "msgs/writer"],
            rows,
            title=(
                "Ablation — message load vs writer count "
                f"({cfg['n_osts']} targets)"
            ),
        ),
        data={
            "config": {**cfg, "samples": n_samples},
            "by_writer_count": {
                str(n): {
                    "coordinator_messages": c,
                    "total_messages": t,
                    "steered_writes": a,
                    "messages_per_writer": t / n,
                }
                for n, (c, t, a) in out.items()
            },
        },
    )

    counts = list(cfg["writer_counts"])
    growth_writers = counts[-1] / counts[0]
    c_first = out[counts[0]][0]
    c_last = out[counts[-1]][0]
    # Coordinator traffic is bounded by target count, not writers:
    # growth must be far below the writer growth.
    assert c_last <= c_first * max(2.0, growth_writers / 4), (
        f"coordinator messages grew {c_last / c_first:.1f}x for a "
        f"{growth_writers:.0f}x writer increase"
    )
    # Total traffic is Theta(writers): per-writer message count stays
    # bounded by a small constant.
    for n, (_c, t, _a) in out.items():
        assert t / n < 10.0
