"""Ablation — coordination cost scaling (paper Section III-B3).

"This adaptive mechanism scales according to the number of storage
targets rather than the number of writers.  The coordinator is only
involved in the process once the bulk of writers are complete."

We quadruple the writer count at a fixed target count and check the
coordinator's message traffic stays ~flat, while the per-SC traffic
grows with its group size (each of its writers reports to it).
"""

import pytest

from repro.apps.pixie3d import pixie3d
from repro.core.transports import AdaptiveTransport
from repro.harness.report import format_table
from repro.machines import jaguar

_SCALES = {
    "smoke": dict(n_osts=8, writer_counts=(16, 64), samples=1),
    "small": dict(n_osts=32, writer_counts=(64, 256, 1024), samples=2),
    "paper": dict(n_osts=512, writer_counts=(1024, 4096, 16384),
                  samples=3),
}


@pytest.mark.benchmark(group="ablation-message-load")
def test_ablation_coordinator_message_load(benchmark, scale, save_result):
    cfg = _SCALES[scale.value]

    def sweep():
        out = {}
        for n in cfg["writer_counts"]:
            coord_msgs, total_msgs, adaptive_ct = [], [], []
            for s in range(cfg["samples"]):
                machine = jaguar(n_osts=cfg["n_osts"]).build(
                    n_ranks=n, seed=4000 + s
                )
                res = AdaptiveTransport().run(
                    machine, pixie3d("small"), output_name="abl"
                )
                coord_msgs.append(res.coordinator_messages)
                total_msgs.append(res.messages_sent)
                adaptive_ct.append(res.n_adaptive_writes)
            out[n] = (
                sum(coord_msgs) / len(coord_msgs),
                sum(total_msgs) / len(total_msgs),
                sum(adaptive_ct) / len(adaptive_ct),
            )
        return out

    out = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        (n, c, t, a, t / n) for n, (c, t, a) in out.items()
    ]
    save_result(
        "ablation_message_load",
        format_table(
            ["writers", "coord msgs", "total msgs", "steered",
             "msgs/writer"],
            rows,
            title=(
                "Ablation — message load vs writer count "
                f"({cfg['n_osts']} targets)"
            ),
        ),
    )

    counts = list(cfg["writer_counts"])
    growth_writers = counts[-1] / counts[0]
    c_first = out[counts[0]][0]
    c_last = out[counts[-1]][0]
    # Coordinator traffic is bounded by target count, not writers:
    # growth must be far below the writer growth.
    assert c_last <= c_first * max(2.0, growth_writers / 4), (
        f"coordinator messages grew {c_last / c_first:.1f}x for a "
        f"{growth_writers:.0f}x writer increase"
    )
    # Total traffic is Theta(writers): per-writer message count stays
    # bounded by a small constant.
    for n, (_c, t, _a) in out.items():
        assert t / n < 10.0
