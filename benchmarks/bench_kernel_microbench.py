"""Microbenchmark of the simulation kernel's hot paths.

Not a paper artifact — this tracks the raw throughput numbers every
sweep is built on, so performance regressions show up as numbers, not
as mysteriously slow benchmark sessions:

* **events/sec** — the DES calendar loop: many processes yielding
  timeouts (one calendar event per hop, exercising the Timeout
  allocation path, ``Environment.step``/``run`` and the heap).
* **settles/sec (steady)** — fabric settles with an unchanged flow
  set and unchanged capacities (the "timer fired, nothing moved"
  case the fabric can skip reallocation for).
* **settles/sec (churn)** — fabric settles where the flow set changes
  every time (start + cancel, each forced synchronous), the case the
  incremental reallocator exists for: only the touched sink's flows
  are repriced, bit-identically to a batch reallocation.
* **allocs/sec (single-bottleneck)** — ``max_min_fair_rates`` on the
  by-far-most-common shape: every flow blocked by one shared sink
  capacity level (the fast path).
* **flow arrivals/sec (grouped)** — batches of flows released at one
  simulated instant through a live calendar: same-instant coalescing
  folds each batch into a single end-of-instant settle, so the cost
  per arrival is bookkeeping, not a reallocation.

Results land in ``benchmarks/results/BENCH_kernel.json``; the
previously committed numbers are carried along under ``"previous"``
so the file itself records the perf trajectory.  CI's perf-smoke job
fails when events/sec drops more than 30% below the committed value.
"""

import json
import time

import numpy as np
import pytest

from repro.net.fabric import FlowNetwork, UniformSinkPool, max_min_fair_rates
from repro.sim import Environment

_SCALES = {
    # (ticker procs, hops each, fabric flows, settles, alloc reps,
    #  grouped-release arrivals)
    "smoke": dict(n_procs=50, n_hops=200, n_flows=512, n_settles=60,
                  n_allocs=100, n_group_flows=1280),
    "small": dict(n_procs=200, n_hops=500, n_flows=2048, n_settles=200,
                  n_allocs=300, n_group_flows=6400),
    "paper": dict(n_procs=400, n_hops=1000, n_flows=16384, n_settles=400,
                  n_allocs=1000, n_group_flows=12800),
}


def _ticker(env, n):
    for _ in range(n):
        yield env.timeout(0.001)


def bench_events(n_procs, n_hops):
    """Calendar throughput: events processed per wall-clock second."""
    env = Environment()
    for i in range(n_procs):
        env.process(_ticker(env, n_hops), name=f"t{i}")
    t0 = time.perf_counter()
    env.run()
    dt = time.perf_counter() - t0
    n_events = env._seq  # every scheduled event bumps the sequence
    return n_events / dt, n_events, dt


def _fresh_network(n_flows, n_src=256, n_sinks=64):
    env = Environment()
    pool = UniformSinkPool(n_sinks, 1.8e8)
    net = FlowNetwork(env, np.full(n_src, 1.6e9), pool,
                      default_flow_cap=3e8)
    rng = np.random.default_rng(7)
    for _ in range(n_flows):
        net.start_flow(
            int(rng.integers(0, n_src)), int(rng.integers(0, n_sinks)),
            1e15,
        )
    net.invalidate()  # fold the deferred settle; start from a live state
    return env, net


def bench_settles_steady(n_flows, n_settles):
    """Settles with an unchanged flow set and unchanged capacities."""
    _env, net = _fresh_network(n_flows)
    t0 = time.perf_counter()
    for _ in range(n_settles):
        net.invalidate()
    dt = time.perf_counter() - t0
    return n_settles / dt, dt


def bench_settles_churn(n_flows, n_settles):
    """Settles forced through reallocation by flow-set churn.

    ``invalidate()`` after every mutation makes each settle synchronous
    (mutations alone only *request* a deferred settle), so this measures
    one reallocation per op — served by the incremental patch path when
    eligible, the batch allocator otherwise.
    """
    _env, net = _fresh_network(n_flows)
    t0 = time.perf_counter()
    for i in range(n_settles):
        net.start_flow(i % net.n_sources, i % net.n_sinks, 1e15)
        net.invalidate()
        net.cancel_flow(net._next_id - 1)  # the flow just started
        net.invalidate()
    dt = time.perf_counter() - t0
    # Each iteration settles twice (start + cancel).
    return 2 * n_settles / dt, dt, net.incremental_count


def bench_group_release(n_arrivals, group_size=64):
    """Same-instant group releases through a live calendar.

    A process starts *group_size* flows at one simulated instant, then
    yields; the fabric coalesces each burst into a single end-of-instant
    settle.  Measures flow arrivals per wall-clock second — the number
    that bounds how fast a sweep can spin up thousands of writers.
    """
    env = Environment()
    pool = UniformSinkPool(64, 1.8e8)
    net = FlowNetwork(env, np.full(256, 1.6e9), pool,
                      default_flow_cap=3e8)
    n_groups = n_arrivals // group_size

    def _releaser():
        i = 0
        for _ in range(n_groups):
            for _ in range(group_size):
                # Small flows: they complete between bursts, so the
                # network stays at one burst's worth of active flows.
                net.start_flow(i % 256, i % 64, 1e6)
                i += 1
            yield env.timeout(0.01)

    env.process(_releaser(), name="release")
    t0 = time.perf_counter()
    env.run()
    dt = time.perf_counter() - t0
    n_flows = n_groups * group_size
    return n_flows / dt, dt, net.realloc_count, net.coalesced_count


def bench_alloc_single_bottleneck(n_reps, n_flows=4096):
    """max_min_fair_rates where one shared sink level binds all flows."""
    rng = np.random.default_rng(3)
    src = rng.integers(0, 1400, n_flows)
    dst = np.zeros(n_flows, dtype=np.int64)  # everyone on one sink
    cap_src = np.full(1400, 1.6e9)
    cap_dst = np.array([1.8e8])
    t0 = time.perf_counter()
    for _ in range(n_reps):
        rates = max_min_fair_rates(src, dst, cap_src, cap_dst)
    dt = time.perf_counter() - t0
    assert np.allclose(rates.sum(), 1.8e8)
    return n_reps / dt, dt


def _collected(fn, *args):
    """Run one sub-benchmark with a clean slate: the previous section's
    garbage (dead Events, retired networks) must not be collected on
    this section's clock."""
    import gc

    gc.collect()
    return fn(*args)


def _measure(cfg):
    return (
        _collected(bench_events, cfg["n_procs"], cfg["n_hops"]),
        _collected(bench_settles_steady, cfg["n_flows"], cfg["n_settles"]),
        _collected(bench_settles_churn, cfg["n_flows"], cfg["n_settles"]),
        _collected(bench_alloc_single_bottleneck, cfg["n_allocs"]),
        _collected(bench_group_release, cfg["n_group_flows"]),
    )


@pytest.mark.benchmark(group="kernel-micro")
def test_kernel_microbench(benchmark, scale, save_result):
    cfg = _SCALES[scale.value]
    # Route through the benchmark fixture so --benchmark-only runs
    # this test; each sub-measurement keeps its own wall-clock timing.
    (
        (ev_rate, n_events, ev_dt),
        (steady_rate, steady_dt),
        (churn_rate, churn_dt, churn_incremental),
        (alloc_rate, alloc_dt),
        (group_rate, group_dt, group_reallocs, group_coalesced),
    ) = benchmark.pedantic(_measure, args=(cfg,), rounds=1, iterations=1)

    data = {
        "scale": scale.value,
        "events_per_sec": ev_rate,
        "n_events": int(n_events),
        "settles_per_sec_steady": steady_rate,
        "settles_per_sec_churn": churn_rate,
        "churn_incremental_reallocs": int(churn_incremental),
        "allocs_per_sec_single_bottleneck": alloc_rate,
        "flow_arrivals_per_sec_grouped": group_rate,
        "grouped_reallocs": int(group_reallocs),
        "grouped_coalesced": int(group_coalesced),
        "wall": {
            "events": ev_dt,
            "settles_steady": steady_dt,
            "settles_churn": churn_dt,
            "alloc": alloc_dt,
            "group_release": group_dt,
        },
    }
    # Carry the previously committed numbers along so the JSON records
    # the trajectory, not just the latest point.
    prev_path = (
        __import__("pathlib").Path(__file__).parent
        / "results" / "BENCH_kernel.json"
    )
    if prev_path.exists():
        prev = json.loads(prev_path.read_text()).get("data") or {}
        prev.pop("previous", None)
        data["previous"] = prev

    text = (
        "Kernel microbenchmark\n"
        f"  events/sec            {ev_rate:12.0f}  "
        f"({n_events} events in {ev_dt:.2f}s)\n"
        f"  settles/sec (steady)  {steady_rate:12.0f}\n"
        f"  settles/sec (churn)   {churn_rate:12.0f}  "
        f"({churn_incremental} incremental)\n"
        f"  allocs/sec (1-btlnk)  {alloc_rate:12.0f}\n"
        f"  arrivals/sec (group)  {group_rate:12.0f}  "
        f"({group_reallocs} reallocs, {group_coalesced} coalesced)"
    )
    save_result("kernel", text, data=data)

    # Generous sanity floors — CI's perf-smoke job does the real
    # regression check against the committed JSON.
    assert ev_rate > 10_000
    assert steady_rate > 50
    assert churn_rate > 50
    assert group_rate > 100
    # Coalescing must actually engage: far fewer reallocations than
    # arrivals.
    assert group_reallocs < cfg["n_group_flows"] / 8
