"""Regenerates Fig. 2 — bandwidth histograms of the Table I data.

Shape target: the production systems' histograms (and XTP with a
second job) are wide spreads; XTP without interference is a tight
spike around its mean.
"""

import pytest

from repro.harness.figures import fig2


@pytest.mark.benchmark(group="fig2")
def test_fig2_bandwidth_histograms(benchmark, scale, save_result):
    result = benchmark.pedantic(
        lambda: fig2.run(scale, base_seed=0), rounds=1, iterations=1
    )
    save_result(
        "fig2_histograms", result.render(), data=result.to_dict()
    )

    if scale.value != "smoke":
        tight = result.relative_spread("xtp_without_int")
        assert tight < result.relative_spread("jaguar"), (
            "lone-XTP histogram must be tighter than Jaguar's"
        )
        assert tight < result.relative_spread("xtp_with_int"), (
            "the co-running job must widen XTP's histogram"
        )
        assert tight < 0.25, "lone XTP must be a tight spike"
        # Production spreads are genuinely wide, not single-bin.
        jag = result.histograms["jaguar"]
        assert (jag.counts > 0).sum() >= 3
        assert result.relative_spread("jaguar") > 0.5
