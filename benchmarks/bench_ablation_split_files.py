"""Ablation — the paper's Section II-3 alternative: split the output
into ~5 stripe-capped files to reach every storage target.

Expected ordering under external interference:

    mpiio (1 file, capped targets)
  < splitfiles (all targets, still concurrent + static)
  < adaptive (all targets, serialized + steered)

"This helps alleviate internal interference, but does not solve it
nor does it address external interference."
"""

from functools import partial

import numpy as np
import pytest

from repro.apps.pixie3d import pixie3d
from repro.core.transports import (
    AdaptiveTransport,
    MpiIoTransport,
    SplitFilesTransport,
)
from repro.harness.experiment import n_samples_override
from repro.harness.parallel import parallel_map
from repro.harness.report import format_table
from repro.interference import install_production_noise
from repro.machines import jaguar

_SCALES = {
    "smoke": dict(n_ranks=64, pool=16, cap=4, samples=1),
    "small": dict(n_ranks=512, pool=84, cap=20, samples=3),
    "paper": dict(n_ranks=8192, pool=672, cap=160, samples=5),
}


def _make_transport(method_name, cfg):
    if method_name == "mpiio":
        return MpiIoTransport(build_index=False)
    if method_name == "splitfiles":
        return SplitFilesTransport(build_index=False)
    return AdaptiveTransport(n_osts_used=cfg["pool"])


def _one_sample(method_name, cfg, seed):
    spec = jaguar(n_osts=cfg["pool"]).with_overrides(
        max_stripe_count=cfg["cap"]
    )
    machine = spec.build(n_ranks=cfg["n_ranks"], seed=seed)
    install_production_noise(machine, live=True)
    res = _make_transport(method_name, cfg).run(
        machine, pixie3d("large"), output_name="abl"
    )
    return res.aggregate_bandwidth


@pytest.mark.benchmark(group="ablation-split-files")
def test_ablation_split_files(benchmark, scale, save_result):
    cfg = _SCALES[scale.value]
    n_samples = n_samples_override(cfg["samples"])
    methods = ("mpiio", "splitfiles", "adaptive")

    def sweep():
        out = {}
        for name in methods:
            bws = parallel_map(
                partial(_one_sample, name, cfg),
                [5000 + s for s in range(n_samples)],
            )
            out[name] = float(np.mean(bws))
        return out

    out = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [(k, bw / 1e9) for k, bw in out.items()]
    save_result(
        "ablation_split_files",
        format_table(
            ["method", "GB/s"],
            rows,
            title=(
                "Ablation — split-files alternative "
                f"({cfg['n_ranks']} procs, pool {cfg['pool']}, "
                f"stripe cap {cfg['cap']}, production noise)"
            ),
        ),
        data={
            "config": {**cfg, "samples": n_samples},
            "mean_bandwidth_by_method": dict(out),
        },
    )

    assert out["splitfiles"] > out["mpiio"], (
        "reaching all targets must beat the capped single file"
    )
    assert out["adaptive"] > out["splitfiles"], (
        "managing interference must beat merely spreading over targets"
    )
