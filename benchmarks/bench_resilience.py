"""Resilience sweep — adaptive IO under injected OST failures.

Fails k storage targets mid-write and compares time-to-complete-
durable-output goodput across methods.  The static methods lose the
failed targets' bytes and pay an application-level re-run; the
adaptive method relocates the affected sub-files and re-drives the
affected writers within the run, so it must stay fully durable and
keep the goodput lead at every failure count.
"""

import pytest

from repro.harness.figures import resilience


@pytest.mark.benchmark(group="resilience")
def test_resilience(benchmark, scale, save_result):
    result = benchmark.pedantic(
        lambda: resilience.run(scale, 0), rounds=1, iterations=1
    )
    save_result(
        "resilience",
        result.render(),
        data=result.to_dict(),
    )
    for k in resilience.K_FAILED:
        assert result.durable_frac("adaptive", k) == pytest.approx(1.0), (
            f"adaptive must stay fully durable with {k} OSTs failed"
        )
        for method in resilience.METHODS:
            assert (
                result.goodput("adaptive", k) >= result.goodput(method, k)
            ), (
                f"adaptive goodput must dominate {method} "
                f"at {k} failed OSTs"
            )
    for method, cell in result.integrity.items():
        assert cell["detected"] > 0, (
            f"{method}: the corruption plan must actually corrupt blocks"
        )
        assert cell["undetected"] == 0, (
            f"{method}: checksummed scrub missed injected corruption"
        )
        assert cell["false_positives"] == 0 and cell["fp_clean"] == 0, (
            f"{method}: scrub flagged undamaged blocks"
        )
