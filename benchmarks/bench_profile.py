"""Wall-clock self-profile of one fully-instrumented application cell.

Runs the paper's headline scenario — an adaptive-transport write under
interference — with the complete telemetry stack attached (metrics
registry, settle-mode monitor, straggler detector) and the
:class:`repro.telemetry.Profiler` wrapped around the run, then records
where the real time went: engine calendar loop, fabric settles,
transport protocol code, tracer overhead, everything else.

This is the number that tells you *what to optimise next*.  The large
preset is the full-machine acceptance cell: 8192 processes writing to
the 672-OST Jaguar pool.  An uninstrumented MPI-IO run of the same
cell rides along as the static-transport wall-clock baseline, so the
report always shows what the adaptive protocol's simulation costs
*relative to* the dumb transport.  Results land in
``benchmarks/results/BENCH_profile.json`` with the previously committed
breakdown carried under ``"previous"``.
"""

import json
import pathlib
import time

import pytest

from repro.apps.gtc import gtc
from repro.core.transports import AdaptiveTransport, MpiIoTransport
from repro.interference import BackgroundWriterJob, install_production_noise
from repro.machines import jaguar
from repro.telemetry import MetricsRegistry, profiling
from repro.units import GB

_SCALES = {
    # Mirrors the appbench sweep presets (pool size, adaptive target
    # count, stripe cap, process count); one interference cell each.
    "smoke": dict(pool_osts=12, adaptive_osts=8, stripe_cap=4,
                  n_procs=32),
    "small": dict(pool_osts=84, adaptive_osts=64, stripe_cap=20,
                  n_procs=256),
    "large": dict(pool_osts=672, adaptive_osts=512, stripe_cap=160,
                  n_procs=8192),
    "paper": dict(pool_osts=672, adaptive_osts=512, stripe_cap=160,
                  n_procs=8192),
    # Mirrors the appbench exa preset — only tractable batched.
    "exa": dict(pool_osts=5000, adaptive_osts=4096, stripe_cap=160,
                n_procs=65536),
}


def _profiled_cell(cfg, seed=0):
    registry = MetricsRegistry()
    spec = jaguar(n_osts=cfg["pool_osts"]).with_overrides(
        max_stripe_count=cfg["stripe_cap"]
    )
    machine = spec.build(
        n_ranks=cfg["n_procs"],
        seed=seed,
        extra_service_nodes=2,
        metrics=registry,
    )
    install_production_noise(machine, live=True)
    BackgroundWriterJob(
        machine,
        n_osts=min(8, cfg["pool_osts"]),
        writers_per_ost=3,
        write_size=1.0 * GB,
    ).start()
    transport = AdaptiveTransport(
        n_osts_used=min(cfg["adaptive_osts"], cfg["n_procs"])
    )
    with profiling(machine) as prof:
        result = transport.run(machine, gtc(), output_name="out")
    return prof, result, registry


def _static_cell(cfg, seed=0):
    """Same cell, MPI-IO transport, no instrumentation: the baseline."""
    spec = jaguar(n_osts=cfg["pool_osts"]).with_overrides(
        max_stripe_count=cfg["stripe_cap"]
    )
    machine = spec.build(
        n_ranks=cfg["n_procs"], seed=seed, extra_service_nodes=2
    )
    install_production_noise(machine, live=True)
    BackgroundWriterJob(
        machine,
        n_osts=min(8, cfg["pool_osts"]),
        writers_per_ost=3,
        write_size=1.0 * GB,
    ).start()
    transport = MpiIoTransport(build_index=False)
    t0 = time.perf_counter()
    result = transport.run(machine, gtc(), output_name="out")
    return {
        "wall_seconds": time.perf_counter() - t0,
        "reported_time": float(result.reported_time),
        "aggregate_bandwidth": float(result.aggregate_bandwidth),
    }


@pytest.mark.benchmark(group="profile")
def test_profiled_adaptive_cell(benchmark, scale, save_result):
    cfg = _SCALES[scale.value]
    (prof, result, registry), static = benchmark.pedantic(
        lambda: (_profiled_cell(cfg), _static_cell(cfg)),
        rounds=1,
        iterations=1,
    )
    breakdown = prof.to_dict()

    data = {
        "scale": scale.value,
        "app": "gtc",
        "transport": "adaptive",
        "condition": "interference",
        "n_procs": cfg["n_procs"],
        "pool_osts": cfg["pool_osts"],
        "adaptive_osts": cfg["adaptive_osts"],
        "reported_time": float(result.reported_time),
        "aggregate_bandwidth": float(result.aggregate_bandwidth),
        "n_instruments": len(registry),
        "sections": {
            name: {"seconds": s["seconds"], "calls": s["calls"]}
            for name, s in breakdown["sections"].items()
        },
        "tracked_seconds": breakdown["tracked_seconds"],
        "wall_seconds": breakdown["wall_seconds"],
        "other_seconds": breakdown["other_seconds"],
        "mpiio_baseline": static,
    }
    prev_path = (
        pathlib.Path(__file__).parent / "results" / "BENCH_profile.json"
    )
    if prev_path.exists():
        prev = json.loads(prev_path.read_text()).get("data") or {}
        prev.pop("previous", None)
        data["previous"] = prev

    text = (
        f"Self-profile: gtc/adaptive/interference x{cfg['n_procs']} on "
        f"{cfg['pool_osts']} OSTs ({scale.value})\n" + prof.report()
        + f"\nmpiio baseline {static['wall_seconds']:9.3f}s wall "
        f"(static transport, uninstrumented)"
    )
    save_result("profile", text, data=data)

    # Sanity: the profiler accounted for real time, and the simulated
    # run actually did its job under instrumentation.
    assert breakdown["wall_seconds"] > 0
    assert breakdown["tracked_seconds"] > 0
    assert breakdown["tracked_seconds"] <= breakdown["wall_seconds"] * 1.01
    assert all(
        s["seconds"] >= 0 for s in breakdown["sections"].values()
    )
    assert result.reported_time > 0
    assert len(registry) > 0
    assert static["wall_seconds"] > 0
    assert static["aggregate_bandwidth"] > 0
