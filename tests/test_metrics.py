"""Unit + property tests for the metrics package."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    Histogram,
    WriterTimeline,
    coefficient_of_variation,
    imbalance_factor,
    summarize,
    text_histogram,
)
from repro.core.transports.base import WriterTiming


class TestStats:
    def test_cov_basic(self):
        assert coefficient_of_variation([1, 1, 1]) == 0.0
        v = coefficient_of_variation([1.0, 3.0])
        assert v == pytest.approx(0.5)

    def test_cov_zero_mean(self):
        assert coefficient_of_variation([1.0, -1.0]) == float("inf")

    def test_cov_empty_rejected(self):
        with pytest.raises(ValueError):
            coefficient_of_variation([])

    def test_imbalance_factor_paper_example(self):
        # Slowest/fastest write time; factor 3.44 in the paper's Test 1.
        times = [1.0] * 10 + [3.44]
        assert imbalance_factor(times) == pytest.approx(3.44)

    def test_imbalance_equal_writers(self):
        assert imbalance_factor([2.0, 2.0, 2.0]) == 1.0

    def test_imbalance_zero_fastest(self):
        assert imbalance_factor([0.0, 1.0]) == float("inf")

    def test_imbalance_validation(self):
        with pytest.raises(ValueError):
            imbalance_factor([])
        with pytest.raises(ValueError):
            imbalance_factor([-1.0, 1.0])

    def test_summarize(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.n == 3
        assert s.mean == 2.0
        assert s.minimum == 1.0 and s.maximum == 3.0
        assert s.cov == pytest.approx(s.std / 2.0)
        assert s.cov_percent == pytest.approx(100 * s.cov)

    def test_summary_row_scaling(self):
        s = summarize([1e6, 3e6])
        n, mean, std, cov = s.row(scale=1e6)
        assert mean == pytest.approx(2.0)
        assert cov == pytest.approx(50.0)

    @given(st.lists(st.floats(0.1, 1e6), min_size=1, max_size=100))
    @settings(max_examples=100)
    def test_imbalance_at_least_one(self, times):
        assert imbalance_factor(times) >= 1.0

    @given(st.lists(st.floats(0.1, 1e6), min_size=2, max_size=50),
           st.floats(0.5, 10.0))
    @settings(max_examples=100)
    def test_cov_scale_invariant(self, values, k):
        a = coefficient_of_variation(values)
        b = coefficient_of_variation([v * k for v in values])
        assert a == pytest.approx(b, rel=1e-6)


class TestHistogram:
    def test_of_counts_sum(self):
        h = Histogram.of([1, 2, 2, 3, 10], n_bins=5)
        assert h.n == 5
        assert len(h.counts) == 5
        assert len(h.edges) == 6

    def test_degenerate_range(self):
        h = Histogram.of([5.0, 5.0], n_bins=4)
        assert h.n == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            Histogram.of([], n_bins=3)
        with pytest.raises(ValueError):
            Histogram.of([1.0], n_bins=0)

    def test_mode_and_spread(self):
        h = Histogram.of([1] * 10 + [5] * 2, n_bins=4, low=0, high=8)
        assert h.mode_bin == 0
        assert h.spread_mass(0.5) == 1
        assert h.spread_mass(0.1) == 2

    def test_text_histogram_lines(self):
        h = Histogram.of([1, 2, 3, 4], n_bins=4)
        lines = text_histogram(h, width=10)
        assert len(lines) == 4
        assert all("|" in line for line in lines)

    @given(st.lists(st.floats(-100, 100), min_size=1, max_size=200),
           st.integers(1, 30))
    @settings(max_examples=100)
    def test_counts_conserved(self, values, bins):
        h = Histogram.of(values, n_bins=bins)
        assert h.n == len(values)


class TestWriterTimeline:
    def make(self, durations):
        timings = [
            WriterTiming(rank=i, start=0.0, end=d, nbytes=100.0)
            for i, d in enumerate(durations)
        ]
        return WriterTimeline.of(timings)

    def test_rank_ordering(self):
        timings = [
            WriterTiming(rank=1, start=0, end=2.0, nbytes=1),
            WriterTiming(rank=0, start=0, end=1.0, nbytes=1),
        ]
        t = WriterTimeline.of(timings)
        assert t.durations.tolist() == [1.0, 2.0]

    def test_imbalance(self):
        t = self.make([1.0, 2.0, 4.0])
        assert t.imbalance_factor == pytest.approx(4.0)
        assert t.fastest == 1.0
        assert t.slowest == 4.0

    def test_slow_writer_ranks(self):
        t = self.make([1.0, 1.0, 1.0, 5.0])
        assert t.slow_writer_ranks(factor=2.0) == [3]

    def test_n_writers(self):
        assert self.make([1, 2, 3]).n_writers == 3
