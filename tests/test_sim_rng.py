"""Unit tests for named RNG streams."""

import numpy as np
import pytest

from repro.sim import RngRegistry


class TestRngRegistry:
    def test_same_name_same_stream_object(self):
        r = RngRegistry(seed=1)
        assert r.get("a") is r.get("a")

    def test_different_names_independent(self):
        r = RngRegistry(seed=1)
        a = r.get("a").random(100)
        b = r.get("b").random(100)
        assert not np.allclose(a, b)

    def test_reproducible_across_registries(self):
        x = RngRegistry(seed=42).get("ost.noise").random(10)
        y = RngRegistry(seed=42).get("ost.noise").random(10)
        assert np.array_equal(x, y)

    def test_seed_changes_stream(self):
        x = RngRegistry(seed=1).get("s").random(10)
        y = RngRegistry(seed=2).get("s").random(10)
        assert not np.array_equal(x, y)

    def test_fork_is_deterministic(self):
        a = RngRegistry(seed=5).fork("sample.3").get("x").random(5)
        b = RngRegistry(seed=5).fork("sample.3").get("x").random(5)
        assert np.array_equal(a, b)

    def test_fork_differs_from_parent(self):
        r = RngRegistry(seed=5)
        a = r.get("x").random(5)
        b = r.fork("sample.0").get("x").random(5)
        assert not np.array_equal(a, b)

    def test_non_int_seed_rejected(self):
        with pytest.raises(TypeError):
            RngRegistry(seed="abc")

    def test_contains(self):
        r = RngRegistry(seed=0)
        assert "z" not in r
        r.get("z")
        assert "z" in r

    def test_insertion_order_does_not_matter(self):
        r1 = RngRegistry(seed=9)
        r1.get("first")
        v1 = r1.get("second").random(4)
        r2 = RngRegistry(seed=9)
        v2 = r2.get("second").random(4)
        assert np.array_equal(v1, v2)
