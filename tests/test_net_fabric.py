"""Unit tests for the max-min fair flow network."""

import numpy as np
import pytest

from repro.sim import Environment
from repro.net import FlowNetwork, UniformSinkPool
from repro.net.fabric import max_min_fair_rates


class TestMaxMinAllocation:
    def test_single_flow_gets_bottleneck(self):
        rates = max_min_fair_rates(
            np.array([0]), np.array([0]), np.array([100.0]), np.array([40.0])
        )
        assert rates[0] == pytest.approx(40.0)

    def test_equal_split_on_shared_sink(self):
        rates = max_min_fair_rates(
            np.array([0, 1]),
            np.array([0, 0]),
            np.array([100.0, 100.0]),
            np.array([60.0]),
        )
        assert np.allclose(rates, [30.0, 30.0])

    def test_max_min_not_just_equal_share(self):
        # Flows: A on (src0 -> dst0), B on (src0 -> dst1), C on (src1 -> dst1)
        # src0 cap 10, dst1 cap 4, rest huge. Max-min: B and C split dst1
        # at 2 each; A then takes src0's leftover 8.
        rates = max_min_fair_rates(
            np.array([0, 0, 1]),
            np.array([0, 1, 1]),
            np.array([10.0, 100.0]),
            np.array([100.0, 4.0]),
        )
        assert rates[1] == pytest.approx(2.0)
        assert rates[2] == pytest.approx(2.0)
        assert rates[0] == pytest.approx(8.0)

    def test_flow_cap_respected(self):
        rates = max_min_fair_rates(
            np.array([0, 1]),
            np.array([0, 0]),
            np.array([100.0, 100.0]),
            np.array([60.0]),
            flow_cap=np.array([10.0, np.inf]),
        )
        assert rates[0] == pytest.approx(10.0)
        assert rates[1] == pytest.approx(50.0)

    def test_no_flows(self):
        rates = max_min_fair_rates(
            np.zeros(0, dtype=int), np.zeros(0, dtype=int),
            np.array([1.0]), np.array([1.0]),
        )
        assert rates.size == 0

    def test_conservation(self):
        """Allocated inflow never exceeds any capacity."""
        rng = np.random.default_rng(3)
        for _ in range(20):
            f = rng.integers(1, 40)
            s, d = rng.integers(2, 6), rng.integers(2, 6)
            src = rng.integers(0, s, f)
            dst = rng.integers(0, d, f)
            cs = rng.uniform(1, 100, s)
            cd = rng.uniform(1, 100, d)
            rates = max_min_fair_rates(src, dst, cs, cd)
            per_src = np.bincount(src, weights=rates, minlength=s)
            per_dst = np.bincount(dst, weights=rates, minlength=d)
            assert (per_src <= cs * (1 + 1e-9)).all()
            assert (per_dst <= cd * (1 + 1e-9)).all()

    def test_work_conserving(self):
        """Every flow is blocked by at least one saturated constraint."""
        rng = np.random.default_rng(7)
        f, s, d = 30, 4, 4
        src = rng.integers(0, s, f)
        dst = rng.integers(0, d, f)
        cs = rng.uniform(10, 50, s)
        cd = rng.uniform(10, 50, d)
        rates = max_min_fair_rates(src, dst, cs, cd)
        per_src = np.bincount(src, weights=rates, minlength=s)
        per_dst = np.bincount(dst, weights=rates, minlength=d)
        saturated_s = per_src >= cs * (1 - 1e-6)
        saturated_d = per_dst >= cd * (1 - 1e-6)
        assert (saturated_s[src] | saturated_d[dst]).all()


def _run_flow(env, net, source, sink, nbytes, out, key):
    stats = yield net.start_flow(source, sink, nbytes)
    out[key] = stats


class TestFlowNetwork:
    def make(self, n_src=2, src_cap=100.0, n_sink=2, sink_cap=50.0, **kw):
        env = Environment()
        pool = UniformSinkPool(n_sink, sink_cap)
        net = FlowNetwork(env, np.full(n_src, src_cap), pool, **kw)
        return env, net

    def test_single_flow_duration(self):
        env, net = self.make()
        out = {}
        env.process(_run_flow(env, net, 0, 0, 500.0, out, "f"))
        env.run()
        # bottleneck 50 B/s, 500 B -> 10 s
        assert out["f"].duration == pytest.approx(10.0)
        assert env.now == pytest.approx(10.0)

    def test_two_flows_share_then_speed_up(self):
        env, net = self.make(n_sink=1)
        out = {}
        env.process(_run_flow(env, net, 0, 0, 250.0, out, "short"))
        env.process(_run_flow(env, net, 1, 0, 500.0, out, "long"))
        env.run()
        # share 25 each; short finishes at t=10; long has 250 left,
        # then runs at 50 -> +5 s -> t=15.
        assert out["short"].end_time == pytest.approx(10.0)
        assert out["long"].end_time == pytest.approx(15.0)

    def test_flow_arrival_slows_existing(self):
        env, net = self.make(n_sink=1)
        out = {}
        env.process(_run_flow(env, net, 0, 0, 500.0, out, "first"))

        def late(env):
            yield env.timeout(2.0)
            yield from _run_flow(env, net, 1, 0, 500.0, out, "second")

        env.process(late(env))
        env.run()
        # first: 100 B at 50 B/s by t=2, then 400 B at 25 -> t=18.
        assert out["first"].end_time == pytest.approx(18.0)
        # second: 400 B at 25 by t=18 -> 100 left at 50 -> t=20.
        assert out["second"].end_time == pytest.approx(20.0)

    def test_source_nic_bottleneck(self):
        env, net = self.make(n_src=1, src_cap=30.0, n_sink=2, sink_cap=100.0)
        out = {}
        env.process(_run_flow(env, net, 0, 0, 150.0, out, "a"))
        env.process(_run_flow(env, net, 0, 1, 150.0, out, "b"))
        env.run()
        # NIC 30 shared -> 15 each -> both finish at t=10.
        assert out["a"].end_time == pytest.approx(10.0)
        assert out["b"].end_time == pytest.approx(10.0)

    def test_default_flow_cap(self):
        env, net = self.make(n_sink=1, sink_cap=100.0, default_flow_cap=10.0)
        out = {}
        env.process(_run_flow(env, net, 0, 0, 100.0, out, "f"))
        env.run()
        assert out["f"].duration == pytest.approx(10.0)

    def test_zero_byte_flow_completes_instantly(self):
        env, net = self.make()
        out = {}
        env.process(_run_flow(env, net, 0, 0, 0.0, out, "f"))
        env.run()
        assert out["f"].duration == 0.0

    def test_cancel_flow(self):
        env, net = self.make(n_sink=1)
        from repro.sim import EventAborted

        results = {}

        def canceller(env):
            ev = net.start_flow(0, 0, 1000.0)
            fid = ev_fid[0]
            yield env.timeout(2.0)
            left = net.cancel_flow(fid)
            results["left"] = left
            try:
                yield ev
            except EventAborted:
                results["aborted"] = True

        ev_fid = [0]  # the first flow id is 0
        env.process(canceller(env))
        env.run()
        assert results["left"] == pytest.approx(1000.0 - 50.0 * 2.0)
        assert results.get("aborted")

    def test_cancel_unknown_flow_raises(self):
        env, net = self.make()
        with pytest.raises(KeyError):
            net.cancel_flow(999)

    def test_bad_endpoints_rejected(self):
        env, net = self.make()
        with pytest.raises(IndexError):
            net.start_flow(99, 0, 10.0)
        with pytest.raises(IndexError):
            net.start_flow(0, 99, 10.0)
        with pytest.raises(ValueError):
            net.start_flow(0, 0, -1.0)

    def test_byte_conservation(self):
        env, net = self.make(n_src=4, n_sink=3)
        out = {}
        rng = np.random.default_rng(0)
        total = 0.0
        for i in range(20):
            nb = float(rng.uniform(10, 500))
            total += nb
            env.process(
                _run_flow(env, net, int(rng.integers(0, 4)),
                          int(rng.integers(0, 3)), nb, out, i)
            )
        env.run()
        assert len(out) == 20
        assert net.total_bytes_delivered == pytest.approx(total, rel=1e-6)

    def test_slot_recycling_under_churn(self):
        env, net = self.make(n_sink=1, sink_cap=1000.0)
        out = {}

        def churn(env):
            for i in range(300):
                yield from _run_flow(env, net, 0, 0, 10.0, out, i)

        env.process(churn(env))
        env.run()
        assert len(out) == 300
        assert net.active_flow_count == 0

    def test_many_concurrent_flows_fair(self):
        env, net = self.make(n_src=8, src_cap=1e9, n_sink=1, sink_cap=80.0)
        out = {}
        for i in range(8):
            env.process(_run_flow(env, net, i, 0, 100.0, out, i))
        env.run()
        ends = {s.end_time for s in out.values()}
        assert len(ends) == 1  # perfectly fair -> simultaneous finish
        assert ends.pop() == pytest.approx(10.0)

    def test_stream_counts_snapshot(self):
        env, net = self.make(n_sink=2)
        env.process(_run_flow(env, net, 0, 0, 500.0, {}, "a"))
        env.process(_run_flow(env, net, 1, 1, 500.0, {}, "b"))
        env.run(until=1.0)
        counts = net.sink_stream_counts()
        assert counts.tolist() == [1, 1]
        inflow = net.sink_inflow()
        assert inflow.sum() == pytest.approx(100.0)
