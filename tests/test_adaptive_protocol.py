"""Protocol-level tests of the adaptive transport (Algorithms 1-3).

These go beyond the black-box transport tests: they verify the message
protocol's invariants — index completeness under steering, offset
exactness, termination under pathological load patterns, and the
coordinator's state machine under races.
"""

import numpy as np
import pytest

from repro.apps import AppKernel, Variable
from repro.core.transports import AdaptiveTransport
from repro.machines import jaguar
from repro.units import MB


def app(mb=2.0, n_vars=2):
    per_var = int(mb * MB / 8 / n_vars)
    return AppKernel(
        "p",
        [Variable(f"v{i}", shape=(per_var,)) for i in range(n_vars)],
    )


def run_with_slow(n_ranks, n_osts, slow_osts, slow_mult=0.05, seed=0,
                  **opts):
    m = jaguar(n_osts=n_osts).build(n_ranks=n_ranks, seed=seed)
    if slow_osts:
        m.pool.set_load_multiplier(slow_mult, osts=np.array(slow_osts))
    res = AdaptiveTransport(**opts).run(m, app(), output_name="p")
    return m, res


class TestOffsetsAndIndex:
    def test_offsets_exact_under_heavy_steering(self):
        """Steered writes must land back-to-back after the target
        file's own data — no gaps, no overlaps — even when many
        writers migrate."""
        m, res = run_with_slow(48, 4, [0, 1])
        assert res.n_adaptive_writes > 0
        for path in res.files:
            if "index" in path:
                continue
            f = m.fs.lookup(path)
            data_writes = sorted(
                (w.offset, w.nbytes) for w in f.writes
                if w.nbytes == app().per_process_bytes
            )
            expected = 0.0
            for offset, nbytes in data_writes:
                assert offset == pytest.approx(expected)
                expected += nbytes

    def test_index_entries_match_write_records(self):
        """Every index entry must point at a real extent in its file."""
        m, res = run_with_slow(32, 4, [0])
        for path in res.index.files:
            f = m.fs.lookup(path)
            extents = {
                (w.offset, w.nbytes): w.writer for w in f.writes
            }
            # group entries by writer, verify containment
            for var_hits in [res.index.lookup(v) for v in
                             res.index.variables]:
                for file_path, e in var_hits:
                    if file_path != path:
                        continue
                    holder = [
                        (o, n) for (o, n) in extents
                        if o <= e.offset and e.offset + e.nbytes
                        <= o + n + 1e-6
                    ]
                    assert holder, (
                        f"{e.var} of writer {e.writer} at "
                        f"{e.offset} not inside any extent of {path}"
                    )

    def test_steered_writers_index_in_target_file(self):
        """A steered writer's index entries live in the file it
        actually wrote, not its home group's file."""
        m, res = run_with_slow(48, 4, [0])
        steered = [w for w in res.per_writer if w.adaptive]
        assert steered
        for w in steered:
            hits = res.index.lookup("v0", writer=w.rank)
            assert len(hits) == 1
            path, entry = hits[0]
            f = m.fs.lookup(path)
            assert f.layout.osts[0] != 0 or w.target_group == 0


class TestTermination:
    def test_all_osts_slow(self):
        """Uniform slowness leaves nothing to steer toward; the
        protocol must still terminate with a complete index."""
        m, res = run_with_slow(16, 4, [0, 1, 2, 3], slow_mult=0.2)
        assert res.index.n_blocks == 32

    def test_single_group(self):
        """Degenerate case: one group, coordinator == the only SC."""
        m, res = run_with_slow(8, 1, [])
        assert res.extra["n_groups"] == 1.0
        assert res.n_adaptive_writes == 0
        assert res.index.n_blocks == 16

    def test_one_writer_per_group(self):
        """Groups of size one: every SC is its own only writer."""
        m, res = run_with_slow(4, 4, [0])
        assert res.index.n_blocks == 8

    def test_extreme_imbalance_terminates(self):
        m, res = run_with_slow(64, 8, [0], slow_mult=0.01, seed=3)
        assert res.index.n_blocks == 128
        assert res.n_adaptive_writes > 0

    def test_busy_bounce_accounting(self):
        """WRITERS_BUSY bounces are counted and bounded: at most one
        outstanding offer per free target at a time."""
        m, res = run_with_slow(32, 8, [7], seed=5)
        bounces = res.extra["busy_bounces"]
        assert bounces >= 0
        # Each bounce is one failed offer; offers never exceed
        # (groups) per completion event, so the total stays small.
        assert bounces < 8 * 32


class TestSteeringPolicy:
    def test_no_writes_to_foreign_target_before_it_completes(self):
        """A steered write may only target a group whose own writers
        have all finished (the coordinator learns final offsets from
        ScComplete)."""
        m, res = run_with_slow(48, 4, [0], seed=2)
        # Group completion time = when its last non-adaptive writer
        # to that target finished.
        own_complete = {}
        for w in res.per_writer:
            if not w.adaptive:
                own_complete[w.target_group] = max(
                    own_complete.get(w.target_group, 0.0), w.end
                )
        for w in res.per_writer:
            if w.adaptive:
                assert w.start >= own_complete[w.target_group] - 1e-9, (
                    f"steered write into group {w.target_group} began "
                    f"at {w.start}, before the group completed at "
                    f"{own_complete[w.target_group]}"
                )

    def test_one_steered_write_at_a_time_per_target(self):
        m, res = run_with_slow(64, 4, [0, 1], seed=4)
        by_target = {}
        for w in res.per_writer:
            if w.adaptive:
                by_target.setdefault(w.target_group, []).append(
                    (w.start, w.end)
                )
        for spans in by_target.values():
            spans.sort()
            for (s0, e0), (s1, _e1) in zip(spans, spans[1:]):
                assert s1 >= e0 - 1e-9

    def test_steering_spreads_over_writing_groups(self):
        """'Adaptive writing requests are spread evenly among the sub
        coordinators': with several equally-busy groups and one fast
        target, the steered writers should come from more than one
        source group."""
        m, res = run_with_slow(96, 8, [0, 1, 2, 3], slow_mult=0.15,
                               seed=6)
        sources = set()
        group_of = {}
        gm_size = 96 // 8
        for w in res.per_writer:
            if w.adaptive:
                sources.add(w.rank // gm_size)
        if len([w for w in res.per_writer if w.adaptive]) >= 3:
            assert len(sources) >= 2

    def test_message_totals_linear_in_writers(self):
        msgs = {}
        for n in (16, 64):
            m, res = run_with_slow(n, 4, [], seed=1)
            msgs[n] = res.messages_sent
        assert msgs[64] < msgs[16] * 4 * 1.5  # Theta(writers)
