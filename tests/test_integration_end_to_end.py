"""End-to-end integration scenarios spanning multiple subsystems."""

import numpy as np
import pytest

from repro.apps import pixie3d, s3d, xgc1
from repro.core import Adios
from repro.core.bp import BpReader
from repro.interference import (
    BackgroundWriterJob,
    install_production_noise,
)
from repro.machines import bluegene_p, franklin, jaguar, xtp


class TestMultiStepCampaign:
    def test_repeated_outputs_share_one_simulation(self):
        """Several output steps against one live machine: time always
        advances, namespaces never collide, bytes accumulate."""
        m = jaguar(n_osts=8).build(n_ranks=32, seed=0)
        install_production_noise(m, live=True)
        io = Adios(m, method="adaptive")
        last_t = -1.0
        total = 0.0
        for step in range(3):
            res = io.write_output(pixie3d("small"))
            assert m.env.now > last_t
            last_t = m.env.now
            total += res.total_bytes
        assert m.fs.total_bytes_absorbed() >= total * 0.999
        # Three steps x (8 sub-files + index) all present.
        assert len(m.fs.listdir()) == 3 * 9

    def test_write_then_read_back_same_machine(self):
        m = jaguar(n_osts=8).build(n_ranks=16, seed=1)
        io = Adios(m, method="adaptive")
        res = io.write_output(s3d(grid=16, n_species=2))
        reader = BpReader(m.fs, res.index)
        proc = m.env.process(reader.read_variable(node=0, var="temp"))
        nbytes, seconds = m.env.run(until=proc)
        assert nbytes == pytest.approx(16 * 16**3 * 8)
        assert seconds > 0

    def test_mixed_transports_same_machine(self):
        """An MPI-IO step and an adaptive step can interleave on one
        machine (different output sets)."""
        m = jaguar(n_osts=8).build(n_ranks=16, seed=2)
        r1 = Adios(m, method="mpiio").write_output(xgc1(), name="a")
        r2 = Adios(m, method="adaptive").write_output(xgc1(), name="b")
        assert r1.total_bytes == r2.total_bytes
        assert m.fs.exists("/a.bp")
        assert m.fs.exists("/b.bp.dir/0000.bp")


class TestInterferenceIntegration:
    def test_background_job_slows_the_application(self):
        times = {}
        for label, with_job in (("quiet", False), ("noisy", True)):
            m = xtp(n_blades=8).build(
                n_ranks=32, seed=3, extra_service_nodes=2
            )
            if with_job:
                BackgroundWriterJob(
                    m, n_osts=4, writers_per_ost=3, write_size=256e6
                ).start()
            res = Adios(m, method="mpiio").write_output(
                pixie3d("large"), name="out"
            )
            times[label] = res.reported_time
        assert times["noisy"] > times["quiet"] * 1.1

    def test_adaptive_mitigates_background_job(self):
        times = {}
        for method in ("mpiio", "adaptive"):
            per = {}
            for label, with_job in (("quiet", False), ("noisy", True)):
                m = jaguar(n_osts=16).build(
                    n_ranks=64, seed=4, extra_service_nodes=2
                )
                m.fs.max_stripe_count = 4
                if with_job:
                    BackgroundWriterJob(
                        m, n_osts=2, writers_per_ost=3,
                        write_size=512e6,
                    ).start()
                res = Adios(m, method=method).write_output(
                    pixie3d("large"), name="out"
                )
                per[label] = res.reported_time
            times[method] = per
        # The headline property: adaptive stays decisively faster
        # under interference ...
        assert times["adaptive"]["noisy"] < times["mpiio"]["noisy"] / 1.5
        # ... and the absolute seconds the interference costs it are
        # no worse than what it costs the baseline (steering absorbs
        # part of the hit; the baseline eats all of it).
        hit_adaptive = times["adaptive"]["noisy"] - times["adaptive"]["quiet"]
        hit_mpiio = times["mpiio"]["noisy"] - times["mpiio"]["quiet"]
        assert hit_adaptive <= hit_mpiio * 1.05


class TestCrossMachineSanity:
    @pytest.mark.parametrize(
        "spec_factory,n_ranks",
        [
            (lambda: jaguar(n_osts=8), 16),
            (lambda: franklin(n_osts=8), 16),
            (lambda: xtp(n_blades=8), 16),
            (lambda: bluegene_p(n_nsd_servers=8), 16),
        ],
        ids=["jaguar", "franklin", "xtp", "bluegene_p"],
    )
    def test_adaptive_runs_on_every_machine_model(self, spec_factory,
                                                  n_ranks):
        m = spec_factory().build(n_ranks=n_ranks, seed=5)
        res = Adios(m, method="adaptive").write_output(
            pixie3d("small"), name="out"
        )
        assert res.index is not None
        assert res.total_bytes > 0
        assert res.reported_time > 0

    def test_relative_peak_bandwidth_ordering(self):
        """Aggregate quiet-system capability must follow machine size:
        Jaguar (672 x 180 MB/s) >> XTP (40 x 220 MB/s)."""
        results = {}
        for name, spec, n in (
            ("jaguar", jaguar(n_osts=64), 256),
            ("xtp", xtp(n_blades=8), 96),
        ):
            m = spec.build(n_ranks=n, seed=6)
            res = Adios(m, method="adaptive").write_output(
                pixie3d("large"), name="out"
            )
            results[name] = res.aggregate_bandwidth
        assert results["jaguar"] > results["xtp"]
