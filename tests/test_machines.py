"""Unit tests for machine specs and build."""

import pytest

from repro.errors import ConfigurationError
from repro.machines import franklin, jaguar, xtp
from repro.units import MB


class TestSpecs:
    def test_jaguar_paper_facts(self):
        spec = jaguar()
        assert spec.n_osts == 672
        assert spec.max_stripe_count == 160
        assert spec.cores_per_node == 12
        assert spec.max_cores == 224_160
        assert spec.ost_config.drain_peak == pytest.approx(180 * MB)

    def test_franklin_paper_facts(self):
        spec = franklin()
        assert spec.n_osts == 96
        assert spec.max_cores == 38_128

    def test_xtp_paper_facts(self):
        spec = xtp()
        assert spec.n_osts == 40
        assert spec.max_cores == 1_920
        # PanFS has no 160-target cap; a file can span all blades.
        assert spec.max_stripe_count == 40

    def test_xtp_flat_interference(self):
        """XTP's curve must lose <5% from ~13 to ~26 streams/blade —
        the paper's 512->1024 writer observation."""
        spec = xtp()
        curve = spec.ost_config.drain_curve
        drop = 1 - curve.at(25.6) / curve.at(12.8)
        assert 0 <= drop < 0.05

    def test_jaguar_steep_interference(self):
        spec = jaguar()
        curve = spec.ost_config.drain_curve
        # 16 -> 32 streams per OST must lose roughly 16-28% aggregate.
        drop = 1 - curve.at(32) / curve.at(16)
        assert 0.10 < drop < 0.35

    def test_with_overrides(self):
        small = jaguar().with_overrides(max_stripe_count=8)
        assert small.max_stripe_count == 8
        assert jaguar().max_stripe_count == 160


class TestBuild:
    def test_build_produces_live_machine(self):
        m = jaguar(n_osts=8).build(n_ranks=24, seed=1)
        assert m.n_ranks == 24
        assert m.n_osts == 8
        assert m.topology.n_nodes == 2
        assert m.fs.n_osts == 8
        assert m.node_of(13) == 1

    def test_build_rejects_oversubscription(self):
        with pytest.raises(ConfigurationError):
            xtp().build(n_ranks=10_000)

    def test_build_rejects_zero_ranks(self):
        with pytest.raises(ConfigurationError):
            jaguar().build(n_ranks=0)

    def test_builds_are_independent(self):
        a = jaguar(n_osts=4).build(n_ranks=4, seed=1)
        b = jaguar(n_osts=4).build(n_ranks=4, seed=1)
        assert a.env is not b.env
        assert a.pool is not b.pool

    def test_seeded_rngs_reproducible(self):
        a = jaguar(n_osts=4).build(n_ranks=4, seed=9)
        b = jaguar(n_osts=4).build(n_ranks=4, seed=9)
        assert a.rngs.get("x").random(3).tolist() == \
            b.rngs.get("x").random(3).tolist()
