"""Unit + property tests for stripe layout."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lustre.layout import StripeLayout


class TestStripeLayoutBasics:
    def test_single_ost_all_bytes(self):
        lay = StripeLayout((7,), stripe_size=100)
        assert lay.spans(0, 1000) == {7: 1000}

    def test_round_robin(self):
        lay = StripeLayout((0, 1, 2), stripe_size=10)
        spans = lay.spans(0, 30)
        assert spans == {0: 10, 1: 10, 2: 10}

    def test_offset_starts_mid_stripe(self):
        lay = StripeLayout((0, 1), stripe_size=10)
        spans = lay.spans(5, 10)
        assert spans == {0: 5, 1: 5}

    def test_ost_of_offset(self):
        lay = StripeLayout((4, 9), stripe_size=10)
        assert lay.ost_of_offset(0) == 4
        assert lay.ost_of_offset(10) == 9
        assert lay.ost_of_offset(25) == 4

    def test_zero_length_write(self):
        lay = StripeLayout((0, 1), stripe_size=10)
        assert lay.spans(5, 0) == {}

    def test_span_list_sorted(self):
        lay = StripeLayout((5, 2, 8), stripe_size=10)
        lst = lay.span_list(0, 30)
        assert [o for o, _ in lst] == [2, 5, 8]

    def test_validation(self):
        with pytest.raises(ValueError):
            StripeLayout(())
        with pytest.raises(ValueError):
            StripeLayout((1, 1))
        with pytest.raises(ValueError):
            StripeLayout((1,), stripe_size=0)
        lay = StripeLayout((0,))
        with pytest.raises(ValueError):
            lay.spans(-1, 10)
        with pytest.raises(ValueError):
            lay.ost_of_offset(-1)

    def test_large_write_closed_form_matches_walk(self):
        """The closed-form path must agree with explicit stripe walking."""
        lay = StripeLayout(tuple(range(5)), stripe_size=7)
        offset, nbytes = 3, 7 * 5 * 6 + 11  # many whole rounds + ragged ends
        got = lay.spans(offset, nbytes)

        expected = {}
        pos, rem = offset, nbytes
        while rem > 0:
            idx = int(pos // 7)
            take = min(rem, (idx + 1) * 7 - pos)
            ost = lay.osts[idx % 5]
            expected[ost] = expected.get(ost, 0) + take
            pos += take
            rem -= take
        assert got == expected


@st.composite
def layout_and_range(draw):
    n_osts = draw(st.integers(1, 8))
    osts = tuple(range(100, 100 + n_osts))
    stripe = draw(st.integers(1, 64))
    offset = draw(st.integers(0, 500))
    nbytes = draw(st.integers(0, 5000))
    return StripeLayout(osts, stripe_size=stripe), offset, nbytes


class TestStripeLayoutProperties:
    @given(layout_and_range())
    @settings(max_examples=200)
    def test_spans_conserve_bytes(self, case):
        lay, offset, nbytes = case
        assert sum(lay.spans(offset, nbytes).values()) == pytest.approx(nbytes)

    @given(layout_and_range())
    @settings(max_examples=200)
    def test_spans_only_layout_osts(self, case):
        lay, offset, nbytes = case
        assert set(lay.spans(offset, nbytes)) <= set(lay.osts)

    @given(layout_and_range())
    @settings(max_examples=100)
    def test_closed_form_equals_walk(self, case):
        lay, offset, nbytes = case
        got = lay.spans(offset, nbytes)
        expected = {}
        pos, rem = float(offset), float(nbytes)
        ss = lay.stripe_size
        while rem > 0:
            idx = int(pos // ss)
            take = min(rem, (idx + 1) * ss - pos)
            ost = lay.osts[idx % lay.stripe_count]
            expected[ost] = expected.get(ost, 0.0) + take
            pos += take
            rem -= take
        assert set(got) == set(expected)
        for k in got:
            assert got[k] == pytest.approx(expected[k])

    @given(layout_and_range())
    @settings(max_examples=100)
    def test_adjacent_writes_tile(self, case):
        """spans(a, x) + spans(a+x, y) == spans(a, x+y) per OST."""
        lay, offset, nbytes = case
        split = nbytes // 2
        left = lay.spans(offset, split)
        right = lay.spans(offset + split, nbytes - split)
        combined = {}
        for d in (left, right):
            for k, v in d.items():
                combined[k] = combined.get(k, 0.0) + v
        whole = lay.spans(offset, nbytes)
        assert set(combined) == set(whole)
        for k in whole:
            assert combined[k] == pytest.approx(whole[k])

    def test_even_split_estimate(self):
        lay = StripeLayout((0, 1, 2, 3), stripe_size=10)
        est = lay.bytes_per_ost(100.0)
        assert np.allclose(est, 25.0)
