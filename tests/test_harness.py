"""Tests for the experiment harness (sampling, reporting, figures)."""

import pytest

from repro.harness import (
    Scale,
    format_table,
    render_series,
    run_samples,
    scale_from_env,
)
from repro.harness.experiment import sample_seed


class TestScale:
    def test_parse(self):
        assert Scale.parse("smoke") is Scale.SMOKE
        assert Scale.parse("PAPER") is Scale.PAPER
        assert Scale.parse(Scale.SMALL) is Scale.SMALL
        with pytest.raises(ValueError):
            Scale.parse("huge")

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert scale_from_env() is Scale.PAPER
        monkeypatch.delenv("REPRO_SCALE")
        assert scale_from_env() is Scale.SMALL


class TestSampling:
    def test_run_samples_derives_seeds(self):
        seeds = run_samples(lambda s: s, 3, base_seed=5)
        assert len(seeds) == 3
        assert len(set(seeds)) == 3

    def test_seeds_disjoint_across_bases(self):
        a = {sample_seed(0, i) for i in range(100)}
        b = {sample_seed(1, i) for i in range(100)}
        assert not (a & b)

    def test_zero_samples_rejected(self):
        with pytest.raises(ValueError):
            run_samples(lambda s: s, 0)


class TestReport:
    def test_format_table(self):
        out = format_table(
            ["name", "value"], [("a", 1.5), ("bb", 20)], title="T"
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert "----" in lines[2]
        assert "1.50" in out

    def test_format_table_wrong_width(self):
        with pytest.raises(ValueError):
            format_table(["a"], [(1, 2)])

    def test_render_series(self):
        out = render_series(
            "S", "x", [1, 2], {"y1": [10, 20], "y2": [30, 40]}
        )
        assert "y1" in out and "y2" in out
        assert "40" in out


class TestFigureSmokes:
    """End-to-end smoke runs of each figure module (tiny presets)."""

    def test_fig1(self):
        from repro.harness.figures import fig1

        r = fig1.run("smoke", base_seed=3)
        assert r.render()
        # per-writer bandwidth must decline for every size even at
        # smoke scale.
        for size in r.sizes_mb:
            assert r.per_writer_monotone_decline(size)

    def test_table1_and_fig2(self):
        from repro.harness.figures import fig2

        r = fig2.run("smoke", base_seed=3)
        out = r.render()
        assert "Jaguar" in r.source.render()
        assert "#" in out  # bars rendered
        assert set(r.histograms) == {
            "jaguar", "franklin", "xtp_with_int", "xtp_without_int"
        }

    def test_fig3(self):
        from repro.harness.figures import fig3

        r = fig3.run("smoke", base_seed=3)
        assert r.imbalance_test1 >= 1.0
        assert r.mean_imbalance >= 1.0
        assert "imbalance" in r.render()

    def test_fig6_and_fig7_reuse(self):
        from repro.harness.figures import fig6, fig7

        r6 = fig6.run("smoke", base_seed=3)
        assert r6.render()
        sweep = r6.sweep
        n = sweep.config.proc_counts[-1]
        assert sweep.speedup("base", n) > 0
        # fig7 must reuse precomputed sweeps without re-running.
        r7 = fig7.run(
            "smoke", precomputed={"xgc1": sweep}, cases=("xgc1",)
        )
        assert r7.sweeps["xgc1"] is sweep
        assert "XGC1" in r7.render()

    def test_fig5_single_model(self):
        from repro.harness.figures import fig5

        r = fig5.run("smoke", base_seed=3, models=("large",))
        assert "large" in r.panels
        sweep = r.panels["large"]
        n = sweep.config.proc_counts[-1]
        assert sweep.speedup("base", n) > 0
