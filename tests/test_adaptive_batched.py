"""Batched-cohort vs per-rank-reference equivalence of the adaptive protocol.

The batched protocol (``AdaptiveTransport(batched=True)``, the default)
replaces 8192 per-rank writer processes with one cohort process per
sub-coordinator, coalesces same-instant coordinator traffic into
``CoordBatch`` envelopes, and drives each group's data movement as one
aggregate fabric flow.  None of that is allowed to change *simulated
physics*: this suite runs every cell twice — batched and with
``batched=False`` (the per-rank reference implementation, kept alive
exactly for this purpose) — on identically-seeded machines and demands
**float-exact** agreement on

* every writer's ``(rank, start, end, nbytes, target_group, adaptive)``,
* the effective steering sequence (each group's plan-plus-steals
  ``WRITE_START`` instant stream, in order, and the announced final
  offsets), and
* the headline scalars: ``reported_time``, ``aggregate_bandwidth``,
  ``n_adaptive_writes``.

What *may* differ is simulation cost and futile control traffic: the
batched runs send fewer protocol messages (that is the point), and
coalescing same-instant bursts can add/remove an offer that is
declined busy within the instant it was made — so ``messages_sent``
is checked for direction, not equality, and busy-declines are not
part of the pinned steering stream.

Faulted runs take the pre-existing ``_run_faulted`` path in both modes
(the ``batched`` flag only selects the fault-free fast path), so their
equivalence is trivially structural — one test pins that, plus the
satellite guarantee that a completed faulted run leaves no live
heartbeat/monitor wake-ups in the calendar.
"""

import numpy as np
import pytest

from repro.apps import AppKernel, Variable
from repro.core.transports import AdaptiveTransport
from repro.faults import FaultEvent, FaultPlan
from repro.machines import jaguar
from repro.telemetry import MetricsRegistry
from repro.trace import Tracer
from repro.units import MB

SEEDS = (0, 1, 2)


def app(mb=2.0, n_vars=2):
    per_var = int(mb * MB / 8 / n_vars)
    return AppKernel(
        "eq",
        [Variable(f"v{i}", shape=(per_var,)) for i in range(n_vars)],
    )


def run_one(batched, n_ranks=48, n_osts=6, slow_osts=(), seed=0,
            tracer=None, metrics=None, faults=None, **opts):
    m = jaguar(n_osts=n_osts).build(
        n_ranks=n_ranks, seed=seed, faults=faults, metrics=metrics
    )
    if tracer is not None:
        m.attach_tracer(tracer)
    if slow_osts:
        m.pool.set_load_multiplier(0.05, osts=np.array(list(slow_osts)))
    res = AdaptiveTransport(batched=batched, **opts).run(
        m, app(), output_name="eq"
    )
    return m, res


def writer_tuples(res):
    return sorted(
        (w.rank, w.start, w.end, w.nbytes, w.target_group, w.adaptive)
        for w in res.per_writer
    )


def effective_steering(tracer):
    """Per-SC ``WRITE_START`` instant streams: the group's announced
    plan followed by every steal it absorbed, in order, with writer /
    target / offset payloads.  This is the steering sequence that
    *determines data placement*.

    Deliberately excluded: ``ADAPTIVE_WRITE_START`` offers and
    ``WRITERS_BUSY`` declines.  Coalescing same-instant coordinator
    traffic into ``CoordBatch`` envelopes can change the interleaving
    of a burst at the coordinator, which may add or remove a *futile*
    offer (one declined busy in the same instant it was made) without
    any effect on who writes what where — the float-exact per-writer
    checks above pin that.
    """
    streams = {}
    for ev in tracer.events:
        if ev.cat != "steer" or ev.name != "WRITE_START":
            continue
        streams.setdefault(ev.tid, []).append(
            tuple(sorted((ev.args or {}).items()))
        )
    return streams


def sc_completes(tracer):
    """Every group's announced final offset (order-free: same-instant
    completions may interleave differently across modes)."""
    return sorted(
        tuple(sorted((ev.args or {}).items()))
        for ev in tracer.events
        if ev.cat == "steer" and ev.name == "SC_COMPLETE"
    )


def assert_equivalent(res_b, res_r):
    assert writer_tuples(res_b) == writer_tuples(res_r)
    assert res_b.reported_time == res_r.reported_time
    assert res_b.aggregate_bandwidth == res_r.aggregate_bandwidth
    assert res_b.n_adaptive_writes == res_r.n_adaptive_writes
    assert sorted(res_b.files) == sorted(res_r.files)


class TestCleanEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_clean_cell_float_exact(self, seed):
        _, res_b = run_one(True, seed=seed)
        _, res_r = run_one(False, seed=seed)
        assert res_b.n_adaptive_writes == 0
        assert_equivalent(res_b, res_r)

    def test_batching_actually_reduces_messages(self):
        _, res_b = run_one(True)
        _, res_r = run_one(False)
        assert res_b.messages_sent < res_r.messages_sent


class TestSteeringEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_interference_cell_float_exact(self, seed):
        """Slow OSTs force adaptive steering; every steered write's
        timing and target must agree bit-for-bit across modes."""
        _, res_b = run_one(True, slow_osts=(0, 1), seed=seed)
        _, res_r = run_one(False, slow_osts=(0, 1), seed=seed)
        assert res_b.n_adaptive_writes > 0  # steering exercised
        assert_equivalent(res_b, res_r)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_steering_sequences_identical(self, seed):
        """Every consummated steering decision matches: each group's
        plan-plus-steals ``WRITE_START`` stream is identical in
        content and order, and the groups announce the same final
        offsets."""
        tr_b, tr_r = Tracer(), Tracer()
        _, res_b = run_one(True, slow_osts=(0, 1), seed=seed,
                           tracer=tr_b)
        _, res_r = run_one(False, slow_osts=(0, 1), seed=seed,
                           tracer=tr_r)
        assert res_b.n_adaptive_writes > 0
        assert effective_steering(tr_b) == effective_steering(tr_r)
        assert sc_completes(tr_b) == sc_completes(tr_r)

    def test_multi_lane_groups_equivalent(self):
        _, res_b = run_one(True, slow_osts=(0,), writers_per_target=2)
        _, res_r = run_one(False, slow_osts=(0,), writers_per_target=2)
        assert_equivalent(res_b, res_r)


class TestTelemetryBitIdentity:
    """Observation must not perturb: metrics and tracing attached to a
    batched run reproduce the bare run's floats exactly."""

    def test_metrics_on_off(self):
        _, bare = run_one(True, slow_osts=(0, 1))
        _, observed = run_one(True, slow_osts=(0, 1),
                              metrics=MetricsRegistry())
        assert_equivalent(bare, observed)

    def test_tracer_on_off(self):
        _, bare = run_one(True, slow_osts=(0, 1))
        _, traced = run_one(True, slow_osts=(0, 1), tracer=Tracer())
        assert_equivalent(bare, traced)


def degrade_plan():
    # A mid-write brownout on one target: enough to exercise the
    # faulted path without relocation nondeterminism.
    return FaultPlan(
        events=(
            FaultEvent(time=0.005, kind="ost_brownout", target=1,
                       factor=0.3),
        )
    )


class TestFaultedPath:
    def test_faulted_runs_identical_across_modes(self):
        """With a fault plan both modes route through ``_run_faulted``
        — the batched fast path only covers fault-free runs — so the
        results are structurally the same code's output."""
        _, res_b = run_one(True, faults=degrade_plan())
        _, res_r = run_one(False, faults=degrade_plan())
        assert_equivalent(res_b, res_r)

    def test_no_live_wakeups_after_faulted_run(self):
        """A completed faulted run must cancel the heartbeat senders'
        and monitor's parked timeouts — a stale wakeup per group
        would otherwise linger in the calendar (O(groups) tombstones
        firing into dead closures)."""
        m, res = run_one(True, faults=degrade_plan())
        assert len(res.per_writer) == 48
        live = [
            entry[3] for entry in m.env._queue
            if not entry[3].cancelled and not entry[3].processed
        ]
        # Permissible O(1) survivors: the run-timeout backstop and the
        # writer-release goodbye grace (both one-shot ``any_of``
        # losers).  Nothing that scales with group count may remain —
        # uncancelled heartbeat/monitor park-timeouts would leave
        # n_groups + 1 >= 7 live wakeups here.
        assert len(live) <= 3
