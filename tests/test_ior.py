"""Tests for the IOR workload runner."""

import pytest

from repro.ior import IorConfig, run_ior
from repro.ior.runner import ior_app
from repro.machines import jaguar, xtp
from repro.units import MB


class TestIorConfig:
    def test_defaults(self):
        cfg = IorConfig(n_writers=8)
        assert cfg.api == "posix"
        assert cfg.total_bytes == 8 * 128 * MB

    def test_validation(self):
        with pytest.raises(ValueError):
            IorConfig(n_writers=0)
        with pytest.raises(ValueError):
            IorConfig(n_writers=1, block_size=0)
        with pytest.raises(ValueError):
            IorConfig(n_writers=1, api="hdf5")

    def test_ior_app_size(self):
        app = ior_app(16 * MB)
        assert app.per_process_bytes == pytest.approx(16 * MB)


class TestRunIor:
    def test_posix_mode(self):
        m = jaguar(n_osts=4).build(n_ranks=8, seed=0)
        res = run_ior(
            m, IorConfig(n_writers=8, block_size=4 * MB, n_osts_used=4)
        )
        assert res.transport == "posix"
        assert res.n_writers == 8
        assert len(res.files) == 8  # one file per writer
        assert res.total_bytes == pytest.approx(8 * 4 * MB)

    def test_mpiio_mode(self):
        m = jaguar(n_osts=4).build(n_ranks=8, seed=0)
        res = run_ior(
            m,
            IorConfig(n_writers=8, block_size=4 * MB, api="mpiio",
                      n_osts_used=4),
        )
        assert res.transport == "mpiio"
        assert len(res.files) == 1  # single shared file

    def test_rank_mismatch_rejected(self):
        m = jaguar(n_osts=4).build(n_ranks=4, seed=0)
        with pytest.raises(ValueError):
            run_ior(m, IorConfig(n_writers=8))

    def test_flush_option(self):
        # Enough data per OST to overflow the stable cache region, so
        # the flush genuinely has to wait for the disks.
        m = jaguar(n_osts=4).build(n_ranks=4, seed=0)
        res = run_ior(
            m,
            IorConfig(n_writers=4, block_size=256 * MB, n_osts_used=1,
                      include_flush=True),
        )
        assert res.flush_time > 0

    def test_panfs_flatness(self):
        """XTP shows <5% per-writer aggregate loss doubling writers —
        the paper's PanFS observation."""
        bws = {}
        for n in (480, 960):
            m = xtp().build(n_ranks=n, seed=0)
            res = run_ior(
                m,
                IorConfig(n_writers=n, block_size=64 * MB,
                          n_osts_used=40),
            )
            bws[n] = res.write_bandwidth
        drop = 1 - bws[960] / bws[480]
        assert drop < 0.10, f"PanFS degraded {drop:.0%} on doubling"

    def test_jaguar_steeper_than_panfs(self):
        """Same doubling on Jaguar-like Lustre loses clearly more."""
        def degradation(spec, n_osts):
            bws = {}
            for mult in (12, 24):
                n = n_osts * mult
                m = spec.build(n_ranks=n, seed=0)
                res = run_ior(
                    m, IorConfig(n_writers=n, block_size=64 * MB,
                                 n_osts_used=n_osts)
                )
                bws[mult] = res.write_bandwidth
            return 1 - bws[24] / bws[12]

        lustre_drop = degradation(jaguar(n_osts=40), 40)
        panfs_drop = degradation(xtp(), 40)
        assert lustre_drop > panfs_drop + 0.05
