"""Randomized equivalence of incremental vs batch reallocation.

The incremental reallocator (:meth:`FlowNetwork._incremental_rates`)
must be *bit-identical* to the batch allocator — the repo's
parallel==serial determinism contract rides on every settle producing
the same floats no matter which path computed them.  These tests drive
a live network through thousands of randomized mutations (flow
arrivals, cancellations, sink fail-stops, capacity brownouts, elapsed
time with completions) and after every single operation recompute the
allocation from scratch with :func:`max_min_fair_rates`, asserting
exact ``==`` agreement — no tolerances anywhere.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import OstFailedError
from repro.net.fabric import (
    FlowNetwork,
    UniformSinkPool,
    _BIG_RATE,
    max_min_fair_rates,
)
from repro.sim.engine import Environment
from repro.sim.events import EventAborted


class MutableCapPool:
    """Sink pool with externally settable per-sink capacities."""

    def __init__(self, caps: np.ndarray):
        self.n_sinks = len(caps)
        self._caps = np.asarray(caps, dtype=np.float64).copy()

    def set_capacity(self, sink: int, cap: float) -> None:
        self._caps[sink] = float(cap)

    def advance(self, dt, inflow, now):
        pass

    def capacities(self, counts, now):
        return self._caps

    def next_transition(self, inflow, counts, now):
        return float("inf")


def _swallow(ev):
    """Park flow events so aborts/failures don't crash the run."""
    def _cb(e):
        if not e.ok:
            assert isinstance(e.value, (EventAborted, OstFailedError))
    ev.add_callback(_cb)


def _assert_alloc_matches_batch(net: FlowNetwork) -> None:
    """Live rates must equal a from-scratch batch allocation, exactly."""
    act = np.nonzero(net._active)[0]
    if act.size == 0:
        assert not net._inflow.any()
        return
    caps = net._last_caps
    assert caps is not None
    expected = max_min_fair_rates(
        net._src[act], net._dst[act], net._cap_src, caps, net._fcap[act],
    )
    got = net._rate[act]
    assert (got == expected).all(), (
        f"incremental/batch divergence: max |delta| = "
        f"{np.abs(got - expected).max()}"
    )
    inflow = np.bincount(
        net._dst[act],
        weights=np.minimum(got, _BIG_RATE),
        minlength=net.n_sinks,
    )
    assert (net._inflow == inflow).all()


def _churn(seed: int, n_ops: int, cap_src_val: float) -> FlowNetwork:
    """Drive a network through n_ops random mutations, checking each."""
    rng = np.random.default_rng(seed)
    n_src, n_sinks = 64, 16
    env = Environment()
    pool = MutableCapPool(np.full(n_sinks, 2e8))
    net = FlowNetwork(env, np.full(n_src, cap_src_val), pool)
    live: list[int] = []

    for _ in range(n_ops):
        op = rng.random()
        if op < 0.45 or not live:
            # Arrival; mixed finite/infinite flow caps, duplicate cap
            # values on purpose (exercise multi-wave waterfills).
            fcap = (
                np.inf
                if rng.random() < 0.3
                else float(rng.choice([5e6, 2e7, 9e7, 4e8]))
            )
            ev, fid = net.start_flow_with_id(
                int(rng.integers(n_src)),
                int(rng.integers(n_sinks)),
                float(rng.uniform(1e6, 1e12)),
                flow_cap=fcap,
            )
            _swallow(ev)
            live.append(fid)
        elif op < 0.70:
            fid = live.pop(int(rng.integers(len(live))))
            net.cancel_flow(fid)
        elif op < 0.80:
            victim = int(rng.integers(n_sinks))
            net.fail_sink(victim)
            live = [f for f in live if f in net._records]
        elif op < 0.93:
            # Brownout / recovery: capacity change at one sink.
            sink = int(rng.integers(n_sinks))
            pool.set_capacity(sink, float(rng.uniform(1e7, 3e8)))
            net.invalidate()
        else:
            # Let time pass so flows complete inside _settle.
            env.run(until=env.now + float(rng.uniform(1e-4, 50.0)))
            live = [f for f in live if f in net._records]
        net.invalidate()
        _assert_alloc_matches_batch(net)
    return net


def test_incremental_matches_batch_exactly():
    """Thousands of random ops; exact equality after every one."""
    net = _churn(seed=7, n_ops=1500, cap_src_val=1.6e9)
    # The point of the test is the fast path: make sure it actually ran.
    assert net.incremental_count > 200
    assert net.realloc_count > net.incremental_count


def test_incremental_matches_batch_under_source_pressure():
    """Tight source NICs force general-allocator fallbacks; the regime
    flips back and forth and every flip must stay exact."""
    net = _churn(seed=11, n_ops=800, cap_src_val=3e7)
    assert net.realloc_count > 0


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_incremental_matches_batch_more_seeds(seed):
    _churn(seed=seed, n_ops=400, cap_src_val=1.6e9)


def test_group_release_coalesces_to_one_settle():
    """N same-instant flow starts settle once, and the result is the
    batch allocation of the full group."""
    env = Environment()
    pool = MutableCapPool(np.full(8, 2e8))
    net = FlowNetwork(env, np.full(32, 1.6e9), pool)

    def release(n):
        for i in range(n):
            _swallow(net.start_flow(i % 32, i % 8, 1e9))
        yield env.timeout(0.0)

    env.process(release(64), name="group")
    env.run(until=1e-6)
    # 64 arrivals, one deferred settle (63 mutations coalesced).
    assert net.coalesced_count >= 63
    assert net.realloc_count == 1
    _assert_alloc_matches_batch(net)


def test_invalidate_is_synchronous_and_folds_deferral():
    env = Environment()
    net = FlowNetwork(env, np.full(4, 1e9), UniformSinkPool(2, 1e8))
    _swallow(net.start_flow(0, 0, 1e9))
    assert net._settle_pending
    net.invalidate()
    assert not net._settle_pending
    rates = net._rate[net._active]
    assert rates.size == 1 and float(rates[0]) == 1e8
    # The deferred entry was cancelled, not left to fire a second
    # settle at the same instant.
    settles = net.settle_count
    env.run(until=1e-9)
    assert net.settle_count == settles


def _twin_churn(seed: int, n_ops: int, tag_tenants: bool) -> list:
    """Replay one op sequence; optionally stamp tenant ids on flows.

    Returns the full rate trajectory so two replays can be compared
    float-for-float.
    """
    rng = np.random.default_rng(seed)
    n_src, n_sinks = 32, 8
    env = Environment()
    pool = MutableCapPool(np.full(n_sinks, 2e8))
    net = FlowNetwork(env, np.full(n_src, 1.6e9), pool)
    live: list[int] = []
    trajectory = []
    for _ in range(n_ops):
        op = rng.random()
        if op < 0.5 or not live:
            # Draw unconditionally so both replays consume the same
            # RNG stream; only the tagged one uses the value.
            draw = int(rng.integers(4))
            tenant = draw if tag_tenants else -1
            ev, fid = net.start_flow_with_id(
                int(rng.integers(n_src)),
                int(rng.integers(n_sinks)),
                float(rng.uniform(1e6, 1e11)),
                tenant=tenant,
            )
            _swallow(ev)
            live.append(fid)
        elif op < 0.75:
            net.cancel_flow(live.pop(int(rng.integers(len(live)))))
        else:
            env.run(until=env.now + float(rng.uniform(1e-4, 5.0)))
            live = [f for f in live if f in net._records]
        net.invalidate()
        act = np.nonzero(net._active)[0]
        trajectory.append((env.now, net._rate[act].tolist()))
    return trajectory


def test_tenant_tagging_is_inert_without_limits():
    """QoS disabled (no ``set_tenant_limits`` call): tenant-stamped
    flows must allocate bit-identically to untagged ones.  This is the
    guard that QoS plumbing costs nothing when the feature is off."""
    tagged = _twin_churn(seed=23, n_ops=600, tag_tenants=True)
    plain = _twin_churn(seed=23, n_ops=600, tag_tenants=False)
    assert tagged == plain
