"""Tests for the split-files transport (paper Section II-3 alternative)."""

import pytest

from repro.apps import AppKernel, Variable
from repro.core.transports import (
    MpiIoTransport,
    SplitFilesTransport,
)
from repro.machines import jaguar
from repro.units import MB


def app(mb=4.0):
    return AppKernel(
        "t", [Variable("x", shape=(int(mb * MB / 8),))]
    )


class TestSplitFiles:
    def test_default_file_count_covers_pool(self):
        # pool 16, cap 4 -> 4 files
        spec = jaguar(n_osts=16).with_overrides(max_stripe_count=4)
        m = spec.build(n_ranks=16, seed=0)
        res = SplitFilesTransport().run(m, app(), output_name="o")
        assert res.extra["n_files"] == 4.0
        assert len(res.files) == 4

    def test_all_targets_reached(self):
        spec = jaguar(n_osts=16).with_overrides(max_stripe_count=4)
        m = spec.build(n_ranks=32, seed=0)
        res = SplitFilesTransport().run(m, app(), output_name="o")
        used = set()
        for path in res.files:
            used.update(m.fs.lookup(path).layout.osts)
        assert len(used) == 16  # the whole pool, vs 4 for one file

    def test_explicit_file_count(self):
        m = jaguar(n_osts=8).build(n_ranks=8, seed=0)
        res = SplitFilesTransport(n_files=2).run(m, app(), output_name="o")
        assert res.extra["n_files"] == 2.0

    def test_index_complete(self):
        m = jaguar(n_osts=8).build(n_ranks=8, seed=0)
        res = SplitFilesTransport().run(m, app(), output_name="o")
        assert res.index.n_blocks == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            SplitFilesTransport(n_files=0)

    def test_beats_capped_single_file_when_drain_bound(self):
        """The paper's rationale: 5 files reach 672 targets, 1 file
        reaches 160."""
        big = app(mb=64.0)
        spec = jaguar(n_osts=16).with_overrides(max_stripe_count=4)
        m1 = spec.build(n_ranks=64, seed=1)
        r_one = MpiIoTransport(build_index=False).run(m1, big,
                                                      output_name="o")
        m2 = spec.build(n_ranks=64, seed=1)
        r_split = SplitFilesTransport(build_index=False).run(
            m2, big, output_name="o"
        )
        assert r_split.aggregate_bandwidth > r_one.aggregate_bandwidth
