"""Unit tests for the environment/run loop and processes."""

import pytest

from repro.sim import Environment, Interrupt, ProcessKilled, SimulationError


@pytest.fixture
def env():
    return Environment()


class TestClock:
    def test_starts_at_initial_time(self):
        assert Environment(initial_time=100.0).now == 100.0

    def test_run_until_time_advances_clock(self, env):
        env.process(iter([]) if False else _ticker(env, 1.0, []))
        env.run(until=10.0)
        assert env.now == 10.0

    def test_run_until_past_rejected(self, env):
        env.run(until=5.0)
        with pytest.raises(ValueError):
            env.run(until=1.0)

    def test_peek_empty_is_inf(self, env):
        assert env.peek() == float("inf")


def _ticker(env, period, log):
    while True:
        yield env.timeout(period)
        log.append(env.now)


class TestProcesses:
    def test_process_return_value(self, env):
        def body(env):
            yield env.timeout(3)
            return "result"

        p = env.process(body(env))
        env.run()
        assert p.value == "result"

    def test_run_until_event(self, env):
        def body(env):
            yield env.timeout(7)
            return 99

        p = env.process(body(env))
        assert env.run(until=p) == 99
        assert env.now == 7.0

    def test_fork_join(self, env):
        def child(env, d):
            yield env.timeout(d)
            return d

        def parent(env):
            a = env.process(child(env, 2))
            b = env.process(child(env, 5))
            va = yield a
            vb = yield b
            return va + vb

        p = env.process(parent(env))
        env.run()
        assert p.value == 7
        assert env.now == 5.0

    def test_yield_non_event_is_error(self, env):
        def bad(env):
            yield 42

        p = env.process(bad(env))
        with pytest.raises(SimulationError):
            env.run()
        assert not p.ok

    def test_unhandled_exception_strict(self, env):
        def bad(env):
            yield env.timeout(1)
            raise RuntimeError("boom")

        env.process(bad(env))
        with pytest.raises(SimulationError) as ei:
            env.run()
        assert "boom" in repr(ei.value.cause)

    def test_unhandled_exception_lenient(self):
        env = Environment(strict=False)

        def bad(env):
            yield env.timeout(1)
            raise RuntimeError("boom")

        p = env.process(bad(env))
        env.run()
        assert p.triggered and not p.ok

    def test_non_generator_rejected(self, env):
        with pytest.raises(TypeError):
            env.process(lambda: None)

    def test_waiting_on_already_fired_event(self, env):
        ev = env.event()
        ev.succeed("early")
        log = []

        def body(env):
            v = yield ev
            log.append(v)

        env.process(body(env))
        env.run()
        assert log == ["early"]


class TestInterrupt:
    def test_interrupt_resumes_with_exception(self, env):
        log = []

        def sleeper(env):
            try:
                yield env.timeout(100)
            except Interrupt as i:
                log.append((env.now, i.cause))

        p = env.process(sleeper(env))

        def interrupter(env):
            yield env.timeout(3)
            p.interrupt("wakeup")

        env.process(interrupter(env))
        env.run()
        assert log == [(3.0, "wakeup")]

    def test_interrupted_process_continues(self, env):
        def sleeper(env):
            try:
                yield env.timeout(100)
            except Interrupt:
                pass
            yield env.timeout(2)
            return env.now

        p = env.process(sleeper(env))

        def interrupter(env):
            yield env.timeout(1)
            p.interrupt()

        env.process(interrupter(env))
        env.run()
        assert p.value == 3.0

    def test_cannot_interrupt_dead_process(self, env):
        def quick(env):
            yield env.timeout(1)

        p = env.process(quick(env))
        env.run()
        with pytest.raises(RuntimeError):
            p.interrupt()

    def test_kill(self, env):
        def sleeper(env):
            yield env.timeout(100)

        p = env.process(sleeper(env))

        def killer(env):
            yield env.timeout(1)
            p.kill("gone")

        env.process(killer(env))
        env.run()
        assert p.triggered and not p.ok
        assert isinstance(p._value, ProcessKilled)


class TestSchedulerDeterminism:
    def test_fifo_among_simultaneous_events(self, env):
        order = []

        def body(env, label):
            yield env.timeout(5)
            order.append(label)

        for label in "abcde":
            env.process(body(env, label))
        env.run()
        assert order == list("abcde")

    def test_schedule_callback(self, env):
        hits = []
        env.schedule_callback(4.0, lambda: hits.append(env.now))
        env.run()
        assert hits == [4.0]


class TestDeadlockDetection:
    def test_run_until_event_that_never_fires_raises(self, env):
        never = env.event()

        def waiter(env):
            yield never

        env.process(waiter(env))
        from repro.sim import Deadlock

        with pytest.raises(Deadlock) as excinfo:
            env.run(until=never)
        assert excinfo.value.processes
        assert "calendar drained" in str(excinfo.value)

    def test_unfinished_processes_lists_parked_waiters(self, env):
        gate = env.event()

        def waiter(env):
            yield gate

        def finisher(env):
            yield env.timeout(1)

        w = env.process(waiter(env), name="parked")
        env.process(finisher(env), name="done")
        env.run()
        alive = env.unfinished_processes()
        assert alive == [w]

    def test_check_deadlock_raises_only_when_calendar_empty(self, env):
        gate = env.event()

        def waiter(env):
            yield gate

        env.process(waiter(env))
        env.process(_ticker_once(env))
        from repro.sim import Deadlock

        env.check_deadlock()  # ticker still scheduled: no deadlock yet
        env.run()
        with pytest.raises(Deadlock):
            env.check_deadlock()

    def test_check_deadlock_quiet_when_all_finished(self, env):
        def body(env):
            yield env.timeout(1)

        env.process(body(env))
        env.run()
        env.check_deadlock()  # must not raise


def _ticker_once(env):
    yield env.timeout(2)
