"""Unit + property tests for the BP-style index layer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.index import (
    Characteristics,
    GlobalIndex,
    IndexEntry,
    LocalIndex,
)


class TestCharacteristics:
    def test_of_array(self):
        c = Characteristics.of(np.array([3.0, -1.0, 2.0]))
        assert c.minimum == -1.0 and c.maximum == 3.0 and c.count == 3

    def test_of_empty(self):
        c = Characteristics.of(np.array([]))
        assert c.count == 0

    def test_merge(self):
        a = Characteristics(0.0, 5.0, 10)
        b = Characteristics(-2.0, 3.0, 5)
        m = a.merge(b)
        assert (m.minimum, m.maximum, m.count) == (-2.0, 5.0, 15)

    def test_merge_with_empty(self):
        a = Characteristics(1.0, 2.0, 4)
        empty = Characteristics(0.0, 0.0, 0)
        assert a.merge(empty) is a
        assert empty.merge(a) is a

    def test_overlaps(self):
        c = Characteristics(1.0, 5.0, 10)
        assert c.overlaps(0.0, 1.0)
        assert c.overlaps(4.0, 10.0)
        assert not c.overlaps(6.0, 8.0)
        assert not c.overlaps(-3.0, 0.5)

    def test_empty_never_overlaps(self):
        assert not Characteristics(0, 0, 0).overlaps(-1e9, 1e9)

    def test_validation(self):
        with pytest.raises(ValueError):
            Characteristics(5.0, 1.0, 3)
        with pytest.raises(ValueError):
            Characteristics(0.0, 1.0, -1)

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50))
    @settings(max_examples=100)
    def test_of_matches_numpy(self, values):
        arr = np.array(values)
        c = Characteristics.of(arr)
        assert c.minimum == arr.min()
        assert c.maximum == arr.max()

    @given(
        st.lists(st.floats(-100, 100), min_size=1, max_size=20),
        st.lists(st.floats(-100, 100), min_size=1, max_size=20),
    )
    @settings(max_examples=100)
    def test_merge_equals_concat(self, a, b):
        ca = Characteristics.of(np.array(a))
        cb = Characteristics.of(np.array(b))
        cm = ca.merge(cb)
        whole = Characteristics.of(np.array(a + b))
        assert cm.minimum == whole.minimum
        assert cm.maximum == whole.maximum
        assert cm.count == whole.count


class TestLocalIndex:
    def entry(self, var="x", writer=0, offset=0.0, nbytes=10.0):
        return IndexEntry(var=var, writer=writer, offset=offset,
                          nbytes=nbytes)

    def test_add_and_finalize_sorts(self):
        idx = LocalIndex("/f.bp")
        idx.add([self.entry(offset=20.0), self.entry(offset=0.0)])
        entries = idx.finalize()
        assert [e.offset for e in entries] == [0.0, 20.0]

    def test_add_after_finalize_rejected(self):
        idx = LocalIndex("/f.bp")
        idx.finalize()
        with pytest.raises(RuntimeError):
            idx.add([self.entry()])

    def test_overlap_detection(self):
        idx = LocalIndex("/f.bp")
        idx.add([self.entry(offset=0.0, nbytes=10.0),
                 self.entry(offset=5.0, nbytes=10.0)])
        with pytest.raises(ValueError):
            idx.check_no_overlap()

    def test_adjacent_extents_ok(self):
        idx = LocalIndex("/f.bp")
        idx.add([self.entry(offset=0.0, nbytes=10.0),
                 self.entry(offset=10.0, nbytes=10.0)])
        idx.check_no_overlap()

    def test_serialized_bytes_grow_with_entries(self):
        a = LocalIndex("/a")
        b = LocalIndex("/b")
        a.add([self.entry()])
        b.add([self.entry(), self.entry(var="y", offset=10.0)])
        assert b.serialized_bytes > a.serialized_bytes

    def test_entry_validation(self):
        with pytest.raises(ValueError):
            IndexEntry(var="x", writer=0, offset=-1.0, nbytes=1.0)


class TestGlobalIndex:
    def make(self):
        gi = GlobalIndex()
        gi.add_file(
            "/d/0.bp",
            [
                IndexEntry("rho", 0, 0.0, 100.0,
                           Characteristics(0.0, 1.0, 10)),
                IndexEntry("temp", 0, 100.0, 100.0,
                           Characteristics(300.0, 400.0, 10)),
            ],
        )
        gi.add_file(
            "/d/1.bp",
            [
                IndexEntry("rho", 1, 0.0, 100.0,
                           Characteristics(2.0, 3.0, 10)),
            ],
        )
        return gi

    def test_lookup_by_var(self):
        gi = self.make()
        assert len(gi.lookup("rho")) == 2
        assert len(gi.lookup("temp")) == 1
        assert gi.lookup("nope") == []

    def test_lookup_by_writer(self):
        gi = self.make()
        hits = gi.lookup("rho", writer=1)
        assert len(hits) == 1
        assert hits[0][0] == "/d/1.bp"

    def test_duplicate_file_rejected(self):
        gi = self.make()
        with pytest.raises(ValueError):
            gi.add_file("/d/0.bp", [])

    def test_value_range_query_prunes(self):
        gi = self.make()
        hits = gi.query_value_range("rho", 2.5, 2.9)
        assert [f for f, _ in hits] == ["/d/1.bp"]

    def test_value_range_conservative_without_chars(self):
        gi = GlobalIndex()
        gi.add_file("/d/x.bp", [IndexEntry("v", 0, 0.0, 10.0)])
        assert len(gi.query_value_range("v", 1e9, 2e9)) == 1

    def test_totals(self):
        gi = self.make()
        assert gi.total_bytes("rho") == 200.0
        assert gi.total_bytes() == 300.0
        assert gi.n_blocks == 3
        assert gi.variables == ["rho", "temp"]
        assert gi.files == ["/d/0.bp", "/d/1.bp"]
