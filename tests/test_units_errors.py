"""Tests for the units helpers and the error hierarchy."""

import pytest

from repro import errors
from repro.units import (
    GB,
    KB,
    MB,
    TB,
    bytes_to_gb,
    bytes_to_mb,
    fmt_bytes,
    fmt_rate,
    gb,
    mb,
)


class TestUnits:
    def test_decimal_prefixes(self):
        assert KB == 1_000
        assert MB == 1_000_000
        assert GB == 1_000_000_000
        assert TB == 1_000_000_000_000

    def test_round_trips(self):
        assert bytes_to_mb(mb(128)) == pytest.approx(128)
        assert bytes_to_gb(gb(3.5)) == pytest.approx(3.5)

    def test_paper_arithmetic(self):
        # "200 MB per process yields 3 TB" for ~15 000 processes...
        # the paper's own numbers: 150 000 procs x 200 MB = 30 TB per
        # 10 output steps, i.e. 3 TB every 30 minutes at 15k procs.
        assert 15_000 * mb(200) == pytest.approx(3 * TB)
        # "672 OSTs x 180 MB/s" is within the paper's 60-90 GB/s
        # theoretical-peak window (accounting for network overheads).
        assert 672 * mb(180) > 60 * GB

    def test_fmt_bytes(self):
        assert fmt_bytes(3e9) == "3.00 GB"
        assert fmt_bytes(1.5e6) == "1.50 MB"
        assert fmt_bytes(2_000) == "2.00 KB"
        assert fmt_bytes(999) == "999 B"
        assert fmt_bytes(2.5e12) == "2.50 TB"

    def test_fmt_rate(self):
        assert fmt_rate(2.5e9) == "2.50 GB/s"


class TestErrorHierarchy:
    def test_all_are_repro_errors(self):
        for name in errors.__all__:
            cls = getattr(errors, name)
            if name == "ReproError":
                continue
            assert issubclass(cls, errors.ReproError), name

    def test_configuration_error_is_value_error(self):
        assert issubclass(errors.ConfigurationError, ValueError)

    def test_file_not_found_is_key_error(self):
        assert issubclass(errors.FileNotFoundInNamespace, KeyError)

    def test_stripe_limit_is_value_error(self):
        assert issubclass(errors.StripeLimitExceeded, ValueError)

    def test_catchable_as_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.ProtocolError("x")
        with pytest.raises(errors.FileSystemError):
            raise errors.StripeLimitExceeded("y")
