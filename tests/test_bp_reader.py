"""Tests for the BP read path (global index + scan fallback)."""

import pytest

from repro.apps import AppKernel, Variable
from repro.core.bp import BpReader
from repro.core.transports import AdaptiveTransport
from repro.errors import FileSystemError
from repro.machines import jaguar
from repro.units import MB


@pytest.fixture(scope="module")
def written():
    """One adaptive output set shared across the read tests."""
    app = AppKernel(
        "rt",
        [
            Variable("alpha", shape=(1000,), value_range=(0.0, 1.0)),
            Variable("beta", shape=(500,), value_range=(10.0, 20.0)),
        ],
    )
    machine = jaguar(n_osts=4).build(n_ranks=12, seed=0)
    res = AdaptiveTransport().run(machine, app, output_name="rt")
    return machine, app, res


class TestIndexedReads:
    def test_locate_block(self, written):
        machine, app, res = written
        reader = BpReader(machine.fs, res.index)
        hits = reader.locate("alpha", writer=5)
        assert len(hits) == 1
        path, entry = hits[0]
        assert entry.writer == 5
        assert entry.nbytes == pytest.approx(8000.0)

    def test_locate_missing(self, written):
        machine, _, res = written
        reader = BpReader(machine.fs, res.index)
        with pytest.raises(KeyError):
            reader.locate("gamma")
        with pytest.raises(KeyError):
            reader.locate("alpha", writer=999)

    def test_read_block_simulates_time(self, written):
        machine, _, res = written
        reader = BpReader(machine.fs, res.index)
        proc = machine.env.process(
            reader.read_block(node=0, var="beta", writer=3)
        )
        entry, seconds = machine.env.run(until=proc)
        assert entry.nbytes == pytest.approx(4000.0)
        assert seconds > 0

    def test_read_variable_all_blocks(self, written):
        machine, app, res = written
        reader = BpReader(machine.fs, res.index)
        proc = machine.env.process(reader.read_variable(node=1, var="alpha"))
        nbytes, seconds = machine.env.run(until=proc)
        assert nbytes == pytest.approx(12 * 8000.0)
        assert seconds > 0

    def test_value_range_query(self, written):
        machine, _, res = written
        reader = BpReader(machine.fs, res.index)
        everything = reader.query_value_range("beta", -1e9, 1e9)
        assert len(everything) == 12
        nothing = reader.query_value_range("beta", 100.0, 200.0)
        assert len(nothing) == 0


class TestScanFallback:
    def test_scan_mode_finds_blocks(self, written):
        machine, _, res = written
        data_files = [p for p in res.files if "index" not in p]
        reader = BpReader(machine.fs, index=None, files=data_files)
        hits = reader.locate("alpha", writer=5)
        assert len(hits) == 1
        # Must agree with the indexed path.
        indexed = BpReader(machine.fs, res.index).locate("alpha", writer=5)
        assert hits[0][1] == indexed[0][1]

    def test_scan_mode_rejects_range_query(self, written):
        machine, _, res = written
        reader = BpReader(machine.fs, index=None, files=res.files)
        with pytest.raises(FileSystemError):
            reader.query_value_range("alpha", 0, 1)

    def test_requires_index_or_files(self, written):
        machine, _, _ = written
        with pytest.raises(ValueError):
            BpReader(machine.fs)


class TestCorruptIndex:
    def test_duplicate_block_entries_rejected(self, written):
        """A (var, writer) with multiple index blocks is a corrupt
        index: read_block must refuse rather than pick one."""
        from repro.core.index import GlobalIndex, IndexEntry

        machine, _, res = written
        dup = GlobalIndex()
        entry = IndexEntry(var="alpha", writer=5, offset=0.0, nbytes=8000.0)
        dup.add_file(res.files[0], [entry])
        dup.add_file(res.files[1], [entry])
        reader = BpReader(machine.fs, dup)
        gen = reader.read_block(node=0, var="alpha", writer=5)
        with pytest.raises(FileSystemError, match="corrupt index"):
            next(gen)
