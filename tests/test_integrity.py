"""End-to-end data-integrity tests.

Per-block checksums flow writer -> index -> stored block; corruption
faults mutate stored state; the scrub classifies every block; the
adaptive write-verify-rewrite loop repairs in-run; fsck audits and
repairs after the fact.  Detection must be total (no undetected
corruption with checksums on, no false positives ever) — and honest
(checksum-free output sets report unverified, not valid).
"""

import pytest

from repro.apps import AppKernel, Variable
from repro.core.bp import BpReader
from repro.core.index import IndexEntry, block_checksum
from repro.core.integrity import (
    BLOCK_CORRUPT,
    BLOCK_MISSING,
    BLOCK_TORN,
    BLOCK_UNINDEXED,
    BLOCK_UNVERIFIED,
    BLOCK_VALID,
    classify_block,
    detection_stats,
    rebuild_global_index,
    verify_stored,
)
from repro.core.transports import (
    AdaptiveTransport,
    MpiIoTransport,
    SplitFilesTransport,
)
from repro.errors import (
    FaultPlanError,
    IntegrityError,
    TransportError,
)
from repro.faults import CORRUPTION_KINDS, FaultEvent, FaultPlan
from repro.machines import jaguar
from repro.units import MB


def _app(mb=4.0, checksums=True):
    return AppKernel(
        "it",
        [Variable("v", shape=(int(mb * MB / 8),))],
        checksums=checksums,
    )


def _build(seed=0, n_ranks=16, n_osts=8, cap=4, plan=None):
    return jaguar(n_osts=n_osts).with_overrides(
        max_stripe_count=cap
    ).build(n_ranks=n_ranks, seed=seed, faults=plan)


def _adaptive_run(plan=None, seed=0, checksums=True, n_ranks=16):
    machine = _build(seed=seed, n_ranks=n_ranks, plan=plan)
    res = AdaptiveTransport().run(machine, _app(checksums=checksums),
                                  output_name="it")
    return machine, res


def _scrub(machine, res, files=None):
    reader = BpReader(machine.fs, index=res.index,
                      files=files or res.files)
    return reader.scrub(), reader


@pytest.fixture()
def clean():
    """A fresh fault-free checksummed adaptive output set."""
    return _adaptive_run()


@pytest.fixture(scope="module")
def baseline():
    """Fault-free adaptive phase times, to place corruption events."""
    _, res = _adaptive_run()
    return res


def _corruption_plan(baseline, **kinds):
    # Just after the write phase: at this scale (2 writers per group)
    # a mid-phase instant can precede the first block registration,
    # and a corruption event with nothing stored yet is a no-op.
    at = (baseline.open_time + baseline.write_time
          + max(0.25 * baseline.flush_time, 1e-3))
    events = tuple(
        FaultEvent(time=at, kind=kind, target=i, factor=factor)
        for i, (kind, factor) in enumerate(kinds.items())
    )
    return FaultPlan(events=events)


class TestBlockChecksum:
    def test_deterministic(self):
        assert block_checksum("v", 3, 8000.0) == block_checksum(
            "v", 3, 8000.0
        )

    def test_sensitive_to_every_input(self):
        base = block_checksum("v", 3, 8000.0)
        assert block_checksum("w", 3, 8000.0) != base
        assert block_checksum("v", 4, 8000.0) != base
        assert block_checksum("v", 3, 8001.0) != base

    def test_index_entry_pays_for_checksum_bytes(self):
        plain = IndexEntry(var="v", writer=0, offset=0.0, nbytes=8.0)
        summed = IndexEntry(var="v", writer=0, offset=0.0, nbytes=8.0,
                            checksum=block_checksum("v", 0, 8.0))
        assert summed.serialized_bytes == plain.serialized_bytes + 8.0


class TestClassification:
    def _one(self, machine, res):
        """(file, entry, stored block) for one indexed block."""
        path, entries = next(iter(res.index.entries_by_file().items()))
        entry = entries[0]
        f = machine.fs.lookup(path)
        return f, entry, f.block_at(entry.offset, entry.nbytes)

    def test_clean_block_is_valid(self, clean):
        f, entry, blk = self._one(*clean)
        assert blk is not None
        assert classify_block(f, entry) == BLOCK_VALID

    def test_checksum_mismatch_is_corrupt(self, clean):
        f, entry, blk = self._one(*clean)
        blk.checksum ^= 1
        assert classify_block(f, entry) == BLOCK_CORRUPT

    def test_torn_outranks_checksum(self, clean):
        # A tear is visible from length metadata alone; report it as
        # torn even though the checksum would also mismatch.
        f, entry, blk = self._one(*clean)
        blk.valid_bytes = 0.5 * blk.nbytes
        blk.checksum ^= 1
        assert classify_block(f, entry) == BLOCK_TORN

    def test_either_checksum_absent_is_unverified(self, clean):
        f, entry, blk = self._one(*clean)
        blk.checksum = None
        assert classify_block(f, entry) == BLOCK_UNVERIFIED

    def test_deleted_block_is_missing(self, clean):
        f, entry, _ = self._one(*clean)
        del f.blocks[(entry.offset, entry.nbytes)]
        assert classify_block(f, entry) == BLOCK_MISSING

    def test_missing_file_is_missing(self, clean):
        _, entry, _ = self._one(*clean)
        assert classify_block(None, entry) == BLOCK_MISSING

    def test_verify_stored_matches_classification(self, clean):
        f, entry, blk = self._one(*clean)
        triple = [(entry.offset, entry.nbytes, entry.checksum)]
        assert verify_stored(f, triple)
        blk.checksum ^= 1
        assert not verify_stored(f, triple)


class TestCorruptionFaults:
    def test_bitflip_detected_by_scrub(self, baseline):
        plan = _corruption_plan(baseline, block_bitflip=2)
        machine, res = _adaptive_run(plan=plan)
        report, _ = _scrub(machine, res)
        assert report.counts[BLOCK_CORRUPT] == 2
        assert machine.faults.blocks_bitflipped == 2
        det = detection_stats(report, machine.fs, res.index)
        assert det["truth"] == 2
        assert det["detected"] == 2
        assert det["undetected"] == 0
        assert det["false_positives"] == 0

    def test_torn_write_classified_torn(self, baseline):
        plan = _corruption_plan(baseline, torn_write=0.5)
        machine, res = _adaptive_run(plan=plan)
        report, _ = _scrub(machine, res)
        assert report.counts[BLOCK_TORN] == 1
        assert machine.faults.blocks_torn == 1

    def test_stale_index_classified_missing(self, baseline):
        plan = _corruption_plan(baseline, stale_index=1)
        machine, res = _adaptive_run(plan=plan)
        report, _ = _scrub(machine, res)
        assert report.counts[BLOCK_MISSING] == 1
        assert machine.faults.blocks_orphaned == 1
        assert machine.faults.corruption_ledger[0]["kind"] == "stale_index"

    def test_corruption_on_failed_target_is_noop(self, baseline):
        # Fail-stop at t, bitflip the same target later: the data is
        # already gone, there is nothing left to rot.
        at = max(0.5 * baseline.write_time, 1e-3)
        plan = FaultPlan(events=(
            FaultEvent(time=at, kind="ost_fail", target=0),
            FaultEvent(time=2.0 * at + 1e-3, kind="block_bitflip",
                       target=0, factor=4),
        )).with_policy(run_timeout=600.0)
        machine, res = _adaptive_run(plan=plan)
        assert machine.faults.blocks_bitflipped == 0
        report, _ = _scrub(machine, res)
        assert report.ok

    def test_silent_corruption_is_seed_deterministic(self):
        plan = FaultPlan(silent_error_rate=0.05)
        ledgers = []
        for _ in range(2):
            machine, _ = _adaptive_run(plan=plan)
            ledgers.append(machine.faults.corruption_ledger)
        assert ledgers[0] == ledgers[1]
        assert len(ledgers[0]) > 0

    def test_checksum_free_corruption_goes_undetected(self, baseline):
        # The honest exposure model: without checksums the scrub can
        # only say "unverified", and the detection stats must admit
        # the corruption went unseen.
        plan = _corruption_plan(baseline, block_bitflip=2)
        machine, res = _adaptive_run(plan=plan, checksums=False)
        report, _ = _scrub(machine, res)
        assert report.counts[BLOCK_UNVERIFIED] == report.n_blocks
        det = detection_stats(report, machine.fs, res.index)
        assert det["truth"] == 2
        assert det["detected"] == 0
        assert det["undetected"] == 2


class TestPlanValidationCorruption:
    def test_corruption_kinds_are_fault_kinds(self):
        from repro.faults.plan import FAULT_KINDS

        assert set(CORRUPTION_KINDS) <= set(FAULT_KINDS)

    def test_corruption_does_not_revert(self):
        with pytest.raises(FaultPlanError):
            FaultEvent(time=1.0, kind="block_bitflip", target=0,
                       factor=1, duration=5.0)

    def test_torn_fraction_range(self):
        with pytest.raises(FaultPlanError):
            FaultEvent(time=1.0, kind="torn_write", target=0, factor=1.5)
        FaultEvent(time=1.0, kind="torn_write", target=0, factor=1.0)

    def test_bitflip_count_at_least_one(self):
        with pytest.raises(FaultPlanError):
            FaultEvent(time=1.0, kind="block_bitflip", target=0,
                       factor=0.0)

    def test_silent_rate_range(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(silent_error_rate=1.0)
        plan = FaultPlan(silent_error_rate=0.25)
        assert FaultPlan.from_dict(plan.to_dict()) == plan


class TestVerifyRewrite:
    def test_silent_corruption_repaired_in_run(self):
        plan = FaultPlan(silent_error_rate=0.2).with_policy(
            read_back_verify=True, run_timeout=600.0
        )
        machine, res = _adaptive_run(plan=plan)
        assert res.extra["verify_failures"] > 0
        assert res.extra["bytes_corrupt"] == 0.0
        report, _ = _scrub(machine, res)
        assert report.ok
        det = detection_stats(report, machine.fs, res.index)
        assert det["truth"] == 0  # every corruption was rewritten

    def test_without_verify_corruption_persists(self):
        plan = FaultPlan(silent_error_rate=0.2).with_policy(
            run_timeout=600.0
        )
        machine, res = _adaptive_run(plan=plan)
        assert res.extra["verify_failures"] == 0
        assert res.extra["bytes_corrupt"] > 0.0
        report, _ = _scrub(machine, res)
        assert not report.ok
        det = detection_stats(report, machine.fs, res.index)
        assert det["truth"] > 0
        assert det["undetected"] == 0


class TestStaticTransports:
    def _static_plan(self, res, factor=1):
        # Static transports register blocks only at write completion:
        # corrupt just after the write phase, during the flush.
        at = (res.open_time + res.write_time
              + max(0.25 * res.flush_time, 1e-3))
        return FaultPlan(events=(
            FaultEvent(time=at, kind="block_bitflip", target=0,
                       factor=factor),
        ))

    def test_mpiio_flags_corrupt_bytes(self):
        app = _app()
        base = MpiIoTransport().run(_build(), app, output_name="it")
        plan = self._static_plan(base)
        machine = _build(plan=plan)
        with pytest.raises(TransportError) as ei:
            MpiIoTransport().run(machine, app, output_name="it")
        assert ei.value.bytes_corrupt > 0.0
        res = ei.value.partial
        report, _ = _scrub(machine, res)
        det = detection_stats(report, machine.fs, res.index)
        assert det["detected"] == det["truth"] > 0
        assert det["undetected"] == det["false_positives"] == 0

    def test_splitfiles_rebuilt_index_scrubs_identically(self):
        app = _app()
        machine = _build()
        res = SplitFilesTransport().run(machine, app, output_name="it")
        rebuilt, uncovered = rebuild_global_index(machine.fs, res.files)
        assert uncovered == []
        original, _ = _scrub(machine, res)
        from_rebuilt = BpReader(
            machine.fs, index=rebuilt, files=res.files
        ).scrub()
        assert from_rebuilt == original
        assert from_rebuilt.ok


class TestScrub:
    def test_clean_scrub_is_all_valid(self, clean):
        machine, res = clean
        report, _ = _scrub(machine, res)
        assert report.ok
        assert report.counts[BLOCK_VALID] == report.n_blocks
        assert report.bytes_bad == 0.0

    def test_unindexed_block_flagged(self, clean):
        machine, res = clean
        path = res.index.entries_by_file().popitem()[0]
        f = machine.fs.lookup(path)
        f.store_block(offset=1e9, nbytes=64.0, checksum=None, seq=1 << 30)
        report, _ = _scrub(machine, res)
        assert report.counts[BLOCK_UNINDEXED] == 1
        assert not report.ok

    def test_scrub_sim_pays_read_time(self, clean):
        machine, res = clean
        reader = BpReader(machine.fs, index=res.index, files=res.files)
        proc = machine.env.process(reader.scrub_sim(0), name="scrub")
        report, seconds = machine.env.run(until=proc)
        assert report.ok
        assert seconds > 0.0

    def test_verifying_reader_raises_on_corrupt_block(self, clean):
        machine, res = clean
        path, entries = next(iter(res.index.entries_by_file().items()))
        entry = entries[0]
        machine.fs.lookup(path).block_at(
            entry.offset, entry.nbytes
        ).checksum ^= 1
        reader = BpReader(machine.fs, index=res.index, verify=True)
        proc = machine.env.process(
            reader.read_block(node=0, var=entry.var, writer=entry.writer)
        )
        from repro.sim.engine import SimulationError

        with pytest.raises(SimulationError) as ei:
            machine.env.run(until=proc)
        assert isinstance(ei.value.cause, IntegrityError)
        assert ei.value.cause.status == BLOCK_CORRUPT

    def test_non_verifying_reader_reads_corrupt_block(self, clean):
        machine, res = clean
        path, entries = next(iter(res.index.entries_by_file().items()))
        entry = entries[0]
        machine.fs.lookup(path).block_at(
            entry.offset, entry.nbytes
        ).checksum ^= 1
        reader = BpReader(machine.fs, index=res.index)
        proc = machine.env.process(
            reader.read_block(node=0, var=entry.var, writer=entry.writer)
        )
        _, seconds = machine.env.run(until=proc)
        assert seconds > 0.0


class TestFsckCli:
    ARGS = ["--n-ranks", "16", "--n-osts", "8", "--mb", "4"]

    def test_clean_strict_passes(self, capsys):
        from repro.tools.fsck import main

        assert main(self.ARGS + ["--strict"]) == 0
        out = capsys.readouterr().out
        assert "strict checks passed" in out

    def test_corrupt_repair_readback(self, tmp_path, capsys):
        from repro.tools.fsck import main

        report = tmp_path / "fsck.json"
        rc = main(self.ARGS + [
            "--bitflip", "1", "--torn", "1", "--stale", "1",
            "--repair", "--strict", "--json", str(report),
        ])
        assert rc == 0
        import json

        out = json.loads(report.read_text())
        assert out["detection"]["undetected"] == 0
        assert out["detection"]["false_positives"] == 0
        assert out["detection"]["detected"] == out["detection"]["truth"] > 0
        assert out["repair"]["unrepairable"] == 0
        assert out["rescrub"]["ok"]
        assert out["read_back"]["errors"] == []

    def test_static_transport_with_index_rebuild(self):
        from repro.tools.fsck import main

        rc = main(self.ARGS + [
            "--transport", "splitfiles", "--bitflip", "1",
            "--rebuild-index", "--repair", "--strict",
        ])
        assert rc == 0

    def test_stagger_refuses_non_corruption_plan(self, tmp_path):
        from repro.tools.fsck import main

        plan = tmp_path / "plan.json"
        FaultPlan(events=(
            FaultEvent(time=1.0, kind="ost_fail", target=0),
        )).save_json(str(plan))
        rc = main(self.ARGS + [
            "--transport", "stagger", "--faults", str(plan),
        ])
        assert rc == 2
