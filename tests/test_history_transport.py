"""Tests for the history-aware adaptive transport (future-work ext)."""

import numpy as np
import pytest

from repro.apps import AppKernel, Variable
from repro.core.transports import (
    AdaptiveTransport,
    HistoryAwareAdaptiveTransport,
    PerformanceHistory,
)
from repro.core.transports.history import _WeightedGroupMap
from repro.machines import jaguar
from repro.units import MB


def app(mb=4.0):
    return AppKernel("h", [Variable("x", shape=(int(mb * MB / 8),))])


class TestPerformanceHistory:
    def test_first_observation_replaces_prior(self):
        h = PerformanceHistory(4, prior=100.0)
        h.observe(0, 500.0)
        assert h.estimate[0] == 500.0
        assert h.estimate[1] == 100.0

    def test_ewma_update_is_asymmetric(self):
        h = PerformanceHistory(2, alpha=0.5, alpha_up=0.125)
        h.observe(0, 200.0)
        h.observe(0, 100.0)  # slowdown: fast to believe
        assert h.estimate[0] == pytest.approx(150.0)
        h.observe(0, 310.0)  # recovery: slow to believe
        assert h.estimate[0] == pytest.approx(170.0)

    def test_alpha_up_validation(self):
        with pytest.raises(ValueError):
            PerformanceHistory(1, alpha_up=0.0)

    def test_nonpositive_observation_ignored(self):
        h = PerformanceHistory(2)
        h.observe(0, 0.0)
        assert h.observations[0] == 0

    def test_relative_speeds_mean_one(self):
        h = PerformanceHistory(3)
        h.observe(0, 100.0)
        h.observe(1, 300.0)
        h.observe(2, 200.0)
        assert h.relative_speeds().mean() == pytest.approx(1.0)

    def test_slowest_first(self):
        h = PerformanceHistory(3)
        h.observe(0, 300.0)
        h.observe(1, 100.0)
        h.observe(2, 200.0)
        assert h.slowest_first() == [1, 2, 0]

    def test_validation(self):
        with pytest.raises(ValueError):
            PerformanceHistory(0)
        with pytest.raises(ValueError):
            PerformanceHistory(1, alpha=0.0)
        with pytest.raises(ValueError):
            PerformanceHistory(1, prior=0.0)


class TestWeightedGroupMap:
    def test_quota_partition(self):
        gm = _WeightedGroupMap(10, [5, 3, 2])
        assert gm.ranks_in(0) == [0, 1, 2, 3, 4]
        assert gm.ranks_in(1) == [5, 6, 7]
        assert gm.ranks_in(2) == [8, 9]
        assert gm.group_of(7) == 1
        assert gm.sub_coordinator_of(2) == 8
        assert gm.max_group_size == 5

    def test_quota_validation(self):
        with pytest.raises(ValueError):
            _WeightedGroupMap(10, [5, 3])  # sums to 8
        with pytest.raises(ValueError):
            _WeightedGroupMap(3, [3, 0])


class TestQuotas:
    def test_uniform_before_history(self):
        t = HistoryAwareAdaptiveTransport()
        assert t.group_quotas(10, 3) == [4, 3, 3]

    def test_quotas_follow_history(self):
        t = HistoryAwareAdaptiveTransport()
        t.history = PerformanceHistory(4)
        for g, bw in enumerate([400.0, 400.0, 400.0, 50.0]):
            t.history.observe(g, bw)
        quotas = t.group_quotas(40, 4)
        assert sum(quotas) == 40
        assert quotas[3] == min(quotas)
        assert quotas[3] >= 1

    def test_skew_clamped(self):
        t = HistoryAwareAdaptiveTransport(max_skew=2.0)
        t.history = PerformanceHistory(2)
        t.history.observe(0, 1000.0)
        t.history.observe(1, 1.0)  # pathologically slow estimate
        quotas = t.group_quotas(30, 2)
        assert sum(quotas) == 30
        assert max(quotas) / min(quotas) <= 4.0 + 1e-9  # 2.0 / (1/2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            HistoryAwareAdaptiveTransport(max_skew=0.5)


class TestHistoryAwareRuns:
    def test_single_step_equals_adaptive_shape(self):
        m = jaguar(n_osts=4).build(n_ranks=16, seed=0)
        t = HistoryAwareAdaptiveTransport()
        res = t.run(m, app(), output_name="h0")
        assert res.transport == "adaptive-history"
        assert res.index.n_blocks == 16
        assert res.extra["history_steps"] == 1.0

    def test_history_accumulates_across_steps(self):
        t = HistoryAwareAdaptiveTransport()
        for step in range(2):
            m = jaguar(n_osts=4).build(n_ranks=16, seed=step)
            t.run(m, app(), output_name=f"h{step}")
        assert t.steps_run == 2
        # One straggler observation per target per step.
        assert t.history.observations.sum() == 8

    def test_seeds_away_from_persistently_slow_target(self):
        t = HistoryAwareAdaptiveTransport()
        for step in range(3):
            m = jaguar(n_osts=4).build(n_ranks=32, seed=step)
            m.pool.set_load_multiplier(0.05, osts=np.array([0]))
            t.run(m, app(), output_name=f"h{step}")
        quotas = t.group_quotas(32, 4)
        assert quotas[0] == min(quotas)
        assert quotas[0] < 8  # below the uniform share

    def test_beats_vanilla_adaptive_on_stationary_slowness(self):
        def campaign(transport_factory):
            transport = transport_factory()
            times = []
            for step in range(4):
                m = jaguar(n_osts=4).build(n_ranks=32, seed=100 + step)
                m.pool.set_load_multiplier(0.05, osts=np.array([0]))
                res = transport.run(m, app(), output_name=f"c{step}")
                times.append(res.reported_time)
            return times

        vanilla = campaign(AdaptiveTransport)
        history = campaign(HistoryAwareAdaptiveTransport)
        # After warm-up, the seeded schedule should not be slower.
        assert sum(history[1:]) <= sum(vanilla[1:]) * 1.05

    def test_target_count_change_rejected(self):
        t = HistoryAwareAdaptiveTransport()
        m = jaguar(n_osts=4).build(n_ranks=16, seed=0)
        t.run(m, app(), output_name="a")
        m2 = jaguar(n_osts=8).build(n_ranks=16, seed=0)
        with pytest.raises(ValueError):
            t.run(m2, app(), output_name="b")
