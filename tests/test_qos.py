"""Multi-tenant QoS: token conservation, determinism, degradation.

Three contracts pinned here:

* the token-bucket ledger conserves bytes exactly — borrowing moves
  bandwidth between tenants without ever creating it, including the
  work-conserving unreserved mint;
* a tenant sweep is bit-identical run serially or fanned out over
  worker processes (the repo-wide parallel==serial contract);
* degradation is graceful — an over-contract tenant is backpressured,
  never errored, and every throttled byte is ledgered.
"""

from __future__ import annotations

from functools import partial

import numpy as np
import pytest

from repro.errors import AdmissionError, ConfigurationError
from repro.qos import (
    CongestionController,
    QosConfig,
    TenantContract,
    TenantJob,
    TokenBucketArray,
    jain_index,
    run_tenants,
    with_qos,
)


# -- token buckets -------------------------------------------------------

def _random_traffic(buckets: TokenBucketArray, seed: int, ticks: int):
    """Arbitrary spend/refill churn; returns nothing, mutates buckets."""
    rng = np.random.default_rng(seed)
    n = buckets.n_tenants
    for _ in range(ticks):
        dt = float(rng.uniform(0.01, 0.2))
        demand = rng.uniform(0.5, 3.0, size=n) * buckets.floors
        # Tenant 0 stays idle throughout: its bucket tops out and its
        # mint becomes the surplus the busy tenants borrow; the rest
        # occasionally pause too.
        demand[0] = 0.0
        demand[rng.random(n) < 0.2] = 0.0
        buckets.refill(dt, demand)
        served = np.minimum(demand * dt, buckets.tokens)
        buckets.spend(served)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_token_conservation_across_borrowing(seed):
    rng = np.random.default_rng(100 + seed)
    floors = rng.uniform(1e6, 5e8, size=5)
    caps = floors * rng.uniform(0.5, 4.0, size=5)
    buckets = TokenBucketArray(floors, caps)
    _random_traffic(buckets, seed, ticks=400)
    assert buckets.conservation_error() < 1e-3  # bytes, vs ~1e11 moved
    assert (buckets.tokens >= 0).all()
    assert (buckets.tokens <= buckets.capacity + 1e-6).all()
    assert buckets.borrowed > 0, "churn must exercise borrowing"
    assert buckets.discarded >= 0


def test_token_conservation_with_unreserved_mint():
    floors = np.array([1e8, 2e8])
    buckets = TokenBucketArray(floors, floors * 2, unreserved=3e8)
    _random_traffic(buckets, seed=7, ticks=300)
    assert buckets.conservation_error() < 1e-3
    # The unreserved slice is minted every tick on top of the floors.
    assert buckets.minted > float(floors.sum()) * 0.01 * 300


def test_borrowing_moves_idle_mint_to_busy():
    floors = np.array([1e8, 1e8])
    buckets = TokenBucketArray(floors, floors * 4.0)
    # Tenant 0 idle (bucket already full), tenant 1 drained and hungry.
    buckets.tokens[:] = (buckets.capacity[0], 0.0)
    granted = buckets.refill(1.0, demand=np.array([0.0, 5e8]))
    assert granted[0] == 0.0
    assert granted[1] > 0.0, "idle tenant's mint must flow to the busy one"
    assert buckets.conservation_error() < 1e-6


def test_unreserved_mint_reaches_all_busy_tenants():
    # Every tenant busy, nobody idle: without the unreserved pool the
    # aggregate admitted rate would collapse to the floor sum.
    floors = np.array([1e8, 1e8])
    busy = TokenBucketArray(floors, floors * 4, unreserved=2e8)
    busy.tokens[:] = 0.0
    granted = busy.refill(1.0, demand=np.array([1e9, 1e9]))
    assert (granted > 0).all()
    assert granted.sum() == pytest.approx(2e8)


def test_bucket_validation():
    with pytest.raises(ValueError):
        TokenBucketArray(np.array([-1.0]), np.array([1.0]))
    with pytest.raises(ValueError):
        TokenBucketArray(np.array([1.0]), np.array([np.inf]))
    with pytest.raises(ValueError):
        TokenBucketArray(np.array([1.0]), np.array([1.0]), unreserved=-1.0)


# -- controller ----------------------------------------------------------

def _config(floors, ceilings):
    return QosConfig(
        contracts=tuple(
            TenantContract(f"t{i}", floor=f, ceiling=c)
            for i, (f, c) in enumerate(zip(floors, ceilings))
        )
    )


def test_controller_throttles_aggressors_toward_floor():
    cfg = _config([1e8, 1e8], [1e9, 1e9])
    ctl = CongestionController(cfg, cfg.ceilings())
    hot = np.ones(8)  # every OST congested
    served = np.array([5e8, 0.9e8])  # t0 over floor, t1 under
    demand = np.array([9e8, 0.9e8])
    allow = ctl.update(0.05, hot, served, demand)
    assert allow[0] < 1e9, "aggressor must be throttled"
    assert allow[0] >= 1e8, "never below the floor"
    assert allow[1] == 1e9, "an in-contract tenant is left alone"
    assert ctl.congested_ticks == 1
    assert ctl.aggressor_ticks[0] == 1 and ctl.aggressor_ticks[1] == 0
    # Repeated congestion converges to the floor, never below.
    for _ in range(200):
        allow = ctl.update(0.05, hot, served, demand)
    assert allow[0] == pytest.approx(1e8)


def test_controller_recovers_additively_when_quiet():
    cfg = _config([1e8], [1e9])
    ctl = CongestionController(cfg, cfg.ceilings())
    hot, quiet = np.ones(4), np.zeros(4)
    ctl.update(0.05, hot, np.array([5e8]), np.array([9e8]))
    throttled = float(ctl.allow[0])
    ctl.update(0.05, quiet, np.array([5e8]), np.array([9e8]))
    recovered = float(ctl.allow[0])
    assert throttled < recovered <= 1e9
    for _ in range(10_000):
        ctl.update(0.05, quiet, np.array([5e8]), np.array([9e8]))
    assert float(ctl.allow[0]) == pytest.approx(1e9), (
        "additive increase must recover to the ceiling, not beyond"
    )


# -- admission and config plumbing ---------------------------------------

def _machine(n_osts=4, n_ranks=8, seed=0):
    from repro.machines import jaguar

    return jaguar(n_osts=n_osts).build(n_ranks=n_ranks, seed=seed)


def _jobs(ranks=(4, 4), mb=8.0):
    from repro.apps import AppKernel, Variable
    from repro.core.transports import AdaptiveTransport
    from repro.units import MB

    return [
        TenantJob(
            f"t{i}",
            AdaptiveTransport(),
            AppKernel(f"t{i}", [Variable("x", shape=(int(mb * MB / 8),))]),
            r,
        )
        for i, r in enumerate(ranks)
    ]


def test_admission_refuses_oversubscribed_floors():
    m = _machine()
    pool_bw = m.n_osts * m.pool.config.drain_peak
    cfg = _config([pool_bw, pool_bw], [np.inf, np.inf])
    with pytest.raises(AdmissionError):
        run_tenants(m, _jobs(), qos=cfg)


def test_contract_count_must_match_jobs():
    m = _machine()
    cfg = _config([1e6], [np.inf])
    with pytest.raises(ConfigurationError):
        run_tenants(m, _jobs(), qos=cfg)


def test_machine_carries_ambient_qos_config():
    from repro.machines import jaguar

    cfg = _config([1e6, 1e6], [np.inf, np.inf])
    with with_qos(cfg):
        m = jaguar(n_osts=4).build(n_ranks=8, seed=0)
    assert m.qos is cfg
    r = run_tenants(m, _jobs())  # picked up from machine.qos
    assert r.qos is not None and r.qos["ticks"] > 0


def test_rank_faults_rejected_in_multitenant_runs():
    from repro.faults import FaultEvent, FaultPlan, with_faults

    plan = FaultPlan(
        events=(FaultEvent(time=0.1, kind="crash_rank", target=0),)
    )
    with with_faults(plan):
        m = _machine()
        with pytest.raises(ConfigurationError):
            run_tenants(m, _jobs())


# -- graceful degradation ------------------------------------------------

def test_over_contract_tenant_backpressured_never_errored():
    m = _machine(n_osts=4, n_ranks=12)
    pool_bw = m.n_osts * m.pool.config.drain_peak
    # Tenant 1 is hard-capped far below its demand rate: it must simply
    # finish late, with the denied bytes on the throttled ledger.
    cfg = _config(
        [0.3 * pool_bw, 0.01 * pool_bw],
        [np.inf, 0.05 * pool_bw],
    )
    r = run_tenants(m, _jobs(ranks=(4, 8), mb=16.0), qos=cfg)
    assert r.clean, "throttling must never surface as an error"
    assert all(o.error is None for o in r.outcomes)
    aggressor = r.outcomes[1]
    assert aggressor.throttled_bytes > 0
    assert aggressor.result.extra["qos_throttled_bytes"] > 0
    # Served covers the payload plus the transport's (tenant-tagged)
    # index writes — never less than the app's bytes, and close.
    assert aggressor.served_bytes >= aggressor.result.total_bytes
    assert aggressor.served_bytes == pytest.approx(
        aggressor.result.total_bytes, rel=0.01
    )
    assert r.qos["token_conservation_error"] < 1e-3
    # The capped tenant finishes after the reserved one.
    assert aggressor.completion_seconds > r.outcomes[0].completion_seconds


def test_jain_index_bounds():
    assert jain_index(np.array([1.0, 1.0, 1.0])) == pytest.approx(1.0)
    assert jain_index(np.array([1.0, 0.0, 0.0])) == pytest.approx(1 / 3)
    assert jain_index(np.zeros(0)) == 1.0


# -- parallel == serial --------------------------------------------------

def test_tenant_sweep_parallel_serial_bit_identical():
    from repro.harness.experiment import run_samples
    from repro.harness.figures.qos import _one_cell

    cell = partial(
        _one_cell,
        n_tenants=2,
        n_osts=8,
        cap=4,
        victim_ranks=4,
        victim_mb=24.0,
        aggressor_ranks=8,
        aggressor_mb=24.0,
        with_faults_check=True,
    )
    serial = run_samples(cell, 2, base_seed=3, jobs=1, label="qos-serial")
    fanned = run_samples(cell, 2, base_seed=3, jobs=2, label="qos-fanned")
    assert serial == fanned, (
        "tenant sweep must be bit-identical serial vs parallel"
    )
    for s in serial:
        assert s["qos_errored_tenants"] == 0
        assert s["qos_throttled_gb"] > 0
