"""Unit tests for the OST pool: caches, efficiency curves, load."""

import numpy as np
import pytest

from repro.lustre.ost import (
    EfficiencyCurve,
    OstPool,
    OstPoolConfig,
    lustre_drain_curve,
    lustre_ingest_curve,
)


class TestEfficiencyCurve:
    def test_exact_control_points(self):
        c = EfficiencyCurve([(1, 0.5), (4, 1.0), (16, 0.8)])
        assert c.at(1) == pytest.approx(0.5)
        assert c.at(4) == pytest.approx(1.0)
        assert c.at(16) == pytest.approx(0.8)

    def test_log_interpolation(self):
        c = EfficiencyCurve([(1, 0.5), (4, 1.0)])
        assert c.at(2) == pytest.approx(0.75)

    def test_flat_extrapolation(self):
        c = EfficiencyCurve([(2, 0.9), (8, 0.6)])
        assert c.at(1) == pytest.approx(0.9)
        assert c.at(1000) == pytest.approx(0.6)

    def test_vectorized(self):
        c = EfficiencyCurve([(1, 1.0), (16, 0.5)])
        out = c(np.array([1, 4, 16]))
        assert out.shape == (3,)
        assert out[0] == pytest.approx(1.0)
        assert out[2] == pytest.approx(0.5)

    def test_zero_count_treated_as_one(self):
        c = EfficiencyCurve([(1, 0.7), (4, 1.0)])
        assert c(np.array([0]))[0] == pytest.approx(0.7)

    def test_validation(self):
        with pytest.raises(ValueError):
            EfficiencyCurve([])
        with pytest.raises(ValueError):
            EfficiencyCurve([(0, 1.0)])
        with pytest.raises(ValueError):
            EfficiencyCurve([(1, 0.0)])
        with pytest.raises(ValueError):
            EfficiencyCurve([(1, 0.5), (1, 0.6)])

    def test_default_curves_sane(self):
        drain = lustre_drain_curve()
        # single stream below peak, small multiples at peak, heavy
        # concurrency degrades — the Fig. 1 shape.
        assert drain.at(1) < drain.at(4)
        assert drain.at(4) == pytest.approx(1.0)
        assert drain.at(32) < drain.at(8)
        ingest = lustre_ingest_curve()
        # RPC pipelining: slight rise to a plateau, decline only under
        # extreme request pressure.
        assert ingest.at(1) < ingest.at(16)
        assert ingest.at(16) == pytest.approx(1.0)
        assert ingest.at(512) < 0.9


class TestOstPoolConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            OstPoolConfig(n_osts=0)
        with pytest.raises(ValueError):
            OstPoolConfig(n_osts=1, drain_peak=-1)
        with pytest.raises(ValueError):
            OstPoolConfig(n_osts=1, drain_peak=100, ingest_peak=50)
        with pytest.raises(ValueError):
            OstPoolConfig(n_osts=1, hysteresis=1.5)


def make_pool(n=2, drain=100.0, ingest=200.0, cache=1000.0):
    flat = EfficiencyCurve([(1, 1.0)])
    cfg = OstPoolConfig(
        n_osts=n,
        drain_peak=drain,
        ingest_peak=ingest,
        cache_capacity=cache,
        drain_curve=flat,
        ingest_curve=flat,
    )
    return OstPool(cfg)


class TestOstPoolDynamics:
    def test_empty_cache_reports_ingest_capacity(self):
        pool = make_pool()
        caps = pool.capacities(np.array([1, 0]), 0.0)
        assert caps[0] == pytest.approx(200.0)

    def test_cache_fills_then_capacity_drops_to_drain(self):
        pool = make_pool()
        counts = np.array([1, 0])
        pool.capacities(counts, 0.0)
        # Ingest 200 B/s, drain 100 B/s -> net fill 100 B/s; cache 1000 B
        t = pool.next_transition(np.array([200.0, 0.0]), counts, 0.0)
        assert t == pytest.approx(10.0)
        pool.advance(10.0, np.array([200.0, 0.0]), 10.0)
        assert pool.cache_level[0] == pytest.approx(1000.0)
        caps = pool.capacities(counts, 10.0)
        assert caps[0] == pytest.approx(100.0)  # drain-limited now

    def test_hysteresis_restores_ingest(self):
        pool = make_pool()
        counts = np.array([1, 0])
        pool.capacities(counts, 0.0)
        pool.advance(10.0, np.array([200.0, 0.0]), 10.0)
        pool.capacities(counts, 10.0)
        assert pool.is_full()[0]
        # Now inflow stops; cache drains at 100 B/s; threshold 95%.
        t = pool.next_transition(np.array([0.0, 0.0]), counts, 10.0)
        assert t == pytest.approx(0.5)  # 50 bytes to drain below 950
        pool.advance(0.5, np.array([0.0, 0.0]), 10.5)
        caps = pool.capacities(counts, 10.5)
        assert not pool.is_full()[0]
        assert caps[0] == pytest.approx(200.0)

    def test_drained_accounting_conserves_bytes(self):
        pool = make_pool()
        inflow = np.array([150.0, 0.0])
        pool.capacities(np.array([1, 0]), 0.0)
        pool.advance(4.0, inflow, 4.0)
        absorbed = pool.bytes_absorbed[0]
        drained = pool.bytes_drained[0]
        level = pool.cache_level[0]
        assert absorbed == pytest.approx(600.0)
        assert absorbed == pytest.approx(drained + level)

    def test_cache_never_negative(self):
        pool = make_pool()
        pool.capacities(np.array([1, 0]), 0.0)
        pool.advance(100.0, np.zeros(2), 100.0)
        assert (pool.cache_level >= 0).all()

    def test_load_multiplier_scales_capacity(self):
        pool = make_pool(cache=0.0)  # cache-less: always drain-limited
        pool.set_load_multiplier(0.5, osts=np.array([0]))
        caps = pool.capacities(np.array([1, 1]), 0.0)
        assert caps[0] == pytest.approx(50.0)
        assert caps[1] == pytest.approx(100.0)

    def test_load_multiplier_invalid(self):
        pool = make_pool()
        with pytest.raises(ValueError):
            pool.set_load_multiplier(0.0)
        with pytest.raises(ValueError):
            pool.set_load_multiplier(2.0)

    def test_load_multiplier_triggers_callback(self):
        pool = make_pool()
        hits = []
        pool.bind_invalidate(lambda: hits.append(1))
        pool.set_load_multiplier(0.8)
        assert hits == [1]

    def test_no_transition_when_idle_and_not_full(self):
        pool = make_pool()
        counts = np.zeros(2, dtype=int)
        pool.capacities(counts, 0.0)
        t = pool.next_transition(np.zeros(2), counts, 0.0)
        assert t == float("inf")

    def test_efficiency_applied_to_drain(self):
        cfg = OstPoolConfig(
            n_osts=1,
            drain_peak=100.0,
            ingest_peak=200.0,
            cache_capacity=0.0,
            drain_curve=EfficiencyCurve([(1, 0.5), (4, 1.0)]),
            ingest_curve=EfficiencyCurve([(1, 1.0)]),
        )
        pool = OstPool(cfg)
        assert pool.capacities(np.array([1]), 0.0)[0] == pytest.approx(50.0)
        assert pool.capacities(np.array([4]), 0.0)[0] == pytest.approx(100.0)

    def test_summary(self):
        pool = make_pool()
        s = pool.summary()
        assert s["n_osts"] == 2
        assert s["mean_load_mult"] == pytest.approx(1.0)
