"""Unit tests for topology and message latency models."""

import numpy as np
import pytest

from repro.net import MessageLatencyModel, Topology


class TestTopology:
    def test_packed_placement(self):
        topo = Topology(n_ranks=30, cores_per_node=12)
        assert topo.n_nodes == 3
        assert topo.node_of(0) == 0
        assert topo.node_of(11) == 0
        assert topo.node_of(12) == 1
        assert topo.node_of(29) == 2

    def test_round_robin_placement(self):
        topo = Topology(n_ranks=6, cores_per_node=2, placement="round_robin")
        assert topo.n_nodes == 3
        assert [topo.node_of(r) for r in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_ranks_on_node(self):
        topo = Topology(n_ranks=24, cores_per_node=12)
        assert topo.ranks_on_node(1).tolist() == list(range(12, 24))

    def test_nic_capacities(self):
        topo = Topology(n_ranks=13, cores_per_node=12, nic_bandwidth=5.0)
        caps = topo.nic_capacities()
        assert caps.shape == (2,)
        assert (caps == 5.0).all()

    def test_vectorized_mapping_readonly(self):
        topo = Topology(n_ranks=5, cores_per_node=2)
        with pytest.raises(ValueError):
            topo.node_of_rank[0] = 7

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            Topology(n_ranks=0)
        with pytest.raises(ValueError):
            Topology(n_ranks=1, cores_per_node=0)
        with pytest.raises(ValueError):
            Topology(n_ranks=1, nic_bandwidth=0)
        with pytest.raises(ValueError):
            Topology(n_ranks=1, placement="diagonal")


class TestLatencyModel:
    def test_alpha_beta(self):
        m = MessageLatencyModel(alpha=1e-6, beta=1e-9)
        assert m.point_to_point(1000) == pytest.approx(2e-6)

    def test_zero_size(self):
        m = MessageLatencyModel(alpha=5e-6, beta=1e-9)
        assert m.point_to_point(0) == pytest.approx(5e-6)

    def test_hops(self):
        m = MessageLatencyModel(alpha=0, beta=0, hop_latency=1e-6)
        assert m.point_to_point(0, hops=10) == pytest.approx(1e-5)

    def test_tree_collective_log_depth(self):
        m = MessageLatencyModel(alpha=1e-6, beta=0)
        assert m.tree_collective(0, 2) == pytest.approx(1e-6)
        assert m.tree_collective(0, 1024) == pytest.approx(10e-6)

    def test_negative_params_rejected(self):
        with pytest.raises(ValueError):
            MessageLatencyModel(alpha=-1)
        m = MessageLatencyModel()
        with pytest.raises(ValueError):
            m.point_to_point(-5)
        with pytest.raises(ValueError):
            m.tree_collective(0, 0)
