"""Tests for the load recorder, plus its headline use: showing that
adaptive IO balances storage-target usage where MPI-IO leaves
stragglers."""

import numpy as np
import pytest

from repro.apps import AppKernel, Variable
from repro.core.transports import AdaptiveTransport, MpiIoTransport
from repro.machines import jaguar
from repro.metrics import LoadRecorder
from repro.units import MB


def app(mb=16.0):
    return AppKernel("r", [Variable("x", shape=(int(mb * MB / 8),))])


def record_run(transport, n_ranks=32, n_osts=8, seed=0, slow=None):
    m = jaguar(n_osts=n_osts).build(n_ranks=n_ranks, seed=seed)
    m.fs.max_stripe_count = max(2, n_osts // 4)
    if slow is not None:
        m.pool.set_load_multiplier(0.1, osts=np.array(slow))
    rec = LoadRecorder(m, interval=0.05)
    rec.start()
    res = transport.run(m, app(), output_name="out")
    rec.stop()
    return rec, res


class TestLoadRecorderMechanics:
    def test_samples_accumulate(self):
        rec, _ = record_run(AdaptiveTransport())
        assert rec.n_samples >= 5
        assert rec.times().shape == (rec.n_samples,)
        assert rec.inflow_matrix().shape == (rec.n_samples, 8)

    def test_validation(self):
        m = jaguar(n_osts=4).build(n_ranks=4, seed=0)
        with pytest.raises(ValueError):
            LoadRecorder(m, interval=0)
        rec = LoadRecorder(m)
        with pytest.raises(ValueError):
            rec.inflow_matrix()
        rec.start()
        with pytest.raises(RuntimeError):
            rec.start()

    def test_busy_fraction_bounds(self):
        rec, _ = record_run(AdaptiveTransport())
        busy = rec.busy_fraction()
        assert ((busy >= 0) & (busy <= 1)).all()

    def test_summary_fields(self):
        rec, _ = record_run(AdaptiveTransport())
        s = rec.utilization_summary()
        assert 0 < s["jain_fairness"] <= 1.0
        assert s["peak_total_inflow"] > 0
        assert s["n_samples"] == rec.n_samples


class TestStopAndRestart:
    def test_stop_cancels_pending_wakeup(self):
        """stop() must not leave the sampler parked on one more
        timeout: the calendar drains immediately and no extra sample
        lands an interval later."""
        m = jaguar(n_osts=4).build(n_ranks=4, seed=0)
        rec = LoadRecorder(m, interval=0.5)
        rec.start()
        m.env.run(until=1.6)  # samples at t=0, 0.5, 1.0, 1.5
        n_before = rec.n_samples
        rec.stop()
        # The cancellation kick fires at the current instant; nothing
        # remains at t=2.0 where the next sample would have landed.
        assert m.env.peek() <= m.env.now
        m.env.run()
        assert m.env.now < 2.0  # clock never reached the next wakeup
        assert rec.n_samples == n_before

    def test_stop_is_idempotent(self):
        m = jaguar(n_osts=4).build(n_ranks=4, seed=0)
        rec = LoadRecorder(m, interval=0.5)
        rec.start()
        m.env.run(until=1.0)
        rec.stop()
        rec.stop()  # second stop: no-op, no crash

    def test_stop_before_first_wakeup(self):
        """stop() immediately after start() — the sampler has not even
        bootstrapped yet, so there is nothing suspended to interrupt."""
        m = jaguar(n_osts=4).build(n_ranks=4, seed=0)
        rec = LoadRecorder(m, interval=0.5)
        rec.start()
        rec.stop()
        m.env.run()
        assert rec.n_samples == 0

    def test_restart_after_stop(self):
        m = jaguar(n_osts=4).build(n_ranks=4, seed=0)
        rec = LoadRecorder(m, interval=0.25)
        rec.start()
        m.env.run(until=1.0)
        rec.stop()
        n_window1 = rec.n_samples
        assert n_window1 >= 4
        rec.start()  # resume: a fresh sampling window
        m.env.run(until=2.0)
        rec.stop()
        assert rec.n_samples > n_window1
        rec.clear()
        assert rec.n_samples == 0


class TestEdgeCases:
    def test_empty_samples_errors_are_clear(self):
        m = jaguar(n_osts=4).build(n_ranks=4, seed=0)
        rec = LoadRecorder(m)
        for fn in (rec.inflow_matrix, rec.busy_fraction,
                   rec.utilization_summary):
            with pytest.raises(ValueError, match="no samples"):
                fn()

    def test_straggler_window_single_sample(self):
        m = jaguar(n_osts=4).build(n_ranks=4, seed=0)
        rec = LoadRecorder(m, interval=0.5)
        rec.start()
        m.env.run(until=0.1)  # sample at t=0 only
        rec.stop()
        assert rec.n_samples == 1
        assert rec.straggler_window() == 0.0

    def test_straggler_window_never_used_osts(self):
        """A machine that never writes: every sample is all-idle, so
        no OST was ever used and the window is zero."""
        m = jaguar(n_osts=4).build(n_ranks=4, seed=0)
        rec = LoadRecorder(m, interval=0.5)
        rec.start()
        m.env.run(until=2.1)
        rec.stop()
        assert rec.n_samples >= 4
        assert rec.straggler_window() == 0.0
        assert rec.straggler_window(threshold=1.0) == 0.0

    def test_straggler_window_threshold_one(self):
        """threshold=1.0 counts every live sample where at least one
        used OST is idle; it is bounded by the live span."""
        rec, _ = record_run(AdaptiveTransport(), seed=4)
        w_half = rec.straggler_window(0.5)
        w_full = rec.straggler_window(1.0)
        assert 0.0 <= w_half <= w_full
        assert w_full <= rec.n_samples * rec.interval


class TestBalanceStory:
    def test_adaptive_uses_more_targets_than_capped_mpiio(self):
        rec_a, _ = record_run(AdaptiveTransport(), seed=1)
        rec_m, _ = record_run(MpiIoTransport(build_index=False), seed=1)
        used_a = (rec_a.busy_fraction() > 0).sum()
        used_m = (rec_m.busy_fraction() > 0).sum()
        assert used_a > used_m  # 8 targets vs the stripe-capped 2

    def test_adaptive_fairness_exceeds_mpiio_under_slow_target(self):
        rec_a, _ = record_run(AdaptiveTransport(), seed=2, slow=[0])
        rec_m, _ = record_run(MpiIoTransport(build_index=False),
                              seed=2, slow=[0])
        fair_a = rec_a.utilization_summary()["jain_fairness"]
        fair_m = rec_m.utilization_summary()["jain_fairness"]
        assert fair_a > fair_m

    def test_straggler_window_shrinks_with_steering(self):
        """With one slow target, the no-steering run ends with a long
        few-targets-active tail; steering shortens it."""
        rec_ns, res_ns = record_run(
            AdaptiveTransport(steering=False), n_ranks=64, seed=3,
            slow=[0],
        )
        rec_s, res_s = record_run(
            AdaptiveTransport(), n_ranks=64, seed=3, slow=[0]
        )
        assert res_s.reported_time < res_ns.reported_time
        assert (
            rec_s.straggler_window() <= rec_ns.straggler_window()
        )


class TestAbortedRuns:
    def test_recorder_stops_cleanly_when_transport_raises(self):
        """A faulted run that aborts mid-write must leave the recorder
        in a consistent, stoppable state: samples up to the abort are
        kept, stop() cancels the pending wakeup, and the matrices
        stay rectangular."""
        from repro.errors import TransportError
        from repro.faults import two_ost_failure_plan

        plan = two_ost_failure_plan(osts=(0, 1), at=0.05)
        m = jaguar(n_osts=8).build(n_ranks=32, seed=0, faults=plan)
        m.fs.max_stripe_count = 2
        rec = LoadRecorder(m, interval=0.01)
        rec.start()
        with pytest.raises(TransportError):
            MpiIoTransport(build_index=False).run(m, app(), "out")
        rec.stop()
        assert rec.n_samples >= 1
        assert rec.inflow_matrix().shape == (rec.n_samples, 8)
        rec.utilization_summary()  # must not raise on a partial run
        # restartable after an abort, like any windowed recording
        rec.start()
        rec.stop()
