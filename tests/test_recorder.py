"""Tests for the load recorder, plus its headline use: showing that
adaptive IO balances storage-target usage where MPI-IO leaves
stragglers."""

import numpy as np
import pytest

from repro.apps import AppKernel, Variable
from repro.core.transports import AdaptiveTransport, MpiIoTransport
from repro.machines import jaguar
from repro.metrics import LoadRecorder
from repro.units import MB


def app(mb=16.0):
    return AppKernel("r", [Variable("x", shape=(int(mb * MB / 8),))])


def record_run(transport, n_ranks=32, n_osts=8, seed=0, slow=None):
    m = jaguar(n_osts=n_osts).build(n_ranks=n_ranks, seed=seed)
    m.fs.max_stripe_count = max(2, n_osts // 4)
    if slow is not None:
        m.pool.set_load_multiplier(0.1, osts=np.array(slow))
    rec = LoadRecorder(m, interval=0.05)
    rec.start()
    res = transport.run(m, app(), output_name="out")
    rec.stop()
    return rec, res


class TestLoadRecorderMechanics:
    def test_samples_accumulate(self):
        rec, _ = record_run(AdaptiveTransport())
        assert rec.n_samples >= 5
        assert rec.times().shape == (rec.n_samples,)
        assert rec.inflow_matrix().shape == (rec.n_samples, 8)

    def test_validation(self):
        m = jaguar(n_osts=4).build(n_ranks=4, seed=0)
        with pytest.raises(ValueError):
            LoadRecorder(m, interval=0)
        rec = LoadRecorder(m)
        with pytest.raises(ValueError):
            rec.inflow_matrix()
        rec.start()
        with pytest.raises(RuntimeError):
            rec.start()

    def test_busy_fraction_bounds(self):
        rec, _ = record_run(AdaptiveTransport())
        busy = rec.busy_fraction()
        assert ((busy >= 0) & (busy <= 1)).all()

    def test_summary_fields(self):
        rec, _ = record_run(AdaptiveTransport())
        s = rec.utilization_summary()
        assert 0 < s["jain_fairness"] <= 1.0
        assert s["peak_total_inflow"] > 0
        assert s["n_samples"] == rec.n_samples


class TestBalanceStory:
    def test_adaptive_uses_more_targets_than_capped_mpiio(self):
        rec_a, _ = record_run(AdaptiveTransport(), seed=1)
        rec_m, _ = record_run(MpiIoTransport(build_index=False), seed=1)
        used_a = (rec_a.busy_fraction() > 0).sum()
        used_m = (rec_m.busy_fraction() > 0).sum()
        assert used_a > used_m  # 8 targets vs the stripe-capped 2

    def test_adaptive_fairness_exceeds_mpiio_under_slow_target(self):
        rec_a, _ = record_run(AdaptiveTransport(), seed=2, slow=[0])
        rec_m, _ = record_run(MpiIoTransport(build_index=False),
                              seed=2, slow=[0])
        fair_a = rec_a.utilization_summary()["jain_fairness"]
        fair_m = rec_m.utilization_summary()["jain_fairness"]
        assert fair_a > fair_m

    def test_straggler_window_shrinks_with_steering(self):
        """With one slow target, the no-steering run ends with a long
        few-targets-active tail; steering shortens it."""
        rec_ns, res_ns = record_run(
            AdaptiveTransport(steering=False), n_ranks=64, seed=3,
            slow=[0],
        )
        rec_s, res_s = record_run(
            AdaptiveTransport(), n_ranks=64, seed=3, slow=[0]
        )
        assert res_s.reported_time < res_ns.reported_time
        assert (
            rec_s.straggler_window() <= rec_ns.straggler_window()
        )
