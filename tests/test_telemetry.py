"""The telemetry subsystem: registry, straggler detector, monitor,
profiler, dashboard, CLIs.

The headline validation is the straggler ground-truth cell: a
background job hammers a known minority of OSTs while an adaptive
transport writes a real app's output, and the online detector must
flag exactly the interfered set — no misses, no false alarms.
"""

import json
import math

import numpy as np
import pytest

from repro.apps import AppKernel, Variable
from repro.core.transports import AdaptiveTransport
from repro.machines import jaguar
from repro.telemetry import (
    NULL_REGISTRY,
    MetricsRegistry,
    OnlineMonitor,
    Profiler,
    StragglerDetector,
    collecting,
    get_active_registry,
    profiling,
    render_dashboard,
)
from repro.units import MB


def small_app(mb=2.0):
    return AppKernel(
        "telemetered", [Variable("x", shape=(int(mb * MB / 8),))]
    )


# -- registry -------------------------------------------------------------
class TestInstruments:
    def test_counter_gauge_histogram_series(self):
        reg = MetricsRegistry()
        c = reg.counter("a.count")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        g = reg.gauge("a.level")
        g.set(1.0)
        g.set(-2.0)
        assert g.value == -2.0
        h = reg.histogram("a.lat", buckets=(1.0, 10.0))
        h.observe(0.5)
        h.observe(5.0)
        h.observe(50.0)
        assert h.count == 3 and h.sum == 55.5
        s = reg.series("a.ts")
        s.sample(0.0, 1.0)
        s.sample(1.0, 2.0)
        assert s.last == 2.0
        assert len(reg) == 4

    def test_labels_make_distinct_instruments(self):
        reg = MetricsRegistry()
        reg.counter("ost.writes", ost=0).inc()
        reg.counter("ost.writes", ost=1).inc(5)
        # Same name+labels returns the same instrument.
        assert reg.counter("ost.writes", ost=0) is reg.counter(
            "ost.writes", ost=0
        )
        assert reg.find("counter", "ost.writes", ost=1).value == 5.0
        assert reg.find("counter", "ost.writes", ost=7) is None
        assert len(reg.instruments("ost.writes")) == 2

    def test_series_stamped_with_run_index(self):
        reg = MetricsRegistry()

        class _Env:  # stand-in: bind() only identity-checks it
            pass

        reg.bind(_Env())
        s = reg.series("ts")
        s.sample(0.5, 1.0)
        reg.bind(_Env())  # new environment -> new run
        s.sample(0.1, 2.0)
        assert s.samples == [(0, 0.5, 1.0), (1, 0.1, 2.0)]
        assert reg.n_runs == 2

    def test_disabled_registry_hands_out_noop_instruments(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("x")
        c.inc(100)
        reg.series("y").sample(0.0, 1.0)
        reg.histogram("z").observe(3.0)
        assert c.value == 0.0
        assert len(reg) == 0
        assert reg.snapshot()["metrics"] == []
        # NULL_REGISTRY is the shared canonical instance of the same.
        assert NULL_REGISTRY.enabled is False
        NULL_REGISTRY.counter("x").inc()
        assert len(NULL_REGISTRY) == 0


class TestSnapshotAbsorb:
    def _worker_snapshot(self, n_runs=1, count=3.0):
        reg = MetricsRegistry()
        reg._n_binds = n_runs
        reg.counter("fabric.settles").inc(count)
        reg.gauge("fabric.active_flows").set(7.0)
        h = reg.histogram("t.phase", buckets=(1.0, 10.0), phase="write")
        h.observe(0.5)
        s = reg.series("ost.inflow", ost=0)
        s.sample(0.25, 9.0)
        return reg.snapshot()

    def test_snapshot_round_trips_through_json(self):
        snap = self._worker_snapshot()
        loaded = json.loads(json.dumps(snap))
        reg = MetricsRegistry()
        reg.absorb(loaded)
        assert reg.find("counter", "fabric.settles").value == 3.0
        assert reg.find(
            "histogram", "t.phase", phase="write"
        ).count == 1

    def test_absorb_adds_counters_and_rebases_series_runs(self):
        reg = MetricsRegistry()
        reg._n_binds = 2  # two local runs already recorded
        reg.counter("fabric.settles").inc(10)
        reg.absorb(self._worker_snapshot(n_runs=1, count=3.0))
        reg.absorb(self._worker_snapshot(n_runs=2, count=4.0))
        assert reg.find("counter", "fabric.settles").value == 17.0
        s = reg.find("series", "ost.inflow", ost=0)
        # Worker run 0 lands after the local runs: 2, then 3 (the
        # second worker's base skips the first worker's 1 run... which
        # claimed indices 2; second absorb starts at 3).
        assert [r for r, _, _ in s.samples] == [2, 3]
        assert reg._n_binds == 5  # 2 local + 1 + 2
        assert reg.n_runs == 5

    def test_disabled_registry_ignores_absorb(self):
        reg = MetricsRegistry(enabled=False)
        reg.absorb(self._worker_snapshot())
        assert len(reg) == 0


class TestPrometheus:
    def test_exposition_parses(self):
        reg = MetricsRegistry()
        reg.counter("fabric.settles").inc(3)
        reg.counter("transport.bytes", transport="adaptive").inc(1e9)
        reg.histogram("t.phase", buckets=(1.0, 10.0)).observe(0.5)
        reg.gauge("flows").set(4)
        s = reg.series("ost.inflow", ost=3)
        s.sample(0.0, 5.0)
        s.sample(1.0, 6.5)
        text = reg.to_prometheus()
        assert "repro_fabric_settles_total 3" in text
        assert 'transport="adaptive"' in text
        saw_sample = False
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            name, value = line.rsplit(" ", 1)
            assert name
            assert math.isfinite(float(value))
            saw_sample = True
        assert saw_sample
        # Histogram triplet with the +Inf bucket.
        assert 'le="+Inf"' in text
        assert "repro_t_phase_sum" in text
        assert "repro_t_phase_count 1" in text
        # Series exports its latest value.
        assert "6.5" in text


class TestActiveRegistry:
    def test_collecting_scopes_the_active_registry(self):
        assert get_active_registry() is None
        with collecting() as reg:
            assert get_active_registry() is reg
            with collecting(NULL_REGISTRY):
                assert get_active_registry() is NULL_REGISTRY
            assert get_active_registry() is reg
        assert get_active_registry() is None

    def test_machine_build_attaches_active_registry(self):
        with collecting() as reg:
            m = jaguar(n_osts=4).build(n_ranks=4, seed=0)
        assert m.metrics is reg
        assert m.monitor is not None
        assert m.env.metrics is reg
        # Outside the scope, builds are bare again.
        m2 = jaguar(n_osts=4).build(n_ranks=4, seed=0)
        assert m2.metrics is None and m2.monitor is None
        assert m2.env.metrics is None


# -- straggler detector ---------------------------------------------------
class TestStragglerDetector:
    def _feed(self, det, rates, n, t0=0.0, dt=1.0):
        rates = np.asarray(rates, dtype=float)
        active = np.ones(len(rates), dtype=bool)
        for k in range(n):
            det.update(t0 + k * dt, rates, active)

    def test_slow_minority_flagged_fast_majority_not(self):
        det = StragglerDetector(8)
        rates = [10.0] + [100.0] * 7
        self._feed(det, rates, 5)
        assert det.stragglers() == {0}
        assert det.is_straggler(0) and not det.is_straggler(1)
        assert det.ever_flagged() == {0}
        assert det.first_flag_time[0] == 2.0  # 3rd sample: min_samples
        assert det.zscores()[0] < -det.z_threshold
        summary = det.summary()
        assert summary["flagged"] == [0]
        assert summary["first_flag_time"] == {"0": 2.0}

    def test_uniform_pool_never_flags(self):
        det = StragglerDetector(8)
        # Tiny jitter around a common rate: the MAD floor and deficit
        # guard must keep noise-level variation unflagged.
        rates = 100.0 + 0.001 * np.arange(8)
        self._feed(det, rates, 10)
        assert det.stragglers() == set()
        assert det.ever_flagged() == set()

    def test_recovery_unflags_and_records_transition(self):
        det = StragglerDetector(8)
        self._feed(det, [10.0] + [100.0] * 7, 5)
        assert det.stragglers() == {0}
        # OST 0 comes back: its EWMA climbs past the deficit bound.
        self._feed(det, [100.0] * 8, 10, t0=10.0)
        assert det.stragglers() == set()
        assert det.ever_flagged() == {0}  # history survives recovery
        flags = [(ost, up) for _, ost, up in det.transitions]
        assert flags == [(0, True), (0, False)]

    def test_idle_osts_are_not_judged(self):
        det = StragglerDetector(8)
        rates = np.array([0.0, 0.0] + [100.0] * 6)
        active = rates > 0
        for k in range(5):
            det.update(float(k), rates, active)
        # 0 and 1 are unused, not slow.
        assert det.stragglers() == set()
        assert det.n_updates[0] == 0

    def test_needs_three_judged_osts(self):
        det = StragglerDetector(2)
        self._feed(det, [1.0, 100.0], 10)
        assert det.stragglers() == set()  # 2 judged < 3: no baseline

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            StragglerDetector(0)
        with pytest.raises(ValueError):
            StragglerDetector(4, alpha=0.0)
        with pytest.raises(ValueError):
            StragglerDetector(4, z_threshold=-1.0)
        with pytest.raises(ValueError):
            StragglerDetector(4, deficit=1.5)
        det = StragglerDetector(4)
        with pytest.raises(ValueError):
            det.update(0.0, np.zeros(3), np.zeros(3, dtype=bool))


# -- monitor --------------------------------------------------------------
class TestOnlineMonitor:
    def _machine(self, registry=None):
        m = jaguar(n_osts=4).build(n_ranks=4, seed=0)
        return m, OnlineMonitor(
            m, registry=registry, interval=1.0,
            keep_samples=True, max_samples=4,
        )

    def test_validation(self):
        m = jaguar(n_osts=4).build(n_ranks=4, seed=0)
        with pytest.raises(ValueError):
            OnlineMonitor(m, interval=0.0)
        with pytest.raises(ValueError):
            OnlineMonitor(m, mode="polling")
        with pytest.raises(ValueError):
            OnlineMonitor(m, max_samples=1)
        mon = OnlineMonitor(m)
        with pytest.raises(RuntimeError):
            mon.start()  # settle-mode monitors install(), not start()
        timer = OnlineMonitor(m, mode="timer")
        with pytest.raises(RuntimeError):
            timer.install()

    def test_doubling_decimation_bounds_samples(self):
        reg = MetricsRegistry()
        m, mon = self._machine(registry=reg)
        reg.bind(m.env)
        for k in range(32):
            mon._record(float(k), settle=True)
        # The interval doubled (a whole number of times) and the
        # stored timeline stayed within the budget.
        assert mon.interval > 1.0
        assert math.log2(mon.interval).is_integer()
        assert len(mon.samples) <= 4
        series = reg.find("series", "ost.inflow", ost=0)
        assert len(series.samples) <= 4
        # Decimation keeps a strictly increasing timeline.
        times = [s.time for s in mon.samples]
        assert times == sorted(times)

    def test_decimation_only_thins_current_run(self):
        reg = MetricsRegistry()
        m, mon = self._machine(registry=reg)
        reg.bind(m.env)
        s = reg.series("ost.inflow", ost=0)
        s.samples.append((99, 0.0, 1.0))  # a prior run's sample
        for k in range(8):
            mon._record(float(k), settle=True)
        assert (99, 0.0, 1.0) in s.samples

    def test_settle_mode_records_ambiently_during_run(self):
        reg = MetricsRegistry()
        with collecting(reg):
            m = jaguar(n_osts=4).build(n_ranks=8, seed=0)
        # A run long enough to cross several sampling intervals.
        AdaptiveTransport(n_osts_used=4).run(
            m, small_app(mb=16.0), output_name="out"
        )
        s = reg.find("series", "ost.inflow", ost=0)
        assert s is not None and len(s.samples) > 1
        assert reg.find("counter", "fabric.settles").value > 0
        assert reg.find("counter", "fs.writes").value > 0
        assert reg.find(
            "counter", "transport.runs", transport="adaptive"
        ).value == 1.0
        h = reg.find(
            "histogram", "transport.phase_seconds",
            transport="adaptive", phase="write",
        )
        assert h is not None and h.count > 0
        ev = reg.find("series", "sim.events")
        assert ev.last > 0


# -- profiler -------------------------------------------------------------
class TestProfiler:
    def test_sections_and_exclusive_attribution(self):
        prof = Profiler()
        with prof.section("engine"):
            with prof.section("fabric.settle"):
                pass
        d = prof.to_dict()
        assert d["sections"]["engine"]["calls"] == 1
        assert d["sections"]["fabric.settle"]["calls"] == 1
        # Exclusive: parent self-time excludes the child's span.
        total = sum(s["seconds"] for s in d["sections"].values())
        assert d["tracked_seconds"] == pytest.approx(total)

    def test_profiled_run_attributes_time(self):
        from repro.sim.process import Process

        orig_step = Process._step
        m = jaguar(n_osts=4).build(n_ranks=8, seed=0)
        with profiling(m) as prof:
            assert Process._step is not orig_step
            AdaptiveTransport(n_osts_used=4).run(
                m, small_app(), output_name="out"
            )
        d = prof.to_dict()
        assert d["sections"]["engine"]["seconds"] > 0
        assert d["sections"]["protocol"]["seconds"] > 0
        assert d["sections"]["fabric.settle"]["calls"] > 0
        assert d["wall_seconds"] >= d["tracked_seconds"] * 0.99
        report = prof.report()
        assert "protocol" in report and "total" in report
        # Patches are refcounted away: the class is pristine again.
        assert Process._step is orig_step
        assert m.env.profiler is None

    def test_double_install_rejected(self):
        m = jaguar(n_osts=4).build(n_ranks=4, seed=0)
        prof = Profiler()
        prof.install(m)
        try:
            with pytest.raises(RuntimeError):
                Profiler().install(m)
        finally:
            prof.uninstall(m)


# -- ground truth: the detector against a known interference plan ---------
@pytest.fixture(scope="module")
def demo_cell():
    from repro.tools.monitor import run_demo_cell

    return run_demo_cell(profile=True)


class TestGroundTruth:
    def test_detector_flags_exactly_the_interfered_osts(self, demo_cell):
        _reg, detector, ground_truth, _prof = demo_cell
        assert detector is not None
        assert detector.ever_flagged() == set(ground_truth)

    def test_flag_transitions_persisted_to_registry(self, demo_cell):
        reg, detector, ground_truth, _prof = demo_cell
        flagged_series = {
            int(inst.labels[0][1])
            for inst in reg.instruments("ost.straggler")
            if any(v == 1.0 for _, _, v in inst.samples)
        }
        assert flagged_series == set(ground_truth)

    def test_demo_profile_has_breakdown(self, demo_cell):
        _reg, _det, _gt, prof = demo_cell
        assert prof["sections"]["protocol"]["seconds"] > 0
        assert prof["wall_seconds"] > 0

    def test_majority_interference_rejected(self):
        from repro.tools.monitor import run_demo_cell

        with pytest.raises(SystemExit):
            run_demo_cell(pool_osts=8, interfere_osts=5)


# -- dashboard ------------------------------------------------------------
class TestDashboard:
    def test_renders_timelines_and_straggler_flags(self, demo_cell):
        reg, _det, ground_truth, prof = demo_cell
        html = render_dashboard(
            reg.snapshot(), profile=prof, title="cell under test"
        )
        assert html.startswith("<!DOCTYPE html>")
        assert "cell under test" in html
        assert "<svg" in html and "polyline" in html
        assert "straggler" in html.lower()
        for ost in ground_truth:
            assert f"<td>ost {ost}</td>" in html  # straggler table row
        # Self-profile table made it in.
        assert "fabric.settle" in html

    def test_renders_empty_snapshot(self):
        html = render_dashboard({"version": 1, "n_runs": 0, "metrics": []})
        assert "<html" in html  # degrades gracefully, no crash


# -- CLIs -----------------------------------------------------------------
class TestMonitorCli:
    def test_live_cell_writes_all_artifacts(self, tmp_path, capsys):
        from repro.tools.monitor import main

        dash = tmp_path / "dash.html"
        mjson = tmp_path / "metrics.json"
        prom = tmp_path / "metrics.prom"
        rc = main([
            "--app", "xgc1", "--procs", "32", "--pool-osts", "12",
            "--interfere-osts", "0", "--seed", "1",
            "--dashboard", str(dash), "--json", str(mjson),
            "--prometheus", str(prom),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "stragglers flagged" in out
        assert "<svg" in dash.read_text()
        snap = json.loads(mjson.read_text())
        assert snap["metrics"]
        assert any(
            line and not line.startswith("#")
            for line in prom.read_text().splitlines()
        )

    def test_from_json_renders_dashboard(self, tmp_path, capsys):
        from repro.tools.monitor import main

        mjson = tmp_path / "metrics.json"
        main([
            "--app", "xgc1", "--procs", "16", "--pool-osts", "8",
            "--interfere-osts", "0", "--json", str(mjson),
        ])
        capsys.readouterr()
        dash = tmp_path / "replay.html"
        assert main(["--from-json", str(mjson),
                     "--dashboard", str(dash)]) == 0
        assert "<svg" in dash.read_text()
        # Prometheus needs a live registry; snapshots are refused.
        with pytest.raises(SystemExit):
            main(["--from-json", str(mjson),
                  "--prometheus", str(tmp_path / "x.prom")])


class TestBenchReport:
    def _write(self, path, name, data):
        path.joinpath(f"BENCH_{name}.json").write_text(
            json.dumps({"name": name, "text": "t", "data": data})
        )

    def test_collects_and_compares_against_previous(self, tmp_path):
        from repro.tools.bench_report import collect, render_markdown

        self._write(tmp_path, "kernel", {
            "events_per_sec": 200.0,
            "wall": {"events": 0.5},
            "previous": {"events_per_sec": 100.0, "wall": {"events": 1.0}},
        })
        self._write(tmp_path, "fresh", {"metric": 7})
        records = collect(tmp_path)
        assert [r["name"] for r in records] == ["fresh", "kernel"]
        kernel = records[1]
        by_name = {m["metric"]: m for m in kernel["metrics"]}
        assert by_name["events_per_sec"]["ratio"] == 2.0
        assert by_name["wall.events"]["ratio"] == 0.5
        md = render_markdown(records)
        assert "| kernel | events_per_sec | 200 | 100 | 2.00x |" in md
        assert "| fresh | metric | 7 | - | - |" in md
        changed = render_markdown(records, changed_only=True)
        assert "fresh" not in changed

    def test_cli_writes_json(self, tmp_path, capsys):
        from repro.tools.bench_report import main

        self._write(tmp_path, "a", {"x": 1.0})
        out_json = tmp_path / "report.json"
        rc = main(["--results", str(tmp_path), "--json", str(out_json)])
        assert rc == 0
        assert "| a | x | 1 |" in capsys.readouterr().out
        payload = json.loads(out_json.read_text())
        assert payload["benchmarks"][0]["name"] == "a"

    def test_missing_dir_fails_cleanly(self, tmp_path, capsys):
        from repro.tools.bench_report import main

        assert main(["--results", str(tmp_path / "nope")]) == 1
        assert "not found" in capsys.readouterr().err


class TestExperimentMetricsFlag:
    def test_metrics_to_writes_snapshot(self, tmp_path):
        from repro.harness.experiment import metrics_to

        path = tmp_path / "m.json"
        with metrics_to(str(path)) as reg:
            m = jaguar(n_osts=4).build(n_ranks=4, seed=0)
            AdaptiveTransport(n_osts_used=4).run(
                m, small_app(), output_name="out"
            )
        assert m.metrics is reg
        snap = json.loads(path.read_text())
        names = {x["name"] for x in snap["metrics"]}
        assert "fabric.settles" in names and "ost.inflow" in names
