"""Tests for the interference generators."""

import numpy as np
import pytest

from repro.interference import (
    BackgroundWriterJob,
    LoadState,
    MarkovLoadModel,
    install_production_noise,
    production_noise,
)
from repro.interference.markov import global_chain, per_ost_chain
from repro.machines import jaguar, xtp
from repro.units import MB


class TestLoadState:
    def test_validation(self):
        with pytest.raises(ValueError):
            LoadState("x", 0.0, 0.5, 10)
        with pytest.raises(ValueError):
            LoadState("x", 0.8, 0.5, 10)
        with pytest.raises(ValueError):
            LoadState("x", 0.5, 1.5, 10)
        with pytest.raises(ValueError):
            LoadState("x", 0.5, 0.8, 0)

    def test_draw_within_band(self):
        st = LoadState("busy", 0.4, 0.7, 10)
        rng = np.random.default_rng(0)
        draws = [st.draw_multiplier(rng) for _ in range(200)]
        assert all(0.4 <= d <= 0.7 for d in draws)


class TestMarkovLoadModel:
    def test_transition_matrix_validated(self):
        states = [LoadState("a", 0.9, 1.0, 10), LoadState("b", 0.5, 0.6, 10)]
        with pytest.raises(ValueError):
            MarkovLoadModel(states, [[0.5, 0.5]])
        with pytest.raises(ValueError):
            MarkovLoadModel(states, [[0.5, 0.6], [0.5, 0.5]])
        with pytest.raises(ValueError):
            MarkovLoadModel(states, [[1.1, -0.1], [0.5, 0.5]])

    def test_stationary_sums_to_one(self):
        model = per_ost_chain()
        pi = model.stationary_distribution()
        assert pi.sum() == pytest.approx(1.0)
        assert (pi >= 0).all()

    def test_stationary_dwell_weighting(self):
        """Equal jump probabilities but unequal dwells must weight by time."""
        states = [
            LoadState("short", 0.9, 1.0, mean_dwell=1.0),
            LoadState("long", 0.5, 0.6, mean_dwell=9.0),
        ]
        model = MarkovLoadModel(states, [[0, 1], [1, 0]])
        pi = model.stationary_distribution()
        assert pi[1] == pytest.approx(0.9, abs=1e-6)

    def test_default_chain_mostly_quiet(self):
        pi = per_ost_chain().stationary_distribution()
        assert pi[0] > 0.5  # quiet dominates

    def test_stationary_multiplier_sampling(self):
        rng = np.random.default_rng(1)
        m = per_ost_chain().sample_stationary_multipliers(500, rng)
        assert m.shape == (500,)
        assert (m > 0).all() and (m <= 1.0).all()
        # Transience: the sample must contain both fast and slow targets.
        assert m.max() / m.min() > 2.0

    def test_run_chain_evolves(self):
        machine = jaguar(n_osts=4).build(n_ranks=4, seed=0)
        seen = []
        model = per_ost_chain()
        machine.env.process(
            model.run_chain(
                machine, seen.append, machine.rngs.get("test.chain")
            )
        )
        machine.env.run(until=2000.0)
        assert len(seen) >= 3  # several state entries over 2000 s


class TestProductionNoise:
    def test_presets_exist(self):
        for name in ("jaguar", "franklin", "xtp"):
            preset = production_noise(name)
            assert 0 <= preset.intensity <= 1

    def test_unknown_preset(self):
        with pytest.raises(ValueError):
            production_noise("bluegene")

    def test_xtp_preset_is_mild(self):
        assert production_noise("xtp").intensity < 0.2

    def test_install_frozen_sets_multipliers(self):
        m = jaguar(n_osts=16).build(n_ranks=4, seed=3)
        noise = install_production_noise(m, live=False)
        mult = noise.current_multipliers()
        assert mult.shape == (16,)
        assert np.allclose(m.pool.load_mult, mult)

    def test_install_live_evolves(self):
        m = jaguar(n_osts=4).build(n_ranks=4, seed=3)
        noise = install_production_noise(m, live=True)
        first = noise.current_multipliers().copy()
        m.env.run(until=3000.0)
        assert not np.allclose(first, noise.current_multipliers())

    def test_double_start_rejected(self):
        m = jaguar(n_osts=4).build(n_ranks=4, seed=3)
        noise = install_production_noise(m, live=True)
        with pytest.raises(RuntimeError):
            noise.start()

    def test_reproducible_across_builds(self):
        a = jaguar(n_osts=8).build(n_ranks=4, seed=11)
        b = jaguar(n_osts=8).build(n_ranks=4, seed=11)
        na = install_production_noise(a, live=False)
        nb = install_production_noise(b, live=False)
        assert np.allclose(na.current_multipliers(),
                           nb.current_multipliers())

    def test_different_seeds_differ(self):
        a = jaguar(n_osts=8).build(n_ranks=4, seed=11)
        b = jaguar(n_osts=8).build(n_ranks=4, seed=12)
        na = install_production_noise(a, live=False)
        nb = install_production_noise(b, live=False)
        assert not np.allclose(na.current_multipliers(),
                               nb.current_multipliers())


class TestBackgroundWriterJob:
    def make_machine(self):
        return xtp(n_blades=10).build(
            n_ranks=12, seed=0, extra_service_nodes=2
        )

    def test_paper_default_shape(self):
        m = self.make_machine()
        job = BackgroundWriterJob(m, n_osts=8, writers_per_ost=3,
                                  write_size=1 * MB)
        assert job.n_writers == 24
        assert len(job.osts) == 8

    def test_writers_generate_load(self):
        m = self.make_machine()
        job = BackgroundWriterJob(
            m, n_osts=2, writers_per_ost=2, write_size=10 * MB
        )
        job.start()
        m.env.run(until=5.0)
        assert job.bytes_written > 0
        counts = m.fs.fabric.sink_stream_counts()
        assert counts[job.osts].sum() > 0

    def test_stop_ends_load(self):
        m = self.make_machine()
        job = BackgroundWriterJob(
            m, n_osts=1, writers_per_ost=1, write_size=1 * MB
        )
        job.start()
        m.env.run(until=2.0)
        job.stop()
        m.env.run()  # drains: writers exit after current write
        assert m.fs.fabric.active_flow_count == 0

    def test_needs_service_nodes(self):
        m = xtp(n_blades=10).build(n_ranks=12, seed=0)
        with pytest.raises(ValueError):
            BackgroundWriterJob(m)

    def test_double_start_rejected(self):
        m = self.make_machine()
        job = BackgroundWriterJob(m, n_osts=1, writers_per_ost=1,
                                  write_size=1 * MB)
        job.start()
        with pytest.raises(RuntimeError):
            job.start()

    def test_validation(self):
        m = self.make_machine()
        with pytest.raises(ValueError):
            BackgroundWriterJob(m, n_osts=0)
        with pytest.raises(ValueError):
            BackgroundWriterJob(m, write_size=0)
        with pytest.raises(ValueError):
            BackgroundWriterJob(m, n_osts=99)
        with pytest.raises(ValueError):
            BackgroundWriterJob(m, n_osts=2, osts=[1])
