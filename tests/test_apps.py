"""Tests for the application IO kernels."""

import pytest

from repro.apps import AppKernel, Variable, gtc, pixie3d, s3d, xgc1
from repro.units import MB, GB


class TestVariable:
    def test_nbytes(self):
        v = Variable("x", shape=(10, 10), dtype="f8")
        assert v.nbytes == 800.0
        assert v.count == 100

    def test_validation(self):
        with pytest.raises(ValueError):
            Variable("x", shape=(0,))
        with pytest.raises(ValueError):
            Variable("x", shape=(1,), dtype="complex")
        with pytest.raises(ValueError):
            Variable("x", shape=(1,), value_range=(2.0, 1.0))


class TestAppKernel:
    def test_duplicate_vars_rejected(self):
        with pytest.raises(ValueError):
            AppKernel("a", [Variable("x", (1,)), Variable("x", (2,))])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            AppKernel("a", [])

    def test_index_entries_layout(self):
        app = AppKernel(
            "a", [Variable("x", (10,)), Variable("y", (5,))]
        )
        entries = app.index_entries(rank=3, base_offset=1000.0)
        assert entries[0].offset == 1000.0
        assert entries[1].offset == 1080.0
        assert all(e.writer == 3 for e in entries)
        assert sum(e.nbytes for e in entries) == app.per_process_bytes

    def test_characteristics_deterministic(self):
        app = pixie3d("small")
        var = app.variables[0]
        a = app.characteristics_of(5, var)
        b = app.characteristics_of(5, var)
        assert a == b
        c = app.characteristics_of(6, var)
        assert a != c

    def test_characteristics_within_range(self):
        app = pixie3d("small")
        for rank in range(5):
            for var in app.variables:
                ch = app.characteristics_of(rank, var)
                lo, hi = var.value_range
                assert lo <= ch.minimum <= ch.maximum <= hi

    def test_sample_block(self):
        app = xgc1()
        block = app.sample_block(0, "iweight", n=16)
        assert block.shape == (16,)
        with pytest.raises(KeyError):
            app.sample_block(0, "nope")


class TestPaperSizes:
    def test_pixie3d_small_is_2mb(self):
        assert pixie3d("small").per_process_bytes == pytest.approx(
            2 * MB, rel=0.05
        )

    def test_pixie3d_large_is_128mb(self):
        assert pixie3d("large").per_process_bytes == pytest.approx(
            128 * MB, rel=0.05
        )

    def test_pixie3d_xl_is_1gb(self):
        assert pixie3d("xl").per_process_bytes == pytest.approx(
            1 * GB, rel=0.08
        )

    def test_pixie3d_eight_double_3d_arrays(self):
        app = pixie3d("large")
        assert len(app.variables) == 8
        assert all(v.dtype == "f8" for v in app.variables)
        assert all(len(v.shape) == 3 for v in app.variables)

    def test_pixie3d_unknown_model(self):
        with pytest.raises(ValueError):
            pixie3d("gigantic")

    def test_xgc1_is_38mb(self):
        assert xgc1().per_process_bytes == pytest.approx(38 * MB, rel=0.01)

    def test_gtc_default_is_128mb(self):
        assert gtc().per_process_bytes == pytest.approx(128 * MB, rel=0.01)

    def test_s3d_mid_sized(self):
        assert 10 * MB < s3d().per_process_bytes < 40 * MB

    def test_weak_scaling_total(self):
        app = pixie3d("xl")
        # Paper: 16k processes x 1 GB = 16 TB per output.
        assert app.total_bytes(16384) == pytest.approx(16.8e12, rel=0.05)
