"""Integration tests: all four transports end-to-end on small machines."""

import numpy as np
import pytest

from repro.apps import AppKernel, Variable
from repro.apps.pixie3d import pixie3d
from repro.core import Adios
from repro.core.transports import (
    AdaptiveTransport,
    MpiIoTransport,
    PosixTransport,
    StaggerTransport,
)
from repro.errors import ConfigurationError
from repro.machines import jaguar
from repro.units import MB


def tiny_app(mb_per_proc=4.0):
    """A small app so tests run fast."""
    count = int(mb_per_proc * MB / 8)
    return AppKernel(
        "tiny",
        [
            Variable("a", shape=(count // 2,), value_range=(0.0, 1.0)),
            Variable("b", shape=(count - count // 2,), value_range=(-1, 1)),
        ],
    )


def small_machine(n_ranks=16, n_osts=4, seed=0):
    return jaguar(n_osts=n_osts).build(n_ranks=n_ranks, seed=seed)


ALL_TRANSPORTS = [
    PosixTransport(),
    MpiIoTransport(),
    AdaptiveTransport(),
    StaggerTransport(),
]


class TestAllTransportsContract:
    @pytest.mark.parametrize(
        "transport", ALL_TRANSPORTS, ids=lambda t: t.name
    )
    def test_result_contract(self, transport):
        m = small_machine()
        app = tiny_app()
        res = transport.run(m, app, output_name="t")
        assert res.transport == transport.name
        assert res.n_writers == 16
        assert res.total_bytes == pytest.approx(app.per_process_bytes * 16)
        assert res.write_time > 0
        assert res.reported_time >= res.write_time
        assert len(res.per_writer) == 16
        assert sorted(w.rank for w in res.per_writer) == list(range(16))

    @pytest.mark.parametrize(
        "transport", ALL_TRANSPORTS, ids=lambda t: t.name
    )
    def test_bytes_reach_disk(self, transport):
        m = small_machine()
        app = tiny_app()
        res = transport.run(m, app, output_name="t")
        expected = app.per_process_bytes * 16
        absorbed = m.fs.total_bytes_absorbed()
        # Index/metadata writes add a little on top of the data.
        assert absorbed >= expected * 0.999
        assert absorbed <= expected * 1.01

    @pytest.mark.parametrize(
        "transport",
        [MpiIoTransport(), AdaptiveTransport(), StaggerTransport()],
        ids=["mpiio", "adaptive", "stagger"],
    )
    def test_flush_means_durable(self, transport):
        """After flush+close, every byte is on disk or in the stable
        (battery-backed) cache region of its OST."""
        m = small_machine()
        app = tiny_app()
        transport.run(m, app, output_name="t")
        total = app.per_process_bytes * 16
        on_disk = m.fs.total_bytes_on_disk()
        in_cache = float(m.pool.cache_level.sum())
        stable = m.pool.config.stable_bytes
        assert on_disk + in_cache >= total * 0.999
        # Nothing volatile may remain: per-OST residue fits the
        # stable region.
        assert (m.pool.cache_level <= stable + 1.0).all()


class TestPosixTransport:
    def test_file_per_process(self):
        m = small_machine()
        res = PosixTransport().run(m, tiny_app(), output_name="ior")
        assert len(res.files) == 16
        for path in res.files:
            f = m.fs.lookup(path)
            assert f.layout.stripe_count == 1

    def test_writers_split_evenly_across_osts(self):
        m = small_machine(n_ranks=16, n_osts=4)
        res = PosixTransport().run(m, tiny_app(), output_name="ior")
        targets = [w.target_group for w in res.per_writer]
        assert sorted(set(targets)) == [0, 1, 2, 3]
        assert all(targets.count(t) == 4 for t in set(targets))

    def test_n_osts_used_subsets_pool(self):
        m = small_machine(n_ranks=8, n_osts=4)
        res = PosixTransport(n_osts_used=2).run(m, tiny_app(),
                                                output_name="ior")
        targets = {w.target_group for w in res.per_writer}
        assert targets == {0, 1}

    def test_invalid_n_osts(self):
        m = small_machine()
        with pytest.raises(ValueError):
            PosixTransport(n_osts_used=99).run(m, tiny_app())

    def test_optional_index(self):
        m = small_machine()
        res = PosixTransport(build_index=True).run(m, tiny_app(),
                                                   output_name="x")
        assert res.index is not None
        assert res.index.n_blocks == 16 * 2

    def test_flush_option_increases_time(self):
        # Heavy enough per OST that dirty data exceeds the stable
        # cache region and the flush must wait on the disks.
        app = tiny_app(mb_per_proc=80.0)
        m1 = small_machine(n_ranks=16, n_osts=4, seed=1)
        r1 = PosixTransport(include_flush=False).run(m1, app,
                                                     output_name="a")
        m2 = small_machine(n_ranks=16, n_osts=4, seed=1)
        r2 = PosixTransport(include_flush=True).run(m2, app,
                                                    output_name="a")
        assert r2.flush_time > 0
        assert r1.flush_time == 0


class TestMpiIoTransport:
    def test_single_shared_file(self):
        m = small_machine()
        res = MpiIoTransport().run(m, tiny_app(), output_name="out")
        assert res.files == ["/out.bp"]
        f = m.fs.lookup("/out.bp")
        assert f.layout.stripe_count == 4  # min(160, 4 OSTs)

    def test_stripe_limit_respected(self):
        m = jaguar(n_osts=672).build(n_ranks=8, seed=0)
        res = MpiIoTransport().run(m, tiny_app(), output_name="out")
        f = m.fs.lookup("/out.bp")
        assert f.layout.stripe_count == 160  # the Lustre 1.6 cap

    def test_stripe_aligned_chunks(self):
        """Each rank's chunk must land on exactly one OST."""
        m = small_machine()
        app = tiny_app()
        MpiIoTransport().run(m, app, output_name="out")
        f = m.fs.lookup("/out.bp")
        for w in f.writes:
            spans = f.layout.spans(w.offset, w.nbytes)
            assert len(spans) == 1

    def test_index_covers_all_ranks(self):
        m = small_machine()
        res = MpiIoTransport().run(m, tiny_app(), output_name="out")
        assert res.index is not None
        assert res.index.n_blocks == 16 * 2
        assert res.index.total_bytes() == res.total_bytes

    def test_explicit_stripe_count(self):
        m = small_machine()
        res = MpiIoTransport(stripe_count=2).run(m, tiny_app(),
                                                 output_name="out")
        assert res.extra["stripe_count"] == 2.0


class TestAdaptiveTransport:
    def test_one_subfile_per_group_plus_index(self):
        m = small_machine(n_ranks=16, n_osts=4)
        res = AdaptiveTransport().run(m, tiny_app(), output_name="out")
        assert len(res.files) == 5  # 4 sub-files + global index
        assert res.extra["n_groups"] == 4.0

    def test_subfiles_pinned_one_ost_each(self):
        m = small_machine(n_ranks=16, n_osts=4)
        res = AdaptiveTransport().run(m, tiny_app(), output_name="out")
        osts = []
        for path in res.files:
            f = m.fs.lookup(path)
            assert f.layout.stripe_count == 1
            if "index" not in path:
                osts.append(f.layout.osts[0])
        assert sorted(osts) == [0, 1, 2, 3]

    def test_serialization_one_writer_per_target(self):
        """At no instant may two writers write the same target's file."""
        m = small_machine(n_ranks=16, n_osts=4)
        res = AdaptiveTransport().run(m, tiny_app(), output_name="out")
        by_target = {}
        for w in res.per_writer:
            by_target.setdefault(w.target_group, []).append(
                (w.start, w.end)
            )
        for spans in by_target.values():
            spans.sort()
            for (s0, e0), (s1, _e1) in zip(spans, spans[1:]):
                assert s1 >= e0 - 1e-9

    def test_global_index_complete(self):
        m = small_machine(n_ranks=16, n_osts=4)
        app = tiny_app()
        res = AdaptiveTransport().run(m, app, output_name="out")
        assert res.index is not None
        assert res.index.n_blocks == 16 * 2
        assert res.index.total_bytes() == pytest.approx(res.total_bytes)
        # Every writer's every variable must be findable.
        for rank in range(16):
            for var in ("a", "b"):
                assert len(res.index.lookup(var, writer=rank)) == 1

    def test_index_extents_disjoint_per_file(self):
        m = small_machine(n_ranks=16, n_osts=4)
        res = AdaptiveTransport().run(m, tiny_app(), output_name="out")
        for path in res.index.files:
            entries = [e for _, hits in [] for e in hits]  # placeholder
        # Check via file write records instead: no overlapping data
        # extents within any sub-file.
        for path in res.files:
            f = m.fs.lookup(path)
            spans = sorted(
                (w.offset, w.offset + w.nbytes) for w in f.writes
            )
            for (a0, a1), (b0, _b1) in zip(spans, spans[1:]):
                assert b0 >= a1 - 1e-6

    def test_steering_happens_under_imbalance(self):
        """With one OST 10x slower, work must migrate off it."""
        m = small_machine(n_ranks=32, n_osts=4, seed=2)
        m.pool.set_load_multiplier(0.05, osts=np.array([0]))
        res = AdaptiveTransport().run(m, tiny_app(), output_name="out")
        assert res.n_adaptive_writes > 0
        migrated = [w for w in res.per_writer if w.adaptive]
        assert migrated
        # Steered writers came from group 0 (the slow target's group)
        # more often than not ... at minimum none migrated TO target 0.
        assert all(w.target_group != 0 or not w.adaptive
                   for w in res.per_writer)

    def test_no_steering_without_imbalance_needed(self):
        """steering=False must still complete and produce a full index."""
        m = small_machine(n_ranks=16, n_osts=4)
        res = AdaptiveTransport(steering=False).run(m, tiny_app(),
                                                    output_name="out")
        assert res.n_adaptive_writes == 0
        assert res.index.n_blocks == 32

    def test_steering_beats_no_steering_on_slow_ost(self):
        app = tiny_app()
        times = {}
        for steering in (True, False):
            m = small_machine(n_ranks=32, n_osts=4, seed=3)
            m.pool.set_load_multiplier(0.05, osts=np.array([0]))
            res = AdaptiveTransport(steering=steering).run(
                m, app, output_name="out"
            )
            times[steering] = res.reported_time
        assert times[True] < times[False]

    def test_coordinator_message_load_scales_with_groups(self):
        """C talks to SCs, not writers: messages at C must not grow
        when writers quadruple at fixed group count."""
        app = tiny_app(mb_per_proc=1.0)
        loads = {}
        for n_ranks in (8, 32):
            m = small_machine(n_ranks=n_ranks, n_osts=4, seed=0)
            res = AdaptiveTransport().run(m, app, output_name="out")
            loads[n_ranks] = res.coordinator_messages
        assert loads[32] <= loads[8] * 2  # far below 4x

    def test_writers_per_target_generalization(self):
        m = small_machine(n_ranks=16, n_osts=4)
        res = AdaptiveTransport(writers_per_target=2).run(
            m, tiny_app(), output_name="out"
        )
        assert res.index.n_blocks == 32

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveTransport(writers_per_target=0)
        with pytest.raises(ValueError):
            AdaptiveTransport(index_build_time=-1)
        m = small_machine()
        with pytest.raises(ValueError):
            AdaptiveTransport(n_osts_used=99).run(m, tiny_app())

    def test_more_groups_than_ranks_clamped(self):
        m = small_machine(n_ranks=2, n_osts=4)
        res = AdaptiveTransport().run(m, tiny_app(), output_name="out")
        assert res.extra["n_groups"] == 2.0


class TestStaggerTransport:
    def test_serialization_per_group(self):
        m = small_machine(n_ranks=16, n_osts=4)
        res = StaggerTransport().run(m, tiny_app(), output_name="out")
        by_target = {}
        for w in res.per_writer:
            by_target.setdefault(w.target_group, []).append(
                (w.start, w.end)
            )
        for spans in by_target.values():
            spans.sort()
            for (s0, e0), (s1, _e1) in zip(spans, spans[1:]):
                assert s1 >= e0 - 1e-9

    def test_staggered_creates(self):
        m = small_machine(n_ranks=16, n_osts=4)
        StaggerTransport(open_stagger=0.1).run(m, tiny_app(),
                                               output_name="out")
        creates = sorted(
            m.fs.lookup(f"/out.bp.dir/{g:04d}.bp").create_time
            for g in range(4)
        )
        gaps = np.diff(creates)
        assert (gaps > 0.05).all()

    def test_index_built(self):
        m = small_machine()
        res = StaggerTransport().run(m, tiny_app(), output_name="out")
        assert res.index.n_blocks == 32

    def test_validation(self):
        with pytest.raises(ValueError):
            StaggerTransport(open_stagger=-1)


class TestAdiosFacade:
    def test_method_selection(self):
        m = small_machine()
        io = Adios(m, method="adaptive")
        res = io.write_output(tiny_app())
        assert res.transport == "adaptive"

    def test_unknown_method(self):
        m = small_machine()
        with pytest.raises(ConfigurationError):
            Adios(m, method="quantum")

    def test_output_names_auto_increment(self):
        m = small_machine(n_ranks=4, n_osts=4)
        io = Adios(m, method="posix")
        io.write_output(tiny_app(mb_per_proc=0.5))
        io.write_output(tiny_app(mb_per_proc=0.5))
        names = m.fs.listdir()
        assert any("00000" in n for n in names)
        assert any("00001" in n for n in names)

    def test_available_methods(self):
        assert Adios.available_methods() == [
            "adaptive", "adaptive-history", "mpiio", "posix",
            "splitfiles", "stagger",
        ]

    def test_register_custom_method(self):
        class Custom(PosixTransport):
            name = "custom-test"

        Adios.register_method("custom-test", Custom)
        try:
            m = small_machine()
            io = Adios(m, method="custom-test")
            assert io.write_output(tiny_app()).transport == "custom-test"
            with pytest.raises(ConfigurationError):
                Adios.register_method("custom-test", Custom)
        finally:
            from repro.core import middleware

            middleware._FACTORIES.pop("custom-test", None)


class TestAdaptiveVsMpiioHeadline:
    """The paper's headline: adaptive wins once writers >> OSTs."""

    def test_adaptive_faster_with_many_writers_per_ost(self):
        app = tiny_app(mb_per_proc=8.0)
        m1 = jaguar(n_osts=8).build(n_ranks=64, seed=5)
        # Lustre cap forces MPI-IO to 2 OSTs on this toy pool when the
        # cap is set low, mirroring 160-of-672.
        m1.fs.max_stripe_count = 2
        r_mpi = MpiIoTransport().run(m1, app, output_name="out")

        m2 = jaguar(n_osts=8).build(n_ranks=64, seed=5)
        r_ad = AdaptiveTransport().run(m2, app, output_name="out")
        assert r_ad.aggregate_bandwidth > r_mpi.aggregate_bandwidth
