"""Unit tests for Store / PriorityStore / Resource."""

import pytest

from repro.sim import Environment, PriorityStore, Resource, Store


@pytest.fixture
def env():
    return Environment()


class TestStore:
    def test_put_then_get(self, env):
        store = Store(env)
        got = []

        def consumer(env):
            v = yield store.get()
            got.append(v)

        store.put("hello")
        env.process(consumer(env))
        env.run()
        assert got == ["hello"]

    def test_get_blocks_until_put(self, env):
        store = Store(env)
        got = []

        def consumer(env):
            v = yield store.get()
            got.append((env.now, v))

        def producer(env):
            yield env.timeout(4)
            yield store.put("late")

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert got == [(4.0, "late")]

    def test_fifo_order(self, env):
        store = Store(env)
        for i in range(5):
            store.put(i)
        got = []

        def consumer(env):
            for _ in range(5):
                got.append((yield store.get()))

        env.process(consumer(env))
        env.run()
        assert got == [0, 1, 2, 3, 4]

    def test_bounded_put_blocks(self, env):
        store = Store(env, capacity=1)
        log = []

        def producer(env):
            yield store.put("a")
            log.append(("a", env.now))
            yield store.put("b")
            log.append(("b", env.now))

        def consumer(env):
            yield env.timeout(10)
            yield store.get()

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert log == [("a", 0.0), ("b", 10.0)]

    def test_try_get(self, env):
        store = Store(env)
        assert store.try_get() is None
        store.put(1)
        assert store.try_get() == 1
        assert store.try_get() is None

    def test_len_and_items(self, env):
        store = Store(env)
        store.put("x")
        store.put("y")
        assert len(store) == 2
        assert store.items == ["x", "y"]

    def test_invalid_capacity(self, env):
        with pytest.raises(ValueError):
            Store(env, capacity=0)

    def test_waiting_getter_bypasses_queue(self, env):
        """An item handed to a blocked getter never enters the queue."""
        store = Store(env)
        got = []

        def consumer(env):
            got.append((yield store.get()))

        env.process(consumer(env))
        env.run()

        def producer(env):
            yield store.put("direct")

        env.process(producer(env))
        env.run()
        assert got == ["direct"]
        assert len(store) == 0


class TestPriorityStore:
    def test_min_first(self, env):
        store = PriorityStore(env)
        for v in (5, 1, 3):
            store.put(v)
        got = []

        def consumer(env):
            for _ in range(3):
                got.append((yield store.get()))

        env.process(consumer(env))
        env.run()
        assert got == [1, 3, 5]

    def test_try_get_and_len(self, env):
        store = PriorityStore(env)
        assert store.try_get() is None
        store.put(9)
        store.put(2)
        assert len(store) == 2
        assert store.try_get() == 2

    def test_tuple_priorities(self, env):
        store = PriorityStore(env)
        store.put((2, "low"))
        store.put((1, "high"))
        got = []

        def consumer(env):
            got.append((yield store.get()))

        env.process(consumer(env))
        env.run()
        assert got == [(1, "high")]


class TestResource:
    def test_mutual_exclusion(self, env):
        res = Resource(env, capacity=1)
        log = []

        def worker(env, label):
            req = res.request()
            yield req
            log.append((label, "in", env.now))
            yield env.timeout(5)
            log.append((label, "out", env.now))
            res.release()

        env.process(worker(env, "a"))
        env.process(worker(env, "b"))
        env.run()
        assert log == [
            ("a", "in", 0.0),
            ("a", "out", 5.0),
            ("b", "in", 5.0),
            ("b", "out", 10.0),
        ]

    def test_capacity_parallelism(self, env):
        res = Resource(env, capacity=3)
        done = []

        def worker(env, i):
            yield res.request()
            yield env.timeout(1)
            res.release()
            done.append((i, env.now))

        for i in range(6):
            env.process(worker(env, i))
        env.run()
        times = sorted(t for _, t in done)
        assert times == [1.0, 1.0, 1.0, 2.0, 2.0, 2.0]

    def test_release_without_request(self, env):
        res = Resource(env)
        with pytest.raises(RuntimeError):
            res.release()

    def test_counts(self, env):
        res = Resource(env, capacity=2)

        def holder(env):
            yield res.request()
            yield env.timeout(100)

        env.process(holder(env))
        env.process(holder(env))
        env.process(holder(env))
        env.run(until=1.0)
        assert res.in_use == 2
        assert res.queue_length == 1

    def test_invalid_capacity(self, env):
        with pytest.raises(ValueError):
            Resource(env, capacity=0)
