"""End-to-end tests for the tracing subsystem.

The headline round trip: run the adaptive protocol with tracing on,
export the Chrome trace-event JSON, load it back, and check that the
span structure is well-formed and that the protocol's steering
decisions reference real OSTs.  Plus the negative: a disabled tracer
records nothing and changes nothing.
"""

import json

import pytest

from repro.apps import AppKernel, Variable
from repro.core.transports import AdaptiveTransport, MpiIoTransport
from repro.machines import jaguar
from repro.trace import (
    Tracer,
    check_well_formed,
    get_active_tracer,
    tracing,
)
from repro.trace import chrome
from repro.trace.counters import PHASES, per_writer_counters, render_report
from repro.units import MB

N_RANKS = 16
N_OSTS = 8
PER_PROC_MB = 4.0


def app():
    return AppKernel(
        "traced", [Variable("x", shape=(int(PER_PROC_MB * MB / 8),))]
    )


def traced_run(transport=None, tracer=None, seed=0):
    m = jaguar(n_osts=N_OSTS).build(n_ranks=N_RANKS, seed=seed)
    if tracer is not None:
        m.attach_tracer(tracer)
    t = transport or AdaptiveTransport(n_osts_used=N_OSTS)
    res = t.run(m, app(), output_name="out")
    return m, res


class TestTracerCore:
    def test_span_nesting_checker(self):
        tr = Tracer()
        tr.begin("a", cat="t", pid="p", tid="t1", ts=0.0)
        tr.begin("b", cat="t", pid="p", tid="t1", ts=1.0)
        tr.end("b", cat="t", pid="p", tid="t1", ts=2.0)
        tr.end("a", cat="t", pid="p", tid="t1", ts=3.0)
        assert check_well_formed(tr.events) == []

    def test_checker_catches_improper_nesting(self):
        tr = Tracer()
        tr.begin("a", cat="t", pid="p", tid="t1", ts=0.0)
        tr.begin("b", cat="t", pid="p", tid="t1", ts=1.0)
        tr.end("a", cat="t", pid="p", tid="t1", ts=2.0)
        problems = check_well_formed(tr.events)
        assert problems and "improper nesting" in problems[0]

    def test_checker_catches_unclosed_and_orphan(self):
        tr = Tracer()
        tr.begin("a", cat="t", pid="p", tid="t1", ts=0.0)
        tr.end("z", cat="t", pid="p", tid="t2", ts=1.0)
        problems = check_well_formed(tr.events)
        assert any("never closed" in p for p in problems)
        assert any("no open span" in p for p in problems)

    def test_disabled_tracer_records_nothing(self):
        tr = Tracer(enabled=False)
        tr.begin("a", cat="t", pid="p", tid="t")
        tr.instant("i", cat="t", pid="p", tid="t")
        tr.counter("c", pid="p", values={"v": 1.0})
        with tr.span("s", cat="t", pid="p", tid="t"):
            pass
        assert len(tr) == 0

    def test_active_tracer_scoping(self):
        assert get_active_tracer() is None
        tr = Tracer()
        with tracing(tr):
            assert get_active_tracer() is tr
        assert get_active_tracer() is None


class TestAdaptiveRoundTrip:
    @pytest.fixture(scope="class")
    def traced(self, tmp_path_factory):
        tr = Tracer()
        m, res = traced_run(tracer=tr)
        path = tmp_path_factory.mktemp("trace") / "trace.json"
        chrome.export(tr.events, str(path))
        return tr, m, res, path

    def test_trace_has_all_layers(self, traced):
        tr, _, _, _ = traced
        cats = {ev.cat for ev in tr.events}
        assert {"ost", "fabric", "mpi", "writer", "steer"} <= cats

    def test_export_is_valid_chrome_json(self, traced):
        _, _, _, path = traced
        doc = json.loads(path.read_text())
        assert "traceEvents" in doc
        phases = {rec["ph"] for rec in doc["traceEvents"]}
        assert {"M", "B", "E", "i", "C", "X"} <= phases
        # every non-metadata record references a named process track
        pids = {
            rec["pid"]
            for rec in doc["traceEvents"]
            if rec["ph"] == "M" and rec["name"] == "process_name"
        }
        for rec in doc["traceEvents"]:
            if rec["ph"] != "M":
                assert rec["pid"] in pids

    def test_round_trip_is_well_formed(self, traced):
        tr, _, _, path = traced
        loaded = chrome.load(str(path))
        assert len(loaded) == len(tr.events)
        assert check_well_formed(loaded) == []

    def test_round_trip_preserves_labels_and_times(self, traced):
        tr, _, _, path = traced
        loaded = chrome.load(str(path))
        for orig, back in zip(tr.events, loaded):
            assert back.ph == orig.ph
            assert back.name == orig.name
            assert back.pid == orig.pid
            assert back.tid == orig.tid
            assert back.ts == pytest.approx(orig.ts, abs=1e-9)

    def test_steering_events_reference_real_osts(self, traced):
        tr, m, _, _ = traced
        starts = [
            ev for ev in tr.events if ev.name == "ADAPTIVE_WRITE_START"
        ]
        assert starts, "adaptive run recorded no ADAPTIVE_WRITE_START"
        for ev in starts:
            ost = ev.args["target_ost"]
            assert 0 <= ost < m.n_osts

    def test_writer_spans_on_node_tracks(self, traced):
        tr, m, _, _ = traced
        writer_evs = [ev for ev in tr.events if ev.cat == "writer"]
        ranks = {ev.tid for ev in writer_evs}
        assert ranks == {f"rank {r}" for r in range(N_RANKS)}
        for ev in writer_evs:
            assert ev.pid.startswith("node/")

    def test_ost_service_spans_cover_every_used_ost(self, traced):
        tr, _, _, _ = traced
        served = {
            ev.pid for ev in tr.events if ev.name == "ost.service"
        }
        assert len(served) == N_OSTS  # adaptive uses all targets


class TestCounters:
    def test_per_writer_bytes_match_app(self):
        tr = Tracer()
        _, res = traced_run(tracer=tr)
        counters = per_writer_counters(tr.events)
        assert len(counters) == N_RANKS
        total = sum(wc.bytes_written for wc in counters)
        assert total == pytest.approx(N_RANKS * PER_PROC_MB * MB)
        for wc in counters:
            assert wc.write_count >= 1
            assert wc.total_time > 0
            assert wc.slowest_phase in PHASES
            assert set(wc.time) == set(PHASES)

    def test_adaptive_writes_counted(self):
        import numpy as np

        tr = Tracer()
        # One slow target + writers outnumbering targets: the
        # coordinator must steer, and every steered write shows up in
        # the trace with the adaptive flag.
        m = jaguar(n_osts=8).build(n_ranks=64, seed=3)
        m.fs.max_stripe_count = 2
        m.pool.set_load_multiplier(0.1, osts=np.array([0]))
        m.attach_tracer(tr)
        res = AdaptiveTransport().run(m, app(), output_name="out")
        assert res.n_adaptive_writes > 0
        counters = per_writer_counters(tr.events)
        assert (
            sum(wc.adaptive_writes for wc in counters)
            == res.n_adaptive_writes
        )

    def test_report_renders(self):
        tr = Tracer()
        traced_run(tracer=tr)
        counters = per_writer_counters(tr.events)
        full = render_report(counters)
        assert "# run 0:" in full
        assert "rank 0" in full and f"rank {N_RANKS - 1}" in full
        trimmed = render_report(counters, top=5)
        assert "more writers" in trimmed  # 16 writers, top 5 shown

    def test_mpiio_writers_have_no_wait_phase_spans(self):
        tr = Tracer()
        _, res = traced_run(
            transport=MpiIoTransport(build_index=False), tracer=tr
        )
        counters = per_writer_counters(tr.events)
        assert counters
        # no coordinator in MPI-IO: wait time only from the offset
        # exchange, index disabled entirely
        assert all(wc.time["index"] == 0.0 for wc in counters)


class TestDisabledTracing:
    def test_run_identical_with_and_without_tracer(self):
        _, res_plain = traced_run(seed=7)
        tr = Tracer()
        _, res_traced = traced_run(tracer=tr, seed=7)
        off = Tracer(enabled=False)
        _, res_off = traced_run(tracer=off, seed=7)
        assert len(tr.events) > 0
        assert len(off.events) == 0
        assert res_traced.reported_time == res_plain.reported_time
        assert res_off.reported_time == res_plain.reported_time
        assert (
            res_traced.aggregate_bandwidth == res_plain.aggregate_bandwidth
        )

    def test_untraced_env_has_no_tracer(self):
        m, _ = traced_run(seed=3)
        assert m.env.tracer is None


class TestMultiRun:
    def test_runs_separate_in_export(self, tmp_path):
        tr = Tracer()
        traced_run(tracer=tr, seed=0)
        traced_run(tracer=tr, seed=1)
        runs = {ev.run for ev in tr.events}
        assert runs == {0, 1}
        path = tmp_path / "multi.json"
        chrome.export(tr.events, str(path))
        loaded = chrome.load(str(path))
        assert {ev.run for ev in loaded} == {0, 1}
        assert check_well_formed(loaded) == []
        counters = per_writer_counters(loaded)
        assert len(counters) == 2 * N_RANKS


class TestCli:
    def test_trace_cli_summary_and_check(self, tmp_path, capsys):
        from repro.tools.trace import main

        tr = Tracer()
        traced_run(tracer=tr)
        path = tmp_path / "trace.json"
        chrome.export(tr.events, str(path))

        assert main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "events" in out
        assert "rank 0" in out

        assert main([str(path), "--check"]) == 0
        out = capsys.readouterr().out
        assert "span nesting: OK" in out


class TestReportEdgeCases:
    @staticmethod
    def _span(tr, name, t0, t1, tid="rank 0", pid="node/0", args=None):
        tr.begin(name, cat="writer", pid=pid, tid=tid, ts=t0, args=args)
        tr.end(name, cat="writer", pid=pid, tid=tid, ts=t1)

    def test_empty_events_render_placeholder(self):
        assert per_writer_counters([]) == []
        assert render_report([]) == (
            "no writer-phase spans in trace (was tracing enabled?)"
        )

    def test_trace_without_writer_spans_renders_placeholder(self):
        """Instants and non-writer categories alone produce no
        counters — the report must say so, not crash on max()."""
        tr = Tracer()
        tr.instant("ost.failstop", cat="fault", pid="p", tid="t")
        with tr.span("settle", cat="fabric", pid="p", tid="t"):
            pass
        counters = per_writer_counters(tr.events)
        assert counters == []
        assert "was tracing enabled?" in render_report(counters)

    def test_zero_byte_writer_renders_0_b(self):
        """A writer whose write span moved no data must render '0 B'
        (not divide by zero or print an empty cell), and its bandwidth
        is inf by convention when write time is zero too."""
        tr = Tracer()
        self._span(tr, "write", 0.0, 1.0, args={"nbytes": 0.0})
        counters = per_writer_counters(tr.events)
        assert len(counters) == 1
        wc = counters[0]
        assert wc.bytes_written == 0.0
        assert wc.bandwidth == 0.0  # 0 bytes / 1s
        report = render_report(counters)
        assert "0 B" in report
        # Zero write *time* with zero bytes: bandwidth is inf by the
        # t<=0 convention, and the report still renders.
        tr2 = Tracer()
        self._span(tr2, "write", 2.0, 2.0, tid="rank 1",
                   args={"nbytes": 0.0})
        wc2 = per_writer_counters(tr2.events)[0]
        assert wc2.bandwidth == float("inf")
        assert "0 B" in render_report([wc2])

    def test_integrity_columns_only_when_detections_present(self):
        tr = Tracer()
        self._span(tr, "write", 0.0, 1.0, args={"nbytes": 1e6})
        tr.instant("write.verify_fail", cat="integrity",
                   pid="node/0", tid="rank 0", ts=1.0)
        tr.instant("scrub.detect", cat="integrity",
                   pid="node/0", tid="rank 0", ts=1.5)
        tr.instant("block.repair", cat="integrity",
                   pid="node/0", tid="rank 0", ts=2.0)
        counters = per_writer_counters(tr.events)
        wc = counters[0]
        assert wc.corrupt_detected == 2 and wc.repaired == 1
        report = render_report(counters)
        assert "2 corrupt block(s) detected" in report
        assert "1 repaired" in report
        assert " det" in report and " rep" in report
        # The clean report carries no integrity columns at all.
        tr2 = Tracer()
        self._span(tr2, "write", 0.0, 1.0, args={"nbytes": 1e6})
        clean = render_report(per_writer_counters(tr2.events))
        assert "det" not in clean and "corrupt" not in clean

    def test_repair_without_detection_still_shows_columns(self):
        """repaired>0 alone (detection attributed to another writer's
        trace, say) must still switch the integrity columns on."""
        tr = Tracer()
        self._span(tr, "write", 0.0, 1.0, args={"nbytes": 1e6})
        tr.instant("block.repair", cat="integrity",
                   pid="node/0", tid="rank 0", ts=2.0)
        report = render_report(per_writer_counters(tr.events))
        assert "0 corrupt block(s) detected, 1 repaired" in report


class TestAbortedRunTraces:
    def test_close_open_spans_closes_in_nesting_order(self):
        tr = Tracer()
        tr.begin("outer", cat="t", pid="p", tid="t1", ts=0.0)
        tr.begin("inner", cat="t", pid="p", tid="t1", ts=1.0)
        tr.begin("other", cat="t", pid="q", tid="t2", ts=0.5)
        closed = tr.close_open_spans(ts=2.0)
        assert closed == 3
        assert check_well_formed(tr.events) == []
        ends = [e for e in tr.events if e.ph == "E"]
        assert all(e.args == {"aborted": True} for e in ends)
        # inner must close before outer on the shared track
        t1_ends = [e.name for e in ends if e.tid == "t1"]
        assert t1_ends == ["inner", "outer"]

    def test_close_open_spans_noop_when_balanced(self):
        tr = Tracer()
        with tr.span("a", cat="t", pid="p", tid="t"):
            pass
        assert tr.close_open_spans() == 0

    def test_aborted_faulted_run_trace_is_well_formed(self):
        """A transport killed mid-write by a fault plan must leave a
        well-formed trace: the failure path closes dangling spans."""
        from repro.errors import TransportError
        from repro.faults import two_ost_failure_plan

        tr = Tracer()
        plan = two_ost_failure_plan(osts=(0, 1), at=0.01)
        m = jaguar(n_osts=N_OSTS).build(
            n_ranks=N_RANKS, seed=0, faults=plan
        )
        m.attach_tracer(tr)
        with pytest.raises(TransportError):
            MpiIoTransport(build_index=False).run(m, app(), "out")
        assert check_well_formed(tr.events) == []
        names = {e.name for e in tr.events if e.cat == "fault"}
        assert "ost.failstop" in names

    def test_retry_and_abort_instants_counted_per_writer(self):
        """Fault instants on writer tracks land in the per-writer
        counters and surface in the report; fault-free reports carry
        no retry/abort columns."""
        from repro.errors import TransportError
        from repro.faults import two_ost_failure_plan

        tr = Tracer()
        plan = two_ost_failure_plan(osts=(0, 1), at=0.01)
        m = jaguar(n_osts=N_OSTS).build(
            n_ranks=N_RANKS, seed=0, faults=plan
        )
        m.attach_tracer(tr)
        with pytest.raises(TransportError):
            MpiIoTransport(build_index=False).run(m, app(), "out")
        counters = per_writer_counters(tr.events)
        assert sum(c.aborts for c in counters) > 0
        report = render_report(counters)
        assert "abort" in report

        tr2 = Tracer()
        traced_run(transport=MpiIoTransport(), tracer=tr2)
        clean = per_writer_counters(tr2.events)
        assert all(c.retries == 0 and c.aborts == 0 for c in clean)
        assert "abort" not in render_report(clean)
