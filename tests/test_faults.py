"""Unit tests for the fault-injection subsystem.

Plans are pure data (validated, JSON round-trippable, deterministic);
the injector applies one plan to one machine build: OST state
transitions on the timeline, message loss/delay on the communicator,
rank crashes on registered processes.
"""

import pytest

from repro.errors import FaultPlanError
from repro.faults import (
    FaultEvent,
    FaultPlan,
    RetryPolicy,
    get_active_fault_plan,
    resolve_fault_plan,
    set_active_fault_plan,
    two_ost_failure_plan,
    with_faults,
)
from repro.lustre.ost import OstState
from repro.machines import jaguar
from repro.sim.rng import RngRegistry


def build(seed=0, n_osts=8, n_ranks=8, plan=None):
    return jaguar(n_osts=n_osts).build(
        n_ranks=n_ranks, seed=seed, faults=plan
    )


class TestPlanValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultEvent(time=1.0, kind="ost_meltdown", target=0)

    def test_negative_time_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultEvent(time=-1.0, kind="ost_fail", target=0)

    def test_brownout_factor_range(self):
        with pytest.raises(FaultPlanError):
            FaultEvent(time=0.0, kind="ost_brownout", target=0, factor=0.0)
        FaultEvent(time=0.0, kind="ost_brownout", target=0, factor=0.5)

    def test_msg_loss_probability_range(self):
        with pytest.raises(FaultPlanError):
            FaultEvent(time=0.0, kind="msg_loss", factor=1.0)

    def test_events_sorted_by_time(self):
        plan = FaultPlan(events=(
            FaultEvent(time=2.0, kind="ost_fail", target=1),
            FaultEvent(time=1.0, kind="ost_fail", target=0),
        ))
        assert [e.time for e in plan.events] == [1.0, 2.0]

    def test_stochastic_needs_budget(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(mtbf=10.0)

    def test_out_of_range_target_caught_at_materialize(self):
        plan = FaultPlan(events=(
            FaultEvent(time=1.0, kind="ost_fail", target=99),
        ))
        rng = RngRegistry(0).get("faults")
        with pytest.raises(FaultPlanError):
            plan.materialize(rng, n_osts=8, n_ranks=8)


class TestPolicy:
    def test_backoff_doubles_and_caps(self):
        p = RetryPolicy(backoff_base=0.25, backoff_cap=1.0)
        assert p.backoff(1) == 0.25
        assert p.backoff(2) == 0.5
        assert p.backoff(3) == 1.0
        assert p.backoff(10) == 1.0

    def test_bad_constants_rejected(self):
        with pytest.raises(FaultPlanError):
            RetryPolicy(write_timeout=0.0)
        with pytest.raises(FaultPlanError):
            RetryPolicy(backoff_base=2.0, backoff_cap=1.0)


class TestSerialization:
    def test_json_round_trip(self, tmp_path):
        plan = two_ost_failure_plan(osts=(1, 3), at=2.5).with_policy(
            max_retries=5
        )
        path = tmp_path / "plan.json"
        plan.save_json(str(path))
        loaded = FaultPlan.from_json(str(path))
        assert loaded == plan

    def test_unknown_keys_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_dict({"events": [], "surprise": 1})

    def test_bad_file_raises_plan_error(self, tmp_path):
        p = tmp_path / "nope.json"
        with pytest.raises(FaultPlanError):
            FaultPlan.from_json(str(p))

    def test_unknown_event_kind_named_in_error(self):
        """from_dict must name the offending kind and event position,
        not blow up inside FaultEvent with a generic message."""
        with pytest.raises(FaultPlanError, match=r"events\[1\].*ost_meltdown"):
            FaultPlan.from_dict({
                "events": [
                    {"time": 1.0, "kind": "ost_fail", "target": 0},
                    {"time": 2.0, "kind": "ost_meltdown", "target": 1},
                ],
            })

    def test_non_object_event_rejected(self):
        with pytest.raises(FaultPlanError, match=r"events\[0\]"):
            FaultPlan.from_dict({"events": ["ost_fail"]})

    def test_unknown_event_keys_name_position_and_kind(self):
        with pytest.raises(FaultPlanError, match=r"events\[0\].*ost_fail"):
            FaultPlan.from_dict({
                "events": [
                    {"time": 1.0, "kind": "ost_fail", "target": 0,
                     "surprise": 1},
                ],
            })


class TestResolution:
    def test_no_plan_means_no_injector(self):
        assert get_active_fault_plan() is None
        m = build()
        assert m.faults is None

    def test_explicit_plan_attaches_injector(self):
        m = build(plan=two_ost_failure_plan())
        assert m.faults is not None
        assert m.faults.policy == two_ost_failure_plan().policy

    def test_with_faults_scopes_the_registry(self):
        plan = two_ost_failure_plan()
        with with_faults(plan):
            assert resolve_fault_plan() is plan
            assert build().faults is not None
        assert resolve_fault_plan() is None
        assert build().faults is None

    def test_env_var_resolution(self, tmp_path, monkeypatch):
        path = tmp_path / "plan.json"
        two_ost_failure_plan().save_json(str(path))
        monkeypatch.setenv("REPRO_FAULTS", str(path))
        assert resolve_fault_plan() == two_ost_failure_plan()

    def test_explicit_beats_registry(self):
        a = two_ost_failure_plan(osts=(0,))
        b = two_ost_failure_plan(osts=(1,))
        with with_faults(a):
            assert resolve_fault_plan(b) is b
        set_active_fault_plan(None)


class TestInjector:
    def test_timeline_applies_ost_states(self):
        plan = FaultPlan(events=(
            FaultEvent(time=1.0, kind="ost_fail", target=0),
            FaultEvent(time=1.0, kind="ost_hang", target=1, duration=2.0),
            FaultEvent(time=1.0, kind="ost_brownout", target=2,
                       factor=0.25),
        ))
        m = build(plan=plan)
        m.faults.arm()
        m.env.run(until=1.5)
        pool = m.pool
        assert pool.state[0] == OstState.FAILED
        assert pool.state[1] == OstState.HUNG
        assert pool.state[2] == OstState.DEGRADED
        # The hang has a duration: it recovers.
        m.env.run(until=4.0)
        assert pool.state[1] == OstState.UP

    def test_arm_is_idempotent(self):
        plan = FaultPlan(events=(
            FaultEvent(time=1.0, kind="ost_fail", target=0),
        ))
        m = build(plan=plan)
        m.faults.arm()
        m.faults.arm()
        m.env.run(until=2.0)
        assert len(m.faults.injected) == 1

    def test_crash_rank_kills_registered_process(self):
        plan = FaultPlan(events=(
            FaultEvent(time=1.0, kind="crash_rank", target=3),
        ))
        m = build(plan=plan)

        def forever(env):
            while True:
                yield env.timeout(10.0)

        victim = m.env.process(forever(m.env), name="victim")
        bystander = m.env.process(forever(m.env), name="bystander")
        m.faults.register(3, victim)
        m.faults.register(4, bystander)
        m.faults.arm()
        m.env.run(until=2.0)
        assert not victim.is_alive
        assert bystander.is_alive
        assert 3 in m.faults.crashed_ranks

    def test_register_after_crash_kills_immediately(self):
        plan = FaultPlan(events=(
            FaultEvent(time=1.0, kind="crash_rank", target=0),
        ))
        m = build(plan=plan)
        m.faults.arm()
        m.env.run(until=2.0)

        def forever(env):
            while True:
                yield env.timeout(10.0)

        late = m.env.process(forever(m.env), name="late")
        m.faults.register(0, late)
        assert not late.is_alive

    def test_message_loss_is_seeded_and_counted(self):
        plan = FaultPlan(events=(
            FaultEvent(time=0.0, kind="msg_loss", factor=0.5),
        ))

        def dropped_after(seed):
            m = build(seed=seed, plan=plan)
            from repro.mpi.comm import SimComm

            comm = SimComm(m.env, 4)
            comm.faults = m.faults
            m.faults.arm()
            m.env.run(until=0.1)
            for i in range(100):
                comm.send(0, 1, payload=i, tag=0)
            return m.faults.messages_dropped

        d1, d2 = dropped_after(7), dropped_after(7)
        assert d1 == d2  # same seed, same drops
        assert 0 < d1 < 100

    def test_stochastic_timeline_deterministic_per_seed(self):
        plan = FaultPlan(mtbf=5.0, mttr=2.0, max_stochastic=4)

        def timeline(seed):
            rng = RngRegistry(seed).get("faults")
            return plan.materialize(rng, n_osts=8, n_ranks=8)

        assert timeline(3) == timeline(3)
        assert timeline(3) != timeline(4)

    def test_summary_counts(self):
        plan = FaultPlan(events=(
            FaultEvent(time=1.0, kind="ost_fail", target=0),
        ))
        m = build(plan=plan)
        m.faults.arm()
        m.env.run(until=2.0)
        s = m.faults.summary()
        assert s["n_injected"] == 1.0
        assert s["n_crashed_ranks"] == 0.0
