"""Incremental bookkeeping in the flow network.

PR-level invariants for the hot-path optimizations: the per-sink /
per-source stream counts the network maintains incrementally must
always equal what an ``np.bincount`` over the active flows would
re-derive; the allocator's single-bottleneck fast path and precomputed
counts must not change its output; and the skip-reallocation path must
fire exactly when nothing changed.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.fabric import (
    FlowNetwork,
    UniformSinkPool,
    max_min_fair_rates,
)
from repro.sim import Environment


def _random_case(rng, n_flows, n_src, n_dst, finite_caps=True):
    src = rng.integers(0, n_src, n_flows)
    dst = rng.integers(0, n_dst, n_flows)
    cap_src = rng.uniform(1e8, 2e9, n_src)
    cap_dst = rng.uniform(1e7, 5e8, n_dst)
    fcap = rng.uniform(1e6, 3e8, n_flows)
    if not finite_caps:
        cap_src[rng.random(n_src) < 0.2] = np.inf
        fcap[rng.random(n_flows) < 0.2] = np.inf
    return src, dst, cap_src, cap_dst, fcap


def _reference_max_min(src, dst, cap_src, cap_dst, flow_cap):
    """Straightforward progressive filling, one bincount per round.

    Deliberately the textbook O(rounds x flows) formulation the
    optimized allocator replaced — the ground truth it must match.
    """
    n = len(src)
    rates = np.zeros(n)
    live = np.ones(n, dtype=bool)
    res_s = cap_src.astype(np.float64).copy()
    res_d = cap_dst.astype(np.float64).copy()
    finite = np.concatenate(
        [cap_src[np.isfinite(cap_src)], cap_dst[np.isfinite(cap_dst)]]
    )
    tol = 1e-12 * max(float(finite.max()) if finite.size else 1.0, 1.0)
    level = 0.0
    for _ in range(n + 2):
        if not live.any():
            break
        cs = np.bincount(src[live], minlength=len(cap_src))
        cd = np.bincount(dst[live], minlength=len(cap_dst))
        candidates = [float((flow_cap[live] - level).min())]
        if (cs > 0).any():
            candidates.append(float((res_s[cs > 0] / cs[cs > 0]).min()))
        if (cd > 0).any():
            candidates.append(float((res_d[cd > 0] / cd[cd > 0]).min()))
        inc = min(candidates)
        if not np.isfinite(inc):
            rates[live] = np.minimum(flow_cap[live], 1e18)
            break
        inc = max(inc, 0.0)
        level += inc
        res_s -= inc * cs
        res_d -= inc * cd
        sat_s = res_s <= tol
        sat_d = res_d <= tol
        frozen = live & (
            sat_s[src] | sat_d[dst] | (flow_cap - level <= tol)
        )
        if not frozen.any():
            frozen = live.copy()
        rates[frozen] = np.minimum(level, flow_cap[frozen])
        live &= ~frozen
    return rates


class TestAllocatorEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_reference(self, seed):
        rng = np.random.default_rng(seed)
        n_flows = int(rng.integers(1, 400))
        src, dst, cs, cd, fcap = _random_case(rng, n_flows, 24, 12)
        got = max_min_fair_rates(src, dst, cs, cd, fcap)
        want = _reference_max_min(src, dst, cs, cd, fcap)
        np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-3)

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_reference_with_inf_caps(self, seed):
        rng = np.random.default_rng(100 + seed)
        n_flows = int(rng.integers(1, 200))
        src, dst, cs, cd, fcap = _random_case(
            rng, n_flows, 16, 8, finite_caps=False
        )
        got = max_min_fair_rates(src, dst, cs, cd, fcap)
        want = _reference_max_min(src, dst, cs, cd, fcap)
        np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-3)

    @pytest.mark.parametrize("seed", range(6))
    def test_precomputed_counts_change_nothing(self, seed):
        rng = np.random.default_rng(200 + seed)
        n_flows = int(rng.integers(1, 300))
        src, dst, cs, cd, fcap = _random_case(rng, n_flows, 24, 12)
        plain = max_min_fair_rates(src, dst, cs, cd, fcap)
        counted = max_min_fair_rates(
            src, dst, cs, cd, fcap,
            counts_src=np.bincount(src, minlength=24),
            counts_dst=np.bincount(dst, minlength=12),
        )
        # Same code path, same arithmetic: exact equality required.
        assert (plain == counted).all()

    def test_single_bottleneck_fast_path(self):
        # 100 identical flows into one sink: one filling round.
        n = 100
        src = np.arange(n) % 10
        dst = np.zeros(n, dtype=np.int64)
        rates = max_min_fair_rates(
            src, dst, np.full(10, 1e9), np.array([1e8]),
            np.full(n, np.inf),
        )
        np.testing.assert_allclose(rates, 1e8 / n, rtol=1e-12)

    def test_flow_cap_only(self):
        rates = max_min_fair_rates(
            np.zeros(4, dtype=np.int64),
            np.zeros(4, dtype=np.int64),
            np.array([np.inf]),
            np.array([np.inf]),
            np.full(4, 7.5),
        )
        np.testing.assert_allclose(rates, 7.5)


def _drain(out):
    def _cb(ev):
        out.append(ev)

    return _cb


class TestIncrementalCounts:
    def _assert_counts_consistent(self, net):
        act = net._active.copy()
        want_dst = np.bincount(
            net._dst[act], minlength=net.n_sinks
        )
        want_src = np.bincount(
            net._src[act], minlength=net.n_sources
        )
        assert (net._counts == want_dst).all(), (
            f"sink counts drifted: {net._counts} != {want_dst}"
        )
        assert (net._src_counts == want_src).all(), (
            f"source counts drifted: {net._src_counts} != {want_src}"
        )

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_counts_match_bincount_under_churn(self, seed):
        """Randomized start / cancel / run-to-completion sequences."""
        rng = np.random.default_rng(seed)
        env = Environment()
        pool = UniformSinkPool(5, 100.0)
        net = FlowNetwork(env, np.full(4, 1e3), pool)
        open_ids = []
        for _ in range(40):
            op = rng.random()
            if op < 0.5 or not open_ids:
                ev = net.start_flow(
                    int(rng.integers(0, 4)),
                    int(rng.integers(0, 5)),
                    float(rng.uniform(10.0, 500.0)),
                )
                ev.add_callback(lambda e: None)
                open_ids.append(net._next_id - 1)
            elif op < 0.75:
                fid = open_ids.pop(int(rng.integers(0, len(open_ids))))
                if fid in net._records:
                    net.cancel_flow(fid)
            else:
                # Let time pass so some flows complete naturally.
                horizon = env.now + float(rng.uniform(0.1, 3.0))
                env.run(until=env.timeout(horizon - env.now))
                open_ids = [f for f in open_ids if f in net._records]
            self._assert_counts_consistent(net)
        env.run()
        self._assert_counts_consistent(net)
        assert net.active_flow_count == 0
        assert net._counts.sum() == 0
        assert net._src_counts.sum() == 0


class _MutablePool(UniformSinkPool):
    """Uniform pool whose capacity can be changed out-of-band."""

    def set_capacity(self, capacity: float) -> None:
        self._caps = np.full(self.n_sinks, float(capacity))


class TestSkipReallocation:
    def test_quiescent_settles_skip_the_allocator(self):
        env = Environment()
        net = FlowNetwork(env, np.full(2, 1e3), UniformSinkPool(2, 100.0))
        net.start_flow(0, 0, 1e6)
        net.start_flow(1, 1, 1e6)
        net.invalidate()  # fold the deferred settle; allocation current
        base = net.realloc_count
        for _ in range(10):
            net.invalidate()
        assert net.realloc_count == base  # nothing changed, no realloc

    def test_flow_arrival_forces_reallocation(self):
        env = Environment()
        net = FlowNetwork(env, np.full(2, 1e3), UniformSinkPool(2, 100.0))
        net.start_flow(0, 0, 1e6)
        net.invalidate()
        base = net.realloc_count
        net.start_flow(1, 0, 1e6)
        net.invalidate()  # flush the deferred settle for the arrival
        assert net.realloc_count == base + 1

    def test_capacity_change_forces_reallocation(self):
        env = Environment()
        pool = _MutablePool(2, 100.0)
        net = FlowNetwork(env, np.full(2, 1e3), pool)
        net.start_flow(0, 0, 1e9)
        net.invalidate()
        base = net.realloc_count
        rate_before = float(net._rate[net._active][0])
        pool.set_capacity(50.0)
        net.invalidate()
        assert net.realloc_count == base + 1
        rate_after = float(net._rate[net._active][0])
        assert rate_after == pytest.approx(50.0)
        assert rate_before == pytest.approx(100.0)

    def test_skipped_settle_preserves_rates(self):
        env = Environment()
        net = FlowNetwork(env, np.full(3, 1e3), UniformSinkPool(1, 90.0))
        for i in range(3):
            net.start_flow(i, 0, 1e9)
        net.invalidate()  # fold the deferred settle; rates now assigned
        rates = net._rate[net._active].copy()
        for _ in range(5):
            net.invalidate()
        assert (net._rate[net._active] == rates).all()
        np.testing.assert_allclose(rates, 30.0)
