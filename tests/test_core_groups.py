"""Unit + property tests for writer-group assignment."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.groups import GroupMap


class TestGroupMapBasics:
    def test_even_partition(self):
        gm = GroupMap(n_ranks=12, n_groups=3)
        assert gm.ranks_in(0) == [0, 1, 2, 3]
        assert gm.ranks_in(1) == [4, 5, 6, 7]
        assert gm.ranks_in(2) == [8, 9, 10, 11]

    def test_uneven_partition_front_loaded(self):
        gm = GroupMap(n_ranks=10, n_groups=3)
        assert gm.group_size(0) == 4
        assert gm.group_size(1) == 3
        assert gm.group_size(2) == 3

    def test_group_of_matches_ranks_in(self):
        gm = GroupMap(n_ranks=10, n_groups=3)
        for g in range(3):
            for r in gm.ranks_in(g):
                assert gm.group_of(r) == g

    def test_sub_coordinator_is_first_rank(self):
        gm = GroupMap(n_ranks=12, n_groups=4)
        assert [gm.sub_coordinator_of(g) for g in range(4)] == [0, 3, 6, 9]

    def test_coordinator_is_rank_zero(self):
        assert GroupMap(100, 10).coordinator == 0

    def test_jaguar_scale_ratio(self):
        """Paper: 225k cores over 672 targets -> at most 335 per SC."""
        gm = GroupMap(n_ranks=225_000, n_groups=672)
        assert gm.max_group_size == 335

    def test_validation(self):
        with pytest.raises(ValueError):
            GroupMap(0, 1)
        with pytest.raises(ValueError):
            GroupMap(4, 0)
        with pytest.raises(ValueError):
            GroupMap(4, 5)
        gm = GroupMap(4, 2)
        with pytest.raises(ValueError):
            gm.group_of(4)
        with pytest.raises(ValueError):
            gm.ranks_in(2)


class TestGroupMapProperties:
    @given(st.integers(1, 500), st.integers(1, 50))
    @settings(max_examples=150)
    def test_partition_is_exact(self, n_ranks, n_groups):
        if n_groups > n_ranks:
            n_groups = n_ranks
        gm = GroupMap(n_ranks, n_groups)
        all_ranks = []
        for g in range(n_groups):
            all_ranks.extend(gm.ranks_in(g))
        assert all_ranks == list(range(n_ranks))

    @given(st.integers(1, 500), st.integers(1, 50))
    @settings(max_examples=150)
    def test_sizes_balanced(self, n_ranks, n_groups):
        if n_groups > n_ranks:
            n_groups = n_ranks
        gm = GroupMap(n_ranks, n_groups)
        sizes = [gm.group_size(g) for g in range(n_groups)]
        assert max(sizes) - min(sizes) <= 1

    @given(st.integers(1, 300), st.integers(1, 30))
    @settings(max_examples=100)
    def test_groups_contiguous(self, n_ranks, n_groups):
        if n_groups > n_ranks:
            n_groups = n_ranks
        gm = GroupMap(n_ranks, n_groups)
        for g in range(n_groups):
            ranks = gm.ranks_in(g)
            assert ranks == list(range(ranks[0], ranks[-1] + 1))
