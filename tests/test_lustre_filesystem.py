"""Integration tests: FileSystem over the fabric and OST pool."""

import numpy as np
import pytest

from repro.errors import (
    FileExistsInNamespace,
    FileNotFoundInNamespace,
    FileSystemError,
    StripeLimitExceeded,
)
from repro.lustre.filesystem import FileSystem
from repro.lustre.mds import MetadataServer
from repro.lustre.ost import EfficiencyCurve, OstPool, OstPoolConfig
from repro.sim import Environment


def make_fs(
    n_osts=4,
    n_nodes=2,
    nic=1000.0,
    drain=100.0,
    ingest=200.0,
    cache=0.0,
    max_stripe=160,
    stable_fraction=0.0,
    **kw,
):
    env = Environment()
    flat = EfficiencyCurve([(1, 1.0)])
    pool = OstPool(
        OstPoolConfig(
            n_osts=n_osts,
            drain_peak=drain,
            ingest_peak=ingest,
            cache_capacity=cache,
            drain_curve=flat,
            ingest_curve=flat,
            stable_fraction=stable_fraction,
        )
    )
    fs = FileSystem(
        env,
        pool,
        np.full(n_nodes, nic),
        max_stripe_count=max_stripe,
        mds=MetadataServer(env, mean_service_time=1e-4, sigma=0.0),
        **kw,
    )
    return env, fs


def run(env, gen):
    p = env.process(gen)
    env.run()
    return p.value


class TestNamespace:
    def test_create_open_close(self):
        env, fs = make_fs()

        def scenario():
            f = yield from fs.create("/out.bp", stripe_count=2)
            assert fs.exists("/out.bp")
            g = yield from fs.open("/out.bp")
            assert g is f
            yield from fs.close(f)
            return f

        f = run(env, scenario())
        assert f.closed

    def test_create_duplicate_rejected(self):
        env, fs = make_fs()

        def scenario():
            yield from fs.create("/a")
            with pytest.raises(FileExistsInNamespace):
                yield from fs.create("/a")

        run(env, scenario())

    def test_open_missing_rejected(self):
        env, fs = make_fs()

        def scenario():
            with pytest.raises(FileNotFoundInNamespace):
                yield from fs.open("/nope")

        run(env, scenario())

    def test_unlink(self):
        env, fs = make_fs()

        def scenario():
            yield from fs.create("/a")
            fs.unlink("/a")
            assert not fs.exists("/a")
            with pytest.raises(FileNotFoundInNamespace):
                fs.unlink("/a")

        run(env, scenario())

    def test_stripe_limit_enforced(self):
        env, fs = make_fs(n_osts=8, max_stripe=4)

        def scenario():
            with pytest.raises(StripeLimitExceeded):
                yield from fs.create("/wide", stripe_count=5)

        run(env, scenario())

    def test_round_robin_allocation_rotates(self):
        env, fs = make_fs(n_osts=4)

        def scenario():
            a = yield from fs.create("/a", stripe_count=2)
            b = yield from fs.create("/b", stripe_count=2)
            return a, b

        a, b = run(env, scenario())
        assert set(a.layout.osts).isdisjoint(set(b.layout.osts))

    def test_explicit_osts(self):
        env, fs = make_fs(n_osts=4)

        def scenario():
            f = yield from fs.create("/pinned", osts=[3])
            return f

        f = run(env, scenario())
        assert f.layout.osts == (3,)

    def test_stripe_offset_pins_first_ost(self):
        env, fs = make_fs(n_osts=4)

        def scenario():
            f = yield from fs.create("/p", stripe_count=2, stripe_offset=2)
            return f

        f = run(env, scenario())
        assert f.layout.osts == (2, 3)


class TestWritePath:
    def test_single_ost_write_duration(self):
        env, fs = make_fs(cache=0.0)  # drain-limited at 100 B/s

        def scenario():
            f = yield from fs.create("/f", osts=[0])
            rec = yield from fs.write(f, node=0, offset=0, nbytes=500.0)
            return rec

        rec = run(env, scenario())
        assert rec.duration == pytest.approx(5.0, rel=1e-6)

    def test_cache_absorbs_at_ingest_speed(self):
        env, fs = make_fs(cache=1e6)  # plenty of cache -> 200 B/s

        def scenario():
            f = yield from fs.create("/f", osts=[0])
            rec = yield from fs.write(f, node=0, offset=0, nbytes=500.0)
            return rec

        rec = run(env, scenario())
        assert rec.duration == pytest.approx(2.5, rel=1e-6)

    def test_striped_write_parallel_speedup(self):
        env, fs = make_fs(cache=0.0)

        def scenario():
            f = yield from fs.create(
                "/f", osts=[0, 1], stripe_size=250.0
            )
            rec = yield from fs.write(f, node=0, offset=0, nbytes=500.0)
            return rec

        rec = run(env, scenario())
        # 250 B to each of two 100 B/s OSTs in parallel.
        assert rec.duration == pytest.approx(2.5, rel=1e-6)

    def test_write_fanout_guard(self):
        env, fs = make_fs(n_osts=4, max_flows_per_write=2)

        def scenario():
            f = yield from fs.create("/f", stripe_count=4, stripe_size=1.0)
            with pytest.raises(FileSystemError):
                yield from fs.write(f, node=0, offset=0, nbytes=100.0)

        run(env, scenario())

    def test_write_records_accumulate(self):
        env, fs = make_fs()

        def scenario():
            f = yield from fs.create("/f", osts=[0])
            yield from fs.write(f, node=0, offset=0, nbytes=100.0, writer=7)
            yield from fs.write(f, node=1, offset=100, nbytes=50.0, writer=8)
            return f

        f = run(env, scenario())
        assert f.bytes_written == pytest.approx(150.0)
        assert f.size == pytest.approx(150.0)
        assert [w.writer for w in f.writes] == [7, 8]

    def test_write_after_close_rejected(self):
        env, fs = make_fs()

        def scenario():
            f = yield from fs.create("/f", osts=[0])
            yield from fs.close(f)
            with pytest.raises(ValueError):
                yield from fs.write(f, node=0, offset=0, nbytes=10.0)

        run(env, scenario())

    def test_payload_round_trip(self):
        env, fs = make_fs()

        def scenario():
            f = yield from fs.create("/f", osts=[0])
            yield from fs.write(
                f, node=0, offset=0, nbytes=10.0, payload={"idx": 1}
            )
            return f

        f = run(env, scenario())
        assert f.payload_at(0, 10.0) == {"idx": 1}

    def test_two_writers_one_ost_contend(self):
        env, fs = make_fs(cache=0.0)
        recs = {}

        def writer(fs, f, node, key):
            rec = yield from fs.write(f, node=node, offset=0, nbytes=500.0)
            recs[key] = rec

        def scenario():
            f = yield from fs.create("/f", osts=[0])
            env.process(writer(fs, f, 0, "a"))
            env.process(writer(fs, f, 1, "b"))
            if False:
                yield

        env.process(scenario())
        env.run()
        # Fair share of 100 B/s: both finish at t ~= 10 s (+MDS time).
        assert recs["a"].duration == pytest.approx(10.0, rel=1e-3)
        assert recs["b"].duration == pytest.approx(10.0, rel=1e-3)


class TestFlush:
    def test_flush_waits_for_drain(self):
        env, fs = make_fs(cache=1e6)

        def scenario():
            f = yield from fs.create("/f", osts=[0])
            rec = yield from fs.write(f, node=0, offset=0, nbytes=1000.0)
            t_flush = yield from fs.flush(f)
            return rec, t_flush, env.now

        rec, t_flush, now = run(env, scenario())
        # Absorbed at 200 B/s in 5 s; drain runs at 100 B/s throughout,
        # so 1000 bytes are on disk at t = 10 s total.
        assert rec.duration == pytest.approx(5.0, rel=1e-3)
        assert now == pytest.approx(10.0, rel=1e-2)

    def test_flush_noop_when_on_disk(self):
        env, fs = make_fs(cache=0.0)  # no cache: write completion == disk

        def scenario():
            f = yield from fs.create("/f", osts=[0])
            yield from fs.write(f, node=0, offset=0, nbytes=100.0)
            t_flush = yield from fs.flush(f)
            return t_flush

        t_flush = run(env, scenario())
        assert t_flush == pytest.approx(0.0, abs=1e-6)

    def test_bytes_conservation_absorbed_vs_disk(self):
        env, fs = make_fs(cache=1e6)

        def scenario():
            f = yield from fs.create("/f", osts=[0, 1], stripe_size=100.0)
            yield from fs.write(f, node=0, offset=0, nbytes=1000.0)
            yield from fs.flush(f)

        run(env, scenario())
        assert fs.total_bytes_absorbed() == pytest.approx(1000.0, rel=1e-6)
        assert fs.total_bytes_on_disk() == pytest.approx(1000.0, rel=1e-3)

    def test_stable_cache_region_satisfies_flush(self):
        """fsync returns from the battery-backed cache region: with a
        stable fraction covering the dirty data, flush is immediate."""
        env, fs = make_fs(cache=1e6, stable_fraction=0.9)

        def scenario():
            f = yield from fs.create("/f", osts=[0])
            yield from fs.write(f, node=0, offset=0, nbytes=1000.0)
            t_flush = yield from fs.flush(f)
            return t_flush

        t_flush = run(env, scenario())
        assert t_flush == pytest.approx(0.0, abs=1e-6)

    def test_stable_region_partial(self):
        """Dirty data beyond the stable region must still drain."""
        env, fs = make_fs(cache=1000.0, ingest=200.0, drain=100.0,
                          stable_fraction=0.5)

        def scenario():
            f = yield from fs.create("/f", osts=[0])
            yield from fs.write(f, node=0, offset=0, nbytes=900.0)
            t_flush = yield from fs.flush(f)
            return t_flush

        t_flush = run(env, scenario())
        # 900 B absorbed in 4.5 s, 450 drained meanwhile; only
        # 900 - 500(stable) = 400 must be on disk; drained already
        # exceeds it -> immediate.  Compare against a zero-stable run.
        env2, fs2 = make_fs(cache=1000.0, ingest=200.0, drain=100.0,
                            stable_fraction=0.0)

        def scenario2():
            f = yield from fs2.create("/f", osts=[0])
            yield from fs2.write(f, node=0, offset=0, nbytes=900.0)
            t_flush = yield from fs2.flush(f)
            return t_flush

        t_strict = run(env2, scenario2())
        assert t_flush < t_strict


class TestRead:
    def test_read_takes_time(self):
        env, fs = make_fs(cache=0.0)

        def scenario():
            f = yield from fs.create("/f", osts=[0])
            yield from fs.write(f, node=0, offset=0, nbytes=500.0)
            t = yield from fs.read(f, node=1, offset=0, nbytes=200.0)
            return t

        t = run(env, scenario())
        assert t == pytest.approx(2.0, rel=0.1)  # 200 B at ~100 B/s

    def test_read_validation(self):
        env, fs = make_fs()

        def scenario():
            f = yield from fs.create("/f", osts=[0])
            with pytest.raises(ValueError):
                yield from fs.read(f, node=0, offset=-1, nbytes=10)

        run(env, scenario())
