"""The fig6 smoke-scale interference anomaly, pinned.

At smoke scale the Fig. 6 sweep shows adaptive *losing* to MPI-IO in
the 32-process interference cell (0.77x at seed 0).  That is not a
bug in the transport: the artificial interference program has a fixed
footprint (8 OSTs, 3 writers each) that does not scale down with the
machine, so on the 12-OST smoke pool it covers ~2/3 of all targets —
there is nowhere for the coordinator to steer, and one-writer-per-
target serialization forgoes concurrency without buying interference
avoidance.  On the paper machine the same job covers 8 of 672 targets
(~1%), which is the regime the method is designed for; at the "small"
preset (8 of 84, ~10%) the advantage is already restored.

These tests pin both halves so the artifact stays understood: if the
smoke cell starts *winning*, the interference model lost its bite; if
the small-scale cell stops winning, steering is actually broken.
See EXPERIMENTS.md ("Fig. 6 smoke-scale interference cell").
"""

import numpy as np
import pytest

from repro.apps.xgc1 import xgc1
from repro.harness.experiment import sample_seed
from repro.harness.figures.appbench import _run_cell, preset_for


def _speedup(cfg, n_procs, seed):
    app = xgc1()
    mpi = _run_cell(app, "mpiio", "interference", n_procs, seed, cfg)
    ad = _run_cell(app, "adaptive", "interference", n_procs, seed, cfg)
    return ad.bandwidth / mpi.bandwidth


def test_smoke_interference_cell_is_a_scale_artifact():
    """Smoke pool, 32 procs: interference covers 8/12 targets and
    adaptive loses on average — expected at this scale, not a bug."""
    cfg = preset_for("smoke")
    assert min(8, cfg.pool_osts) / cfg.pool_osts > 0.5, (
        "smoke preset changed: interference no longer dominates the "
        "pool, revisit EXPERIMENTS.md and this test"
    )
    speedups = [
        _speedup(cfg, 32, sample_seed(0, i)) for i in range(3)
    ]
    assert float(np.mean(speedups)) < 1.0, (
        f"adaptive now wins the smoke interference cell "
        f"({speedups}); the interference model lost its bite"
    )


def test_interference_advantage_restored_at_small_scale():
    """Small pool (84 OSTs): the same job covers ~10% of targets and
    steering wins again once writers outnumber adaptive's targets."""
    cfg = preset_for("small")
    speedups = [
        _speedup(cfg, 256, sample_seed(0, i)) for i in range(2)
    ]
    assert float(np.mean(speedups)) > 1.5, (
        f"adaptive no longer recovers at small scale ({speedups})"
    )
