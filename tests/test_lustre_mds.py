"""Unit tests for the metadata server."""

import numpy as np
import pytest

from repro.lustre.mds import MetadataServer
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


class TestMetadataServer:
    def test_single_op_takes_service_time(self, env):
        mds = MetadataServer(env, concurrency=1, mean_service_time=0.01,
                             sigma=0.0)

        def scenario():
            wait, service = yield from mds.operation()
            return wait, service, env.now

        p = env.process(scenario())
        env.run()
        wait, service, now = p.value
        assert wait == 0.0
        assert service == pytest.approx(0.01)
        assert now == pytest.approx(0.01)

    def test_queueing_under_burst(self, env):
        mds = MetadataServer(env, concurrency=2, mean_service_time=0.01,
                             sigma=0.0)
        waits = []

        def op():
            wait, _ = yield from mds.operation()
            waits.append(wait)

        for _ in range(6):
            env.process(op())
        env.run()
        # 6 ops over 2 servers at 10 ms: waves wait 0, 10, 20 ms.
        assert sorted(waits) == pytest.approx([0, 0, 0.01, 0.01, 0.02, 0.02])
        assert mds.ops_completed == 6
        assert mds.max_queue_length >= 4

    def test_stats_accumulate(self, env):
        mds = MetadataServer(env, concurrency=1, mean_service_time=0.005,
                             sigma=0.0)

        def op():
            yield from mds.operation()

        for _ in range(3):
            env.process(op())
        env.run()
        assert mds.total_service_time == pytest.approx(0.015)
        assert mds.mean_wait_time == pytest.approx((0 + 0.005 + 0.01) / 3)

    def test_lognormal_jitter_mean(self, env):
        rng = np.random.default_rng(0)
        mds = MetadataServer(env, concurrency=1000,
                             mean_service_time=0.01, sigma=0.5, rng=rng)
        draws = [mds._draw_service_time() for _ in range(4000)]
        assert np.mean(draws) == pytest.approx(0.01, rel=0.05)
        assert np.std(draws) > 0

    def test_staggering_reduces_wait(self, env):
        """Spread-out opens see less MDS queueing than a burst —
        the premise of the paper's stagger method."""
        mds = MetadataServer(env, concurrency=1, mean_service_time=0.01,
                             sigma=0.0)
        burst_waits, stagger_waits = [], []

        def burst_op():
            w, _ = yield from mds.operation()
            burst_waits.append(w)

        for _ in range(10):
            env.process(burst_op())
        env.run()

        env2 = Environment()
        mds2 = MetadataServer(env2, concurrency=1, mean_service_time=0.01,
                              sigma=0.0)

        def staggered(i):
            yield env2.timeout(i * 0.02)
            w, _ = yield from mds2.operation()
            stagger_waits.append(w)

        for i in range(10):
            env2.process(staggered(i))
        env2.run()
        assert sum(stagger_waits) < sum(burst_waits)

    def test_validation(self, env):
        with pytest.raises(ValueError):
            MetadataServer(env, concurrency=0)
        with pytest.raises(ValueError):
            MetadataServer(env, mean_service_time=0)
        with pytest.raises(ValueError):
            MetadataServer(env, sigma=-1)
