"""Tests for the simulated MPI communicator."""

import pytest

from repro.mpi import ANY_SOURCE, ANY_TAG, SimComm
from repro.net.latency import MessageLatencyModel
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


def make_comm(env, n=4, alpha=1e-6):
    return SimComm(env, n, latency=MessageLatencyModel(alpha=alpha, beta=0))


class TestPointToPoint:
    def test_send_recv_roundtrip(self, env):
        comm = make_comm(env)
        got = []

        def receiver():
            msg = yield comm.recv(1)
            got.append(msg)

        def sender():
            comm.send(0, 1, {"x": 1}, tag=5)
            if False:
                yield

        env.process(receiver())
        env.process(sender())
        env.run()
        (msg,) = got
        assert msg.payload == {"x": 1}
        assert msg.source == 0 and msg.dest == 1 and msg.tag == 5
        assert msg.delivered_at > msg.sent_at

    def test_recv_before_send(self, env):
        comm = make_comm(env)
        got = []

        def receiver():
            msg = yield comm.recv(0)
            got.append(msg.payload)

        def sender():
            yield env.timeout(5)
            comm.send(1, 0, "late")

        env.process(receiver())
        env.process(sender())
        env.run()
        assert got == ["late"]

    def test_tag_matching(self, env):
        comm = make_comm(env)
        got = []

        def receiver():
            msg = yield comm.recv(0, tag=7)
            got.append(msg.payload)

        def sender():
            comm.send(1, 0, "wrong", tag=3)
            comm.send(1, 0, "right", tag=7)
            if False:
                yield

        env.process(receiver())
        env.process(sender())
        env.run()
        assert got == ["right"]
        assert comm.inbox_size(0) == 1  # the tag-3 message still queued

    def test_source_matching(self, env):
        comm = make_comm(env)
        got = []

        def receiver():
            msg = yield comm.recv(0, source=2)
            got.append(msg.source)

        def senders():
            comm.send(1, 0, "a")
            comm.send(2, 0, "b")
            if False:
                yield

        env.process(receiver())
        env.process(senders())
        env.run()
        assert got == [2]

    def test_wildcards(self, env):
        comm = make_comm(env)
        got = []

        def receiver():
            for _ in range(2):
                msg = yield comm.recv(3, source=ANY_SOURCE, tag=ANY_TAG)
                got.append((msg.source, msg.tag))

        def senders():
            comm.send(0, 3, None, tag=1)
            comm.send(1, 3, None, tag=2)
            if False:
                yield

        env.process(receiver())
        env.process(senders())
        env.run()
        assert sorted(got) == [(0, 1), (1, 2)]

    def test_fifo_per_pair(self, env):
        comm = make_comm(env)
        got = []

        def receiver():
            for _ in range(3):
                msg = yield comm.recv(1, source=0)
                got.append(msg.payload)

        def sender():
            for i in range(3):
                comm.send(0, 1, i)
            if False:
                yield

        env.process(receiver())
        env.process(sender())
        env.run()
        assert got == [0, 1, 2]

    def test_latency_applied(self, env):
        comm = make_comm(env, alpha=0.5)
        times = []

        def receiver():
            yield comm.recv(1)
            times.append(env.now)

        def sender():
            comm.send(0, 1, None)
            if False:
                yield

        env.process(receiver())
        env.process(sender())
        env.run()
        assert times == [pytest.approx(0.5)]

    def test_rank_validation(self, env):
        comm = make_comm(env, n=2)
        with pytest.raises(ValueError):
            comm.send(0, 5, None)
        with pytest.raises(ValueError):
            comm.recv(9)
        with pytest.raises(ValueError):
            SimComm(env, 0)

    def test_message_counters(self, env):
        comm = make_comm(env)

        def sender():
            comm.send(0, 1, None)
            comm.send(0, 2, None)
            comm.send(3, 2, None)
            if False:
                yield

        env.process(sender())
        env.run()
        assert comm.messages_sent == 3
        assert comm.messages_by_rank[0] == 2
        assert comm.messages_by_rank[3] == 1


class TestCollectives:
    def test_barrier_blocks_until_all(self, env):
        comm = make_comm(env, n=3)
        release_times = []

        def participant(rank, delay):
            yield env.timeout(delay)
            yield from comm.barrier(rank, name="b0")
            release_times.append((rank, env.now))

        env.process(participant(0, 1))
        env.process(participant(1, 5))
        env.process(participant(2, 3))
        env.run()
        times = [t for _, t in release_times]
        assert len(set(times)) == 1
        assert times[0] >= 5.0

    def test_sequential_barriers_need_names(self, env):
        comm = make_comm(env, n=2)
        log = []

        def participant(rank):
            for gen in range(3):
                yield from comm.barrier(rank, name=f"gen{gen}")
                log.append((gen, rank))

        env.process(participant(0))
        env.process(participant(1))
        env.run()
        assert [g for g, _ in log] == [0, 0, 1, 1, 2, 2]

    def test_partial_barrier(self, env):
        comm = make_comm(env, n=4)
        done = []

        def participant(rank):
            yield from comm.barrier(rank, name="sub", n=2)
            done.append(rank)

        env.process(participant(0))
        env.process(participant(1))
        env.run()
        assert sorted(done) == [0, 1]

    def test_bcast_delivers_root_value(self, env):
        comm = make_comm(env, n=3)
        got = []

        def participant(rank):
            v = yield from comm.bcast(rank, root=1,
                                      value=("data" if rank == 1 else None))
            got.append((rank, v))

        for r in range(3):
            env.process(participant(r))
        env.run()
        assert sorted(got) == [(0, "data"), (1, "data"), (2, "data")]
