"""The resumable sweep scheduler: checkpoints, chaos, and resume.

Pins the tentpole contracts of :mod:`repro.service`:

* job ids are deterministic functions of (label, fn, seed);
* the journal round-trips results bit-exactly, tolerates a truncated
  final line, and survives mid-file corruption with everything before
  the damage intact;
* a worker SIGKILLed mid-job is detected, its job adopted and retried,
  and the finished sweep is bit-identical to a clean serial run;
* hung jobs are killed at their wall-clock deadline and retried within
  the budget; exhausted budgets fail loudly with the cell's label,
  sample seed, and a reproduction one-liner (:class:`JobFailure`);
* a sweep process SIGKILLed mid-run resumes from its journal and the
  final results are bit-identical to an uninterrupted run;
* the ``repro.tools.serve`` daemon/client CLI drives all of the above.
"""

import json
import os
import signal
import subprocess
import sys
import time
from functools import partial

import pytest

from repro.errors import ConfigurationError, JobFailure
from repro.faults import RetryPolicy
from repro.harness.experiment import sample_seed
from repro.service import (
    Journal,
    Scheduler,
    job_id,
    journal_in,
    make_job,
)
from repro.service.journal import (
    JOURNAL_NAME,
    decode_result,
    encode_result,
    replay,
    summarize,
)

SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


@pytest.fixture(autouse=True)
def _clean_service_env():
    """Isolate the scheduler's env channels and the journal cache."""
    saved = {
        k: os.environ.get(k)
        for k in ("REPRO_JOURNAL", "REPRO_JOBS", "REPRO_JOB_TIMEOUT",
                  "REPRO_JOB_RETRIES")
    }
    yield
    for k, v in saved.items():
        if v is None:
            os.environ.pop(k, None)
        else:
            os.environ[k] = v
    from repro.service import journal as journal_mod

    journal_mod._journals.clear()
    journal_mod.set_active_state_dir(None)


# -- picklable job functions (module level on purpose) --------------------

def _double(seed: int) -> float:
    return seed * 2.0


def _tupled(seed: int) -> tuple:
    return (seed, seed * 0.5, [seed, {"s": seed}])


def _boom(seed: int) -> float:
    raise ValueError(f"deterministic failure for seed {seed}")


def _record_and_double(seed: int, out_dir: str) -> float:
    """Leaves one marker file per *execution* (not per restore)."""
    with open(os.path.join(out_dir, f"ran_{seed}_{os.getpid()}"), "a"):
        pass
    return seed * 2.0


def _die_once(seed: int, marker_dir: str) -> float:
    """SIGKILL own worker on the first attempt; succeed on the retry."""
    marker = os.path.join(marker_dir, f"died_{seed}")
    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        os.kill(os.getpid(), signal.SIGKILL)
    return seed * 2.0


def _die_always(seed: int) -> float:
    os.kill(os.getpid(), signal.SIGKILL)
    return 0.0  # pragma: no cover


def _die_in_workers(seed: int, parent_pid: int) -> float:
    """SIGKILL any worker process; succeed only inline in the parent."""
    if os.getpid() != parent_pid:
        os.kill(os.getpid(), signal.SIGKILL)
    return seed * 2.0


def _hang_once(seed: int, marker_dir: str) -> float:
    marker = os.path.join(marker_dir, f"hung_{seed}")
    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        time.sleep(60.0)
    return seed + 0.25


def _fast_policy() -> RetryPolicy:
    return RetryPolicy(max_retries=3, backoff_base=0.01, backoff_cap=0.05)


class TestJobIds:
    def test_deterministic_and_seed_sensitive(self):
        a = job_id("cell", partial(_double), 7)
        assert a == job_id("cell", partial(_double), 7)
        assert a != job_id("cell", partial(_double), 8)
        assert a != job_id("other", partial(_double), 7)

    def test_stable_across_processes(self, tmp_path):
        """No PYTHONHASHSEED / pid / time leakage into ids."""
        code = (
            "import sys; sys.path.insert(0, {src!r});"
            "from functools import partial;"
            "from repro.service import job_id;"
            "from tests.test_service import _double;"
            "print(job_id('cell', partial(_double), 7))"
        ).format(src=SRC)
        env = dict(os.environ, PYTHONHASHSEED="99",
                   PYTHONPATH=os.pathsep.join(
                       [SRC, os.path.dirname(SRC)]))
        out = subprocess.run(
            [sys.executable, "-c", code], env=env, text=True,
            capture_output=True, check=True,
            cwd=os.path.dirname(SRC),
        ).stdout.strip()
        assert out == job_id("cell", partial(_double), 7)


class TestJournal:
    def test_result_encoding_round_trips_exactly(self):
        for value in (
            None, True, 3, 0.1 + 0.2, "x", [1, [2.5, "y"]],
            {"a": 1.0000000000000002},
            (1, 2.5),               # tuple -> pickle path
            {"nested": (1,)},       # tuple inside dict -> pickle path
            float("nan"),           # non-strict JSON -> pickle path
        ):
            decoded = decode_result(encode_result(value))
            assert type(decoded) is type(value)
            if value == value:  # NaN compares unequal to itself
                assert decoded == value

    def test_truncated_last_line_is_discarded(self, tmp_path):
        path = str(tmp_path / JOURNAL_NAME)
        j = Journal(path)
        j.append({"kind": "done", "job": "a", "label": "cell#0",
                  "result": {"json": 1}})
        j.append({"kind": "done", "job": "b", "label": "cell#1",
                  "result": {"json": 2}})
        j.close()
        with open(path, "a") as fh:
            fh.write('{"kind": "done", "job": "c", "resu')  # crash here
        fresh = Journal(path)
        assert set(fresh.done) == {"a", "b"}
        assert fresh.discarded_lines == 1

    def test_mid_file_corruption_keeps_earlier_checkpoints(self, tmp_path):
        path = str(tmp_path / JOURNAL_NAME)
        j = Journal(path)
        j.append({"kind": "done", "job": "a", "result": {"json": 1}})
        j.close()
        with open(path, "a") as fh:
            fh.write("NOT JSON\n")
            fh.write(json.dumps(
                {"kind": "done", "job": "b", "result": {"json": 2}}
            ) + "\n")
        with pytest.warns(RuntimeWarning, match="corrupt record"):
            records, discarded = replay(path)
        assert [r["job"] for r in records] == ["a"]
        assert discarded == 2

    def test_summarize_counts(self, tmp_path):
        j = Journal(str(tmp_path / JOURNAL_NAME))
        j.append({"kind": "plan", "label": "cell", "jobs": 3})
        j.append({"kind": "done", "job": "a", "label": "cell#0",
                  "attempt": 0, "elapsed": 0.5, "result": {"json": 1}})
        j.append({"kind": "done", "job": "b", "label": "cell#1",
                  "attempt": 2, "elapsed": 0.5, "result": {"json": 2}})
        j.append({"kind": "failed", "job": "c", "label": "cell#2",
                  "error": "x"})
        j.close()
        cell = summarize(str(tmp_path))["labels"]["cell"]
        assert (cell["planned"], cell["done"], cell["pending"]) == (3, 2, 1)
        assert (cell["retried"], cell["failed"]) == (1, 1)


class TestResume:
    def _jobs(self, fn, n, base_seed=0, label="cell"):
        return [
            make_job(fn, sample_seed(base_seed, i), label=label, index=i)
            for i in range(n)
        ]

    def test_second_run_restores_without_recompute(self, tmp_path):
        state = tmp_path / "state"
        fn = partial(_record_and_double, out_dir=str(tmp_path))
        jobs = self._jobs(fn, 4)
        first = Scheduler(journal=journal_in(str(state))).run(jobs, "cell")
        ran = len(os.listdir(tmp_path)) - 1  # minus state dir
        assert ran == 4
        sched = Scheduler(journal=journal_in(str(state)))
        second = sched.run(self._jobs(fn, 4), "cell")
        assert second == first
        assert sched.stats.restored == 4 and sched.stats.done == 0
        assert len(os.listdir(tmp_path)) - 1 == 4  # nothing re-executed

    def test_restored_results_are_bit_identical_pickles(self, tmp_path):
        state = str(tmp_path / "state")
        jobs = self._jobs(_tupled, 3)
        first = Scheduler(journal=journal_in(state)).run(jobs, "cell")
        second = Scheduler(journal=Journal(
            os.path.join(state, JOURNAL_NAME)
        )).run(self._jobs(_tupled, 3), "cell")
        assert second == first
        assert all(type(r) is tuple for r in second)

    def test_failed_jobs_are_retried_on_resume(self, tmp_path):
        state = str(tmp_path / "state")
        with pytest.raises(JobFailure):
            Scheduler(journal=journal_in(state)).run(
                self._jobs(_boom, 2), "cell"
            )
        sched = Scheduler(journal=Journal(
            os.path.join(state, JOURNAL_NAME)
        ))
        # Same ids, working fn: the failure record does not pin them.
        out = sched.run(self._jobs(_double, 2), "cell")
        assert sched.stats.restored == 0
        assert out == [0.0, 2.0]


class TestChaos:
    def test_sigkilled_worker_is_adopted_and_sweep_completes(
        self, tmp_path
    ):
        fn = partial(_die_once, marker_dir=str(tmp_path))
        jobs = [make_job(fn, s, label="chaos", index=i)
                for i, s in enumerate((3, 4, 5, 6))]
        sched = Scheduler(n_workers=2, policy=_fast_policy())
        out = sched.run(jobs, "chaos")
        assert out == [6.0, 8.0, 10.0, 12.0]  # == serial expectation
        assert sched.stats.adoptions >= 1
        assert sched.stats.retries >= 1

    def test_chaos_run_bit_identical_and_checkpointed(self, tmp_path):
        state = str(tmp_path / "state")
        fn = partial(_die_once, marker_dir=str(tmp_path))
        jobs = [make_job(fn, s, label="chaos", index=i)
                for i, s in enumerate((1, 2, 3))]
        sched = Scheduler(
            n_workers=2, policy=_fast_policy(),
            journal=journal_in(state),
        )
        out = sched.run(jobs, "chaos")
        assert out == [2.0, 4.0, 6.0]
        # Every completion was checkpointed despite the carnage.
        fresh = Journal(os.path.join(state, JOURNAL_NAME))
        assert len(fresh.done) == 3

    def test_retry_budget_exhaustion_fails_loudly(self):
        jobs = [make_job(_die_always, 11, label="doomed", index=0)]
        sched = Scheduler(
            n_workers=1 + 1,  # force the pool path with a 2nd job
            policy=RetryPolicy(max_retries=1, backoff_base=0.01,
                               backoff_cap=0.05),
        )
        jobs.append(make_job(_double, 12, label="doomed", index=1))
        with pytest.raises(JobFailure, match="retry budget"):
            sched.run(jobs, "doomed")

    def test_hung_job_times_out_and_retries(self, tmp_path):
        fn = partial(_hang_once, marker_dir=str(tmp_path))
        jobs = [make_job(fn, 9, label="slow", index=0),
                make_job(fn, 10, label="slow", index=1)]
        sched = Scheduler(
            n_workers=2, policy=_fast_policy(), job_timeout=0.6,
        )
        out = sched.run(jobs, "slow")
        assert out == [9.25, 10.25]
        assert sched.stats.timeouts >= 1

    def test_degraded_serial_fallback_when_pool_exhausted(self):
        """Workers all die, respawn budget zero: the batch must still
        finish inline rather than deadlock or abort."""
        fn = partial(_die_in_workers, parent_pid=os.getpid())
        jobs = [make_job(fn, s, label="deg", index=i)
                for i, s in enumerate((1, 2, 3, 4))]
        sched = Scheduler(
            n_workers=2, policy=_fast_policy(), max_respawns=0,
        )
        out = sched.run(jobs, "deg")
        assert out == [2.0, 4.0, 6.0, 8.0]
        assert sched.stats.serial_fallback

    def test_duplicate_ids_rejected(self):
        job = make_job(_double, 1, label="dup", index=0)
        with pytest.raises(ConfigurationError, match="duplicate"):
            Scheduler().run([job, job], "dup")


class TestJobFailureMessage:
    def test_names_cell_seed_and_reproduction(self):
        jobs = [make_job(_boom, sample_seed(5, 0),
                         label="fig9[cell]", index=0)]
        with pytest.raises(JobFailure) as info:
            Scheduler().run(jobs, "fig9[cell]")
        msg = str(info.value)
        assert "fig9[cell]#0" in msg
        assert f"sample_seed={sample_seed(5, 0)}" in msg
        assert "deterministic failure" in msg
        assert info.value.job_id
        assert isinstance(info.value.__cause__, ValueError)

    def test_worker_failure_carries_same_context(self):
        jobs = [make_job(_boom, sample_seed(2, i), label="figX", index=i)
                for i in range(2)]
        with pytest.raises(JobFailure) as info:
            Scheduler(n_workers=2).run(jobs, "figX")
        assert "figX" in str(info.value)
        assert "sample_seed=" in str(info.value)


_KILL_SCRIPT = """\
import json, os, sys, time
sys.path.insert(0, {src!r})
os.environ["REPRO_JOURNAL"] = {state!r}

def slow(seed):
    time.sleep(0.25)
    return [seed, seed * 0.5, "s%d" % seed]

from repro.harness.parallel import run_samples
out = run_samples(slow, 6, base_seed=5, jobs=1, label="killable")
with open({out!r}, "w") as fh:
    json.dump(out, fh)
"""


class TestCrashResume:
    def test_sigkilled_sweep_resumes_bit_identical(self, tmp_path):
        """The headline chaos scenario: SIGKILL the whole sweep process
        mid-run, re-run the same command, and the final results equal
        an uninterrupted run's — with the already-finished prefix
        restored, not recomputed."""
        state = str(tmp_path / "state")
        out_file = str(tmp_path / "out.json")
        script = str(tmp_path / "sweep.py")
        with open(script, "w") as fh:
            fh.write(_KILL_SCRIPT.format(
                src=SRC, state=state, out=out_file
            ))
        journal = os.path.join(state, JOURNAL_NAME)

        proc = subprocess.Popen([sys.executable, script])
        try:
            deadline = time.time() + 30.0
            while time.time() < deadline:
                done = sum(
                    1 for r in replay(journal)[0] if r["kind"] == "done"
                )
                if done >= 2:
                    break
                time.sleep(0.02)
            else:
                pytest.fail("sweep never checkpointed a job")
            proc.kill()
        finally:
            proc.wait()
        assert not os.path.exists(out_file)
        n_before = sum(
            1 for r in replay(journal)[0] if r["kind"] == "done"
        )
        assert 1 <= n_before < 6

        subprocess.run([sys.executable, script], check=True, timeout=60)
        with open(out_file) as fh:
            resumed = json.load(fh)
        assert resumed == [
            [s, s * 0.5, "s%d" % s]
            for s in (sample_seed(5, i) for i in range(6))
        ]
        records = [r for r in replay(journal)[0] if r["kind"] == "done"]
        assert len(records) == 6  # resume filled in exactly the rest
        assert len({r["job"] for r in records}) == 6


class TestServeCli:
    def _run(self, argv):
        from repro.tools.serve import main

        return main(argv)

    def test_run_status_and_resume(self, tmp_path, capsys):
        state = str(tmp_path / "state")
        out = str(tmp_path / "results.json")
        rc = self._run([
            "run", "fig1", "--state-dir", state, "--scale", "smoke",
            "--out", out,
        ])
        assert rc == 0
        with open(out) as fh:
            results = json.load(fh)
        assert results["artifacts"]["fig1"]["ok"]
        assert results["artifacts"]["fig1"]["data"]
        with open(os.path.join(state, "status.json")) as fh:
            assert json.load(fh)["state"] == "done"

        assert self._run(["status", "--state-dir", state]) == 0
        text = capsys.readouterr().out
        assert "fig1[" in text and "pending" in text

        # Re-running the same command resumes: identical output data.
        out2 = str(tmp_path / "results2.json")
        assert self._run([
            "run", "fig1", "--state-dir", state, "--scale", "smoke",
            "--out", out2,
        ]) == 0
        with open(out2) as fh:
            again = json.load(fh)
        assert again["artifacts"]["fig1"]["data"] == \
            results["artifacts"]["fig1"]["data"]

    def test_manifest_rejects_parameter_drift(self, tmp_path):
        state = str(tmp_path / "state")
        assert self._run([
            "run", "fig1", "--state-dir", state, "--scale", "smoke",
        ]) == 0
        with pytest.raises(SystemExit, match="seed"):
            self._run([
                "run", "fig1", "--state-dir", state, "--scale", "smoke",
                "--seed", "1",
            ])

    def test_bench_report_partial(self, tmp_path, capsys):
        from repro.tools.bench_report import main as bench_main

        state = str(tmp_path / "state")
        assert self._run([
            "run", "fig1", "--state-dir", state, "--scale", "smoke",
        ]) == 0
        capsys.readouterr()
        assert bench_main(["--partial", state]) == 0
        text = capsys.readouterr().out
        assert "| fig1[" in text
        assert "| (total) | done |" in text


class TestRunSamplesJournalEnv:
    def test_env_journal_checkpoints_and_resumes(self, tmp_path):
        from repro.harness.parallel import run_samples

        state = str(tmp_path / "state")
        os.environ["REPRO_JOURNAL"] = state
        fn = partial(_record_and_double, out_dir=str(tmp_path))
        first = run_samples(fn, 3, base_seed=1, jobs=1, label="envcell")
        executions = len(os.listdir(tmp_path)) - 1
        assert executions == 3
        second = run_samples(fn, 3, base_seed=1, jobs=1, label="envcell")
        assert second == first
        assert len(os.listdir(tmp_path)) - 1 == 3  # restored, not rerun
