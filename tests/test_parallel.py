"""The parallel sample executor: bit-equality with serial execution.

The whole value proposition of :mod:`repro.harness.parallel` is that
fanning samples out over worker processes changes wall-clock time and
nothing else: same seeds, same order, same floats.  These tests pin
that contract, the job-count resolution rules, the non-picklable
serial fallback, and the tracer merge.
"""

import os
import pickle
import warnings
from functools import partial

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness.experiment import sample_seed
from repro.harness.parallel import parallel_map, resolve_jobs, run_samples
from repro.trace import TraceEvent, Tracer, tracing


def _echo_seed(seed: int) -> int:
    return seed


def _simulate(seed: int) -> tuple:
    """A seed-determined numeric result (stands in for a machine run)."""
    rng = np.random.default_rng(seed)
    draws = rng.normal(size=64)
    return float(draws.sum()), float(draws.min()), float(draws.max())


def _traced_sample(seed: int) -> int:
    from repro.trace import get_active_tracer

    t = get_active_tracer()
    if t is not None:
        t.instant("sample", cat="test", pid="test", tid=f"seed {seed}")
    return seed


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs() == 1

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(3) == 3

    def test_env_used_when_no_arg(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs() == 5

    def test_zero_means_all_cores(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(0) == (os.cpu_count() or 1)
        monkeypatch.setenv("REPRO_JOBS", "0")
        assert resolve_jobs() == (os.cpu_count() or 1)

    def test_bad_env_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "lots")
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            resolve_jobs()


class TestRunSamples:
    def test_seed_derivation_and_order(self):
        out = run_samples(_echo_seed, 5, base_seed=42, jobs=1)
        assert out == [sample_seed(42, i) for i in range(5)]

    def test_parallel_seed_derivation_and_order(self):
        out = run_samples(_echo_seed, 5, base_seed=42, jobs=2)
        assert out == [sample_seed(42, i) for i in range(5)]

    def test_rejects_zero_samples(self):
        with pytest.raises(ValueError):
            run_samples(_echo_seed, 0)

    @settings(max_examples=10, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=6),
        base=st.integers(min_value=0, max_value=2**20),
    )
    def test_parallel_bit_identical_to_serial(self, n, base):
        serial = run_samples(_simulate, n, base, jobs=1)
        parallel = run_samples(_simulate, n, base, jobs=2)
        # == on floats, not approx: the contract is bit-equality.
        assert serial == parallel

    def test_end_to_end_figure_bit_identical(self):
        fig3 = pytest.importorskip("repro.harness.figures.fig3")
        serial = fig3.run("smoke", 0).to_dict()
        os.environ["REPRO_JOBS"] = "2"
        try:
            parallel = fig3.run("smoke", 0).to_dict()
        finally:
            del os.environ["REPRO_JOBS"]
        assert serial == parallel


class TestParallelMap:
    def test_order_stability(self):
        items = list(range(10))
        assert parallel_map(_echo_seed, items, jobs=3) == items

    def test_serial_when_jobs_one(self):
        assert parallel_map(_echo_seed, [1, 2, 3], jobs=1) == [1, 2, 3]

    def test_non_picklable_falls_back_with_warning(self):
        captured = []
        fn = lambda x: x * 2  # noqa: E731 - deliberately unpicklable
        with pytest.raises(Exception):
            pickle.dumps(fn)
        with warnings.catch_warnings(record=True) as w:
            warnings.simplefilter("always")
            out = parallel_map(fn, [1, 2, 3], jobs=2)
            captured = [x for x in w if x.category is RuntimeWarning]
        assert out == [2, 4, 6]
        assert captured, "expected a RuntimeWarning on serial fallback"
        assert "not picklable" in str(captured[0].message)

    def test_partial_of_module_function_is_parallelizable(self):
        fn = partial(_echo_seed)
        pickle.dumps(fn)  # must not raise
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            assert parallel_map(fn, [1, 2], jobs=2) == [1, 2]

    def test_tracer_collects_worker_events_in_sample_order(self):
        with tracing(Tracer()) as t:
            parallel_map(_traced_sample, [10, 11, 12], jobs=2)
        names = [(e.tid, e.run) for e in t.events if e.name == "sample"]
        # One run per sample, in submission order, distinct run indices.
        assert names == [("seed 10", 0), ("seed 11", 1), ("seed 12", 2)]
        assert t.n_runs == 3


class TestTracerAbsorb:
    def _ev(self, run):
        return TraceEvent(
            "i", "x", "test", 0.0, pid="p", tid="t", run=run
        )

    def test_reindexes_runs_onto_own_sequence(self):
        t = Tracer()
        t._n_binds = 2  # two local runs already recorded
        t.absorb([self._ev(0), self._ev(1), self._ev(0)])
        assert [e.run for e in t.events] == [2, 3, 2]
        assert t._n_binds == 4

    def test_absorb_empty_is_noop(self):
        t = Tracer()
        t.absorb([])
        assert len(t.events) == 0
        assert t._n_binds == 0

    def test_successive_absorbs_stack(self):
        t = Tracer()
        t.absorb([self._ev(0)])
        t.absorb([self._ev(0)])
        assert [e.run for e in t.events] == [0, 1]
        assert t.n_runs == 2


class TestChurnHeavyCellParallel:
    def test_interference_cell_bit_identical_to_serial(self):
        """Churn is where the incremental reallocator and same-instant
        settle coalescing live: an interference cell keeps background
        writers starting/finishing flows continuously, so most settles
        take the incremental patch path.  The cell must still fan out
        bit-identically — the patched allocations are exactly the batch
        ones."""
        from repro.apps.xgc1 import xgc1
        from repro.harness.figures.appbench import SweepConfig, _run_cell

        cfg = SweepConfig(
            pool_osts=12, adaptive_osts=8, stripe_cap=4,
            proc_counts=(24,), n_samples=2,
        )
        cell = partial(
            _run_cell, xgc1(), "adaptive", "interference", 24, cfg=cfg
        )
        serial = run_samples(cell, 2, base_seed=3, jobs=1)
        parallel = run_samples(cell, 2, base_seed=3, jobs=2)
        assert serial == parallel


class TestFaultedRunsParallel:
    def test_faulted_sweep_cell_bit_identical_to_serial(self):
        """Fault injection must not break the parallel contract: a
        resilience cell (baseline run + faulted run + re-run model)
        fans out over workers bit-identically, because each sample
        builds its plan inside the cell from its derived seed."""
        from repro.harness.figures.resilience import _one_cell

        cell = partial(
            _one_cell, method="adaptive", k=2,
            n_osts=16, cap=4, n_ranks=64, mb=16.0,
        )
        serial = run_samples(cell, 2, base_seed=0, jobs=1)
        parallel = run_samples(cell, 2, base_seed=0, jobs=2)
        assert serial == parallel

    def test_corruption_cell_bit_identical_to_serial(self):
        """Corruption faults + scrub are seed-deterministic: an
        integrity cell (three runs + a scrub + detection stats) must
        produce identical reports serial and fanned out."""
        from repro.harness.figures.resilience import _integrity_cell

        cell = partial(
            _integrity_cell, method="adaptive",
            n_osts=16, cap=4, n_ranks=64, mb=16.0,
        )
        serial = run_samples(cell, 2, base_seed=0, jobs=1)
        parallel = run_samples(cell, 2, base_seed=0, jobs=2)
        assert serial == parallel
        assert all(s["undetected"] == 0.0 for s in serial)

    def test_env_fault_plan_reaches_workers(self, tmp_path):
        """REPRO_FAULTS (the --faults propagation channel) must be
        honoured by worker processes: machines built in a worker pick
        the plan up from the environment."""
        from repro.faults import two_ost_failure_plan

        path = tmp_path / "plan.json"
        two_ost_failure_plan(osts=(0, 1), at=0.01).save_json(str(path))
        os.environ["REPRO_FAULTS"] = str(path)
        try:
            out = parallel_map(_machine_has_faults, [0, 1], jobs=2)
        finally:
            del os.environ["REPRO_FAULTS"]
        assert out == [True, True]
        assert parallel_map(_machine_has_faults, [0], jobs=1) == [False]


def _machine_has_faults(seed: int) -> bool:
    from repro.machines import jaguar

    m = jaguar(n_osts=4).build(n_ranks=4, seed=seed)
    return m.faults is not None


def _metered_cell(seed: int) -> dict:
    """Module-level (picklable) adaptive cell; JSON-safe result fields
    for exact bit-equality comparison across telemetry modes."""
    from repro.apps import AppKernel, Variable
    from repro.core.transports import AdaptiveTransport
    from repro.machines import jaguar
    from repro.units import MB

    m = jaguar(n_osts=8).build(n_ranks=16, seed=seed)
    app = AppKernel("metered", [Variable("x", shape=(int(8 * MB / 8),))])
    res = AdaptiveTransport(n_osts_used=8).run(m, app, output_name="out")
    return {
        "reported_time": res.reported_time,
        "bandwidth": res.aggregate_bandwidth,
        "imbalance": res.imbalance_factor,
        "n_adaptive_writes": res.n_adaptive_writes,
    }


class TestTelemetryParallel:
    def test_results_bit_identical_with_and_without_metrics(self):
        """Ambient telemetry must be a pure observer: the settle-hook
        sampler never splits a cache-integration step, so every float
        in the result is unchanged — with a live registry, a disabled
        one, or none at all."""
        from repro.telemetry import MetricsRegistry, collecting

        plain = _metered_cell(7)
        with collecting(MetricsRegistry()) as reg:
            metered = _metered_cell(7)
        with collecting(MetricsRegistry(enabled=False)):
            disabled = _metered_cell(7)
        assert len(reg) > 0  # telemetry actually collected something
        # == on floats, not approx: the contract is bit-equality.
        assert metered == plain
        assert disabled == plain

    def test_parallel_metrics_merge_matches_serial(self):
        """Workers collect into their own registries; the parent
        absorbs them in submission order.  Results stay bit-identical
        and the merged totals equal the serial ones."""
        from repro.telemetry import MetricsRegistry, collecting

        with collecting(MetricsRegistry()) as reg_serial:
            serial = run_samples(_metered_cell, 2, base_seed=3, jobs=1)
        with collecting(MetricsRegistry()) as reg_par:
            parallel = run_samples(_metered_cell, 2, base_seed=3, jobs=2)
        assert serial == parallel
        assert reg_serial.n_runs == reg_par.n_runs == 2
        for name in ("fabric.settles", "fs.writes"):
            a = reg_serial.find("counter", name)
            b = reg_par.find("counter", name)
            assert a.value == b.value > 0
        # Per-run series structure survives the merge: same run
        # indices, same sample counts per run.
        def runs_of(reg):
            s = reg.find("series", "sim.events")
            out = {}
            for r, _, _ in s.samples:
                out[r] = out.get(r, 0) + 1
            return out

        assert runs_of(reg_serial) == runs_of(reg_par)
