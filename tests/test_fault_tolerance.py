"""Transport behaviour under injected faults.

The adaptive transport must *recover*: relocate sub-files off dead or
hung targets, re-drive the affected writers, and adopt a crashed
sub-coordinator's group.  The static transports must *fail fast with
defined semantics*: record the failed writers, terminate within the
policy timeouts, and raise :class:`~repro.errors.TransportError`
carrying durable/lost byte accounting plus the partial result.
"""

import functools

import pytest

from repro.apps import AppKernel, Variable
from repro.core.transports import (
    AdaptiveTransport,
    MpiIoTransport,
    PosixTransport,
    SplitFilesTransport,
)
from repro.errors import TransportError
from repro.faults import FaultEvent, FaultPlan, two_ost_failure_plan
from repro.machines import jaguar
from repro.units import MB

N_RANKS = 64
N_OSTS = 16
CAP = 4
MB_PER_PROC = 16.0


def spec():
    return jaguar(n_osts=N_OSTS).with_overrides(max_stripe_count=CAP)


def app():
    return AppKernel(
        "ft", [Variable("v", shape=(int(MB_PER_PROC * MB / 8),))]
    )


TOTAL_BYTES = MB_PER_PROC * MB * N_RANKS
PER_PROC_BYTES = MB_PER_PROC * MB


@functools.lru_cache(maxsize=None)
def baseline_write_time(transport_name: str) -> float:
    """Fault-free write time, used to aim faults mid-write."""
    transport = {
        "adaptive": AdaptiveTransport,
        "mpiio": lambda: MpiIoTransport(build_index=False),
        "posix": lambda: PosixTransport(build_index=False),
        "splitfiles": lambda: SplitFilesTransport(build_index=False),
    }[transport_name]()
    m = spec().build(n_ranks=N_RANKS, seed=0)
    return transport.run(m, app(), output_name="ft").write_time


def run_adaptive(plan, seed=0):
    m = spec().build(n_ranks=N_RANKS, seed=seed, faults=plan)
    res = AdaptiveTransport().run(m, app(), output_name="ft")
    return m, res


class TestAdaptiveRecovery:
    def test_two_ost_failstop_fully_durable(self):
        """The ISSUE acceptance scenario: 2 of 16 targets fail-stop
        mid-write; the run ends clean with 100% of bytes durable."""
        at = 0.4 * baseline_write_time("adaptive")
        plan = two_ost_failure_plan(osts=(0, 1), at=at).with_policy(
            run_timeout=120.0
        )
        m, res = run_adaptive(plan)
        assert len(res.per_writer) == N_RANKS
        assert res.extra["sc_relocations"] >= 1
        assert res.extra["bytes_durable"] == pytest.approx(TOTAL_BYTES)
        assert res.extra["bytes_lost"] == pytest.approx(0.0)
        assert res.extra["n_injected"] == 2.0
        # Relocated groups write epoch-suffixed incarnation files.
        assert any(".e" in path for path in res.files)
        # Every result file really exists and flushed cleanly.
        for path in res.files:
            assert m.fs.lookup(path) is not None

    def test_hung_ost_retries_then_completes(self):
        """A hung target never errors — writers must time the write
        out, back off, and eventually force a relocation."""
        wt = baseline_write_time("adaptive")
        plan = FaultPlan(
            events=(
                FaultEvent(time=0.4 * wt, kind="ost_hang", target=3),
            )
        ).with_policy(
            write_timeout=max(2.0 * wt, 1e-2),
            max_retries=2,
            backoff_base=0.01,
            backoff_cap=0.05,
            run_timeout=120.0,
        )
        m, res = run_adaptive(plan)
        assert len(res.per_writer) == N_RANKS
        assert res.extra["fault_retries"] > 0
        assert res.extra["bytes_durable"] == pytest.approx(TOTAL_BYTES)
        assert m.env.now < 120.0  # finished, not reaped by the backstop

    def test_sc_crash_adopted_rest_durable(self):
        """Killing a sub-coordinator rank (4 = SC of group 1) loses
        only that rank's own data: the coordinator adopts the group,
        the surviving members re-land, and the error accounts for
        exactly one writer's bytes."""
        wt = baseline_write_time("adaptive")
        plan = FaultPlan(
            events=(
                FaultEvent(time=0.4 * wt, kind="crash_rank", target=4),
            )
        ).with_policy(
            heartbeat_interval=0.1, sc_timeout=0.5, run_timeout=120.0
        )
        with pytest.raises(TransportError) as excinfo:
            run_adaptive(plan)
        exc = excinfo.value
        assert exc.partial is not None
        assert exc.partial.extra["sc_adoptions"] == 1.0
        assert exc.bytes_durable == pytest.approx(
            TOTAL_BYTES - PER_PROC_BYTES
        )
        assert exc.bytes_lost == pytest.approx(PER_PROC_BYTES)

    def test_same_seed_same_plan_is_deterministic(self):
        at = 0.4 * baseline_write_time("adaptive")
        plan = two_ost_failure_plan(osts=(0, 1), at=at).with_policy(
            run_timeout=120.0
        )
        _, a = run_adaptive(plan, seed=3)
        _, b = run_adaptive(plan, seed=3)
        assert a.per_writer == b.per_writer
        assert a.extra == b.extra
        assert a.files == b.files
        assert a.reported_time == b.reported_time


STATIC_TRANSPORTS = {
    "mpiio": lambda: MpiIoTransport(build_index=False),
    "posix": lambda: PosixTransport(build_index=False),
    "splitfiles": lambda: SplitFilesTransport(build_index=False),
}


class TestStaticFailFast:
    @pytest.mark.parametrize("name", sorted(STATIC_TRANSPORTS))
    def test_failstop_raises_with_accounting(self, name):
        """No recovery path: a mid-write fail-stop must surface as a
        TransportError whose durable + lost bytes cover the output."""
        at = 0.4 * baseline_write_time(name)
        plan = two_ost_failure_plan(osts=(0, 1), at=at).with_policy(
            run_timeout=120.0
        )
        m = spec().build(n_ranks=N_RANKS, seed=0, faults=plan)
        with pytest.raises(TransportError) as excinfo:
            STATIC_TRANSPORTS[name]().run(m, app(), output_name="ft")
        exc = excinfo.value
        assert exc.bytes_durable + exc.bytes_lost == pytest.approx(
            TOTAL_BYTES
        )
        assert exc.bytes_durable < TOTAL_BYTES
        assert exc.partial is not None
        assert exc.partial.extra["n_injected"] == 2.0
        assert m.env.now < 120.0  # fail-fast, not backstop-reaped

    def test_mpiio_hung_ost_terminates_at_write_timeout(self):
        """A hung target must not hang the run: writers give up after
        the per-attempt timeout and the run fails with accounting."""
        wt = baseline_write_time("mpiio")
        timeout = max(2.0 * wt, 1e-2)
        plan = FaultPlan(
            events=(
                FaultEvent(time=0.4 * wt, kind="ost_hang", target=3),
            )
        ).with_policy(write_timeout=timeout, run_timeout=120.0)
        m = spec().build(n_ranks=N_RANKS, seed=0, faults=plan)
        with pytest.raises(TransportError) as excinfo:
            MpiIoTransport(build_index=False).run(
                m, app(), output_name="ft"
            )
        exc = excinfo.value
        assert exc.bytes_durable < TOTAL_BYTES
        # Terminated by the per-write timeout, far before the backstop.
        assert m.env.now < 120.0

    @pytest.mark.parametrize("name", sorted(STATIC_TRANSPORTS))
    def test_static_deterministic_under_faults(self, name):
        at = 0.4 * baseline_write_time(name)
        plan = two_ost_failure_plan(osts=(0, 1), at=at)

        def one():
            m = spec().build(n_ranks=N_RANKS, seed=5, faults=plan)
            with pytest.raises(TransportError) as excinfo:
                STATIC_TRANSPORTS[name]().run(m, app(), output_name="ft")
            return excinfo.value

        a, b = one(), one()
        assert a.bytes_durable == b.bytes_durable
        assert a.partial.per_writer == b.partial.per_writer
