"""Tests for the CLI entry points."""

import json

import pytest

from repro.tools.bench_report import main as report_main, parse_gate
from repro.tools.compare import build_app, build_spec, main as compare_main
from repro.tools.experiment import ARTIFACTS, main as experiment_main


class TestExperimentCli:
    def test_artifact_registry_covers_paper(self):
        assert set(ARTIFACTS) == {
            "fig1", "table1", "fig2", "fig3", "fig5", "fig6", "fig7",
            "resilience", "qos",
        }

    def test_runs_one_artifact(self, capsys):
        rc = experiment_main(["fig3", "--scale", "smoke", "--seed", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "imbalance" in out
        assert "fig3 @ smoke" in out

    def test_rejects_unknown_artifact(self):
        with pytest.raises(SystemExit):
            experiment_main(["fig99"])

    def test_rejects_unknown_scale(self):
        with pytest.raises(SystemExit):
            experiment_main(["fig3", "--scale", "galactic"])


class TestCompareCli:
    def test_build_app_tokens(self):
        assert build_app("xgc1").name == "xgc1"
        assert build_app("pixie3d:small").name == "pixie3d.small"
        assert build_app("gtc").name == "gtc"
        assert build_app("s3d").name.startswith("s3d")
        assert build_app("ior:64").per_process_bytes == pytest.approx(64e6)
        with pytest.raises(SystemExit):
            build_app("doom")

    def test_build_spec_overrides(self):
        spec = build_spec("jaguar", 32, 8)
        assert spec.n_osts == 32
        assert spec.max_stripe_count == 8
        with pytest.raises(SystemExit):
            build_spec("summit", None, None)

    def test_end_to_end_comparison(self, capsys):
        rc = compare_main(
            [
                "--app", "ior:4", "--procs", "8", "--osts", "4",
                "--methods", "posix", "adaptive", "--seed", "2",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "posix" in out and "adaptive" in out
        assert "GB/s" in out

    def test_noise_and_background_flags(self, capsys):
        rc = compare_main(
            [
                "--app", "ior:4", "--procs", "8", "--osts", "12",
                "--methods", "adaptive", "--noise", "--background-job",
            ]
        )
        assert rc == 0


class TestBenchReportGates:
    @staticmethod
    def _write(dirpath, name, data):
        (dirpath / f"BENCH_{name}.json").write_text(
            json.dumps({"name": name, "text": "", "data": data})
        )

    @pytest.fixture
    def dirs(self, tmp_path):
        results = tmp_path / "results"
        baseline = tmp_path / "baseline"
        results.mkdir()
        baseline.mkdir()
        return results, baseline

    def test_parse_gate(self):
        assert parse_gate("scale.adaptive_8192_seconds=0.7") == (
            "scale", "adaptive_8192_seconds", 0.7
        )
        with pytest.raises(ValueError):
            parse_gate("no_metric=0.7")
        with pytest.raises(ValueError):
            parse_gate("bench.metric")

    def test_higher_better_pass_and_fail(self, dirs, capsys):
        results, baseline = dirs
        self._write(baseline, "kernel", {"events_per_sec": 100.0})
        self._write(results, "kernel", {"events_per_sec": 80.0})
        rc = report_main([
            "--results", str(results), "--baseline", str(baseline),
            "--gate", "kernel.events_per_sec=0.70",
        ])
        assert rc == 0
        self._write(results, "kernel", {"events_per_sec": 50.0})
        rc = report_main([
            "--results", str(results), "--baseline", str(baseline),
            "--gate", "kernel.events_per_sec=0.70",
        ])
        assert rc == 1
        assert "FAIL" in capsys.readouterr().out

    def test_seconds_metric_is_lower_better(self, dirs):
        results, baseline = dirs
        self._write(baseline, "scale", {"adaptive_8192_seconds": 7.0})
        # Faster than baseline: ratio 7/2 well above the gate.
        self._write(results, "scale", {"adaptive_8192_seconds": 2.0})
        rc = report_main([
            "--results", str(results), "--baseline", str(baseline),
            "--gate", "scale.adaptive_8192_seconds=0.70",
        ])
        assert rc == 0
        # 2x slower than baseline: ratio 0.5 < 0.70 must fail.
        self._write(results, "scale", {"adaptive_8192_seconds": 14.0})
        rc = report_main([
            "--results", str(results), "--baseline", str(baseline),
            "--gate", "scale.adaptive_8192_seconds=0.70",
        ])
        assert rc == 1

    def test_nested_metrics_flatten_and_missing_fails(self, dirs):
        results, baseline = dirs
        self._write(
            baseline, "scale",
            {"fig6_cell": {"adaptive": {"wall_seconds": 8.0}}},
        )
        self._write(
            results, "scale",
            {"fig6_cell": {"adaptive": {"wall_seconds": 4.0}}},
        )
        rc = report_main([
            "--results", str(results), "--baseline", str(baseline),
            "--gate", "scale.fig6_cell.adaptive.wall_seconds=0.70",
        ])
        assert rc == 0
        rc = report_main([
            "--results", str(results), "--baseline", str(baseline),
            "--gate", "scale.not_a_metric=0.70",
        ])
        assert rc == 1

    def test_gate_requires_baseline(self, dirs):
        results, _ = dirs
        rc = report_main([
            "--results", str(results),
            "--gate", "kernel.events_per_sec=0.70",
        ])
        assert rc == 2
