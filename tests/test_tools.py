"""Tests for the CLI entry points."""

import pytest

from repro.tools.compare import build_app, build_spec, main as compare_main
from repro.tools.experiment import ARTIFACTS, main as experiment_main


class TestExperimentCli:
    def test_artifact_registry_covers_paper(self):
        assert set(ARTIFACTS) == {
            "fig1", "table1", "fig2", "fig3", "fig5", "fig6", "fig7",
            "resilience",
        }

    def test_runs_one_artifact(self, capsys):
        rc = experiment_main(["fig3", "--scale", "smoke", "--seed", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "imbalance" in out
        assert "fig3 @ smoke" in out

    def test_rejects_unknown_artifact(self):
        with pytest.raises(SystemExit):
            experiment_main(["fig99"])

    def test_rejects_unknown_scale(self):
        with pytest.raises(SystemExit):
            experiment_main(["fig3", "--scale", "galactic"])


class TestCompareCli:
    def test_build_app_tokens(self):
        assert build_app("xgc1").name == "xgc1"
        assert build_app("pixie3d:small").name == "pixie3d.small"
        assert build_app("gtc").name == "gtc"
        assert build_app("s3d").name.startswith("s3d")
        assert build_app("ior:64").per_process_bytes == pytest.approx(64e6)
        with pytest.raises(SystemExit):
            build_app("doom")

    def test_build_spec_overrides(self):
        spec = build_spec("jaguar", 32, 8)
        assert spec.n_osts == 32
        assert spec.max_stripe_count == 8
        with pytest.raises(SystemExit):
            build_spec("summit", None, None)

    def test_end_to_end_comparison(self, capsys):
        rc = compare_main(
            [
                "--app", "ior:4", "--procs", "8", "--osts", "4",
                "--methods", "posix", "adaptive", "--seed", "2",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "posix" in out and "adaptive" in out
        assert "GB/s" in out

    def test_noise_and_background_flags(self, capsys):
        rc = compare_main(
            [
                "--app", "ior:4", "--procs", "8", "--osts", "12",
                "--methods", "adaptive", "--noise", "--background-job",
            ]
        )
        assert rc == 0
