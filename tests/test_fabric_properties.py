"""Property-based tests on the flow network's core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.fabric import (
    FlowNetwork,
    UniformSinkPool,
    max_min_fair_rates,
)
from repro.sim import Environment


@st.composite
def allocation_case(draw):
    n_src = draw(st.integers(1, 6))
    n_dst = draw(st.integers(1, 6))
    n_flows = draw(st.integers(1, 30))
    src = draw(
        st.lists(st.integers(0, n_src - 1), min_size=n_flows,
                 max_size=n_flows)
    )
    dst = draw(
        st.lists(st.integers(0, n_dst - 1), min_size=n_flows,
                 max_size=n_flows)
    )
    cap_src = draw(
        st.lists(st.floats(1.0, 1e4), min_size=n_src, max_size=n_src)
    )
    cap_dst = draw(
        st.lists(st.floats(1.0, 1e4), min_size=n_dst, max_size=n_dst)
    )
    return (
        np.array(src),
        np.array(dst),
        np.array(cap_src),
        np.array(cap_dst),
    )


class TestMaxMinProperties:
    @given(allocation_case())
    @settings(max_examples=200, deadline=None)
    def test_feasibility(self, case):
        """No resource is ever oversubscribed."""
        src, dst, cs, cd = case
        rates = max_min_fair_rates(src, dst, cs, cd)
        assert (rates >= 0).all()
        per_src = np.bincount(src, weights=rates, minlength=len(cs))
        per_dst = np.bincount(dst, weights=rates, minlength=len(cd))
        assert (per_src <= cs * (1 + 1e-6)).all()
        assert (per_dst <= cd * (1 + 1e-6)).all()

    @given(allocation_case())
    @settings(max_examples=200, deadline=None)
    def test_every_flow_bottlenecked(self, case):
        """Work conservation: each flow touches a saturated resource."""
        src, dst, cs, cd = case
        rates = max_min_fair_rates(src, dst, cs, cd)
        per_src = np.bincount(src, weights=rates, minlength=len(cs))
        per_dst = np.bincount(dst, weights=rates, minlength=len(cd))
        sat_s = per_src >= cs * (1 - 1e-6)
        sat_d = per_dst >= cd * (1 - 1e-6)
        assert (sat_s[src] | sat_d[dst]).all()

    @given(allocation_case())
    @settings(max_examples=100, deadline=None)
    def test_scale_invariance(self, case):
        """Scaling every capacity by k scales every rate by k."""
        src, dst, cs, cd = case
        r1 = max_min_fair_rates(src, dst, cs, cd)
        r2 = max_min_fair_rates(src, dst, cs * 3.0, cd * 3.0)
        assert np.allclose(r2, r1 * 3.0, rtol=1e-6)

    @given(allocation_case())
    @settings(max_examples=100, deadline=None)
    def test_symmetric_flows_equal_rates(self, case):
        """Flows with identical endpoints get identical rates."""
        src, dst, cs, cd = case
        rates = max_min_fair_rates(src, dst, cs, cd)
        seen = {}
        for i, (s, d) in enumerate(zip(src, dst)):
            key = (int(s), int(d))
            if key in seen:
                assert rates[i] == pytest.approx(seen[key], rel=1e-6)
            else:
                seen[key] = rates[i]

    @given(allocation_case(), st.floats(1.0, 100.0))
    @settings(max_examples=100, deadline=None)
    def test_flow_caps_respected(self, case, cap):
        src, dst, cs, cd = case
        fcap = np.full(len(src), cap)
        rates = max_min_fair_rates(src, dst, cs, cd, fcap)
        assert (rates <= cap * (1 + 1e-9)).all()


class TestNetworkConservationProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 3),  # source
                st.integers(0, 2),  # sink
                st.floats(1.0, 1000.0),  # bytes
            ),
            min_size=1,
            max_size=25,
        ),
        st.integers(0, 1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_bytes_delivered_exactly(self, flows, seed):
        """Every byte of every flow is delivered exactly once, no
        matter the arrival pattern."""
        env = Environment()
        pool = UniformSinkPool(3, 50.0)
        net = FlowNetwork(env, np.full(4, 100.0), pool)
        rng = np.random.default_rng(seed)
        results = []

        def starter(env, delay, s, d, nbytes):
            yield env.timeout(delay)
            stats = yield net.start_flow(s, d, nbytes)
            results.append(stats)

        total = 0.0
        for s, d, nbytes in flows:
            total += nbytes
            env.process(
                starter(env, float(rng.uniform(0, 5)), s, d, nbytes)
            )
        env.run()
        assert len(results) == len(flows)
        assert net.total_bytes_delivered == pytest.approx(total, rel=1e-6)
        assert net.active_flow_count == 0
        # Per-flow sanity: durations consistent with capacity bounds.
        for stats in results:
            assert stats.duration >= stats.nbytes / 100.0 - 1e-9

    @given(st.integers(1, 40), st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_fifo_completion_of_equal_flows(self, n_flows, seed):
        """Identical flows started together finish together."""
        env = Environment()
        pool = UniformSinkPool(1, 10.0)
        net = FlowNetwork(env, np.array([1e6]), pool)
        events = [net.start_flow(0, 0, 100.0) for _ in range(n_flows)]
        done = env.all_of(events)
        env.run(until=done)
        ends = {e.value.end_time for e in events}
        assert len(ends) == 1
