"""Unit tests for the event primitives."""

import pytest

from repro.sim import AllOf, AnyOf, Environment, Event, EventAborted, Timeout


@pytest.fixture
def env():
    return Environment()


class TestEvent:
    def test_initial_state(self, env):
        ev = env.event()
        assert not ev.triggered
        assert not ev.processed
        with pytest.raises(RuntimeError):
            _ = ev.value

    def test_succeed_delivers_value(self, env):
        ev = env.event()
        ev.succeed(42)
        assert ev.triggered and ev.ok
        assert ev.value == 42

    def test_double_trigger_rejected(self, env):
        ev = env.event()
        ev.succeed()
        with pytest.raises(RuntimeError):
            ev.succeed()
        with pytest.raises(RuntimeError):
            ev.fail(ValueError("x"))

    def test_fail_requires_exception(self, env):
        ev = env.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_callbacks_run_in_order(self, env):
        ev = env.event()
        order = []
        ev.add_callback(lambda e: order.append(1))
        ev.add_callback(lambda e: order.append(2))
        ev.succeed()
        env.run()
        assert order == [1, 2]

    def test_abort_wraps_cause(self, env):
        ev = env.event()
        ev.abort("why")
        assert not ev.ok
        assert isinstance(ev._value, EventAborted)
        assert ev._value.cause == "why"

    def test_cancel_empties_calendar(self, env):
        """Cancelling the only pending timeout leaves the calendar
        empty — the clock never advances to the dead event's time."""
        to = env.timeout(5.0)
        to.cancel()
        assert to.cancelled
        assert env.peek() == float("inf")
        env.run()
        assert env.now == 0.0

    def test_cancel_skips_callbacks_without_blocking_clock(self, env):
        fired = []
        dead = env.timeout(1.0)
        dead.add_callback(lambda e: fired.append("dead"))
        live = env.timeout(2.0)
        live.add_callback(lambda e: fired.append("live"))
        dead.cancel()
        env.run()
        assert fired == ["live"]
        assert env.now == 2.0

    def test_cancel_processed_event_rejected(self, env):
        to = env.timeout(1.0)
        env.run()
        with pytest.raises(RuntimeError):
            to.cancel()

    def test_cancel_twice_is_noop(self, env):
        to = env.timeout(1.0)
        to.cancel()
        to.cancel()
        env.run()
        assert env.now == 0.0


class TestTimeout:
    def test_fires_at_delay(self, env):
        times = []

        def proc(env):
            yield env.timeout(2.5)
            times.append(env.now)

        env.process(proc(env))
        env.run()
        assert times == [2.5]

    def test_negative_delay_rejected(self, env):
        with pytest.raises(ValueError):
            Timeout(env, -1.0)

    def test_zero_delay_is_legal(self, env):
        hits = []

        def proc(env):
            yield env.timeout(0)
            hits.append(env.now)

        env.process(proc(env))
        env.run()
        assert hits == [0.0]

    def test_value_passthrough(self, env):
        got = []

        def proc(env):
            v = yield env.timeout(1, value="payload")
            got.append(v)

        env.process(proc(env))
        env.run()
        assert got == ["payload"]

    def test_ordering_between_timeouts(self, env):
        order = []

        def proc(env, delay, label):
            yield env.timeout(delay)
            order.append(label)

        env.process(proc(env, 3, "c"))
        env.process(proc(env, 1, "a"))
        env.process(proc(env, 2, "b"))
        env.run()
        assert order == ["a", "b", "c"]


class TestConditions:
    def test_all_of_waits_for_all(self, env):
        done = []

        def proc(env):
            t1 = env.timeout(1, value="x")
            t2 = env.timeout(5, value="y")
            res = yield AllOf(env, [t1, t2])
            done.append((env.now, sorted(res.values())))

        env.process(proc(env))
        env.run()
        assert done == [(5.0, ["x", "y"])]

    def test_any_of_fires_on_first(self, env):
        done = []

        def proc(env):
            t1 = env.timeout(1, value="fast")
            t2 = env.timeout(5, value="slow")
            res = yield AnyOf(env, [t1, t2])
            done.append((env.now, list(res.values())))

        env.process(proc(env))
        env.run()
        assert done == [(1.0, ["fast"])]

    def test_empty_all_of_fires_immediately(self, env):
        cond = AllOf(env, [])
        assert cond.triggered
        assert cond.value == {}

    def test_operator_sugar(self, env):
        done = []

        def proc(env):
            yield env.timeout(1) & env.timeout(2)
            done.append(env.now)
            yield env.timeout(10) | env.timeout(3)
            done.append(env.now)

        env.process(proc(env))
        env.run()
        assert done == [2.0, 5.0]

    def test_failed_sub_event_fails_condition(self, env):
        boom = env.event()

        def proc(env):
            with pytest.raises(ValueError):
                yield AllOf(env, [env.timeout(10), boom])
            return "handled"

        p = env.process(proc(env))

        def failer(env):
            yield env.timeout(1)
            boom.fail(ValueError("kaput"))

        env.process(failer(env))
        env.run()
        assert p.value == "handled"

    def test_foreign_environment_rejected(self, env):
        other = Environment()
        with pytest.raises(ValueError):
            AllOf(env, [env.timeout(1), other.timeout(1)])

    def test_condition_with_already_fired_event(self, env):
        ev = env.event()
        ev.succeed("pre")
        env.run()  # process the event
        done = []

        def proc(env):
            res = yield AllOf(env, [ev, env.timeout(2)])
            done.append(sorted(str(v) for v in res.values()))

        env.process(proc(env))
        env.run()
        assert done and "pre" in done[0][1] or "pre" in done[0]


class TestAllSettled:
    def test_collects_failures_as_values(self):
        from repro.sim import AllSettled

        env = Environment(strict=False)

        def ok(env):
            yield env.timeout(1)
            return "fine"

        def bad(env):
            yield env.timeout(2)
            raise ValueError("kaput")

        p_ok = env.process(ok(env))
        p_bad = env.process(bad(env))
        got = []

        def joiner(env):
            res = yield AllSettled(env, [p_ok, p_bad])
            got.append(res)

        env.process(joiner(env))
        env.run()
        assert got, "AllSettled never fired"
        values = got[0]
        assert values[p_ok] == "fine"
        assert isinstance(values[p_bad], ValueError)

    def test_waits_for_the_slowest(self):
        from repro.sim import AllSettled

        env = Environment(strict=False)

        def fail_fast(env):
            yield env.timeout(1)
            raise ValueError("early")

        def slow(env):
            yield env.timeout(10)

        procs = [env.process(fail_fast(env)), env.process(slow(env))]
        fired_at = []

        def joiner(env):
            yield AllSettled(env, procs)
            fired_at.append(env.now)

        env.process(joiner(env))
        env.run()
        assert fired_at == [10.0]
