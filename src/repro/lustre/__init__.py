"""Lustre-like parallel file system model.

The pieces the paper's phenomena live in:

* :class:`~repro.lustre.ost.OstPool` — the storage targets: write-back
  caches, seek-efficiency degradation under concurrent streams, and
  external-load multipliers.  Internal interference *is* this model.
* :class:`~repro.lustre.layout.StripeLayout` — RAID-0 striping with the
  Lustre 1.6 cap of 160 OSTs per file.
* :class:`~repro.lustre.mds.MetadataServer` — queued open/create
  operations (the reason the stagger method exists).
* :class:`~repro.lustre.filesystem.FileSystem` — namespace + client
  write/read path, issuing flows on the fabric.
"""

from repro.lustre.ost import EfficiencyCurve, OstPool, OstPoolConfig
from repro.lustre.layout import StripeLayout
from repro.lustre.file import SimFile
from repro.lustre.filesystem import FileSystem
from repro.lustre.mds import MetadataServer
from repro.lustre.panfs import panfs_efficiency_curve, panfs_ingest_curve

__all__ = [
    "EfficiencyCurve",
    "FileSystem",
    "MetadataServer",
    "OstPool",
    "OstPoolConfig",
    "SimFile",
    "StripeLayout",
    "panfs_efficiency_curve",
    "panfs_ingest_curve",
]
