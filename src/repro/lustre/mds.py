"""Metadata server: queued open/create operations.

The paper excludes open/close from its timing specifically because the
metadata server is its own variability source ("an additional issue is
lack of scalability in metadata operations"), and its companion
*stagger* method exists to spread file opens out in time.  We model
the MDS as a small fixed-concurrency server with stochastic service
times; thousands of simultaneous creates therefore queue, and
staggering them measurably helps — which is all the fidelity the
stagger ablation needs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

import numpy as np

from repro.sim.queues import Resource

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment

__all__ = ["MetadataServer"]


class MetadataServer:
    """Fixed-concurrency metadata service with lognormal op times.

    Parameters
    ----------
    env:
        Simulation environment.
    concurrency:
        Ops serviced in parallel (MDS service threads).
    mean_service_time:
        Mean seconds per metadata op.
    sigma:
        Lognormal shape of service-time jitter (0 disables jitter).
    rng:
        Random stream for the jitter.
    """

    def __init__(
        self,
        env: "Environment",
        concurrency: int = 8,
        mean_service_time: float = 1.0e-3,
        sigma: float = 0.3,
        rng: Optional[np.random.Generator] = None,
    ):
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        if mean_service_time <= 0:
            raise ValueError("mean_service_time must be positive")
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        self.env = env
        self._server = Resource(env, capacity=concurrency)
        self.mean_service_time = mean_service_time
        self.sigma = sigma
        self._rng = rng
        self.ops_completed = 0
        self.total_wait_time = 0.0
        self.total_service_time = 0.0
        self.max_queue_length = 0

    def _draw_service_time(self) -> float:
        if self._rng is None or self.sigma == 0:
            return self.mean_service_time
        # Lognormal with the requested mean: mu = ln(m) - sigma^2/2.
        mu = np.log(self.mean_service_time) - 0.5 * self.sigma**2
        return float(self._rng.lognormal(mu, self.sigma))

    def operation(self, kind: str = "open") -> Generator:
        """Simulate one metadata op; returns (wait_time, service_time)."""
        arrived = self.env.now
        self.max_queue_length = max(
            self.max_queue_length, self._server.queue_length + 1
        )
        yield self._server.request()
        wait = self.env.now - arrived
        service = self._draw_service_time()
        try:
            yield self.env.timeout(service)
        finally:
            self._server.release()
        self.ops_completed += 1
        self.total_wait_time += wait
        self.total_service_time += service
        return wait, service

    @property
    def mean_wait_time(self) -> float:
        if self.ops_completed == 0:
            return 0.0
        return self.total_wait_time / self.ops_completed
