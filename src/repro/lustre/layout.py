"""RAID-0 stripe layout: mapping file byte ranges onto storage targets.

Lustre distributes a file round-robin in ``stripe_size`` chunks over
``stripe_count`` OSTs chosen at create time.  Lustre 1.6 caps
``stripe_count`` at 160 — the paper's headline structural limit: one
shared output file can reach at most 160 of Jaguar's 672 OSTs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.units import MB

__all__ = ["StripeLayout"]


@dataclass(frozen=True)
class StripeLayout:
    """Immutable stripe map of one file.

    Parameters
    ----------
    osts:
        The OST indices the file is striped over, in stripe order.
    stripe_size:
        Bytes per stripe chunk (Lustre default 1 MB; ADIOS-tuned files
        often use much larger values so one process chunk maps to one
        OST).
    """

    osts: Tuple[int, ...]
    stripe_size: float = 1.0 * MB

    def __post_init__(self):
        if not self.osts:
            raise ValueError("layout needs at least one OST")
        if len(set(self.osts)) != len(self.osts):
            raise ValueError("duplicate OSTs in layout")
        if self.stripe_size <= 0:
            raise ValueError("stripe_size must be positive")

    @property
    def stripe_count(self) -> int:
        return len(self.osts)

    def ost_of_offset(self, offset: float) -> int:
        """The OST storing the byte at *offset*."""
        if offset < 0:
            raise ValueError("offset must be non-negative")
        stripe_index = int(offset // self.stripe_size)
        return self.osts[stripe_index % self.stripe_count]

    def spans(self, offset: float, nbytes: float) -> Dict[int, float]:
        """Bytes landing on each OST for a write of ``[offset, offset+nbytes)``.

        Returns a dict ``ost -> bytes`` (only OSTs receiving data).
        A range covering many whole stripe rounds is computed in closed
        form; only the ragged head and tail are walked.
        """
        if offset < 0 or nbytes < 0:
            raise ValueError("offset and nbytes must be non-negative")
        if nbytes == 0:
            return {}
        ss = self.stripe_size
        sc = self.stripe_count
        out: Dict[int, float] = {}

        first_stripe = int(offset // ss)
        last_stripe = int((offset + nbytes - 1) // ss)
        n_stripes = last_stripe - first_stripe + 1

        if n_stripes >= 2 * sc + 2:
            # Closed form: whole rounds hit every OST equally.
            head_end = (first_stripe + 1) * ss
            head = head_end - offset
            out[self.osts[first_stripe % sc]] = head
            tail_start = last_stripe * ss
            tail = (offset + nbytes) - tail_start
            out[self.osts[last_stripe % sc]] = (
                out.get(self.osts[last_stripe % sc], 0.0) + tail
            )
            inner = n_stripes - 2
            whole_rounds, extra = divmod(inner, sc)
            if whole_rounds:
                for ost in self.osts:
                    out[ost] = out.get(ost, 0.0) + whole_rounds * ss
            stripe = first_stripe + 1
            for _ in range(extra):
                ost = self.osts[stripe % sc]
                out[ost] = out.get(ost, 0.0) + ss
                stripe += 1
            return out

        pos = offset
        remaining = nbytes
        while remaining > 0:
            stripe_index = int(pos // ss)
            chunk_end = (stripe_index + 1) * ss
            take = min(remaining, chunk_end - pos)
            ost = self.osts[stripe_index % sc]
            out[ost] = out.get(ost, 0.0) + take
            pos += take
            remaining -= take
        return out

    def span_list(self, offset: float, nbytes: float) -> List[Tuple[int, float]]:
        """:meth:`spans` as a deterministic (ost, bytes) list."""
        return sorted(self.spans(offset, nbytes).items())

    def bytes_per_ost(self, total_bytes: float) -> np.ndarray:
        """Even split of *total_bytes* over the layout (for estimates)."""
        return np.full(self.stripe_count, total_bytes / self.stripe_count)
