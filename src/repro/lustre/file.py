"""File objects in the simulated namespace."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.lustre.layout import StripeLayout

__all__ = ["SimFile", "StoredBlock", "WriteRecord"]


@dataclass(frozen=True)
class WriteRecord:
    """One completed write: who wrote what where, and when."""

    offset: float
    nbytes: float
    start_time: float
    end_time: float
    writer: Optional[int] = None  # rank, when known

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time


@dataclass
class StoredBlock:
    """The stored state of one variable block, as the OSTs hold it.

    This is the integrity layer's ground truth: ``checksum`` is what a
    read-back would actually compute over the stored copy (the fault
    injector mutates it to model bit rot), ``valid_bytes`` < ``nbytes``
    models a torn write (only a prefix landed), and ``corrupt`` flags
    any injected mutation — detectable or not — so detection rates can
    be measured against what really happened.
    """

    offset: float
    nbytes: float
    checksum: Optional[int]
    valid_bytes: float
    seq: int  # filesystem-wide store order (recency for the injector)
    writer: Optional[int] = None
    corrupt: bool = False

    @property
    def torn(self) -> bool:
        return self.valid_bytes < self.nbytes - 1e-9


@dataclass
class SimFile:
    """A file: a stripe layout plus the history of writes against it.

    The simulator does not store payload bytes — experiments only need
    extents and timing — but it *does* store opaque per-extent payload
    tags when callers provide them, which is how the BP index layer
    round-trips metadata through "files" for the read-back path.
    """

    path: str
    layout: StripeLayout
    create_time: float = 0.0
    writes: List[WriteRecord] = field(default_factory=list)
    payloads: Dict[Tuple[float, float], object] = field(default_factory=dict)
    blocks: Dict[Tuple[float, float], StoredBlock] = field(
        default_factory=dict
    )
    closed: bool = False

    @property
    def size(self) -> float:
        """Bytes from 0 to the end of the furthest extent written."""
        if not self.writes:
            return 0.0
        return max(w.offset + w.nbytes for w in self.writes)

    @property
    def bytes_written(self) -> float:
        """Total bytes written (extents may overlap; they all count)."""
        return sum(w.nbytes for w in self.writes)

    def record_write(self, record: WriteRecord, payload: object = None) -> None:
        if self.closed:
            raise ValueError(f"{self.path}: write after close")
        self.writes.append(record)
        if payload is not None:
            self.payloads[(record.offset, record.nbytes)] = payload

    def payload_at(self, offset: float, nbytes: float) -> object:
        """The payload tag stored for an exact extent, or None."""
        return self.payloads.get((offset, nbytes))

    def attach_local_index(self, entries) -> None:
        """Attach the file's local-index footer as a metadata payload.

        The BP layout stores each file's own index inside the file;
        this is what index rebuild (fsck) recovers the global index
        from when the master index is lost.  Transports that pay
        simulated time for the index write do so separately — this
        only records the metadata content.
        """
        self.payloads[("local_index", self.path)] = (
            "local_index", tuple(entries),
        )

    def store_block(
        self,
        offset: float,
        nbytes: float,
        checksum: Optional[int],
        seq: int,
        writer: Optional[int] = None,
    ) -> StoredBlock:
        """Register (or overwrite) the stored state of one data block.

        A rewrite at the same extent replaces the block outright — the
        repair semantics of a retried or fsck-reissued write.
        """
        blk = StoredBlock(
            offset=offset,
            nbytes=nbytes,
            checksum=checksum,
            valid_bytes=float(nbytes),
            seq=seq,
            writer=writer,
        )
        self.blocks[(offset, nbytes)] = blk
        return blk

    def block_at(self, offset: float, nbytes: float) -> Optional[StoredBlock]:
        """The stored block at an exact extent, or None."""
        return self.blocks.get((offset, nbytes))

    def stored_blocks(self) -> List[StoredBlock]:
        """Every stored data block, in (offset, nbytes) order."""
        return [self.blocks[k] for k in sorted(self.blocks)]

    def extents(self) -> List[Tuple[float, float]]:
        """(offset, nbytes) of every write, in completion order."""
        return [(w.offset, w.nbytes) for w in self.writes]
