"""File objects in the simulated namespace."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.lustre.layout import StripeLayout

__all__ = ["SimFile", "WriteRecord"]


@dataclass(frozen=True)
class WriteRecord:
    """One completed write: who wrote what where, and when."""

    offset: float
    nbytes: float
    start_time: float
    end_time: float
    writer: Optional[int] = None  # rank, when known

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time


@dataclass
class SimFile:
    """A file: a stripe layout plus the history of writes against it.

    The simulator does not store payload bytes — experiments only need
    extents and timing — but it *does* store opaque per-extent payload
    tags when callers provide them, which is how the BP index layer
    round-trips metadata through "files" for the read-back path.
    """

    path: str
    layout: StripeLayout
    create_time: float = 0.0
    writes: List[WriteRecord] = field(default_factory=list)
    payloads: Dict[Tuple[float, float], object] = field(default_factory=dict)
    closed: bool = False

    @property
    def size(self) -> float:
        """Bytes from 0 to the end of the furthest extent written."""
        if not self.writes:
            return 0.0
        return max(w.offset + w.nbytes for w in self.writes)

    @property
    def bytes_written(self) -> float:
        """Total bytes written (extents may overlap; they all count)."""
        return sum(w.nbytes for w in self.writes)

    def record_write(self, record: WriteRecord, payload: object = None) -> None:
        if self.closed:
            raise ValueError(f"{self.path}: write after close")
        self.writes.append(record)
        if payload is not None:
            self.payloads[(record.offset, record.nbytes)] = payload

    def payload_at(self, offset: float, nbytes: float) -> object:
        """The payload tag stored for an exact extent, or None."""
        return self.payloads.get((offset, nbytes))

    def extents(self) -> List[Tuple[float, float]]:
        """(offset, nbytes) of every write, in completion order."""
        return [(w.offset, w.nbytes) for w in self.writes]
