"""PanFS-flavoured storage-target profile (Sandia XTP).

The paper observes that on XTP's Panasas system internal interference
is nearly absent: "<5% reduction in write bandwidth for the large data
sizes when scaling IOR from 512 to 1024 writers", attributed to the
small machine and/or PanFS's design (per-blade NVRAM staging and
object RAID spreading any file over all blades).  We encode that as a
much flatter efficiency curve: StorageBlades tolerate tens of
concurrent streams with only mild degradation.
"""

from __future__ import annotations

from repro.lustre.ost import EfficiencyCurve

__all__ = ["panfs_efficiency_curve", "panfs_ingest_curve"]


def panfs_efficiency_curve() -> EfficiencyCurve:
    """Drain-stage efficiency of a Panasas StorageBlade.

    512 -> 1024 writers over 40 blades is 12.8 -> 25.6 streams per
    blade; the curve loses ~4% across that span, matching the paper's
    "<5%" observation.
    """
    return EfficiencyCurve(
        [
            (1, 0.80),
            (2, 0.97),
            (4, 1.00),
            (13, 0.99),
            (26, 0.95),
            (64, 0.85),
            (256, 0.65),
        ]
    )


def panfs_ingest_curve() -> EfficiencyCurve:
    """Ingest-stage efficiency of a StorageBlade (NVRAM-backed)."""
    return EfficiencyCurve(
        [
            (1, 1.00),
            (16, 1.00),
            (64, 0.95),
            (256, 0.85),
        ]
    )
