"""The file system facade: namespace, client write/read/flush path.

Ties together the OST pool (sink side), the compute topology (source
side), the flow network, the stripe allocator and the metadata server.
All data movement initiated here are fluid flows on the fabric; all
metadata operations queue at the MDS.

Write semantics mirror a real Lustre client: a completed write means
the bytes were *absorbed* (they reached the storage target's cache);
:meth:`FileSystem.flush` additionally waits until the absorbed bytes
have drained to disk — the paper inserts exactly such an explicit
flush before close "to ensure accurate measurements".
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Generator,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.errors import (
    FileExistsInNamespace,
    FileNotFoundInNamespace,
    FileSystemError,
    OstFailedError,
    StripeLimitExceeded,
    WriteTimeout,
)
from repro.lustre.file import SimFile, StoredBlock, WriteRecord
from repro.lustre.layout import StripeLayout
from repro.lustre.mds import MetadataServer
from repro.lustre.ost import OstPool, OstState
from repro.net.fabric import FlowNetwork
from repro.units import MB

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment

__all__ = ["FileSystem"]

_FLUSH_EPS = 64.0  # bytes of drain slack considered "flushed"


class FileSystem:
    """A mounted parallel file system bound to one simulation.

    Parameters
    ----------
    env:
        Simulation environment.
    pool:
        The OST pool (sink side of the fabric).
    source_capacities:
        Per-compute-node NIC capacities (bytes/s) — the source side.
    max_stripe_count:
        Per-file stripe cap; 160 models Lustre 1.6 (the paper's
        structural limit for single-file output).
    default_stripe_size:
        Stripe size used when ``create`` is not told otherwise.
    per_stream_cap:
        Client single-stream ceiling (bytes/s); bounds what one writer
        can push to one OST regardless of idle capacity.
    mds:
        Metadata server; a default one is built if omitted.
    max_flows_per_write:
        Guard: one logical write may fan out to at most this many
        per-OST flows.  Spraying every write over hundreds of OSTs is
        both unrealistic (real clients stream RPCs per object) and a
        simulation DoS, so we fail loudly instead.
    """

    def __init__(
        self,
        env: "Environment",
        pool: OstPool,
        source_capacities: np.ndarray,
        max_stripe_count: int = 160,
        default_stripe_size: float = 1.0 * MB,
        per_stream_cap: float = float("inf"),
        mds: Optional[MetadataServer] = None,
        max_flows_per_write: int = 32,
    ):
        if max_stripe_count < 1:
            raise ValueError("max_stripe_count must be >= 1")
        if default_stripe_size <= 0:
            raise ValueError("default_stripe_size must be positive")
        self.env = env
        self.pool = pool
        self.fabric = FlowNetwork(
            env, source_capacities, pool, default_flow_cap=per_stream_cap
        )
        pool.bind_invalidate(self.fabric.invalidate)
        self.mds = mds if mds is not None else MetadataServer(env)
        self.max_stripe_count = int(max_stripe_count)
        self.default_stripe_size = float(default_stripe_size)
        self.max_flows_per_write = int(max_flows_per_write)
        self._namespace: Dict[str, SimFile] = {}
        self._alloc_cursor = 0
        self._store_seq = 0
        # Integrity hook: called with (file, [StoredBlock]) right after
        # a write registers its blocks.  The fault injector installs a
        # silent-corruption model here; None means pristine storage.
        self.corrupt_hook: Optional[
            Callable[[SimFile, List[StoredBlock]], None]
        ] = None
        self.metrics = None  # wired by Machine.attach_metrics

    def bind_metrics(self, registry) -> None:
        """Attach (or detach, with None) a metrics registry."""
        self.metrics = registry
        if registry is None:
            return
        self._m_writes = registry.counter("fs.writes")
        self._m_bytes_written = registry.counter("fs.bytes_written")
        self._m_write_seconds = registry.histogram("fs.write_seconds")
        self._m_flushes = registry.counter("fs.flushes")
        self._m_flush_seconds = registry.histogram("fs.flush_seconds")

    # -- namespace ---------------------------------------------------------
    @property
    def n_osts(self) -> int:
        return self.pool.n_sinks

    def exists(self, path: str) -> bool:
        return path in self._namespace

    def lookup(self, path: str) -> SimFile:
        """Namespace lookup with no metadata cost (for tests/tools)."""
        try:
            return self._namespace[path]
        except KeyError:
            raise FileNotFoundInNamespace(path) from None

    def listdir(self) -> List[str]:
        return sorted(self._namespace)

    def unlink(self, path: str) -> None:
        if path not in self._namespace:
            raise FileNotFoundInNamespace(path)
        del self._namespace[path]

    def allocate_osts(
        self, stripe_count: int, stripe_offset: Optional[int] = None
    ) -> List[int]:
        """Round-robin OST allocation (Lustre's default allocator).

        ``stripe_offset`` pins the first OST (``lfs setstripe -o``);
        otherwise a filesystem-wide cursor rotates so consecutive
        creates land on different targets.
        """
        n = self.n_osts
        if stripe_count > n:
            raise StripeLimitExceeded(
                f"stripe_count {stripe_count} exceeds pool size {n}"
            )
        start = self._alloc_cursor if stripe_offset is None else stripe_offset
        if not 0 <= start < n:
            raise ValueError(f"stripe_offset {start} out of range")
        osts = [(start + i) % n for i in range(stripe_count)]
        if stripe_offset is None:
            self._alloc_cursor = (start + stripe_count) % n
        return osts

    def allocate_healthy_osts(self, stripe_count: int) -> List[int]:
        """Round-robin allocation restricted to live (UP/DEGRADED) targets.

        The relocation path after a fail-stop: a replacement file must
        not land back on the target that just died.  Deterministic — the
        same filesystem-wide cursor rotates over the healthy subset.
        """
        healthy = np.nonzero(self.pool.healthy())[0]
        if stripe_count > healthy.size:
            raise StripeLimitExceeded(
                f"stripe_count {stripe_count} exceeds {healthy.size} "
                f"healthy targets ({self.n_osts - healthy.size} down)"
            )
        start = self._alloc_cursor % healthy.size
        osts = [
            int(healthy[(start + i) % healthy.size])
            for i in range(stripe_count)
        ]
        self._alloc_cursor = (self._alloc_cursor + stripe_count) % self.n_osts
        return osts

    def create(
        self,
        path: str,
        stripe_count: int = 4,
        stripe_size: Optional[float] = None,
        stripe_offset: Optional[int] = None,
        osts: Optional[Sequence[int]] = None,
    ) -> Generator:
        """Create a file (a metadata op); returns the SimFile.

        Either give explicit ``osts`` or a ``stripe_count`` (optionally
        anchored with ``stripe_offset``).
        """
        if path in self._namespace:
            raise FileExistsInNamespace(path)
        if osts is not None:
            ost_list = list(osts)
            if any(not 0 <= o < self.n_osts for o in ost_list):
                raise ValueError("explicit OST index out of range")
        else:
            ost_list = self.allocate_osts(stripe_count, stripe_offset)
        if len(ost_list) > self.max_stripe_count:
            raise StripeLimitExceeded(
                f"{len(ost_list)} stripes > file system limit "
                f"{self.max_stripe_count} (Lustre 1.6 caps one file at "
                f"160 storage targets)"
            )
        layout = StripeLayout(
            tuple(ost_list),
            stripe_size=(
                self.default_stripe_size if stripe_size is None else stripe_size
            ),
        )
        yield from self.mds.operation("create")
        # Re-check: a concurrent creator may have won the race while we
        # queued at the MDS.
        if path in self._namespace:
            raise FileExistsInNamespace(path)
        f = SimFile(path=path, layout=layout, create_time=self.env.now)
        self._namespace[path] = f
        return f

    def open(self, path: str) -> Generator:
        """Open an existing file (a metadata op); returns the SimFile."""
        yield from self.mds.operation("open")
        return self.lookup(path)

    def close(self, f: SimFile) -> Generator:
        """Close (a metadata op)."""
        yield from self.mds.operation("close")
        f.closed = True
        return f

    # -- data path ---------------------------------------------------------
    def write(
        self,
        f: SimFile,
        node: int,
        offset: float,
        nbytes: float,
        writer: Optional[int] = None,
        payload: object = None,
        timeout: Optional[float] = None,
        blocks: Optional[Sequence[Tuple[float, float, Optional[int]]]] = None,
        tenant: int = -1,
    ) -> Generator:
        """Write ``nbytes`` at ``offset`` from ``node``; returns WriteRecord.

        Completion means absorption by the target OSTs (cache or disk);
        use :meth:`flush` for durability.  Returns the record, whose
        duration is the paper's "write time".

        ``blocks`` — ``(offset, nbytes, checksum)`` triples — registers
        the variable blocks this write carries with the storage layer
        (see :class:`~repro.lustre.file.StoredBlock`), which is what
        scrubbing and read-back verification inspect.  Blocks are
        registered only if the write completes: a failed write leaves
        no stored state, and a rewrite replaces the previous blocks.

        ``tenant`` tags the write's fabric flows for the QoS control
        plane (-1 = untagged, never rate-limited).

        Failure semantics: a write touching a FAILED target raises
        :class:`OstFailedError` — up front if the target is already
        dead, or at the yield point if it dies mid-transfer.  With
        ``timeout`` set, a write that has not completed by the deadline
        (the signature of a HUNG target) cancels its remaining flows
        and raises :class:`WriteTimeout`.  Either way sibling flows are
        withdrawn, so a failed write leaves nothing in flight.
        """
        spans = f.layout.span_list(offset, nbytes)
        if len(spans) > self.max_flows_per_write:
            raise FileSystemError(
                f"write spans {len(spans)} OSTs > max_flows_per_write="
                f"{self.max_flows_per_write}; use a stripe-aligned layout "
                f"(stripe_size >= chunk size) or raise the limit"
            )
        if self.pool.faults_active:
            for ost, _b in spans:
                if self.pool.state[ost] == OstState.FAILED:
                    raise OstFailedError(
                        ost, f"write to failed ost {ost} rejected"
                    )
        start = self.env.now
        if spans:
            tr = self.env.tracer
            traced = tr is not None and tr.enabled
            events = []
            fids = []
            for ost, b in spans:
                ev, fid = self.fabric.start_flow_with_id(
                    node, ost, b, tenant=tenant
                )
                if traced:
                    tid = f"writer {node if writer is None else writer}"
                    tr.begin(
                        "ost.service",
                        cat="ost",
                        pid=f"ost/{ost}",
                        tid=tid,
                        args={"nbytes": float(b), "offset": float(offset),
                              "writer": writer},
                    )

                    def _end(_ev, _tr=tr, _ost=ost, _tid=tid) -> None:
                        _tr.end("ost.service", cat="ost",
                                pid=f"ost/{_ost}", tid=_tid)

                    ev.add_callback(_end)
                events.append(ev)
                fids.append(fid)
            done = self.env.all_of(events)
            if timeout is None:
                try:
                    yield done
                except FileSystemError:
                    self._withdraw_flows(fids)
                    raise
            else:
                timer = self.env.timeout(timeout)
                try:
                    yield self.env.any_of([done, timer])
                except FileSystemError:
                    if not timer.processed:
                        timer.cancel()
                    self._withdraw_flows(fids)
                    raise
                if not done.triggered:
                    undelivered = self._withdraw_flows(fids)
                    raise WriteTimeout(
                        f"write of {nbytes:.0f} B at offset {offset:.0f} "
                        f"timed out after {timeout} s",
                        undelivered=undelivered,
                    )
                if not timer.processed:
                    timer.cancel()
        record = WriteRecord(
            offset=offset,
            nbytes=nbytes,
            start_time=start,
            end_time=self.env.now,
            writer=writer,
        )
        if self.metrics is not None:
            self._m_writes.inc()
            self._m_bytes_written.inc(float(nbytes))
            self._m_write_seconds.observe(self.env.now - start)
        f.record_write(record, payload=payload)
        if blocks:
            stored = []
            for boff, bnb, cksum in blocks:
                self._store_seq += 1
                stored.append(
                    f.store_block(boff, bnb, cksum, self._store_seq,
                                  writer=writer)
                )
            if self.corrupt_hook is not None:
                self.corrupt_hook(f, stored)
        return record

    def record_aggregated_write(
        self,
        f: SimFile,
        node: int,
        offset: float,
        nbytes: float,
        start_time: float,
        end_time: float,
        writer: Optional[int] = None,
        payload: object = None,
        blocks: Optional[Sequence[Tuple[float, float, Optional[int]]]] = None,
    ) -> WriteRecord:
        """Bookkeeping for a write whose bytes rode an aggregate flow.

        The batched adaptive protocol moves a whole group's data as one
        fabric flow; individual members' segments are accounted here
        when their boundary inside the stream is crossed.  This is the
        bookkeeping tail of :meth:`write` — record, metrics, stored
        blocks, corruption hook, and the traced ``ost.service`` span at
        the member's actual (possibly past) start/end instants — with
        no fabric interaction: the carrying flow already moved the
        bytes.
        """
        tr = self.env.tracer
        if tr is not None and tr.enabled:
            tid = f"writer {node if writer is None else writer}"
            for ost, b in f.layout.span_list(offset, nbytes):
                tr.begin(
                    "ost.service",
                    cat="ost",
                    pid=f"ost/{ost}",
                    tid=tid,
                    ts=start_time,
                    args={"nbytes": float(b), "offset": float(offset),
                          "writer": writer},
                )
                tr.end("ost.service", cat="ost", pid=f"ost/{ost}", tid=tid,
                       ts=end_time)
        record = WriteRecord(
            offset=offset,
            nbytes=nbytes,
            start_time=start_time,
            end_time=end_time,
            writer=writer,
        )
        if self.metrics is not None:
            self._m_writes.inc()
            self._m_bytes_written.inc(float(nbytes))
            self._m_write_seconds.observe(end_time - start_time)
        f.record_write(record, payload=payload)
        if blocks:
            stored = []
            for boff, bnb, cksum in blocks:
                self._store_seq += 1
                stored.append(
                    f.store_block(boff, bnb, cksum, self._store_seq,
                                  writer=writer)
                )
            if self.corrupt_hook is not None:
                self.corrupt_hook(f, stored)
        return record

    def _withdraw_flows(self, fids: List[int]) -> float:
        """Cancel whichever of *fids* are still in flight; bytes undelivered."""
        undelivered = 0.0
        for fid in fids:
            if fid in self.fabric._records:
                undelivered += self.fabric.cancel_flow(fid)
        return undelivered

    def read(
        self, f: SimFile, node: int, offset: float, nbytes: float
    ) -> Generator:
        """Read a byte range; returns elapsed seconds.

        Reads are modelled coarsely (disk-rate transfer sampled at
        start, re-evaluated in slices); they are used by the read-back
        examples, not by the paper's write experiments.
        """
        if nbytes < 0 or offset < 0:
            raise ValueError("offset and nbytes must be non-negative")
        start = self.env.now
        spans = f.layout.span_list(offset, nbytes)
        for ost, b in spans:
            remaining = b
            while remaining > 1e-6:
                rate = float(self.pool.drain_rates()[ost])
                slice_bytes = min(remaining, max(rate * 0.1, 1.0))
                yield self.env.timeout(slice_bytes / max(rate, 1.0))
                remaining -= slice_bytes
        return self.env.now - start

    def flush_marker(self, f: SimFile) -> np.ndarray:
        """Per-OST absorbed-bytes watermark for a later :meth:`flush`."""
        self.fabric.invalidate()  # bring pool accounting up to now
        return self.pool.bytes_absorbed.copy()

    def flush(
        self,
        f: SimFile,
        marker: Optional[np.ndarray] = None,
        timeout: Optional[float] = None,
    ) -> Generator:
        """Wait until the file's absorbed bytes are durable.

        Durable means on the platters *or* inside the storage
        target's battery-backed cache region (``stable_bytes`` of the
        pool config — real fsyncs on DDN-class hardware return from
        mirrored NVRAM).  OST caches drain FIFO, so bytes absorbed
        before watermark ``marker`` (default: now) are durable once
        cumulative drained bytes pass ``marker - stable_bytes``.
        Returns elapsed seconds.

        A flush involving a FAILED target raises
        :class:`OstFailedError` (its dirty bytes are gone — durability
        is unachievable).  With ``timeout`` set, a flush stalled past
        the deadline (a HUNG target drains at rate zero) raises
        :class:`WriteTimeout` instead of re-arming its wait forever.
        """
        osts = set(f.layout.osts)
        if marker is None:
            marker = self.flush_marker(f)
        start = self.env.now
        deadline = None if timeout is None else start + timeout
        idx = np.fromiter(osts, dtype=np.int64)
        stable = self.pool.config.stable_bytes
        while True:
            self.fabric.invalidate()
            if self.pool.faults_active:
                for o in idx:
                    if self.pool.state[o] == OstState.FAILED:
                        raise OstFailedError(
                            int(o), f"flush: ost {int(o)} failed"
                        )
            deficit = (
                marker[idx] - stable - self.pool.bytes_drained[idx]
            )
            worst = float(deficit.max()) if deficit.size else 0.0
            if worst <= _FLUSH_EPS:
                if self.metrics is not None:
                    self._m_flushes.inc()
                    self._m_flush_seconds.observe(self.env.now - start)
                return self.env.now - start
            if deadline is not None and self.env.now >= deadline - 1e-9:
                undelivered = float(np.clip(deficit, 0.0, None).sum())
                raise WriteTimeout(
                    f"flush did not settle within {timeout} s "
                    f"(worst per-ost deficit {worst:.0f} B)",
                    undelivered=undelivered,
                )
            rates = self.pool.drain_rates()[idx]
            t = float(np.max(deficit / np.maximum(rates, 1.0)))
            if deadline is not None:
                t = min(t, deadline - self.env.now)
            yield self.env.timeout(max(t, 1e-6))

    # -- stats -------------------------------------------------------------
    def total_bytes_on_disk(self) -> float:
        self.fabric.invalidate()
        return float(self.pool.bytes_drained.sum())

    def total_bytes_absorbed(self) -> float:
        self.fabric.invalidate()
        return float(self.pool.bytes_absorbed.sum())
