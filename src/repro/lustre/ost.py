"""Storage targets (OSTs): the locus of internal interference.

Each OST is modelled as a two-stage server:

1. an **ingest port** backed by a write-back cache — while the cache
   has headroom, writes are absorbed at near-network speed (this is why
   the paper's 1 MB-per-writer IOR runs never see interference);
2. a **drain stage** (the disks) emptying the cache at
   ``drain_peak * seek_efficiency(n_streams) * load_multiplier(t)``.

``seek_efficiency`` is the internal-interference mechanism: a single
stream cannot saturate the disks, a few streams can, and many
concurrent streams thrash seeks so aggregate throughput *falls* — the
shape measured in Fig. 1 of the paper.  ``load_multiplier`` is the
external-interference hook driven by :mod:`repro.interference`.

All OSTs of a file system are managed by one :class:`OstPool` whose
state is held in numpy arrays, implementing the
:class:`repro.net.fabric.SinkPool` protocol so the flow network never
iterates over storage targets in Python.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.units import GB, MB

__all__ = ["EfficiencyCurve", "OstPoolConfig", "OstPool", "OstState"]

_LEVEL_EPS = 1.0  # bytes: cache-level comparisons tolerance


class OstState:
    """Health states of a storage target (int8 codes in ``OstPool.state``).

    UP        — normal operation.
    DEGRADED  — brownout: drain bandwidth scaled by a fault factor.
    HUNG      — requests accepted but never complete (ingest and drain
                both pinned to zero) until recovery.
    FAILED    — fail-stop: in-flight and future writes error; cached
                dirty bytes are lost.
    """

    UP = 0
    DEGRADED = 1
    HUNG = 2
    FAILED = 3

    NAMES = ("UP", "DEGRADED", "HUNG", "FAILED")

    @classmethod
    def name(cls, code: int) -> str:
        return cls.NAMES[int(code)]


class EfficiencyCurve:
    """Throughput efficiency as a function of concurrent stream count.

    Defined by control points ``(n_streams, efficiency)`` interpolated
    piecewise-linearly in ``log2(n)`` and held flat beyond the last
    point.  Efficiency multiplies the stage's peak bandwidth.

    >>> curve = EfficiencyCurve([(1, 0.5), (4, 1.0), (16, 0.8)])
    >>> float(curve(np.array([2])))
    0.75
    """

    def __init__(self, points: Sequence[Tuple[float, float]]):
        pts = sorted((float(n), float(e)) for n, e in points)
        if len(pts) < 1:
            raise ValueError("need at least one control point")
        if any(n <= 0 for n, _ in pts):
            raise ValueError("stream counts must be positive")
        if any(e <= 0 for _, e in pts):
            raise ValueError("efficiencies must be positive")
        ns = [n for n, _ in pts]
        if len(set(ns)) != len(ns):
            raise ValueError("duplicate stream-count control points")
        self._log_n = np.log2([n for n, _ in pts])
        self._eff = np.array([e for _, e in pts])

    def __call__(self, counts: np.ndarray) -> np.ndarray:
        """Vectorized efficiency for an array of stream counts."""
        counts = np.asarray(counts, dtype=np.float64)
        safe = np.maximum(counts, 1.0)
        return np.interp(np.log2(safe), self._log_n, self._eff)

    def at(self, n: float) -> float:
        """Scalar convenience accessor."""
        return float(self(np.array([n]))[0])


def lustre_drain_curve() -> EfficiencyCurve:
    """Default Lustre disk-stage efficiency (calibrated to Fig. 1).

    A lone stream cannot keep the RAID busy (~0.72 of peak); 2-4
    streams saturate it; beyond ~8 streams seek thrash erodes
    throughput, reproducing the 16-28% aggregate decline the paper
    measures when scaling from 8 k to 16 k writers over 512 OSTs
    (16 -> 32 streams per OST).
    """
    return EfficiencyCurve(
        [
            (1, 0.72),
            (2, 0.95),
            (4, 1.00),
            (8, 0.97),
            (16, 0.86),
            (32, 0.68),
            (64, 0.50),
            (128, 0.34),
            (256, 0.22),
            (1024, 0.12),
        ]
    )


def lustre_ingest_curve() -> EfficiencyCurve:
    """Default OSS ingest-stage (RPC service) efficiency.

    Much shallower than the disk curve: request-processing contention
    at the object storage server degrades cache-absorbed writes only
    mildly, and RPC pipelining actually improves slightly up to ~16
    concurrent streams — which is why the paper's 8 MB (cache-
    friendly) case peaks at 16 writers per OST, versus 4 for the
    large (drain-bound) sizes.
    """
    return EfficiencyCurve(
        [
            (1, 0.92),
            (2, 0.95),
            (4, 0.98),
            (8, 0.99),
            (16, 1.00),
            (64, 1.00),
            (128, 0.90),
            (512, 0.70),
        ]
    )


@dataclass(frozen=True)
class OstPoolConfig:
    """Static description of a pool of storage targets.

    ``drain_peak`` mirrors the paper's ~180 MB/s per-OST theoretical
    peak.  ``cache_capacity`` is the *effective* write-back watermark
    — the dirty data a target absorbs at ingest speed before writeback
    throttling makes the disks the bottleneck.  The paper cites a 2 GB
    physical storage-target cache, but only a fraction of it is usable
    as burst headroom; 256 MB reproduces the measured onset of
    internal interference (>=128 MB writers degrade from 4 writers per
    OST, 8 MB writers only beyond 16:1, 1 MB writers never — Fig. 1).
    """

    n_osts: int
    drain_peak: float = 180.0 * MB
    ingest_peak: float = 400.0 * MB
    cache_capacity: float = 192.0 * MB
    drain_curve: EfficiencyCurve = field(default_factory=lustre_drain_curve)
    ingest_curve: EfficiencyCurve = field(default_factory=lustre_ingest_curve)
    hysteresis: float = 0.95
    stable_fraction: float = 0.75
    ingest_noise_exponent: float = 0.5

    def __post_init__(self):
        if self.n_osts < 1:
            raise ValueError("n_osts must be >= 1")
        if self.drain_peak <= 0 or self.ingest_peak <= 0:
            raise ValueError("bandwidths must be positive")
        if self.ingest_peak < self.drain_peak:
            raise ValueError("ingest_peak must be >= drain_peak")
        if self.cache_capacity < 0:
            raise ValueError("cache_capacity must be non-negative")
        if not 0.0 < self.hysteresis < 1.0:
            raise ValueError("hysteresis must be in (0, 1)")
        if not 0.0 <= self.stable_fraction <= 1.0:
            raise ValueError("stable_fraction must be in [0, 1]")
        if not 0.0 <= self.ingest_noise_exponent <= 1.0:
            raise ValueError("ingest_noise_exponent must be in [0, 1]")

    @property
    def stable_bytes(self) -> float:
        """Battery-backed (durable) portion of the write-back cache.

        Jaguar's Spider file system sat on DDN S2A9900 couplets whose
        write-back caches are mirrored and battery-backed — an fsync is
        satisfied once data reaches that region, not the platters.
        Flush therefore only waits for dirty data *beyond* this
        watermark to drain.
        """
        return self.stable_fraction * self.cache_capacity


class OstPool:
    """Dynamic state of all OSTs; the fabric's sink pool.

    The pool integrates cache levels between fabric settlements,
    reports per-OST ingest capacities, and predicts when the next
    capacity transition (cache filling up, or draining back below the
    hysteresis threshold) will occur so the fabric can arm its timer.
    """

    def __init__(self, config: OstPoolConfig):
        self.config = config
        n = config.n_osts
        self.n_sinks = n
        self.cache_level = np.zeros(n)
        self.load_mult = np.ones(n)
        self.ingest_mult = np.ones(n)
        self._full = np.zeros(n, dtype=bool)
        self._last_counts = np.zeros(n, dtype=np.int64)
        self.bytes_absorbed = np.zeros(n)  # cumulative ingest per OST
        self.bytes_drained = np.zeros(n)  # cumulative cache->disk per OST
        self.state = np.zeros(n, dtype=np.int8)  # OstState codes
        self.fault_mult = np.ones(n)  # drain-stage fault scaling
        self._ingest_gate = np.ones(n)  # 0.0 while hung/failed
        self.bytes_lost = np.zeros(n)  # dirty bytes lost to fail-stop
        # Sticky flag: once any fault API has been touched, write-path
        # health checks stay on; fault-free runs never pay for them.
        self.faults_active = False
        self._on_change = None  # fabric.invalidate, wired by FileSystem
        self._tracer = None  # wired by Machine.attach_tracer
        self._metrics = None  # wired by Machine.attach_metrics
        # Drain-rate memo: one fabric settle asks for the same counts'
        # drain rates up to three times (advance, capacities,
        # next_transition).  Keyed on the counts array object — the
        # fabric hands each settle one immutable snapshot — and
        # dropped whenever a drain input (load_mult / fault_mult)
        # changes.
        self._drain_memo: Optional[Tuple[np.ndarray, np.ndarray]] = None
        # Same idea for the ingest-stage vector (curve * mult * gate).
        self._ingest_memo: Optional[Tuple[np.ndarray, np.ndarray]] = None

    # -- wiring ----------------------------------------------------------
    def bind_invalidate(self, callback) -> None:
        """Register the fabric's invalidate() for out-of-band changes."""
        self._on_change = callback

    def bind_tracer(self, tracer) -> None:
        """Attach a tracer; the pool stamps events with the ``now`` it
        receives from the fabric (it holds no environment reference)."""
        self._tracer = tracer

    def bind_metrics(self, registry) -> None:
        """Attach a metrics registry; fault transitions become counters."""
        self._metrics = registry

    def set_load_multiplier(
        self,
        mult: np.ndarray | float,
        osts: Optional[np.ndarray] = None,
        ingest_mult: "np.ndarray | float | None" = None,
    ) -> None:
        """Set the external-load multipliers; triggers a fabric resettle.

        ``mult`` scales the drain stage: 1.0 is a quiet system, 0.25
        means three quarters of the disk bandwidth is consumed by
        traffic outside the simulated job.  ``ingest_mult`` optionally
        scales the ingest (OSS/RPC) stage separately; when omitted it
        defaults to ``mult ** ingest_noise_exponent`` — backbone-style
        interference reaches cache-absorbed writes only at reduced
        depth, while callers modelling OSS-local contention can pass
        the full-depth value.
        """
        if osts is None:
            self.load_mult[:] = mult
        else:
            self.load_mult[osts] = mult
        if np.any(self.load_mult <= 0) or np.any(self.load_mult > 1.0 + 1e-9):
            raise ValueError("load multipliers must be in (0, 1]")
        if ingest_mult is None:
            ingest_mult = (
                np.asarray(mult, dtype=np.float64)
                ** self.config.ingest_noise_exponent
            )
        if osts is None:
            self.ingest_mult[:] = ingest_mult
        else:
            self.ingest_mult[osts] = ingest_mult
        if np.any(self.ingest_mult <= 0) or np.any(
            self.ingest_mult > 1.0 + 1e-9
        ):
            raise ValueError("ingest multipliers must be in (0, 1]")
        self._drain_memo = None
        self._ingest_memo = None
        if self._on_change is not None:
            self._on_change()

    # -- fault state ------------------------------------------------------
    def fail_ost(self, ost: int) -> float:
        """Fail-stop a target: its cached dirty bytes are lost.

        Returns the bytes lost.  The caller (fault injector) is
        responsible for erroring in-flight fabric flows; the pool only
        manages storage-side state.
        """
        i = int(ost)
        self.faults_active = True
        self.state[i] = OstState.FAILED
        self.fault_mult[i] = 0.0
        self._ingest_gate[i] = 0.0
        lost = float(self.cache_level[i])
        self.bytes_lost[i] += lost
        self.cache_level[i] = 0.0
        self._full[i] = False
        self._drain_memo = None
        self._ingest_memo = None
        mi = self._metrics
        if mi is not None:
            mi.counter("ost.state_changes", to="failed", ost=i).inc()
            mi.counter("ost.bytes_lost", ost=i).inc(lost)
        if self._on_change is not None:
            self._on_change()
        return lost

    def hang_ost(self, ost: int) -> None:
        """Hang a target: ingest and drain stop, cache contents held."""
        i = int(ost)
        self.faults_active = True
        self.state[i] = OstState.HUNG
        self.fault_mult[i] = 0.0
        self._ingest_gate[i] = 0.0
        self._drain_memo = None
        self._ingest_memo = None
        mi = self._metrics
        if mi is not None:
            mi.counter("ost.state_changes", to="hung", ost=i).inc()
        if self._on_change is not None:
            self._on_change()

    def brownout_ost(self, ost: int, factor: float) -> None:
        """Scale a target's drain bandwidth by ``factor`` (DEGRADED)."""
        if not 0.0 < factor <= 1.0:
            raise ValueError(f"brownout factor must be in (0, 1], got {factor}")
        i = int(ost)
        self.faults_active = True
        self.state[i] = OstState.DEGRADED
        self.fault_mult[i] = float(factor)
        self._ingest_gate[i] = 1.0
        self._drain_memo = None
        self._ingest_memo = None
        mi = self._metrics
        if mi is not None:
            mi.counter("ost.state_changes", to="degraded", ost=i).inc()
        if self._on_change is not None:
            self._on_change()

    def recover_ost(self, ost: int) -> None:
        """Return a target to UP (a failed target comes back empty)."""
        i = int(ost)
        self.state[i] = OstState.UP
        self.fault_mult[i] = 1.0
        self._ingest_gate[i] = 1.0
        self._drain_memo = None
        self._ingest_memo = None
        mi = self._metrics
        if mi is not None:
            mi.counter("ost.state_changes", to="up", ost=i).inc()
        if self._on_change is not None:
            self._on_change()

    def healthy(self) -> np.ndarray:
        """Boolean mask of targets accepting writes (UP or DEGRADED)."""
        return self.state <= OstState.DEGRADED

    def is_failed(self, ost: int) -> bool:
        return self.state[int(ost)] == OstState.FAILED

    # -- SinkPool protocol -------------------------------------------------
    def _drain_rates(self, counts: np.ndarray) -> np.ndarray:
        # Cached bytes keep draining after their writers finish; a quiet
        # disk drains like a single sequential stream.
        memo = self._drain_memo
        if memo is not None and memo[0] is counts:
            return memo[1]
        eff = self.config.drain_curve(np.maximum(counts, 1))
        rates = (
            self.config.drain_peak * eff * self.load_mult * self.fault_mult
        )
        self._drain_memo = (counts, rates)
        return rates

    def advance(self, dt: float, inflow: np.ndarray, now: float) -> None:
        if dt <= 0:
            return
        drain = self._drain_rates(self._last_counts)
        absorbed = inflow * dt
        self.bytes_absorbed += absorbed
        before = self.cache_level.copy()
        self.cache_level += absorbed - drain * dt
        np.clip(self.cache_level, 0.0, self.config.cache_capacity,
                out=self.cache_level)
        # Conservation gives exact drained bytes even through clipping.
        self.bytes_drained += absorbed + before - self.cache_level

    def capacities(self, counts: np.ndarray, now: float) -> np.ndarray:
        tr = self._tracer
        traced = tr is not None and tr.enabled
        if traced:
            self._trace_stream_changes(counts, now)
        self._last_counts = counts
        cap = self.config.cache_capacity
        if cap > 0:
            # Hysteresis band keeps the full/not-full flag from
            # chattering: set when the cache tops out, cleared once it
            # drains to `hysteresis * capacity`.  The one-byte
            # tolerance matters: the drain timer fires exactly at the
            # crossing, where `level - drain*dt` can round back to the
            # boundary value and a strict comparison would livelock.
            before = self._full.copy() if traced else None
            self._full |= self.cache_level >= cap - _LEVEL_EPS
            self._full &= (
                self.cache_level
                > self.config.hysteresis * cap + _LEVEL_EPS
            )
            if traced:
                self._trace_cache_transitions(before, now)
        else:
            self._full[:] = True
        drain = self._drain_rates(counts)
        memo = self._ingest_memo
        if memo is not None and memo[0] is counts:
            ingest = memo[1]
        else:
            ingest = (
                self.config.ingest_peak
                * self.config.ingest_curve(np.maximum(counts, 1))
                * self.ingest_mult
                * self._ingest_gate
            )
            self._ingest_memo = (counts, ingest)
        return np.where(self._full, np.minimum(drain, ingest), ingest)

    def next_transition(
        self, inflow: np.ndarray, counts: np.ndarray, now: float
    ) -> float:
        cap = self.config.cache_capacity
        if cap <= 0:
            return float("inf")
        drain = self._drain_rates(counts)
        net = inflow - drain
        t = np.full(self.n_sinks, np.inf)

        filling = (~self._full) & (net > 0)
        if filling.any():
            t[filling] = (cap - self.cache_level[filling]) / net[filling]

        emptying = self._full & (net < 0)
        if emptying.any():
            target = self.config.hysteresis * cap
            t[emptying] = (
                self.cache_level[emptying] - target
            ) / -net[emptying]

        t_min = float(t.min())
        return max(t_min, 0.0)

    # -- trace hooks -----------------------------------------------------
    def _trace_stream_changes(self, counts: np.ndarray, now: float) -> None:
        """Counter events for OSTs whose stream count (and therefore
        seek efficiency) just changed."""
        prev = self._last_counts
        if len(prev) != len(counts):
            return  # pool reconfigured mid-run; nothing comparable
        changed = np.nonzero(counts != prev)[0]
        if changed.size == 0:
            return
        eff = self.config.drain_curve(np.maximum(counts[changed], 1))
        for j, i in enumerate(changed):
            self._tracer.counter(
                "streams",
                pid=f"ost/{int(i)}",
                values={
                    "streams": int(counts[i]),
                    "seek_efficiency": float(eff[j]),
                },
                ts=now,
            )

    def _trace_cache_transitions(self, before: np.ndarray,
                                 now: float) -> None:
        """Instant events for caches crossing the full/drained boundary."""
        flipped = np.nonzero(before != self._full)[0]
        for i in flipped:
            self._tracer.instant(
                "cache.full" if self._full[i] else "cache.drained",
                cat="ost",
                pid=f"ost/{int(i)}",
                tid="cache",
                ts=now,
                args={"level": float(self.cache_level[i])},
            )

    # -- inspection ------------------------------------------------------
    def drain_rates(self) -> np.ndarray:
        """Current cache->disk drain rate per OST (snapshot)."""
        # Copy: the internal result may be memoized and must not be
        # mutated by callers.
        return self._drain_rates(self._last_counts).copy()

    def cache_fill_fraction(self) -> np.ndarray:
        cap = self.config.cache_capacity
        if cap <= 0:
            return np.ones(self.n_sinks)
        return self.cache_level / cap

    def is_full(self) -> np.ndarray:
        return self._full.copy()

    def congestion_scores(self) -> np.ndarray:
        """Per-OST congestion score in [0, 1] for the QoS controller.

        A target is congested when its write-back cache is the
        bottleneck: the score is the cache fill fraction, saturated to
        1.0 while the hysteresis flag holds the target drain-bound.
        Hung and failed targets score 1.0 — they serve nothing, so
        traffic pinned to them is congested by definition.
        """
        score = self.cache_fill_fraction().copy()
        score[self._full] = 1.0
        score[self.state >= OstState.HUNG] = 1.0
        return np.clip(score, 0.0, 1.0)

    def summary(self) -> Dict[str, float]:
        """Aggregate state snapshot (for logs and tests)."""
        return {
            "n_osts": self.n_sinks,
            "mean_cache_fill": float(self.cache_fill_fraction().mean()),
            "n_full": int(self._full.sum()),
            "total_absorbed": float(self.bytes_absorbed.sum()),
            "mean_load_mult": float(self.load_mult.mean()),
        }
