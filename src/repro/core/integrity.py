"""Block-level integrity: classification, scrub reports, index rebuild.

The global index says where every variable block *should* be and what
its content checksum *should* equal; the storage layer knows what is
actually there (:class:`~repro.lustre.file.StoredBlock`).  This module
compares the two:

* :func:`classify_block` gives one block its scrub verdict;
* :class:`ScrubReport` aggregates a full-output walk (see
  :meth:`~repro.core.bp.BpReader.scrub`);
* :func:`rebuild_global_index` reassembles a damaged or missing global
  index from the per-file local indices, the fsck recovery path;
* :func:`detection_stats` scores a scrub against the storage layer's
  ground truth — detected vs undetected corruption, false positives.

Everything here is pure state inspection (no simulated time); the
simulated *cost* of scrubbing lives in ``BpReader.scrub_sim``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

from repro.core.index import GlobalIndex, IndexEntry
from repro.errors import FileNotFoundInNamespace

if TYPE_CHECKING:  # pragma: no cover
    from repro.lustre.file import SimFile
    from repro.lustre.filesystem import FileSystem

__all__ = [
    "BLOCK_VALID",
    "BLOCK_CORRUPT",
    "BLOCK_TORN",
    "BLOCK_MISSING",
    "BLOCK_UNINDEXED",
    "BLOCK_UNVERIFIED",
    "BLOCK_STATUSES",
    "BAD_STATUSES",
    "BlockReport",
    "ScrubReport",
    "classify_block",
    "verify_stored",
    "rebuild_global_index",
    "detection_stats",
]

BLOCK_VALID = "valid"  # stored, whole, checksum matches
BLOCK_CORRUPT = "corrupt"  # stored whole but checksum mismatch
BLOCK_TORN = "torn"  # only a prefix of the block landed
BLOCK_MISSING = "missing"  # indexed but no stored block (or no file)
BLOCK_UNINDEXED = "unindexed"  # stored but no index entry points at it
BLOCK_UNVERIFIED = "unverified"  # no checksum on either side

BLOCK_STATUSES = (
    BLOCK_VALID,
    BLOCK_CORRUPT,
    BLOCK_TORN,
    BLOCK_MISSING,
    BLOCK_UNINDEXED,
    BLOCK_UNVERIFIED,
)

#: Statuses a scrub reports as damage (valid/unverified are not).
BAD_STATUSES = (BLOCK_CORRUPT, BLOCK_TORN, BLOCK_MISSING, BLOCK_UNINDEXED)


def classify_block(f: Optional["SimFile"], entry: IndexEntry) -> str:
    """Scrub verdict for one indexed block against its stored state.

    Precedence: a gone block is missing before anything else; a tear
    is visible from the index's own length metadata, so it outranks
    the checksum; without checksums on both sides the best a reader
    can honestly say is "unverified".
    """
    if f is None:
        return BLOCK_MISSING
    blk = f.block_at(entry.offset, entry.nbytes)
    if blk is None:
        return BLOCK_MISSING
    if blk.torn:
        return BLOCK_TORN
    if entry.checksum is None or blk.checksum is None:
        return BLOCK_UNVERIFIED
    if blk.checksum != entry.checksum:
        return BLOCK_CORRUPT
    return BLOCK_VALID


def verify_stored(
    f: "SimFile", blocks: Iterable[Tuple[float, float, Optional[int]]]
) -> bool:
    """Read-back check a writer runs right after its own write.

    True iff every ``(offset, nbytes, checksum)`` block is stored,
    whole, and checksum-consistent.  A corruption the writer has no
    checksum for is — by construction — invisible here; that is the
    gap scrubbing quantifies.
    """
    for offset, nbytes, checksum in blocks:
        blk = f.block_at(offset, nbytes)
        if blk is None or blk.torn:
            return False
        if (
            checksum is not None
            and blk.checksum is not None
            and blk.checksum != checksum
        ):
            return False
    return True


@dataclass(frozen=True)
class BlockReport:
    """One non-valid block in a scrub report."""

    file: str
    var: str
    writer: int
    offset: float
    nbytes: float
    status: str

    def to_dict(self) -> Dict:
        return {
            "file": self.file,
            "var": self.var,
            "writer": self.writer,
            "offset": float(self.offset),
            "nbytes": float(self.nbytes),
            "status": self.status,
        }


@dataclass(frozen=True)
class ScrubReport:
    """Outcome of one full-output integrity walk."""

    n_files: int
    n_blocks: int
    counts: Dict[str, int]  # status -> block count
    bad: Tuple[BlockReport, ...]  # every damaged block, sorted
    bytes_scanned: float
    bytes_bad: float
    missing_files: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        """No damage found (unverified blocks do not count as damage)."""
        return not self.bad and not self.missing_files

    @property
    def n_bad(self) -> int:
        return len(self.bad)

    def to_dict(self) -> Dict:
        return {
            "n_files": self.n_files,
            "n_blocks": self.n_blocks,
            "counts": {s: int(self.counts.get(s, 0))
                       for s in BLOCK_STATUSES},
            "bad": [b.to_dict() for b in self.bad],
            "bytes_scanned": float(self.bytes_scanned),
            "bytes_bad": float(self.bytes_bad),
            "missing_files": list(self.missing_files),
            "ok": self.ok,
        }

    def render(self) -> str:
        head = (
            f"scrub: {self.n_blocks} blocks in {self.n_files} files, "
            + ", ".join(
                f"{self.counts.get(s, 0)} {s}"
                for s in BLOCK_STATUSES
                if self.counts.get(s, 0)
            )
        )
        lines = [head]
        for b in self.bad:
            lines.append(
                f"  {b.status:<9} {b.file} var={b.var!r} "
                f"writer={b.writer} off={b.offset:.0f} "
                f"nbytes={b.nbytes:.0f}"
            )
        for path in self.missing_files:
            lines.append(f"  missing file {path}")
        return "\n".join(lines)


def rebuild_global_index(
    fs: "FileSystem", files: Iterable[str]
) -> Tuple[GlobalIndex, List[str]]:
    """Rebuild a global index from the per-file local indices.

    Walks each sub-file's stored ``("local_index", entries)`` payload —
    the piece every sub-coordinator writes at the end of its file —
    and merges them, which is exactly what the coordinator would have
    done.  Returns the rebuilt index plus the files that carried no
    local index (nothing to recover from: their blocks will scrub as
    unindexed at best).
    """
    index = GlobalIndex()
    uncovered: List[str] = []
    for path in sorted(set(files)):
        try:
            f = fs.lookup(path)
        except FileNotFoundInNamespace:
            uncovered.append(path)
            continue
        entries: List[IndexEntry] = []
        for payload in f.payloads.values():
            if (
                isinstance(payload, tuple)
                and payload
                and payload[0] == "local_index"
            ):
                entries.extend(payload[1])
        if entries:
            entries.sort(key=lambda e: (e.offset, e.var, e.writer))
            index.add_file(path, entries)
        else:
            uncovered.append(path)
    return index, uncovered


def detection_stats(
    report: ScrubReport, fs: "FileSystem", index: GlobalIndex
) -> Dict[str, int]:
    """Score a scrub against the storage layer's ground truth.

    Ground truth is what is *actually* wrong with the indexed blocks
    right now — the ``corrupt``/``torn`` flags and absences the fault
    injector left behind (blocks a writer already rewrote are fine
    again and do not count).  Returns::

        {"truth": .., "detected": .., "undetected": .., "false_positives": ..}

    With checksums on, ``undetected`` must be zero; without them it is
    the silent-corruption exposure.  ``false_positives`` are blocks the
    scrub flagged that ground truth says are fine.
    """
    truth = set()
    for path, entries in index.entries_by_file().items():
        try:
            f = fs.lookup(path)
        except FileNotFoundInNamespace:
            f = None
        for e in entries:
            key = (path, e.offset, e.nbytes)
            if f is None:
                truth.add(key)
                continue
            blk = f.block_at(e.offset, e.nbytes)
            if blk is None or blk.corrupt or blk.torn:
                truth.add(key)
    flagged = {(b.file, b.offset, b.nbytes) for b in report.bad}
    return {
        "truth": len(truth),
        "detected": len(truth & flagged),
        "undetected": len(truth - flagged),
        "false_positives": len(flagged - truth),
    }
