"""Functional convenience API over the middleware.

For scripts that want one call:

>>> from repro.core.api import write_output
>>> from repro.machines import jaguar
>>> from repro.apps import xgc1
>>> res = write_output(jaguar(n_osts=8), xgc1(), n_ranks=16,
...                    method="adaptive", seed=1)
>>> res.transport
'adaptive'
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.middleware import Adios
from repro.core.transports.base import OutputResult

if TYPE_CHECKING:  # pragma: no cover
    from repro.apps.base import AppKernel
    from repro.machines.base import Machine, MachineSpec

__all__ = ["write_output"]


def write_output(
    machine_or_spec,
    app: "AppKernel",
    n_ranks: Optional[int] = None,
    method: str = "mpiio",
    seed: int = 0,
    output_name: Optional[str] = None,
    **method_options,
) -> OutputResult:
    """Build (if needed), run one output operation, return the result.

    Accepts either a live :class:`~repro.machines.base.Machine` or a
    :class:`~repro.machines.base.MachineSpec` plus ``n_ranks``.
    """
    from repro.machines.base import Machine, MachineSpec

    if isinstance(machine_or_spec, MachineSpec):
        if n_ranks is None:
            raise ValueError("n_ranks is required when passing a spec")
        machine: Machine = machine_or_spec.build(n_ranks=n_ranks, seed=seed)
    elif isinstance(machine_or_spec, Machine):
        machine = machine_or_spec
        if n_ranks is not None and n_ranks != machine.n_ranks:
            raise ValueError(
                f"machine has {machine.n_ranks} ranks, asked for {n_ranks}"
            )
    else:
        raise TypeError(
            f"expected Machine or MachineSpec, got "
            f"{type(machine_or_spec).__name__}"
        )
    io = Adios(machine, method=method, **method_options)
    return io.write_output(app, name=output_name)
