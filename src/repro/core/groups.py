"""Writer-to-group assignment for the adaptive transport.

"Since process IDs are typically assigned sequentially to cores in a
node, grouping them as illustrated reduces the network contention on
the node due to simultaneous writing from the same node, but different
cores" — so the default maps *contiguous rank blocks* to groups, and
each group's first rank carries the sub-coordinator role (and rank 0
additionally the coordinator role).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

__all__ = ["GroupMap"]


@dataclass(frozen=True)
class GroupMap:
    """Partition of ``n_ranks`` writers into ``n_groups`` groups.

    Groups are contiguous rank blocks of near-equal size (the first
    ``n_ranks % n_groups`` groups get one extra rank).  More groups
    than ranks is legal in principle but useless — it is rejected so a
    misconfigured experiment fails loudly.
    """

    n_ranks: int
    n_groups: int

    def __post_init__(self):
        if self.n_ranks < 1:
            raise ValueError("n_ranks must be >= 1")
        if self.n_groups < 1:
            raise ValueError("n_groups must be >= 1")
        if self.n_groups > self.n_ranks:
            raise ValueError(
                f"n_groups {self.n_groups} > n_ranks {self.n_ranks}: "
                "every group needs at least one writer"
            )

    def _bounds(self) -> np.ndarray:
        base, extra = divmod(self.n_ranks, self.n_groups)
        sizes = np.full(self.n_groups, base, dtype=np.int64)
        sizes[:extra] += 1
        return np.concatenate([[0], np.cumsum(sizes)])

    def group_of(self, rank: int) -> int:
        if not 0 <= rank < self.n_ranks:
            raise ValueError(f"rank {rank} out of range")
        bounds = self._bounds()
        return int(np.searchsorted(bounds, rank, side="right") - 1)

    def ranks_in(self, group: int) -> List[int]:
        if not 0 <= group < self.n_groups:
            raise ValueError(f"group {group} out of range")
        bounds = self._bounds()
        return list(range(int(bounds[group]), int(bounds[group + 1])))

    def sub_coordinator_of(self, group: int) -> int:
        """The SC rank: the group's first writer."""
        return self.ranks_in(group)[0]

    @property
    def coordinator(self) -> int:
        """The coordinator rank (rank 0, also SC of group 0)."""
        return 0

    def group_size(self, group: int) -> int:
        return len(self.ranks_in(group))

    @property
    def max_group_size(self) -> int:
        base, extra = divmod(self.n_ranks, self.n_groups)
        return base + (1 if extra else 0)
