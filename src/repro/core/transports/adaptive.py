"""Adaptive IO — the paper's contribution (Algorithms 1-3).

Writers are partitioned into one group per storage target in use; each
group's first rank carries the **sub-coordinator** (SC) role and rank
0 additionally the **coordinator** (C) role.  "The coordinator and
writers only communicate with the sub coordinators, never directly
with each other."

* Each SC owns a sub-file pinned to its group's OST and signals its
  writers **one at a time** — one active stream per storage target,
  eliminating internal interference by construction.
* As SCs finish, C learns which targets are free (and their final
  offsets) and *steers* waiting writers from still-busy groups onto
  them — ADAPTIVE_WRITE_START / WRITERS_BUSY — spreading requests
  round-robin over the writing SCs so no single group drains first.
* Writers ship their local index to the *target* SC after the data
  ("this additional metadata transfer can take place concurrently
  with another process writing to storage"); SCs sort/merge and write
  their file's index, then send it to C, which merges and writes the
  global index.

The mechanism "scales according to the number of storage targets
rather than the number of writers": C exchanges messages only with
SCs, and at most ``n_groups - 1`` adaptive writes are in flight.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.core.groups import GroupMap
from repro.core.index import GlobalIndex, LocalIndex
from repro.core.messages import (
    TAG_COORD,
    TAG_SC,
    TAG_WRITER,
    AdaptiveWriteStart,
    IndexBody,
    OverallWriteComplete,
    ScComplete,
    ScIndex,
    WriteComplete,
    WritersBusy,
    WriteStart,
)
from repro.core.transports.base import OutputResult, Transport, WriterTiming
from repro.errors import ProtocolError
from repro.mpi.comm import SimComm

if TYPE_CHECKING:  # pragma: no cover
    from repro.apps.base import AppKernel
    from repro.machines.base import Machine

__all__ = ["AdaptiveTransport"]

_WRITING, _BUSY, _COMPLETE = "writing", "busy", "complete"


class AdaptiveTransport(Transport):
    """The adaptive IO method.

    Parameters
    ----------
    n_osts_used:
        Storage targets (= groups = sub-files).  Defaults to
        ``min(pool size, n_ranks)``.  The paper's Jaguar evaluation
        uses 512 "to simplify the discussion of ratios" and reports no
        penalty at the full 672.
    steering:
        When False the coordinator never reassigns work — groups
        serialize their writers onto their own OST and nothing else
        (the "serialization without adaptation" ablation).
    writers_per_target:
        Simultaneous writers an SC keeps active on its OST (the paper
        implements 1 and notes 2-3 as a possible generalization).
    index_build_time:
        CPU seconds a writer spends building its local index.
    """

    name = "adaptive"

    def __init__(
        self,
        n_osts_used: Optional[int] = None,
        steering: bool = True,
        writers_per_target: int = 1,
        index_build_time: float = 2.0e-4,
    ):
        if writers_per_target < 1:
            raise ValueError("writers_per_target must be >= 1")
        if index_build_time < 0:
            raise ValueError("index_build_time must be >= 0")
        self.n_osts_used = n_osts_used
        self.steering = steering
        self.writers_per_target = writers_per_target
        self.index_build_time = index_build_time

    def _make_group_map(self, n_ranks: int, n_groups: int):
        """Writer partition; subclasses may weight it (history-aware)."""
        return GroupMap(n_ranks, n_groups)

    def _steer_target_ok(self, target: int) -> bool:
        """May the coordinator steer writes onto this freed target?

        Always yes for the vanilla method (the paper's behaviour: a
        freed target is a fast target, because under uniform quotas
        slow groups finish last).  The history-aware subclass vetoes
        targets it believes are slow — with weighted quotas those can
        free up *early*, and blindly refilling them recreates the very
        tail the quotas avoided.
        """
        return True

    # -- the run ----------------------------------------------------------
    def run(
        self,
        machine: "Machine",
        app: "AppKernel",
        output_name: str = "output",
    ) -> OutputResult:
        env = machine.env
        fs = machine.fs
        n_ranks = machine.n_ranks
        n_groups = self.n_osts_used or min(machine.n_osts, n_ranks)
        if not 1 <= n_groups <= machine.n_osts:
            raise ValueError(
                f"n_osts_used {n_groups} out of range for pool of "
                f"{machine.n_osts}"
            )
        n_groups = min(n_groups, n_ranks)
        groups = self._make_group_map(n_ranks, n_groups)
        comm = SimComm(env, n_ranks, latency=machine.spec.latency)
        nbytes = app.per_process_bytes
        index_nbytes = float(
            sum(e.serialized_bytes for e in app.index_entries(0, 0.0))
        )

        tracer = env.tracer
        traced = tracer is not None and tracer.enabled
        sc_rank = [groups.sub_coordinator_of(g) for g in range(n_groups)]
        coord = groups.coordinator
        group_of = [groups.group_of(r) for r in range(n_ranks)]
        files: Dict[int, object] = {}  # group -> SimFile
        timings: List[Optional[WriterTiming]] = [None] * n_ranks
        stats = {"adaptive_writes": 0, "busy_bounces": 0}
        phase: Dict[str, float] = {}
        global_index = GlobalIndex()
        global_index_path = f"/{output_name}.bp.dir/index.bp"

        # ---------------- Writer role (Algorithm 1) -----------------------
        def writer_proc(rank: int, files_ready):
            yield files_ready
            g = group_of[rank]
            node = machine.node_of(rank)
            wpid, wtid = f"node/{node}", f"rank {rank}"
            if traced:
                tracer.begin("wait", cat="writer", pid=wpid, tid=wtid)
            msg = yield comm.recv(rank, tag=TAG_WRITER)  # (target, offset)
            ws: WriteStart = msg.payload
            if traced:
                tracer.end("wait", cat="writer", pid=wpid, tid=wtid,
                           args={"target_group": ws.target_group,
                                 "adaptive": ws.adaptive})
            if self.index_build_time:
                if traced:
                    tracer.begin("index", cat="writer", pid=wpid, tid=wtid)
                yield env.timeout(self.index_build_time)  # build local index
                if traced:
                    tracer.end("index", cat="writer", pid=wpid, tid=wtid)
            start = env.now
            if traced:
                tracer.begin(
                    "write", cat="writer", pid=wpid, tid=wtid,
                    args={"nbytes": float(nbytes),
                          "target_group": ws.target_group,
                          "offset": float(ws.offset),
                          "adaptive": ws.adaptive},
                )
            yield from fs.write(
                files[ws.target_group],
                node=node,
                offset=ws.offset,
                nbytes=nbytes,
                writer=rank,
            )
            end = env.now
            if traced:
                tracer.end("write", cat="writer", pid=wpid, tid=wtid)
            timings[rank] = WriterTiming(
                rank=rank,
                start=start,
                end=end,
                nbytes=nbytes,
                target_group=ws.target_group,
                adaptive=ws.adaptive,
            )
            wc = WriteComplete(
                source_rank=rank,
                source_group=g,
                target_group=ws.target_group,
                nbytes=nbytes,
                index_nbytes=index_nbytes,
                adaptive=ws.adaptive,
            )
            # WRITE_COMPLETE to the triggering SC (always our own);
            # if we were steered elsewhere, also to the target SC.
            comm.send(rank, sc_rank[g], wc, tag=TAG_SC)
            if ws.target_group != g:
                comm.send(rank, sc_rank[ws.target_group], wc, tag=TAG_SC)
            # Local index to the *target* SC, concurrent with the next
            # writer's data.
            entries = tuple(app.index_entries(rank, ws.offset))
            comm.send(
                rank,
                sc_rank[ws.target_group],
                IndexBody(rank, ws.target_group, entries),
                tag=TAG_SC,
                nbytes=index_nbytes,
            )

        # ---------------- Sub-coordinator role (Algorithm 2) --------------
        def sc_proc(g: int, files_ready, all_created):
            me = sc_rank[g]
            path = f"/{output_name}.bp.dir/{g:04d}.bp"
            ost = fs.allocate_osts(1)[0]
            f = yield from fs.create(path, osts=[ost], stripe_size=1e15)
            files[g] = f
            all_created[0] += 1
            if all_created[0] == n_groups:
                phase["open_end"] = env.now
                files_ready.succeed()
            yield files_ready

            members = groups.ranks_in(g)
            # Own writer first: the SC "can each focus on management
            # after completing their writes".
            waiting = deque(members)
            cursor = 0.0
            active_local = 0
            completions = 0
            missing_indices = 0
            done = False
            local_index = LocalIndex(path)

            def signal_local() -> None:
                nonlocal cursor, active_local
                while (
                    not done
                    and waiting
                    and active_local < self.writers_per_target
                ):
                    w = waiting.popleft()
                    if traced:
                        tracer.instant(
                            "WRITE_START", cat="steer", pid="adaptive",
                            tid=f"sc {g}",
                            args={"writer": w, "target_group": g,
                                  "offset": float(cursor)},
                        )
                    comm.send(
                        me, w, WriteStart(g, cursor), tag=TAG_WRITER
                    )
                    cursor += nbytes
                    active_local += 1

            signal_local()
            while not done or missing_indices > 0:
                msg = yield comm.recv(me, tag=TAG_SC)
                p = msg.payload
                if isinstance(p, WriteComplete):
                    if p.target_group == g:
                        # A write against my OST finished (mine or a
                        # steered foreign one): its index is inbound.
                        missing_indices += 1
                        if p.source_group == g:
                            active_local -= 1
                            signal_local()
                    if p.source_group == g:
                        completions += 1
                        if p.adaptive:
                            comm.send(me, coord, p, tag=TAG_COORD)
                        if completions == len(members):
                            comm.send(
                                me,
                                coord,
                                ScComplete(g, cursor),
                                tag=TAG_COORD,
                            )
                elif isinstance(p, IndexBody):
                    local_index.add(p.entries)
                    missing_indices -= 1
                elif isinstance(p, AdaptiveWriteStart):
                    if not waiting:
                        stats["busy_bounces"] += 1
                        if traced:
                            tracer.instant(
                                "WRITERS_BUSY", cat="steer",
                                pid="adaptive", tid=f"sc {g}",
                                args={"target_group": p.target_group},
                            )
                        comm.send(
                            me,
                            coord,
                            WritersBusy(g, p.target_group, p.offset),
                            tag=TAG_COORD,
                        )
                    else:
                        # Steal from the tail: the head writer is next
                        # in line for our own target anyway.
                        w = waiting.pop()
                        if traced:
                            tracer.instant(
                                "WRITE_START", cat="steer",
                                pid="adaptive", tid=f"sc {g}",
                                args={"writer": w,
                                      "target_group": p.target_group,
                                      "offset": float(p.offset),
                                      "adaptive": True},
                            )
                        comm.send(
                            me,
                            w,
                            WriteStart(p.target_group, p.offset,
                                       adaptive=True),
                            tag=TAG_WRITER,
                        )
                elif isinstance(p, OverallWriteComplete):
                    done = True
                else:  # pragma: no cover - defensive
                    raise ProtocolError(f"SC {g}: unexpected {p!r}")

            # Sort and merge the index pieces, write the file index,
            # ship it to C.
            entries = local_index.finalize()
            local_index.check_no_overlap()
            yield from fs.write(
                f,
                node=machine.node_of(me),
                offset=f.size,
                nbytes=local_index.serialized_bytes,
                writer=me,
                payload=("local_index", entries),
            )
            comm.send(
                me,
                coord,
                ScIndex(g, path, entries, local_index.serialized_bytes),
                tag=TAG_COORD,
                nbytes=local_index.serialized_bytes,
            )

        # ---------------- Coordinator role (Algorithm 3) -------------------
        def coord_proc(files_ready):
            yield files_ready
            state = {g: _WRITING for g in range(n_groups)}
            cursor: Dict[int, float] = {}
            in_flight: Dict[int, bool] = {}
            outstanding = 0
            rr = [0]  # round-robin cursor over writing SCs

            def next_writing_sc(exclude: int) -> Optional[int]:
                for step in range(n_groups):
                    g = (rr[0] + step) % n_groups
                    if g != exclude and state[g] == _WRITING:
                        rr[0] = (g + 1) % n_groups
                        return g
                return None

            def try_schedule(target: int) -> None:
                nonlocal outstanding
                if not self.steering:
                    return
                if in_flight.get(target):
                    return
                if not self._steer_target_ok(target):
                    return
                g = next_writing_sc(exclude=target)
                if g is None:
                    return
                if traced:
                    target_file = files.get(target)
                    tracer.instant(
                        "ADAPTIVE_WRITE_START", cat="steer",
                        pid="adaptive", tid="coordinator",
                        args={
                            "target_group": target,
                            "target_ost": (
                                int(target_file.layout.osts[0])
                                if target_file is not None else -1
                            ),
                            "steer_from_group": g,
                            "offset": float(cursor[target]),
                        },
                    )
                comm.send(
                    coord,
                    sc_rank[g],
                    AdaptiveWriteStart(target, cursor[target]),
                    tag=TAG_SC,
                )
                in_flight[target] = True
                outstanding += 1

            def finished() -> bool:
                return (
                    all(s == _COMPLETE for s in state.values())
                    and outstanding == 0
                )

            while not finished():
                msg = yield comm.recv(coord, tag=TAG_COORD)
                p = msg.payload
                if isinstance(p, WriteComplete):
                    if not p.adaptive:  # pragma: no cover - defensive
                        raise ProtocolError(
                            "C received non-adaptive WriteComplete"
                        )
                    stats["adaptive_writes"] += 1
                    outstanding -= 1
                    in_flight[p.target_group] = False
                    cursor[p.target_group] += p.nbytes
                    try_schedule(p.target_group)
                elif isinstance(p, ScComplete):
                    state[p.source_group] = _COMPLETE
                    cursor[p.source_group] = p.final_offset
                    if traced:
                        tracer.instant(
                            "SC_COMPLETE", cat="steer",
                            pid="adaptive", tid="coordinator",
                            args={"group": p.source_group,
                                  "final_offset": float(p.final_offset)},
                        )
                    try_schedule(p.source_group)
                elif isinstance(p, WritersBusy):
                    # Guard a protocol race: the offer may have crossed
                    # the SC's own ScComplete in flight — never
                    # downgrade a complete SC.
                    if state[p.source_group] == _WRITING:
                        state[p.source_group] = _BUSY
                    outstanding -= 1
                    in_flight[p.target_group] = False
                    try_schedule(p.target_group)
                else:  # pragma: no cover - defensive
                    raise ProtocolError(f"C: unexpected {p!r}")

            for g in range(n_groups):
                comm.send(
                    coord, sc_rank[g], OverallWriteComplete(), tag=TAG_SC
                )
            # Gather index pieces, merge into the global index, write
            # the global index file.
            for _ in range(n_groups):
                msg = yield comm.recv(coord, tag=TAG_COORD)
                p = msg.payload
                if not isinstance(p, ScIndex):  # pragma: no cover
                    raise ProtocolError(f"C: expected ScIndex, got {p!r}")
                global_index.add_file(p.file_path, p.entries)
            gi_file = yield from fs.create(
                global_index_path, osts=[fs.allocate_osts(1)[0]]
            )
            yield from fs.write(
                gi_file,
                node=machine.node_of(coord),
                offset=0,
                nbytes=global_index.serialized_bytes,
                writer=coord,
                payload=("global_index", global_index),
            )
            files[-1] = gi_file
            phase["write_end"] = env.now

        # ---------------- Orchestration ------------------------------------
        def main():
            t0 = env.now
            files_ready = env.event()
            all_created = [0]
            procs = []
            for g in range(n_groups):
                procs.append(
                    env.process(
                        sc_proc(g, files_ready, all_created),
                        name=f"adaptive.sc.{g}",
                    )
                )
            for r in range(n_ranks):
                procs.append(
                    env.process(
                        writer_proc(r, files_ready), name=f"adaptive.w.{r}"
                    )
                )
            procs.append(
                env.process(coord_proc(files_ready), name="adaptive.coord")
            )
            yield env.all_of(procs)
            # Explicit flush of every file before close (paper's
            # measurement protocol), all in parallel.
            fstart = env.now
            flushes = [
                env.process(fs.flush(f), name="adaptive.flush")
                for f in files.values()
            ]
            yield env.all_of(flushes)
            phase["flush_end"] = env.now
            for f in files.values():
                yield from fs.close(f)
            phase["close_end"] = env.now
            phase["flush_start"] = fstart
            return t0

        done = env.process(main(), name="adaptive.main")
        env.run(until=done)
        t0 = done.value

        result = OutputResult(
            transport=self.name,
            n_writers=n_ranks,
            total_bytes=nbytes * n_ranks,
            open_time=phase["open_end"] - t0,
            write_time=phase["write_end"] - phase["open_end"],
            flush_time=phase["flush_end"] - phase["flush_start"],
            close_time=phase["close_end"] - phase["flush_end"],
            per_writer=[t for t in timings if t is not None],
            files=sorted(
                f"/{output_name}.bp.dir/{g:04d}.bp" for g in range(n_groups)
            )
            + [global_index_path],
            index=global_index,
            n_adaptive_writes=stats["adaptive_writes"],
            messages_sent=comm.messages_sent,
            coordinator_messages=comm.messages_by_rank.get(coord, 0),
            extra={
                "n_groups": float(n_groups),
                "busy_bounces": float(stats["busy_bounces"]),
            },
        )
        return self._finish(machine, result)
