"""Adaptive IO — the paper's contribution (Algorithms 1-3).

Writers are partitioned into one group per storage target in use; each
group's first rank carries the **sub-coordinator** (SC) role and rank
0 additionally the **coordinator** (C) role.  "The coordinator and
writers only communicate with the sub coordinators, never directly
with each other."

* Each SC owns a sub-file pinned to its group's OST and signals its
  writers **one at a time** — one active stream per storage target,
  eliminating internal interference by construction.
* As SCs finish, C learns which targets are free (and their final
  offsets) and *steers* waiting writers from still-busy groups onto
  them — ADAPTIVE_WRITE_START / WRITERS_BUSY — spreading requests
  round-robin over the writing SCs so no single group drains first.
* Writers ship their local index to the *target* SC after the data
  ("this additional metadata transfer can take place concurrently
  with another process writing to storage"); SCs sort/merge and write
  their file's index, then send it to C, which merges and writes the
  global index.

The mechanism "scales according to the number of storage targets
rather than the number of writers": C exchanges messages only with
SCs, and at most ``n_groups - 1`` adaptive writes are in flight.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.core.groups import GroupMap
from repro.core.index import GlobalIndex, LocalIndex
from repro.core.integrity import verify_stored
from repro.core.messages import (
    TAG_ADOPTED_BASE,
    TAG_COORD,
    TAG_SC,
    TAG_WRITER,
    AdaptiveWriteStart,
    Heartbeat,
    IndexBody,
    OverallWriteComplete,
    ScComplete,
    ScIndex,
    ScRelocated,
    WriteComplete,
    WriteFailed,
    WritersBusy,
    WriterRelease,
    WriteStart,
)
from repro.core.transports.base import OutputResult, Transport, WriterTiming
from repro.errors import (
    OstFailedError,
    ProtocolError,
    StripeLimitExceeded,
    TransportError,
    WriteTimeout,
)
from repro.mpi.comm import SimComm
from repro.sim.events import AllSettled

if TYPE_CHECKING:  # pragma: no cover
    from repro.apps.base import AppKernel
    from repro.machines.base import Machine

__all__ = ["AdaptiveTransport"]

_WRITING, _BUSY, _COMPLETE = "writing", "busy", "complete"


class AdaptiveTransport(Transport):
    """The adaptive IO method.

    Parameters
    ----------
    n_osts_used:
        Storage targets (= groups = sub-files).  Defaults to
        ``min(pool size, n_ranks)``.  The paper's Jaguar evaluation
        uses 512 "to simplify the discussion of ratios" and reports no
        penalty at the full 672.
    steering:
        When False the coordinator never reassigns work — groups
        serialize their writers onto their own OST and nothing else
        (the "serialization without adaptation" ablation).
    writers_per_target:
        Simultaneous writers an SC keeps active on its OST (the paper
        implements 1 and notes 2-3 as a possible generalization).
    index_build_time:
        CPU seconds a writer spends building its local index.
    """

    name = "adaptive"

    def __init__(
        self,
        n_osts_used: Optional[int] = None,
        steering: bool = True,
        writers_per_target: int = 1,
        index_build_time: float = 2.0e-4,
    ):
        if writers_per_target < 1:
            raise ValueError("writers_per_target must be >= 1")
        if index_build_time < 0:
            raise ValueError("index_build_time must be >= 0")
        self.n_osts_used = n_osts_used
        self.steering = steering
        self.writers_per_target = writers_per_target
        self.index_build_time = index_build_time

    def _make_group_map(self, n_ranks: int, n_groups: int):
        """Writer partition; subclasses may weight it (history-aware)."""
        return GroupMap(n_ranks, n_groups)

    def _steer_target_ok(self, target: int) -> bool:
        """May the coordinator steer writes onto this freed target?

        Always yes for the vanilla method (the paper's behaviour: a
        freed target is a fast target, because under uniform quotas
        slow groups finish last).  The history-aware subclass vetoes
        targets it believes are slow — with weighted quotas those can
        free up *early*, and blindly refilling them recreates the very
        tail the quotas avoided.
        """
        return True

    # -- the run ----------------------------------------------------------
    def run(
        self,
        machine: "Machine",
        app: "AppKernel",
        output_name: str = "output",
    ) -> OutputResult:
        if machine.faults is not None:
            return self._run_faulted(machine, app, output_name)
        env = machine.env
        fs = machine.fs
        self._watch_fabric(machine)
        n_ranks = machine.n_ranks
        n_groups = self.n_osts_used or min(machine.n_osts, n_ranks)
        if not 1 <= n_groups <= machine.n_osts:
            raise ValueError(
                f"n_osts_used {n_groups} out of range for pool of "
                f"{machine.n_osts}"
            )
        n_groups = min(n_groups, n_ranks)
        groups = self._make_group_map(n_ranks, n_groups)
        comm = SimComm(env, n_ranks, latency=machine.spec.latency)
        nbytes = app.per_process_bytes
        index_nbytes = float(
            sum(e.serialized_bytes for e in app.index_entries(0, 0.0))
        )

        tracer = env.tracer
        traced = tracer is not None and tracer.enabled
        sc_rank = [groups.sub_coordinator_of(g) for g in range(n_groups)]
        coord = groups.coordinator
        group_of = [groups.group_of(r) for r in range(n_ranks)]
        files: Dict[int, object] = {}  # group -> SimFile
        timings: List[Optional[WriterTiming]] = [None] * n_ranks
        stats = {"adaptive_writes": 0, "busy_bounces": 0}
        phase: Dict[str, float] = {}
        global_index = GlobalIndex()
        global_index_path = f"/{output_name}.bp.dir/index.bp"

        # ---------------- Writer role (Algorithm 1) -----------------------
        def writer_proc(rank: int, files_ready):
            yield files_ready
            g = group_of[rank]
            node = machine.node_of(rank)
            wpid, wtid = f"node/{node}", f"rank {rank}"
            if traced:
                tracer.begin("wait", cat="writer", pid=wpid, tid=wtid)
            msg = yield comm.recv(rank, tag=TAG_WRITER)  # (target, offset)
            ws: WriteStart = msg.payload
            if traced:
                tracer.end("wait", cat="writer", pid=wpid, tid=wtid,
                           args={"target_group": ws.target_group,
                                 "adaptive": ws.adaptive})
            if self.index_build_time:
                if traced:
                    tracer.begin("index", cat="writer", pid=wpid, tid=wtid)
                yield env.timeout(self.index_build_time)  # build local index
                if traced:
                    tracer.end("index", cat="writer", pid=wpid, tid=wtid)
            start = env.now
            if traced:
                tracer.begin(
                    "write", cat="writer", pid=wpid, tid=wtid,
                    args={"nbytes": float(nbytes),
                          "target_group": ws.target_group,
                          "offset": float(ws.offset),
                          "adaptive": ws.adaptive},
                )
            yield from fs.write(
                files[ws.target_group],
                node=node,
                offset=ws.offset,
                nbytes=nbytes,
                writer=rank,
                blocks=app.data_blocks(rank, ws.offset),
            )
            end = env.now
            if traced:
                tracer.end("write", cat="writer", pid=wpid, tid=wtid)
            timings[rank] = WriterTiming(
                rank=rank,
                start=start,
                end=end,
                nbytes=nbytes,
                target_group=ws.target_group,
                adaptive=ws.adaptive,
            )
            wc = WriteComplete(
                source_rank=rank,
                source_group=g,
                target_group=ws.target_group,
                nbytes=nbytes,
                index_nbytes=index_nbytes,
                adaptive=ws.adaptive,
            )
            # WRITE_COMPLETE to the triggering SC (always our own);
            # if we were steered elsewhere, also to the target SC.
            comm.send(rank, sc_rank[g], wc, tag=TAG_SC)
            if ws.target_group != g:
                comm.send(rank, sc_rank[ws.target_group], wc, tag=TAG_SC)
            # Local index to the *target* SC, concurrent with the next
            # writer's data.
            entries = tuple(app.index_entries(rank, ws.offset))
            comm.send(
                rank,
                sc_rank[ws.target_group],
                IndexBody(rank, ws.target_group, entries),
                tag=TAG_SC,
                nbytes=index_nbytes,
            )

        # ---------------- Sub-coordinator role (Algorithm 2) --------------
        def sc_proc(g: int, files_ready, all_created):
            me = sc_rank[g]
            path = f"/{output_name}.bp.dir/{g:04d}.bp"
            ost = fs.allocate_osts(1)[0]
            f = yield from fs.create(path, osts=[ost], stripe_size=1e15)
            files[g] = f
            all_created[0] += 1
            if all_created[0] == n_groups:
                phase["open_end"] = env.now
                files_ready.succeed()
            yield files_ready

            members = groups.ranks_in(g)
            # Own writer first: the SC "can each focus on management
            # after completing their writes".
            waiting = deque(members)
            cursor = 0.0
            active_local = 0
            completions = 0
            missing_indices = 0
            done = False
            local_index = LocalIndex(path)

            def signal_local() -> None:
                nonlocal cursor, active_local
                while (
                    not done
                    and waiting
                    and active_local < self.writers_per_target
                ):
                    w = waiting.popleft()
                    if traced:
                        tracer.instant(
                            "WRITE_START", cat="steer", pid="adaptive",
                            tid=f"sc {g}",
                            args={"writer": w, "target_group": g,
                                  "offset": float(cursor)},
                        )
                    comm.send(
                        me, w, WriteStart(g, cursor), tag=TAG_WRITER
                    )
                    cursor += nbytes
                    active_local += 1

            signal_local()
            while not done or missing_indices > 0:
                msg = yield comm.recv(me, tag=TAG_SC)
                p = msg.payload
                if isinstance(p, WriteComplete):
                    if p.target_group == g:
                        # A write against my OST finished (mine or a
                        # steered foreign one): its index is inbound.
                        missing_indices += 1
                        if p.source_group == g:
                            active_local -= 1
                            signal_local()
                    if p.source_group == g:
                        completions += 1
                        if p.adaptive:
                            comm.send(me, coord, p, tag=TAG_COORD)
                        if completions == len(members):
                            comm.send(
                                me,
                                coord,
                                ScComplete(g, cursor),
                                tag=TAG_COORD,
                            )
                elif isinstance(p, IndexBody):
                    local_index.add(p.entries)
                    missing_indices -= 1
                elif isinstance(p, AdaptiveWriteStart):
                    if not waiting:
                        stats["busy_bounces"] += 1
                        if traced:
                            tracer.instant(
                                "WRITERS_BUSY", cat="steer",
                                pid="adaptive", tid=f"sc {g}",
                                args={"target_group": p.target_group},
                            )
                        comm.send(
                            me,
                            coord,
                            WritersBusy(g, p.target_group, p.offset),
                            tag=TAG_COORD,
                        )
                    else:
                        # Steal from the tail: the head writer is next
                        # in line for our own target anyway.
                        w = waiting.pop()
                        if traced:
                            tracer.instant(
                                "WRITE_START", cat="steer",
                                pid="adaptive", tid=f"sc {g}",
                                args={"writer": w,
                                      "target_group": p.target_group,
                                      "offset": float(p.offset),
                                      "adaptive": True},
                            )
                        comm.send(
                            me,
                            w,
                            WriteStart(p.target_group, p.offset,
                                       adaptive=True),
                            tag=TAG_WRITER,
                        )
                elif isinstance(p, OverallWriteComplete):
                    done = True
                else:  # pragma: no cover - defensive
                    raise ProtocolError(f"SC {g}: unexpected {p!r}")

            # Sort and merge the index pieces, write the file index,
            # ship it to C.
            entries = local_index.finalize()
            local_index.check_no_overlap()
            yield from fs.write(
                f,
                node=machine.node_of(me),
                offset=f.size,
                nbytes=local_index.serialized_bytes,
                writer=me,
                payload=("local_index", entries),
            )
            comm.send(
                me,
                coord,
                ScIndex(g, path, entries, local_index.serialized_bytes),
                tag=TAG_COORD,
                nbytes=local_index.serialized_bytes,
            )

        # ---------------- Coordinator role (Algorithm 3) -------------------
        def coord_proc(files_ready):
            yield files_ready
            state = {g: _WRITING for g in range(n_groups)}
            cursor: Dict[int, float] = {}
            in_flight: Dict[int, bool] = {}
            outstanding = 0
            rr = [0]  # round-robin cursor over writing SCs

            def next_writing_sc(exclude: int) -> Optional[int]:
                for step in range(n_groups):
                    g = (rr[0] + step) % n_groups
                    if g != exclude and state[g] == _WRITING:
                        rr[0] = (g + 1) % n_groups
                        return g
                return None

            def try_schedule(target: int) -> None:
                nonlocal outstanding
                if not self.steering:
                    return
                if in_flight.get(target):
                    return
                if not self._steer_target_ok(target):
                    return
                g = next_writing_sc(exclude=target)
                if g is None:
                    return
                if traced:
                    target_file = files.get(target)
                    tracer.instant(
                        "ADAPTIVE_WRITE_START", cat="steer",
                        pid="adaptive", tid="coordinator",
                        args={
                            "target_group": target,
                            "target_ost": (
                                int(target_file.layout.osts[0])
                                if target_file is not None else -1
                            ),
                            "steer_from_group": g,
                            "offset": float(cursor[target]),
                        },
                    )
                comm.send(
                    coord,
                    sc_rank[g],
                    AdaptiveWriteStart(target, cursor[target]),
                    tag=TAG_SC,
                )
                in_flight[target] = True
                outstanding += 1

            def finished() -> bool:
                return (
                    all(s == _COMPLETE for s in state.values())
                    and outstanding == 0
                )

            while not finished():
                msg = yield comm.recv(coord, tag=TAG_COORD)
                p = msg.payload
                if isinstance(p, WriteComplete):
                    if not p.adaptive:  # pragma: no cover - defensive
                        raise ProtocolError(
                            "C received non-adaptive WriteComplete"
                        )
                    stats["adaptive_writes"] += 1
                    outstanding -= 1
                    in_flight[p.target_group] = False
                    cursor[p.target_group] += p.nbytes
                    try_schedule(p.target_group)
                elif isinstance(p, ScComplete):
                    state[p.source_group] = _COMPLETE
                    cursor[p.source_group] = p.final_offset
                    if traced:
                        tracer.instant(
                            "SC_COMPLETE", cat="steer",
                            pid="adaptive", tid="coordinator",
                            args={"group": p.source_group,
                                  "final_offset": float(p.final_offset)},
                        )
                    try_schedule(p.source_group)
                elif isinstance(p, WritersBusy):
                    # Guard a protocol race: the offer may have crossed
                    # the SC's own ScComplete in flight — never
                    # downgrade a complete SC.
                    if state[p.source_group] == _WRITING:
                        state[p.source_group] = _BUSY
                    outstanding -= 1
                    in_flight[p.target_group] = False
                    try_schedule(p.target_group)
                else:  # pragma: no cover - defensive
                    raise ProtocolError(f"C: unexpected {p!r}")

            for g in range(n_groups):
                comm.send(
                    coord, sc_rank[g], OverallWriteComplete(), tag=TAG_SC
                )
            # Gather index pieces, merge into the global index, write
            # the global index file.
            for _ in range(n_groups):
                msg = yield comm.recv(coord, tag=TAG_COORD)
                p = msg.payload
                if not isinstance(p, ScIndex):  # pragma: no cover
                    raise ProtocolError(f"C: expected ScIndex, got {p!r}")
                global_index.add_file(p.file_path, p.entries)
            gi_file = yield from fs.create(
                global_index_path, osts=[fs.allocate_osts(1)[0]]
            )
            yield from fs.write(
                gi_file,
                node=machine.node_of(coord),
                offset=0,
                nbytes=global_index.serialized_bytes,
                writer=coord,
                payload=("global_index", global_index),
            )
            files[-1] = gi_file
            phase["write_end"] = env.now

        # ---------------- Orchestration ------------------------------------
        def main():
            t0 = env.now
            files_ready = env.event()
            all_created = [0]
            procs = []
            for g in range(n_groups):
                procs.append(
                    env.process(
                        sc_proc(g, files_ready, all_created),
                        name=f"adaptive.sc.{g}",
                    )
                )
            for r in range(n_ranks):
                procs.append(
                    env.process(
                        writer_proc(r, files_ready), name=f"adaptive.w.{r}"
                    )
                )
            procs.append(
                env.process(coord_proc(files_ready), name="adaptive.coord")
            )
            yield env.all_of(procs)
            # Explicit flush of every file before close (paper's
            # measurement protocol), all in parallel.
            fstart = env.now
            flushes = [
                env.process(fs.flush(f), name="adaptive.flush")
                for f in files.values()
            ]
            yield env.all_of(flushes)
            phase["flush_end"] = env.now
            for f in files.values():
                yield from fs.close(f)
            phase["close_end"] = env.now
            phase["flush_start"] = fstart
            return t0

        done = env.process(main(), name="adaptive.main")
        env.run(until=done)
        t0 = done.value

        result = OutputResult(
            transport=self.name,
            n_writers=n_ranks,
            total_bytes=nbytes * n_ranks,
            open_time=phase["open_end"] - t0,
            write_time=phase["write_end"] - phase["open_end"],
            flush_time=phase["flush_end"] - phase["flush_start"],
            close_time=phase["close_end"] - phase["flush_end"],
            per_writer=[t for t in timings if t is not None],
            files=sorted(
                f"/{output_name}.bp.dir/{g:04d}.bp" for g in range(n_groups)
            )
            + [global_index_path],
            index=global_index,
            n_adaptive_writes=stats["adaptive_writes"],
            messages_sent=comm.messages_sent,
            coordinator_messages=comm.messages_by_rank.get(coord, 0),
            extra={
                "n_groups": float(n_groups),
                "busy_bounces": float(stats["busy_bounces"]),
            },
        )
        return self._finish(machine, result)

    # -- the fault-hardened run --------------------------------------------
    def _run_faulted(
        self,
        machine: "Machine",
        app: "AppKernel",
        output_name: str = "output",
    ) -> OutputResult:
        """Fault-tolerant variant of :meth:`run` (``machine.faults`` set).

        Same protocol, hardened:

        * every data write carries a timeout; a timed-out writer backs
          off (capped exponential) and retries up to the policy budget
          before abandoning with ``WriteFailed``;
        * each group's sub-file is an *incarnation* ``(group, epoch)``.
          A failure against the current epoch makes the SC relocate to
          a fresh file on a healthy OST, bump the epoch, and re-signal
          everything it was hosting in one recovery burst (after a
          failure, minimizing time-at-risk beats pacing).  Messages
          about older epochs are stale: completions/failures from
          ranks nobody is re-hosting get a recovery signal, the rest
          are dropped;
        * the coordinator poisons steering targets that report
          failures, tracks SC liveness via heartbeats, and adopts a
          silent SC's group on its own rank under
          ``TAG_ADOPTED_BASE + group``;
        * the run is bounded by ``policy.run_timeout``.  However it
          ends, per-rank durability is accounted from the landing sets
          of the *current* incarnations; an unclean run raises
          :class:`~repro.errors.TransportError` carrying
          ``bytes_durable`` / ``bytes_lost`` and the partial result
          instead of hanging or silently under-reporting.
        """
        env = machine.env
        fs = machine.fs
        self._watch_fabric(machine)
        faults = machine.faults
        policy = faults.policy
        n_ranks = machine.n_ranks
        n_groups = self.n_osts_used or min(machine.n_osts, n_ranks)
        if not 1 <= n_groups <= machine.n_osts:
            raise ValueError(
                f"n_osts_used {n_groups} out of range for pool of "
                f"{machine.n_osts}"
            )
        n_groups = min(n_groups, n_ranks)
        groups = self._make_group_map(n_ranks, n_groups)
        comm = SimComm(env, n_ranks, latency=machine.spec.latency)
        comm.faults = faults
        nbytes = app.per_process_bytes
        index_nbytes = float(
            sum(e.serialized_bytes for e in app.index_entries(0, 0.0))
        )

        tracer = env.tracer
        traced = tracer is not None and tracer.enabled
        # sc_rank/sc_tag are mutable: adoption redirects a group's SC
        # endpoint, and writers resolve the address at send time.
        sc_rank = [groups.sub_coordinator_of(g) for g in range(n_groups)]
        sc_tag = [TAG_SC] * n_groups
        coord = groups.coordinator
        group_of = [groups.group_of(r) for r in range(n_ranks)]

        files: Dict[int, object] = {}  # group -> current incarnation
        files_at: Dict[tuple, object] = {}  # (group, epoch) -> SimFile
        paths_at: Dict[tuple, str] = {}
        epoch_of = [0] * n_groups
        timings: List[Optional[WriterTiming]] = [None] * n_ranks
        stats = {
            "adaptive_writes": 0,
            "busy_bounces": 0,
            "retries": 0,
            "aborts": 0,
            "relocations": 0,
            "adoptions": 0,
            "verify_failures": 0,
        }
        phase: Dict[str, float] = {}
        global_index = GlobalIndex()
        global_index_path = f"/{output_name}.bp.dir/index.bp"

        # Landing sets of the *current* incarnation of every group —
        # the ground truth for durability accounting after the run.
        done_sets: Dict[int, set] = {g: set() for g in range(n_groups)}
        flush_failures: List[str] = []
        index_failures: List[int] = []
        run_flags = {"timed_out": False, "stop": False}

        files_ready = env.event()
        all_created = [0]

        def alive(ranks):
            return [r for r in ranks if r not in faults.crashed_ranks]

        # ---------------- Writer role (hardened Algorithm 1) --------------
        def writer_proc(rank: int, files_ready):
            yield files_ready
            g = group_of[rank]
            node = machine.node_of(rank)
            wpid, wtid = f"node/{node}", f"rank {rank}"
            built_index = False
            while True:
                if traced:
                    tracer.begin("wait", cat="writer", pid=wpid, tid=wtid)
                msg = yield comm.recv(rank, tag=TAG_WRITER)
                p = msg.payload
                if isinstance(p, WriterRelease):
                    if traced:
                        tracer.end("wait", cat="writer", pid=wpid, tid=wtid,
                                   args={"released": True})
                    return
                ws: WriteStart = p
                if traced:
                    tracer.end("wait", cat="writer", pid=wpid, tid=wtid,
                               args={"target_group": ws.target_group,
                                     "adaptive": ws.adaptive,
                                     "epoch": ws.epoch})
                if self.index_build_time and not built_index:
                    built_index = True
                    if traced:
                        tracer.begin("index", cat="writer", pid=wpid,
                                     tid=wtid)
                    yield env.timeout(self.index_build_time)
                    if traced:
                        tracer.end("index", cat="writer", pid=wpid, tid=wtid)
                start = env.now
                attempt = 0
                failure = None
                data_blocks = app.data_blocks(rank, ws.offset)
                verify_failed_once = False
                while True:
                    f = files_at[(ws.target_group, ws.epoch)]
                    if traced:
                        tracer.begin(
                            "write", cat="writer", pid=wpid, tid=wtid,
                            args={"nbytes": float(nbytes),
                                  "target_group": ws.target_group,
                                  "offset": float(ws.offset),
                                  "adaptive": ws.adaptive,
                                  "epoch": ws.epoch,
                                  "attempt": attempt},
                        )
                    try:
                        yield from fs.write(
                            f,
                            node=node,
                            offset=ws.offset,
                            nbytes=nbytes,
                            writer=rank,
                            timeout=policy.write_timeout,
                            blocks=data_blocks,
                        )
                    except OstFailedError as exc:
                        if traced:
                            tracer.end("write", cat="writer", pid=wpid,
                                       tid=wtid,
                                       args={"failed": "ost_failed"})
                        # Fail-stop target: retrying the same incarnation
                        # cannot succeed.
                        failure = f"ost failed: {exc}"
                        break
                    except WriteTimeout:
                        if traced:
                            tracer.end("write", cat="writer", pid=wpid,
                                       tid=wtid, args={"failed": "timeout"})
                        attempt += 1
                        if attempt > policy.max_retries:
                            failure = (
                                f"timed out {attempt}x "
                                f"(budget {policy.max_retries} retries)"
                            )
                            break
                        stats["retries"] += 1
                        backoff = policy.backoff(attempt)
                        if traced:
                            tracer.instant(
                                "write.retry", cat="fault", pid=wpid,
                                tid=wtid,
                                args={"target_group": ws.target_group,
                                      "epoch": ws.epoch,
                                      "attempt": attempt,
                                      "backoff": backoff},
                            )
                        yield env.timeout(backoff)
                    else:
                        # Write–verify–rewrite: read the blocks back
                        # against our own checksums before declaring
                        # victory.  A mismatch burns a retry from the
                        # same budget — persistent corruption on one
                        # target must eventually poison it (the
                        # WriteFailed path below), not spin forever.
                        if policy.read_back_verify and not verify_stored(
                            f, data_blocks
                        ):
                            if traced:
                                tracer.end("write", cat="writer", pid=wpid,
                                           tid=wtid,
                                           args={"failed": "verify"})
                            attempt += 1
                            if attempt > policy.max_retries:
                                failure = (
                                    f"read-back verify failed {attempt}x "
                                    f"(budget {policy.max_retries} retries)"
                                )
                                break
                            stats["verify_failures"] += 1
                            verify_failed_once = True
                            backoff = policy.backoff(attempt)
                            if traced:
                                tracer.instant(
                                    "write.verify_fail", cat="integrity",
                                    pid=wpid, tid=wtid,
                                    args={"target_group": ws.target_group,
                                          "epoch": ws.epoch,
                                          "offset": float(ws.offset),
                                          "attempt": attempt,
                                          "backoff": backoff},
                                )
                            yield env.timeout(backoff)
                            continue
                        if traced:
                            tracer.end("write", cat="writer", pid=wpid,
                                       tid=wtid)
                            if verify_failed_once:
                                tracer.instant(
                                    "block.repair", cat="integrity",
                                    pid=wpid, tid=wtid,
                                    args={"target_group": ws.target_group,
                                          "epoch": ws.epoch,
                                          "offset": float(ws.offset)},
                                )
                        break
                if failure is None:
                    timings[rank] = WriterTiming(
                        rank=rank,
                        start=start,
                        end=env.now,
                        nbytes=nbytes,
                        target_group=ws.target_group,
                        adaptive=ws.adaptive,
                    )
                    wc = WriteComplete(
                        source_rank=rank,
                        source_group=g,
                        target_group=ws.target_group,
                        nbytes=nbytes,
                        index_nbytes=index_nbytes,
                        adaptive=ws.adaptive,
                        epoch=ws.epoch,
                        recovery=ws.recovery,
                    )
                    comm.send(rank, sc_rank[g], wc, tag=sc_tag[g])
                    if ws.target_group != g:
                        comm.send(rank, sc_rank[ws.target_group], wc,
                                  tag=sc_tag[ws.target_group])
                    entries = tuple(app.index_entries(rank, ws.offset))
                    comm.send(
                        rank,
                        sc_rank[ws.target_group],
                        IndexBody(rank, ws.target_group, entries,
                                  epoch=ws.epoch),
                        tag=sc_tag[ws.target_group],
                        nbytes=index_nbytes,
                    )
                else:
                    stats["aborts"] += 1
                    if traced:
                        tracer.instant(
                            "write.abort", cat="fault", pid=wpid, tid=wtid,
                            args={"target_group": ws.target_group,
                                  "epoch": ws.epoch, "reason": failure},
                        )
                    wf = WriteFailed(
                        source_rank=rank,
                        source_group=g,
                        target_group=ws.target_group,
                        nbytes=nbytes,
                        epoch=ws.epoch,
                        adaptive=ws.adaptive,
                        recovery=ws.recovery,
                        reason=failure,
                    )
                    comm.send(rank, sc_rank[ws.target_group], wf,
                              tag=sc_tag[ws.target_group])
                    if ws.adaptive and not ws.recovery and ws.target_group != g:
                        # Copy to our own SC, which relays it to C for
                        # steering bookkeeping (writers never talk to C).
                        comm.send(rank, sc_rank[g], wf, tag=sc_tag[g])

        # ---------------- Sub-coordinator role (hardened) ------------------
        def sc_body(g: int, me: int, tag: int, epoch: int, path: str, f,
                    burst: bool):
            members = groups.ranks_in(g)
            member_set = set(members)
            waiting = deque()
            cursor = 0.0
            active_local = 0
            member_done: set = set()  # members durably landed (anywhere)
            steered_away: set = set()  # members handed to adaptive steers
            done_set = done_sets[g]  # ranks landed on CURRENT incarnation
            done_set.clear()
            foreign_pending: set = set()  # foreign ranks re-hosted here
            missing_indices = 0
            done = False
            local_index = LocalIndex(path)
            sc_complete_sent = False

            def signal(w: int, recovery: bool) -> None:
                nonlocal cursor
                if traced:
                    tracer.instant(
                        "WRITE_START", cat="steer", pid="adaptive",
                        tid=f"sc {g}",
                        args={"writer": w, "target_group": g,
                              "offset": float(cursor), "epoch": epoch,
                              "recovery": recovery},
                    )
                comm.send(
                    me, w,
                    WriteStart(g, cursor, adaptive=(w not in member_set),
                               epoch=epoch, recovery=recovery),
                    tag=TAG_WRITER,
                )
                cursor += nbytes

            def signal_local() -> None:
                nonlocal active_local
                while (
                    not done
                    and waiting
                    and active_local < self.writers_per_target
                ):
                    w = waiting.popleft()
                    if w in faults.crashed_ranks:
                        continue
                    signal(w, recovery=False)
                    active_local += 1

            def incarnation_complete() -> bool:
                return member_set.issubset(
                    member_done | faults.crashed_ranks
                ) and set(alive(foreign_pending)).issubset(done_set)

            def maybe_sc_complete() -> None:
                nonlocal sc_complete_sent
                if sc_complete_sent or not incarnation_complete():
                    return
                sc_complete_sent = True
                comm.send(me, coord, ScComplete(g, cursor, epoch=epoch),
                          tag=TAG_COORD)

            def orphaned(rank: int) -> bool:
                """Is a stale reporter without a current-epoch home?"""
                return (
                    rank not in member_set
                    and rank not in foreign_pending
                    and rank not in done_set
                    and rank not in faults.crashed_ranks
                )

            def relocate(reporter: int, reason: str):
                nonlocal epoch, path, f, cursor, active_local, \
                    missing_indices, local_index, sc_complete_sent
                stats["relocations"] += 1
                epoch += 1
                epoch_of[g] = epoch
                old_done = set(done_set)
                # Members whose bytes live on another group keep their
                # completion; everything landed *here* must be redone.
                member_done.difference_update(old_done)
                path = f"/{output_name}.bp.dir/{g:04d}.e{epoch}.bp"
                ost = fs.allocate_healthy_osts(1)[0]
                f = yield from fs.create(path, osts=[ost], stripe_size=1e15)
                files[g] = f
                files_at[(g, epoch)] = f
                paths_at[(g, epoch)] = path
                if traced:
                    tracer.instant(
                        "SC_RELOCATE", cat="fault", pid="adaptive",
                        tid=f"sc {g}",
                        args={"epoch": epoch, "ost": int(ost),
                              "reason": reason},
                    )
                foreign = (old_done - member_set) | foreign_pending
                if reporter not in member_set:
                    foreign.add(reporter)
                done_set.clear()
                foreign_pending.clear()
                foreign_pending.update(alive(foreign))
                local_index = LocalIndex(path)
                missing_indices = 0
                cursor = 0.0
                active_local = 0
                waiting.clear()
                sc_complete_sent = False
                resignal = set(alive(members)) - member_done - steered_away
                for w in sorted(resignal):
                    signal(w, recovery=True)
                for w in sorted(foreign_pending):
                    signal(w, recovery=True)
                comm.send(me, coord, ScRelocated(g, epoch), tag=TAG_COORD)
                maybe_sc_complete()

            if burst:
                for w in alive(members):
                    signal(w, recovery=True)
            else:
                waiting.extend(alive(members))
                signal_local()
            maybe_sc_complete()

            while not done or missing_indices > 0 \
                    or not incarnation_complete():
                msg = yield comm.recv(me, tag=tag)
                p = msg.payload
                if isinstance(p, WriteComplete):
                    if p.target_group == g:
                        if p.epoch == epoch:
                            done_set.add(p.source_rank)
                            missing_indices += 1
                            if p.source_rank in member_set:
                                member_done.add(p.source_rank)
                            if p.source_group == g and not p.recovery:
                                active_local -= 1
                                signal_local()
                        elif orphaned(p.source_rank):
                            # Landed on a torn-down incarnation and
                            # nobody is re-hosting it: take it in.
                            foreign_pending.add(p.source_rank)
                            signal(p.source_rank, recovery=True)
                    if p.source_group == g:
                        member_done.add(p.source_rank)
                        if p.adaptive and not p.recovery:
                            comm.send(me, coord, p, tag=TAG_COORD)
                    maybe_sc_complete()
                elif isinstance(p, WriteFailed):
                    if p.target_group == g and p.epoch == epoch:
                        try:
                            yield from relocate(p.source_rank, p.reason)
                        except StripeLimitExceeded:
                            # No healthy OST left to relocate onto: the
                            # group is unrecoverable.  Keep draining
                            # messages; the run-timeout backstop ends
                            # the run with loss accounting.
                            if traced:
                                tracer.instant(
                                    "SC_STRANDED", cat="fault",
                                    pid="adaptive", tid=f"sc {g}",
                                    args={"epoch": epoch},
                                )
                    elif p.target_group == g and orphaned(p.source_rank):
                        foreign_pending.add(p.source_rank)
                        signal(p.source_rank, recovery=True)
                    if (p.source_group == g and p.adaptive
                            and not p.recovery):
                        comm.send(me, coord, p, tag=TAG_COORD)
                elif isinstance(p, IndexBody):
                    if p.epoch == epoch:
                        local_index.add(p.entries)
                        missing_indices -= 1
                    # Stale bodies are dropped: the write is being
                    # redone against the current incarnation anyway.
                elif isinstance(p, AdaptiveWriteStart):
                    if not waiting:
                        stats["busy_bounces"] += 1
                        if traced:
                            tracer.instant(
                                "WRITERS_BUSY", cat="steer",
                                pid="adaptive", tid=f"sc {g}",
                                args={"target_group": p.target_group},
                            )
                        comm.send(
                            me,
                            coord,
                            WritersBusy(g, p.target_group, p.offset),
                            tag=TAG_COORD,
                        )
                    else:
                        w = waiting.pop()
                        steered_away.add(w)
                        if traced:
                            tracer.instant(
                                "WRITE_START", cat="steer",
                                pid="adaptive", tid=f"sc {g}",
                                args={"writer": w,
                                      "target_group": p.target_group,
                                      "offset": float(p.offset),
                                      "adaptive": True,
                                      "epoch": p.epoch},
                            )
                        comm.send(
                            me,
                            w,
                            WriteStart(p.target_group, p.offset,
                                       adaptive=True, epoch=p.epoch),
                            tag=TAG_WRITER,
                        )
                elif isinstance(p, OverallWriteComplete):
                    done = True
                else:  # pragma: no cover - defensive
                    raise ProtocolError(f"SC {g}: unexpected {p!r}")

            entries = local_index.finalize()
            local_index.check_no_overlap()
            try:
                yield from fs.write(
                    f,
                    node=machine.node_of(me),
                    offset=f.size,
                    nbytes=local_index.serialized_bytes,
                    writer=me,
                    payload=("local_index", entries),
                    timeout=policy.write_timeout,
                )
            except (OstFailedError, WriteTimeout) as exc:
                index_failures.append(g)
                if traced:
                    tracer.instant(
                        "index.abort", cat="fault", pid="adaptive",
                        tid=f"sc {g}", args={"error": str(exc)},
                    )
            comm.send(
                me,
                coord,
                ScIndex(g, path, entries, local_index.serialized_bytes),
                tag=TAG_COORD,
                nbytes=local_index.serialized_bytes,
            )

        def sc_proc(g: int, files_ready, all_created):
            me = sc_rank[g]
            path = f"/{output_name}.bp.dir/{g:04d}.bp"
            ost = fs.allocate_healthy_osts(1)[0]
            f = yield from fs.create(path, osts=[ost], stripe_size=1e15)
            files[g] = f
            files_at[(g, 0)] = f
            paths_at[(g, 0)] = path
            all_created[0] += 1
            if all_created[0] == n_groups:
                phase["open_end"] = env.now
                files_ready.succeed()
            yield files_ready
            yield from sc_body(g, me, TAG_SC, 0, path, f, burst=False)

        def adopted_sc_proc(g: int):
            epoch = epoch_of[g]
            path = f"/{output_name}.bp.dir/{g:04d}.e{epoch}.bp"
            ost = fs.allocate_healthy_osts(1)[0]
            f = yield from fs.create(path, osts=[ost], stripe_size=1e15)
            files[g] = f
            files_at[(g, epoch)] = f
            paths_at[(g, epoch)] = path
            if (g, 0) not in files_at:
                # The dead SC never even created its file: fill its seat
                # in the open barrier so writers are not stuck forever.
                all_created[0] += 1
                if all_created[0] == n_groups:
                    phase["open_end"] = env.now
                    files_ready.succeed()
            if not files_ready.triggered:
                yield files_ready
            yield from sc_body(g, coord, TAG_ADOPTED_BASE + g, epoch, path,
                               f, burst=True)

        # ---------------- Coordinator role (hardened) ----------------------
        # State is hoisted so the SC-liveness monitor (same rank) shares it.
        state: Dict[int, str] = {}
        cursor: Dict[int, float] = {}
        in_flight: Dict[int, bool] = {}
        target_epoch: Dict[int, int] = {}
        poisoned: set = set()
        last_seen: Dict[int, float] = {}
        adopted: set = set()
        sc_index_received: set = set()
        adopted_procs: List = []
        coord_flags = {"outstanding": 0, "overall_sent": False}

        def coord_proc(files_ready):
            yield files_ready
            for g in range(n_groups):
                state[g] = _WRITING
                target_epoch[g] = 0
                last_seen[g] = env.now
            rr = [0]

            def next_writing_sc(exclude: int) -> Optional[int]:
                for step in range(n_groups):
                    g = (rr[0] + step) % n_groups
                    if g != exclude and state[g] == _WRITING:
                        rr[0] = (g + 1) % n_groups
                        return g
                return None

            def try_schedule(target: int) -> None:
                if not self.steering:
                    return
                if in_flight.get(target):
                    return
                if target in poisoned or state.get(target) != _COMPLETE:
                    return
                if not self._steer_target_ok(target):
                    return
                g = next_writing_sc(exclude=target)
                if g is None:
                    return
                if traced:
                    target_file = files.get(target)
                    tracer.instant(
                        "ADAPTIVE_WRITE_START", cat="steer",
                        pid="adaptive", tid="coordinator",
                        args={
                            "target_group": target,
                            "target_ost": (
                                int(target_file.layout.osts[0])
                                if target_file is not None else -1
                            ),
                            "steer_from_group": g,
                            "offset": float(cursor[target]),
                            "epoch": target_epoch.get(target, 0),
                        },
                    )
                comm.send(
                    coord,
                    sc_rank[g],
                    AdaptiveWriteStart(target, cursor[target],
                                       epoch=target_epoch.get(target, 0)),
                    tag=sc_tag[g],
                )
                in_flight[target] = True
                coord_flags["outstanding"] += 1

            def finished() -> bool:
                return (
                    all(s == _COMPLETE for s in state.values())
                    and coord_flags["outstanding"] == 0
                )

            while not finished():
                msg = yield comm.recv(coord, tag=TAG_COORD)
                p = msg.payload
                if isinstance(p, WriteComplete):
                    if not p.adaptive:  # pragma: no cover - defensive
                        raise ProtocolError(
                            "C received non-adaptive WriteComplete"
                        )
                    stats["adaptive_writes"] += 1
                    coord_flags["outstanding"] -= 1
                    in_flight[p.target_group] = False
                    if (p.target_group in cursor
                            and p.epoch == target_epoch.get(
                                p.target_group, 0)):
                        cursor[p.target_group] += p.nbytes
                    try_schedule(p.target_group)
                elif isinstance(p, WriteFailed):
                    coord_flags["outstanding"] -= 1
                    in_flight[p.target_group] = False
                    poisoned.add(p.target_group)
                    if traced:
                        tracer.instant(
                            "STEER_POISON", cat="fault", pid="adaptive",
                            tid="coordinator",
                            args={"target_group": p.target_group,
                                  "reason": p.reason},
                        )
                    # Never reschedule onto a target that just failed;
                    # its SC re-announces via ScRelocated + ScComplete.
                elif isinstance(p, ScComplete):
                    state[p.source_group] = _COMPLETE
                    cursor[p.source_group] = p.final_offset
                    target_epoch[p.source_group] = p.epoch
                    last_seen[p.source_group] = env.now
                    if traced:
                        tracer.instant(
                            "SC_COMPLETE", cat="steer",
                            pid="adaptive", tid="coordinator",
                            args={"group": p.source_group,
                                  "final_offset": float(p.final_offset),
                                  "epoch": p.epoch},
                        )
                    try_schedule(p.source_group)
                elif isinstance(p, ScRelocated):
                    state[p.source_group] = _WRITING
                    target_epoch[p.source_group] = p.epoch
                    poisoned.discard(p.source_group)
                    cursor.pop(p.source_group, None)
                    last_seen[p.source_group] = env.now
                    if traced:
                        tracer.instant(
                            "SC_RELOCATED", cat="fault", pid="adaptive",
                            tid="coordinator",
                            args={"group": p.source_group,
                                  "epoch": p.epoch},
                        )
                elif isinstance(p, Heartbeat):
                    last_seen[p.source_group] = env.now
                elif isinstance(p, WritersBusy):
                    if state[p.source_group] == _WRITING:
                        state[p.source_group] = _BUSY
                    coord_flags["outstanding"] -= 1
                    in_flight[p.target_group] = False
                    try_schedule(p.target_group)
                else:  # pragma: no cover - defensive
                    raise ProtocolError(f"C: unexpected {p!r}")

            coord_flags["overall_sent"] = True
            for g in range(n_groups):
                comm.send(coord, sc_rank[g], OverallWriteComplete(),
                          tag=sc_tag[g])
            # Gather index pieces.  The endgame tolerates protocol echo
            # (heartbeats, stale relays, late relocations): SCs finish
            # their incarnations autonomously and ScIndex is the only
            # message that advances the gather.
            while len(sc_index_received) < n_groups:
                msg = yield comm.recv(coord, tag=TAG_COORD)
                p = msg.payload
                if isinstance(p, ScIndex):
                    if p.source_group not in sc_index_received:
                        sc_index_received.add(p.source_group)
                        global_index.add_file(p.file_path, p.entries)
                elif isinstance(p, Heartbeat):
                    last_seen[p.source_group] = env.now
            try:
                gi_ost = fs.allocate_healthy_osts(1)[0]
            except StripeLimitExceeded:
                gi_ost = fs.allocate_osts(1)[0]
            gi_file = yield from fs.create(global_index_path, osts=[gi_ost])
            try:
                yield from fs.write(
                    gi_file,
                    node=machine.node_of(coord),
                    offset=0,
                    nbytes=global_index.serialized_bytes,
                    writer=coord,
                    payload=("global_index", global_index),
                    timeout=policy.write_timeout,
                )
            except (OstFailedError, WriteTimeout):
                index_failures.append(-1)
            files[-1] = gi_file
            phase["write_end"] = env.now

        # ---------------- SC liveness: heartbeats + adoption ---------------
        def heartbeat_proc(g: int):
            me = sc_rank[g]  # the original rank; dies with it
            while not run_flags["stop"]:
                comm.send(me, coord, Heartbeat(g, me), tag=TAG_COORD)
                yield env.timeout(policy.heartbeat_interval)

        def adopt(g: int) -> None:
            stats["adoptions"] += 1
            adopted.add(g)
            dead_rank = sc_rank[g]
            epoch_of[g] += 1
            sc_rank[g] = coord
            sc_tag[g] = TAG_ADOPTED_BASE + g
            state[g] = _WRITING
            target_epoch[g] = epoch_of[g]
            poisoned.discard(g)
            cursor.pop(g, None)
            last_seen[g] = env.now
            if traced:
                tracer.instant(
                    "SC_ADOPT", cat="fault", pid="adaptive",
                    tid="coordinator",
                    args={"group": g, "epoch": epoch_of[g],
                          "dead_rank": dead_rank},
                )
            proc = env.process(adopted_sc_proc(g),
                               name=f"adaptive.sc.{g}.adopt")
            adopted_procs.append(proc)
            faults.register(coord, proc)
            if coord_flags["overall_sent"]:
                comm.send(coord, coord, OverallWriteComplete(),
                          tag=TAG_ADOPTED_BASE + g)

        def monitor_proc(files_ready):
            yield files_ready
            while not run_flags["stop"]:
                yield env.timeout(policy.heartbeat_interval)
                now = env.now
                for g in range(n_groups):
                    if g in adopted or g in sc_index_received:
                        continue
                    if now - last_seen.get(g, now) > policy.sc_timeout:
                        adopt(g)

        # ---------------- Orchestration ------------------------------------
        def main():
            t0 = env.now
            faults.arm()  # plan times are relative to output start
            sc_procs = []
            hb_procs = []
            writer_procs = []
            for g in range(n_groups):
                pr = env.process(sc_proc(g, files_ready, all_created),
                                 name=f"adaptive.sc.{g}")
                sc_procs.append(pr)
                faults.register(sc_rank[g], pr)
                hb = env.process(heartbeat_proc(g), name=f"adaptive.hb.{g}")
                hb_procs.append(hb)
                faults.register(sc_rank[g], hb)
            for r in range(n_ranks):
                pr = env.process(writer_proc(r, files_ready),
                                 name=f"adaptive.w.{r}")
                writer_procs.append(pr)
                faults.register(r, pr)
            cp = env.process(coord_proc(files_ready), name="adaptive.coord")
            faults.register(coord, cp)
            mon = env.process(monitor_proc(files_ready),
                              name="adaptive.monitor")
            faults.register(coord, mon)

            deadline = env.timeout(policy.run_timeout)

            def protocol_pending():
                return [p for p in sc_procs + [cp] + adopted_procs
                        if p.is_alive]

            pending = protocol_pending()
            while pending:
                settled = AllSettled(env, pending)
                yield env.any_of([settled, deadline])
                if deadline.processed and protocol_pending():
                    run_flags["timed_out"] = True
                    break
                pending = protocol_pending()  # adoption may have spawned

            run_flags["stop"] = True
            if run_flags["timed_out"]:
                for p in protocol_pending():
                    p.kill("run timeout backstop")
            for p in hb_procs + [mon]:
                if p.is_alive:
                    p.kill("protocol finished")
            phase.setdefault("write_end", env.now)

            # Release the writer service loops; bound the goodbye so a
            # lost release message cannot hang the run.
            for r in range(n_ranks):
                if writer_procs[r].is_alive:
                    comm.send(coord, r, WriterRelease(), tag=TAG_WRITER)
            lingering = [p for p in writer_procs if p.is_alive]
            if lingering:
                grace = env.timeout(max(1.0, 4 * policy.heartbeat_interval))
                yield env.any_of([AllSettled(env, lingering), grace])
                for p in lingering:
                    if p.is_alive:
                        p.kill("release grace expired")

            fstart = env.now

            def guarded_flush(f):
                try:
                    yield from fs.flush(f, timeout=policy.flush_timeout)
                except (OstFailedError, WriteTimeout) as exc:
                    flush_failures.append(f"{f.path}: {exc}")

            flushes = [
                env.process(guarded_flush(f), name="adaptive.flush")
                for f in files.values()
            ]
            if flushes:
                yield AllSettled(env, flushes)
            phase["flush_end"] = env.now
            for f in files.values():
                yield from fs.close(f)
            phase["close_end"] = env.now
            phase["flush_start"] = fstart
            return t0

        done = env.process(main(), name="adaptive.main")
        env.run(until=done)
        t0 = done.value

        durable_ranks: set = set()
        for g in range(n_groups):
            durable_ranks |= done_sets[g]
        total = nbytes * n_ranks
        bytes_durable = nbytes * len(durable_ranks)
        bytes_lost = total - bytes_durable

        open_end = phase.get("open_end", t0)
        write_end = phase.get("write_end", open_end)
        flush_start = phase.get("flush_start", write_end)
        flush_end = phase.get("flush_end", flush_start)
        close_end = phase.get("close_end", flush_end)
        # Corruption surviving in the *current* incarnations, after all
        # verify-rewrites.  Informational for adaptive (`ok` is about
        # durability; detection is the scrub's job), load-bearing for
        # the statics' error accounting.
        bytes_corrupt = 0.0
        for g in range(n_groups):
            f = files_at.get((g, epoch_of[g]))
            if f is None:
                continue
            for blk in f.stored_blocks():
                if blk.corrupt or blk.torn:
                    bytes_corrupt += blk.nbytes
        fault_extra = {
            "n_groups": float(n_groups),
            "busy_bounces": float(stats["busy_bounces"]),
            "fault_retries": float(stats["retries"]),
            "fault_aborts": float(stats["aborts"]),
            "sc_relocations": float(stats["relocations"]),
            "sc_adoptions": float(stats["adoptions"]),
            "verify_failures": float(stats["verify_failures"]),
            "bytes_durable": bytes_durable,
            "bytes_lost": bytes_lost,
            "bytes_corrupt": bytes_corrupt,
        }
        fault_extra.update(faults.summary())
        result = OutputResult(
            transport=self.name,
            n_writers=n_ranks,
            total_bytes=total,
            open_time=open_end - t0,
            write_time=write_end - open_end,
            flush_time=flush_end - flush_start,
            close_time=close_end - flush_end,
            per_writer=[t for t in timings if t is not None],
            files=sorted(
                paths_at.get((g, epoch_of[g]),
                             f"/{output_name}.bp.dir/{g:04d}.bp")
                for g in range(n_groups)
            )
            + [global_index_path],
            index=global_index,
            n_adaptive_writes=stats["adaptive_writes"],
            messages_sent=comm.messages_sent,
            coordinator_messages=comm.messages_by_rank.get(coord, 0),
            extra=fault_extra,
        )
        ok = (
            not run_flags["timed_out"]
            and not flush_failures
            and not index_failures
            and len(durable_ranks) == n_ranks
        )
        if ok:
            return self._finish(machine, result)
        if traced:
            tracer.close_open_spans()
        reasons = []
        if run_flags["timed_out"]:
            reasons.append(f"run timeout ({policy.run_timeout:g}s) hit")
        if faults.crashed_ranks:
            reasons.append(f"{len(faults.crashed_ranks)} rank(s) crashed")
        if len(durable_ranks) < n_ranks:
            reasons.append(
                f"{n_ranks - len(durable_ranks)} writer(s) not durable"
            )
        if flush_failures:
            reasons.append(f"{len(flush_failures)} flush failure(s)")
        if index_failures:
            reasons.append(f"{len(index_failures)} index write failure(s)")
        raise TransportError(
            "adaptive output did not complete cleanly: "
            + "; ".join(reasons),
            bytes_durable=bytes_durable,
            bytes_lost=bytes_lost,
            partial=result,
            bytes_corrupt=bytes_corrupt,
        )
