"""Adaptive IO — the paper's contribution (Algorithms 1-3).

Writers are partitioned into one group per storage target in use; each
group's first rank carries the **sub-coordinator** (SC) role and rank
0 additionally the **coordinator** (C) role.  "The coordinator and
writers only communicate with the sub coordinators, never directly
with each other."

* Each SC owns a sub-file pinned to its group's OST and signals its
  writers **one at a time** — one active stream per storage target,
  eliminating internal interference by construction.
* As SCs finish, C learns which targets are free (and their final
  offsets) and *steers* waiting writers from still-busy groups onto
  them — ADAPTIVE_WRITE_START / WRITERS_BUSY — spreading requests
  round-robin over the writing SCs so no single group drains first.
* Writers ship their local index to the *target* SC after the data
  ("this additional metadata transfer can take place concurrently
  with another process writing to storage"); SCs sort/merge and write
  their file's index, then send it to C, which merges and writes the
  global index.

The mechanism "scales according to the number of storage targets
rather than the number of writers": C exchanges messages only with
SCs, and at most ``n_groups - 1`` adaptive writes are in flight.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.core.groups import GroupMap
from repro.core.index import GlobalIndex, LocalIndex
from repro.core.integrity import verify_stored
from repro.core.messages import (
    TAG_ADOPTED_BASE,
    TAG_COORD,
    TAG_SC,
    TAG_WRITER,
    AdaptiveWriteStart,
    CoordBatch,
    Heartbeat,
    IndexBody,
    OverallWriteComplete,
    ScComplete,
    ScIndex,
    ScRelocated,
    WriteComplete,
    WriteFailed,
    WritersBusy,
    WriterRelease,
    WriteStart,
)
from repro.core.transports.base import (
    OutputResult,
    Transport,
    TransportRun,
    WriterTiming,
)
from repro.errors import (
    OstFailedError,
    ProtocolError,
    StripeLimitExceeded,
    TransportError,
    WriteTimeout,
)
from repro.mpi.comm import SimComm
from repro.sim.events import AllSettled
from repro.sim.process import Mailbox

if TYPE_CHECKING:  # pragma: no cover
    from repro.apps.base import AppKernel
    from repro.machines.base import Machine

__all__ = ["AdaptiveTransport"]

_WRITING, _BUSY, _COMPLETE = "writing", "busy", "complete"

# Boundary slack when recovering member boundaries from flow progress:
# a timer may land within float rounding of the exact byte crossing.
_BOUNDARY_TOL = 1e-3  # bytes


class _GroupStream:
    """One group's serialized member pipeline on its OST.

    Both protocol modes (batched cohorts and the per-rank reference)
    drive group-local data movement through this helper, so their
    fabric interaction — and therefore every timestamp — is
    float-identical.  Instead of one simulated process and one fabric
    flow per member write, the stream models the group's one-at-a-time
    schedule as a **single aggregate flow** whose bytes are the
    members' segments back to back.  Member boundaries are recovered
    with pure :meth:`~repro.net.fabric.FlowNetwork.flow_progress`
    queries: one armed calendar timer for the *next* boundary, re-armed
    by a rate watcher whenever interference changes the drain rate.
    The final member is completed by the flow's own completion event,
    so its end time carries no timer rounding.

    This is the "pre-signaled pipelined gapless" timing model (see
    DESIGN.md §13): every member is signaled its slot in the plan at
    files-ready, builds its index once, and the group's OST never
    idles between members — exactly the steady state of the per-write
    protocol, without its per-write event traffic.  Steering steals
    pop not-yet-started members off the tail and truncate the
    aggregate flow by one segment, riding the fabric's
    skip-reallocation fast path.

    With ``writers_per_target > 1`` the stream instead runs that many
    independent single-member *lanes* (one flow each, handing off to
    the next member at each completion); boundaries then need no
    timers at all.

    Completion bookkeeping is centralized here: OST-span trace and
    stored-block registration (via
    :meth:`~repro.lustre.filesystem.FileSystem.record_aggregated_write`),
    the writer's wait/index/write trace spans, its
    :class:`~repro.core.transports.base.WriterTiming`, and finally a
    ``notify(rank, outcome)`` callback the owning protocol uses to
    send (or synchronously account) the completion messages.  Outcomes
    are ``("done", t_start, t_end, offset)`` for members written
    locally and ``("stolen", target_group, offset)`` for members
    steered away.
    """

    __slots__ = (
        "env", "fs", "f", "ost", "g", "src_node", "nbytes", "t_open",
        "hop", "build", "machine", "app", "timings", "tracer", "traced",
        "notify", "pending", "finished", "_done", "_seg_start", "_fid",
        "_timer", "_lanes", "_next_lane", "_lane_start", "tenant",
    )

    def __init__(
        self,
        env,
        fs,
        f,
        ost: int,
        g: int,
        src_node: int,
        members,
        nbytes: float,
        t_open: float,
        hop: float,
        build: float,
        machine,
        app,
        timings,
        notify,
        lanes: int = 1,
    ):
        self.env = env
        self.fs = fs
        self.f = f
        self.ost = ost
        self.g = g
        self.src_node = src_node
        self.nbytes = float(nbytes)
        self.t_open = t_open  # files-ready instant (T0)
        self.hop = hop  # one 64-byte control-message hop
        self.build = build  # per-writer index build time
        self.machine = machine
        self.app = app
        self.timings = timings
        tracer = env.tracer
        self.tracer = tracer
        self.traced = tracer is not None and tracer.enabled
        self.notify = notify
        self.pending = list(members)  # members writing locally, in order
        self.finished = False
        self._done = 0  # members completed (index of the one in progress)
        self._seg_start = t_open
        self._fid = None  # aggregate flow id (lanes == 1)
        self._timer = None  # armed next-boundary timer
        self._lanes = lanes
        self._next_lane = 0  # next member index to get a lane (lanes > 1)
        self._lane_start = {}
        self.tenant = getattr(machine, "tenant", -1)

    # -- lifecycle ---------------------------------------------------------
    def begin(self) -> None:
        """Start the group's data movement (armed at T0 + hop + build)."""
        self._seg_start = self.env.now
        if not self.pending:
            self.finished = True
            return
        if self._lanes > 1:
            self._next_lane = min(self._lanes, len(self.pending))
            for k in range(self._next_lane):
                self._start_lane(k)
            return
        total = len(self.pending) * self.nbytes
        ev, fid = self.fs.fabric.start_flow_with_id(
            self.src_node, self.ost, total, tenant=self.tenant
        )
        self._fid = fid
        ev.add_callback(self._on_flow_done)
        self.fs.fabric.watch_flow(fid, self._on_rate_change)
        self._arm_next()

    # -- steering ----------------------------------------------------------
    @property
    def has_stealable(self) -> bool:
        """A tail member exists that has not started writing locally."""
        if self.finished:
            return False
        if self._lanes > 1:
            return len(self.pending) > self._next_lane
        return len(self.pending) - 1 > self._done

    def truncate_tail(self, target: int, offset: float) -> int:
        """Steal the tail member for a steered write; returns its rank.

        The aggregate flow loses one segment's bytes off its
        undelivered tail (rate unchanged — the fabric's deferred
        settle rides the skip-reallocation fast path).
        """
        rank = self.pending.pop()
        if self._lanes <= 1 and self._fid is not None:
            try:
                self.fs.fabric.adjust_flow_bytes(self._fid, -self.nbytes)
            except KeyError:  # pragma: no cover - defensive
                pass
            if (
                self._timer is not None
                and len(self.pending) - 1 <= self._done
            ):
                # The in-progress member became the last: its end is
                # now the flow's completion, not a boundary timer.
                if not self._timer.processed:
                    self._timer.cancel()
                self._timer = None
        self.notify(rank, ("stolen", target, offset))
        return rank

    @property
    def final_offset(self) -> float:
        """The sub-file's data tail: one segment per local member."""
        return len(self.pending) * self.nbytes

    # -- aggregate-flow boundary recovery (lanes == 1) ---------------------
    def _arm_next(self) -> None:
        fabric = self.fs.fabric
        while True:
            nxt = self._done + 1
            if nxt >= len(self.pending):
                self._timer = None
                return  # the flow's completion event drives the last member
            try:
                delivered, rate = fabric.flow_progress(self._fid)
            except KeyError:  # flow finished; _on_flow_done sweeps up
                self._timer = None
                return
            target = nxt * self.nbytes
            if delivered + _BOUNDARY_TOL >= target:
                self._finish_segment(self.env.now)
                continue
            if rate <= 0.0:
                self._timer = None  # starved; watcher re-arms on recovery
                return
            self._timer = self.env.schedule_callback(
                (target - delivered) / rate, self._on_timer
            )
            return

    def _on_timer(self) -> None:
        self._timer = None
        self._arm_next()

    def _on_rate_change(self, _now: float, _rate: float) -> None:
        if self.finished:
            return
        if self._timer is not None:
            if not self._timer.processed:
                self._timer.cancel()
            self._timer = None
        self._arm_next()

    def _on_flow_done(self, ev) -> None:
        if not ev.ok:  # pragma: no cover - clean path never faults
            return
        if self._timer is not None and not self._timer.processed:
            self._timer.cancel()
        self._timer = None
        while self._done < len(self.pending):
            self._finish_segment(self.env.now)
        self.finished = True

    def _finish_segment(self, t_end: float) -> None:
        rank = self.pending[self._done]
        self._complete_member(rank, self._done, self._seg_start, t_end)
        self._done += 1
        self._seg_start = t_end

    # -- lane mode (writers_per_target > 1) --------------------------------
    def _start_lane(self, k: int) -> None:
        rank = self.pending[k]
        self._lane_start[k] = self.env.now
        ev = self.fs.fabric.start_flow(
            self.machine.node_of(rank), self.ost, self.nbytes,
            tenant=self.tenant,
        )
        ev.add_callback(lambda _ev, _k=k: self._on_lane_done(_k))

    def _on_lane_done(self, k: int) -> None:
        rank = self.pending[k]
        self._complete_member(rank, k, self._lane_start.pop(k), self.env.now)
        self._done += 1
        if self._next_lane < len(self.pending):
            nxt = self._next_lane
            self._next_lane += 1
            self._start_lane(nxt)
        elif self._done == len(self.pending):
            self.finished = True

    # -- member completion -------------------------------------------------
    def _complete_member(
        self, rank: int, idx: int, t_start: float, t_end: float
    ) -> None:
        offset = idx * self.nbytes
        node = self.machine.node_of(rank)
        self.fs.record_aggregated_write(
            self.f,
            node,
            offset,
            self.nbytes,
            t_start,
            t_end,
            writer=rank,
            blocks=self.app.data_blocks(rank, offset),
        )
        if self.traced:
            tr = self.tracer
            wpid, wtid = f"node/{node}", f"rank {rank}"
            t0 = self.t_open
            tr.begin("wait", cat="writer", pid=wpid, tid=wtid, ts=t0)
            tr.end(
                "wait", cat="writer", pid=wpid, tid=wtid, ts=t0 + self.hop,
                args={"target_group": self.g, "adaptive": False},
            )
            if self.build:
                tr.begin(
                    "index", cat="writer", pid=wpid, tid=wtid,
                    ts=t0 + self.hop,
                )
                tr.end(
                    "index", cat="writer", pid=wpid, tid=wtid,
                    ts=t0 + self.hop + self.build,
                )
            tr.begin(
                "write", cat="writer", pid=wpid, tid=wtid, ts=t_start,
                args={"nbytes": float(self.nbytes), "target_group": self.g,
                      "offset": float(offset), "adaptive": False},
            )
            tr.end("write", cat="writer", pid=wpid, tid=wtid, ts=t_end)
        self.timings[rank] = WriterTiming(
            rank=rank,
            start=t_start,
            end=t_end,
            nbytes=self.nbytes,
            target_group=self.g,
            adaptive=False,
        )
        self.notify(rank, ("done", t_start, t_end, offset))


class AdaptiveTransport(Transport):
    """The adaptive IO method.

    Parameters
    ----------
    n_osts_used:
        Storage targets (= groups = sub-files).  Defaults to
        ``min(pool size, n_ranks)``.  The paper's Jaguar evaluation
        uses 512 "to simplify the discussion of ratios" and reports no
        penalty at the full 672.
    steering:
        When False the coordinator never reassigns work — groups
        serialize their writers onto their own OST and nothing else
        (the "serialization without adaptation" ablation).
    writers_per_target:
        Simultaneous writers an SC keeps active on its OST (the paper
        implements 1 and notes 2-3 as a possible generalization).
    index_build_time:
        CPU seconds a writer spends building its local index.
    batched:
        When True (the default) the clean-path protocol runs one
        *cohort* process per sub-coordinator instead of one process
        per writer, folds the per-write control messages into
        same-instant batches (:class:`~repro.core.messages.CoordBatch`)
        and rides one aggregate fabric flow per group — simulator cost
        scales with groups and OSTs rather than writers and writes.
        ``batched=False`` keeps one process and one message per writer
        (the unbatched reference); both modes share
        :class:`_GroupStream` timing and produce identical results,
        which ``tests/test_adaptive_batched.py`` asserts.  Fault-plan
        runs always use the per-rank fault protocol regardless.
    """

    name = "adaptive"

    def __init__(
        self,
        n_osts_used: Optional[int] = None,
        steering: bool = True,
        writers_per_target: int = 1,
        index_build_time: float = 2.0e-4,
        batched: bool = True,
    ):
        if writers_per_target < 1:
            raise ValueError("writers_per_target must be >= 1")
        if index_build_time < 0:
            raise ValueError("index_build_time must be >= 0")
        self.n_osts_used = n_osts_used
        self.steering = steering
        self.writers_per_target = writers_per_target
        self.index_build_time = index_build_time
        self.batched = batched

    def _make_group_map(self, n_ranks: int, n_groups: int):
        """Writer partition; subclasses may weight it (history-aware)."""
        return GroupMap(n_ranks, n_groups)

    def _steer_target_ok(self, target: int) -> bool:
        """May the coordinator steer writes onto this freed target?

        Always yes for the vanilla method (the paper's behaviour: a
        freed target is a fast target, because under uniform quotas
        slow groups finish last).  The history-aware subclass vetoes
        targets it believes are slow — with weighted quotas those can
        free up *early*, and blindly refilling them recreates the very
        tail the quotas avoided.
        """
        return True

    # -- the run ----------------------------------------------------------
    def launch(
        self,
        machine: "Machine",
        app: "AppKernel",
        output_name: str = "output",
    ) -> TransportRun:
        if machine.faults is not None:
            return self._launch_faulted(machine, app, output_name)
        env = machine.env
        fs = machine.fs
        self._watch_fabric(machine)
        n_ranks = machine.n_ranks
        tenant = getattr(machine, "tenant", -1)
        n_groups = self.n_osts_used or min(machine.n_osts, n_ranks)
        if not 1 <= n_groups <= machine.n_osts:
            raise ValueError(
                f"n_osts_used {n_groups} out of range for pool of "
                f"{machine.n_osts}"
            )
        n_groups = min(n_groups, n_ranks)
        groups = self._make_group_map(n_ranks, n_groups)
        comm = SimComm(env, n_ranks, latency=machine.spec.latency)
        nbytes = app.per_process_bytes
        index_nbytes = float(
            sum(e.serialized_bytes for e in app.index_entries(0, 0.0))
        )
        # Control-plane flight times, shared by both modes so batched
        # bookkeeping reproduces the reference's arrival arithmetic
        # bit-for-bit: `hop` is one 64-byte control message, `idx_hop`
        # an index body (which can be *shorter* than a control hop).
        hop = machine.spec.latency.point_to_point(64.0)
        idx_hop = machine.spec.latency.point_to_point(index_nbytes)
        build = self.index_build_time

        tracer = env.tracer
        traced = tracer is not None and tracer.enabled
        sc_rank = [groups.sub_coordinator_of(g) for g in range(n_groups)]
        coord = groups.coordinator
        group_of = [groups.group_of(r) for r in range(n_ranks)]
        files: Dict[int, object] = {}  # group -> SimFile
        timings: List[Optional[WriterTiming]] = [None] * n_ranks
        stats = {"adaptive_writes": 0, "busy_bounces": 0}
        phase: Dict[str, float] = {}
        global_index = GlobalIndex()
        global_index_path = f"/{output_name}.bp.dir/index.bp"
        # Reference mode parks one writer process per rank on its
        # member event; the batched mode has no per-rank processes.
        member_ev = (
            None if self.batched else [env.event() for _ in range(n_ranks)]
        )

        # -- shared trace/steered-write helpers ----------------------------
        def _emit_plan_instants(g: int, members) -> None:
            """The group's write plan, announced at files-ready (T0)."""
            if not traced:
                return
            for k, w in enumerate(members):
                tracer.instant(
                    "WRITE_START", cat="steer", pid="adaptive",
                    tid=f"sc {g}",
                    args={"writer": w, "target_group": g,
                          "offset": float(k * nbytes)},
                )

        def _emit_steal_instant(g, w, target, offset) -> None:
            if traced:
                tracer.instant(
                    "WRITE_START", cat="steer", pid="adaptive",
                    tid=f"sc {g}",
                    args={"writer": w, "target_group": target,
                          "offset": float(offset), "adaptive": True},
                )

        def _emit_busy_instant(g, target) -> None:
            if traced:
                tracer.instant(
                    "WRITERS_BUSY", cat="steer", pid="adaptive",
                    tid=f"sc {g}", args={"target_group": target},
                )

        def _steered_write(rank: int, g: int, target: int, offset: float):
            """Index build + data movement of one steered write.

            Entered at the steal signal's arrival (t_steal + hop);
            yields through the index build and the real per-writer
            ``fs.write``, then returns the WriteComplete to route.
            Both modes run steered writes through here, so their
            trace spans, timing and fabric flows are identical.
            """
            node = machine.node_of(rank)
            wpid, wtid = f"node/{node}", f"rank {rank}"
            t_sig = env.now
            if build:
                yield env.timeout(build)
            if traced:
                tracer.begin(
                    "wait", cat="writer", pid=wpid, tid=wtid,
                    ts=phase["open_end"],
                )
                tracer.end(
                    "wait", cat="writer", pid=wpid, tid=wtid, ts=t_sig,
                    args={"target_group": target, "adaptive": True},
                )
                if build:
                    tracer.begin(
                        "index", cat="writer", pid=wpid, tid=wtid, ts=t_sig
                    )
                    tracer.end("index", cat="writer", pid=wpid, tid=wtid)
            start = env.now
            if traced:
                tracer.begin(
                    "write", cat="writer", pid=wpid, tid=wtid,
                    args={"nbytes": float(nbytes), "target_group": target,
                          "offset": float(offset), "adaptive": True},
                )
            yield from fs.write(
                files[target],
                node=node,
                offset=offset,
                nbytes=nbytes,
                writer=rank,
                blocks=app.data_blocks(rank, offset),
                tenant=tenant,
            )
            end = env.now
            if traced:
                tracer.end("write", cat="writer", pid=wpid, tid=wtid)
            timings[rank] = WriterTiming(
                rank=rank,
                start=start,
                end=end,
                nbytes=nbytes,
                target_group=target,
                adaptive=True,
            )
            wc = WriteComplete(
                source_rank=rank,
                source_group=g,
                target_group=target,
                nbytes=nbytes,
                index_nbytes=index_nbytes,
                adaptive=True,
            )
            comm.send(rank, sc_rank[target], wc, tag=TAG_SC)
            entries = tuple(app.index_entries(rank, offset))
            comm.send(
                rank,
                sc_rank[target],
                IndexBody(rank, target, entries),
                tag=TAG_SC,
                nbytes=index_nbytes,
            )
            return wc

        # ---------------- Writer role (Algorithm 1, reference mode) -------
        # One process per rank, one pre-signal message per rank: the
        # per-writer cost the batched mode removes.  Data movement and
        # timing live in _GroupStream for both modes; the writer's job
        # here is purely the protocol's per-rank message traffic.
        def writer_proc(rank: int, files_ready):
            yield files_ready
            g = group_of[rank]
            # The pre-signal: the SC really messages each member its
            # slot in the group's write plan.
            yield comm.recv(rank, tag=TAG_WRITER)
            outcome = yield member_ev[rank]
            if outcome[0] == "done":
                _kind, _t_start, _t_end, offset = outcome
                wc = WriteComplete(
                    source_rank=rank,
                    source_group=g,
                    target_group=g,
                    nbytes=nbytes,
                    index_nbytes=index_nbytes,
                )
                comm.send(rank, sc_rank[g], wc, tag=TAG_SC)
                entries = tuple(app.index_entries(rank, offset))
                comm.send(
                    rank,
                    sc_rank[g],
                    IndexBody(rank, g, entries),
                    tag=TAG_SC,
                    nbytes=index_nbytes,
                )
            else:  # stolen: the real steal signal is in flight to us
                msg = yield comm.recv(rank, tag=TAG_WRITER)
                ws: WriteStart = msg.payload
                wc = yield from _steered_write(
                    rank, g, ws.target_group, ws.offset
                )
                comm.send(rank, sc_rank[g], wc, tag=TAG_SC)

        # -- shared SC prologue: create my sub-file, rendezvous ------------
        def _sc_open(g: int, files_ready, all_created):
            path = f"/{output_name}.bp.dir/{g:04d}.bp"
            ost = fs.allocate_osts(1)[0]
            f = yield from fs.create(path, osts=[ost], stripe_size=1e15)
            files[g] = f
            all_created[0] += 1
            if all_created[0] == n_groups:
                phase["open_end"] = env.now
                files_ready.succeed()
            yield files_ready
            return path, ost, f

        def _sc_epilogue(g: int, me: int, f, path: str, local_index):
            """Merge/write the file index and ship it to C (both modes)."""
            entries = local_index.finalize()
            local_index.check_no_overlap()
            yield from fs.write(
                f,
                node=machine.node_of(me),
                offset=f.size,
                nbytes=local_index.serialized_bytes,
                writer=me,
                payload=("local_index", entries),
                tenant=tenant,
            )
            comm.send(
                me,
                coord,
                ScIndex(g, path, entries, local_index.serialized_bytes),
                tag=TAG_COORD,
                nbytes=local_index.serialized_bytes,
            )

        # ---------------- Sub-coordinator role (Algorithm 2, reference) ---
        def sc_proc(g: int, files_ready, all_created):
            me = sc_rank[g]
            path, ost, f = yield from _sc_open(g, files_ready, all_created)

            members = groups.ranks_in(g)
            local_index = LocalIndex(path)
            stream = _GroupStream(
                env, fs, f, ost, g,
                src_node=machine.node_of(me),
                members=members,
                nbytes=nbytes,
                t_open=env.now,
                hop=hop,
                build=build,
                machine=machine,
                app=app,
                timings=timings,
                notify=lambda r, o: member_ev[r].succeed(o),
                lanes=self.writers_per_target,
            )
            # Pre-signal the whole plan — one real message per member —
            # then start the stream once the first signal has landed
            # (hop) and its index is built (build).
            _emit_plan_instants(g, members)
            for k, w in enumerate(members):
                comm.send(me, w, WriteStart(g, k * nbytes), tag=TAG_WRITER)
            env.schedule_callback(hop + build, stream.begin)

            completions = 0
            missing_indices = 0
            done = False
            while not done or missing_indices > 0:
                msg = yield comm.recv(me, tag=TAG_SC)
                p = msg.payload
                if isinstance(p, WriteComplete):
                    if p.target_group == g:
                        # A write against my OST finished (mine or a
                        # steered foreign one): its index is inbound.
                        missing_indices += 1
                    if p.source_group == g:
                        completions += 1
                        if p.adaptive:
                            comm.send(me, coord, p, tag=TAG_COORD)
                        if completions == len(members):
                            comm.send(
                                me,
                                coord,
                                ScComplete(g, stream.final_offset),
                                tag=TAG_COORD,
                            )
                elif isinstance(p, IndexBody):
                    local_index.add(p.entries)
                    missing_indices -= 1
                elif isinstance(p, AdaptiveWriteStart):
                    if not stream.has_stealable:
                        stats["busy_bounces"] += 1
                        _emit_busy_instant(g, p.target_group)
                        comm.send(
                            me,
                            coord,
                            WritersBusy(g, p.target_group, p.offset),
                            tag=TAG_COORD,
                        )
                    else:
                        # Steal from the tail: the head writer is next
                        # in line for our own target anyway.
                        w = stream.truncate_tail(p.target_group, p.offset)
                        _emit_steal_instant(g, w, p.target_group, p.offset)
                        comm.send(
                            me,
                            w,
                            WriteStart(p.target_group, p.offset,
                                       adaptive=True),
                            tag=TAG_WRITER,
                        )
                elif isinstance(p, OverallWriteComplete):
                    done = True
                else:  # pragma: no cover - defensive
                    raise ProtocolError(f"SC {g}: unexpected {p!r}")

            yield from _sc_epilogue(g, me, f, path, local_index)

        # ---------------- Cohort role (Algorithm 2, batched) --------------
        # One process per *group*: it owns the stream, accounts local
        # member completions synchronously at their message-arrival
        # instants (scheduled +hop, float-identical to a real send),
        # and multiplexes everything else — real foreign messages via
        # a pump, steered-write completions, pokes — through one
        # mailbox.  Per-writer processes and per-write message rounds
        # disappear; coordinator-bound bursts coalesce into CoordBatch.
        def cohort_proc(g: int, files_ready, all_created):
            me = sc_rank[g]
            path, ost, f = yield from _sc_open(g, files_ready, all_created)

            members = groups.ranks_in(g)
            n_members = len(members)
            local_index = LocalIndex(path)
            mb = Mailbox(env)
            state = {
                "completions": 0,
                "missing_foreign": 0,
                "owc": False,
                # Watermark of the folded-away local WC/IndexBody
                # arrivals; the cohort may not finalize before it.
                "last_arrival": env.now,
            }
            out_coord: List[object] = []

            def flush_coord() -> None:
                if not out_coord:
                    return
                if len(out_coord) == 1:
                    comm.send(me, coord, out_coord[0], tag=TAG_COORD)
                else:
                    comm.send(
                        me, coord, CoordBatch(tuple(out_coord)),
                        tag=TAG_COORD,
                    )
                out_coord.clear()

            def maybe_poke() -> None:
                if (
                    state["owc"]
                    and state["completions"] == n_members
                    and state["missing_foreign"] == 0
                ):
                    mb.put(("poke",))

            def local_wc_arrived() -> None:
                # Runs +hop after a local boundary: the instant the
                # member's WriteComplete would reach a reference SC.
                state["completions"] += 1
                if state["completions"] == n_members:
                    out_coord.append(ScComplete(g, stream.final_offset))
                    flush_coord()
                maybe_poke()

            def steered_proc(rank: int, target: int, offset: float):
                yield env.timeout(hop)  # the steal signal's flight
                wc = yield from _steered_write(rank, g, target, offset)
                # Our own cohort learns at +hop — the WC hop the
                # reference writer sends home.
                env.schedule_callback(
                    hop, lambda: mb.put(("steered_done", wc))
                )

            def on_member(rank: int, outcome) -> None:
                if outcome[0] == "done":
                    _kind, _t_start, t_end, offset = outcome
                    state["last_arrival"] = max(
                        state["last_arrival"], t_end + hop, t_end + idx_hop
                    )
                    local_index.add(tuple(app.index_entries(rank, offset)))
                    env.schedule_callback(hop, local_wc_arrived)
                else:
                    _kind, target, offset = outcome
                    env.process(
                        steered_proc(rank, target, offset),
                        name=f"adaptive.steer.{rank}",
                    )

            stream = _GroupStream(
                env, fs, f, ost, g,
                src_node=machine.node_of(me),
                members=members,
                nbytes=nbytes,
                t_open=env.now,
                hop=hop,
                build=build,
                machine=machine,
                app=app,
                timings=timings,
                notify=on_member,
                lanes=self.writers_per_target,
            )
            _emit_plan_instants(g, members)
            env.schedule_callback(hop + build, stream.begin)

            def pump():
                while True:
                    msg = yield comm.recv(me, tag=TAG_SC)
                    mb.put(("msg", msg.payload))

            pump_p = env.process(pump(), name=f"adaptive.pump.{g}")

            while not (
                state["owc"]
                and state["completions"] == n_members
                and state["missing_foreign"] == 0
            ):
                item = yield mb.get()
                kind = item[0]
                if kind == "msg":
                    p = item[1]
                    if isinstance(p, WriteComplete):
                        # A foreign steered write against my OST; its
                        # index body is inbound.
                        state["missing_foreign"] += 1
                    elif isinstance(p, IndexBody):
                        local_index.add(p.entries)
                        state["missing_foreign"] -= 1
                    elif isinstance(p, AdaptiveWriteStart):
                        if not stream.has_stealable:
                            stats["busy_bounces"] += 1
                            _emit_busy_instant(g, p.target_group)
                            out_coord.append(
                                WritersBusy(g, p.target_group, p.offset)
                            )
                            flush_coord()
                        else:
                            w = stream.truncate_tail(
                                p.target_group, p.offset
                            )
                            _emit_steal_instant(
                                g, w, p.target_group, p.offset
                            )
                    elif isinstance(p, OverallWriteComplete):
                        state["owc"] = True
                    else:  # pragma: no cover - defensive
                        raise ProtocolError(f"cohort {g}: unexpected {p!r}")
                elif kind == "steered_done":
                    # A stolen member's WC arrived home: relay it (and,
                    # if it completes the group, the ScComplete it
                    # unlocks) in one coalesced coordinator message.
                    wc = item[1]
                    state["completions"] += 1
                    out_coord.append(wc)
                    if state["completions"] == n_members:
                        out_coord.append(
                            ScComplete(g, stream.final_offset)
                        )
                    flush_coord()
                # "poke" items wake the loop; the condition re-checks.

            pump_p.kill("cohort finished")
            if env.now < state["last_arrival"]:
                yield env.timeout(state["last_arrival"] - env.now)
            yield from _sc_epilogue(g, me, f, path, local_index)

        # ---------------- Coordinator role (Algorithm 3) -------------------
        def coord_proc(files_ready):
            yield files_ready
            state = {g: _WRITING for g in range(n_groups)}
            cursor: Dict[int, float] = {}
            in_flight: Dict[int, bool] = {}
            outstanding = 0
            rr = [0]  # round-robin cursor over writing SCs

            def next_writing_sc(exclude: int) -> Optional[int]:
                for step in range(n_groups):
                    g = (rr[0] + step) % n_groups
                    if g != exclude and state[g] == _WRITING:
                        rr[0] = (g + 1) % n_groups
                        return g
                return None

            def try_schedule(target: int) -> None:
                nonlocal outstanding
                if not self.steering:
                    return
                if in_flight.get(target):
                    return
                if not self._steer_target_ok(target):
                    return
                g = next_writing_sc(exclude=target)
                if g is None:
                    return
                if traced:
                    target_file = files.get(target)
                    tracer.instant(
                        "ADAPTIVE_WRITE_START", cat="steer",
                        pid="adaptive", tid="coordinator",
                        args={
                            "target_group": target,
                            "target_ost": (
                                int(target_file.layout.osts[0])
                                if target_file is not None else -1
                            ),
                            "steer_from_group": g,
                            "offset": float(cursor[target]),
                        },
                    )
                comm.send(
                    coord,
                    sc_rank[g],
                    AdaptiveWriteStart(target, cursor[target]),
                    tag=TAG_SC,
                )
                in_flight[target] = True
                outstanding += 1

            def finished() -> bool:
                return (
                    all(s == _COMPLETE for s in state.values())
                    and outstanding == 0
                )

            def dispatch(p) -> None:
                nonlocal outstanding
                if isinstance(p, WriteComplete):
                    if not p.adaptive:  # pragma: no cover - defensive
                        raise ProtocolError(
                            "C received non-adaptive WriteComplete"
                        )
                    stats["adaptive_writes"] += 1
                    outstanding -= 1
                    in_flight[p.target_group] = False
                    cursor[p.target_group] += p.nbytes
                    try_schedule(p.target_group)
                elif isinstance(p, ScComplete):
                    state[p.source_group] = _COMPLETE
                    cursor[p.source_group] = p.final_offset
                    if traced:
                        tracer.instant(
                            "SC_COMPLETE", cat="steer",
                            pid="adaptive", tid="coordinator",
                            args={"group": p.source_group,
                                  "final_offset": float(p.final_offset)},
                        )
                    try_schedule(p.source_group)
                elif isinstance(p, WritersBusy):
                    # Guard a protocol race: the offer may have crossed
                    # the SC's own ScComplete in flight — never
                    # downgrade a complete SC.
                    if state[p.source_group] == _WRITING:
                        state[p.source_group] = _BUSY
                    outstanding -= 1
                    in_flight[p.target_group] = False
                    try_schedule(p.target_group)
                else:  # pragma: no cover - defensive
                    raise ProtocolError(f"C: unexpected {p!r}")

            while not finished():
                msg = yield comm.recv(coord, tag=TAG_COORD)
                p = msg.payload
                if isinstance(p, CoordBatch):
                    # Coalesced same-instant burst from a cohort: the
                    # payloads run through dispatch in send order, so
                    # steering decisions match the loose-message mode.
                    for q in p.payloads:
                        dispatch(q)
                else:
                    dispatch(p)

            for g in range(n_groups):
                comm.send(
                    coord, sc_rank[g], OverallWriteComplete(), tag=TAG_SC
                )
            # Gather index pieces, merge into the global index, write
            # the global index file.
            for _ in range(n_groups):
                msg = yield comm.recv(coord, tag=TAG_COORD)
                p = msg.payload
                if not isinstance(p, ScIndex):  # pragma: no cover
                    raise ProtocolError(f"C: expected ScIndex, got {p!r}")
                global_index.add_file(p.file_path, p.entries)
            gi_file = yield from fs.create(
                global_index_path, osts=[fs.allocate_osts(1)[0]]
            )
            yield from fs.write(
                gi_file,
                node=machine.node_of(coord),
                offset=0,
                nbytes=global_index.serialized_bytes,
                writer=coord,
                payload=("global_index", global_index),
                tenant=tenant,
            )
            files[-1] = gi_file
            phase["write_end"] = env.now

        # ---------------- Orchestration ------------------------------------
        def main():
            t0 = env.now
            files_ready = env.event()
            all_created = [0]
            procs = []
            if self.batched:
                for g in range(n_groups):
                    procs.append(
                        env.process(
                            cohort_proc(g, files_ready, all_created),
                            name=f"adaptive.sc.{g}",
                        )
                    )
            else:
                for g in range(n_groups):
                    procs.append(
                        env.process(
                            sc_proc(g, files_ready, all_created),
                            name=f"adaptive.sc.{g}",
                        )
                    )
                for r in range(n_ranks):
                    procs.append(
                        env.process(
                            writer_proc(r, files_ready),
                            name=f"adaptive.w.{r}",
                        )
                    )
            procs.append(
                env.process(coord_proc(files_ready), name="adaptive.coord")
            )
            yield env.all_of(procs)
            # Explicit flush of every file before close (paper's
            # measurement protocol), all in parallel.
            fstart = env.now
            flushes = [
                env.process(fs.flush(f), name="adaptive.flush")
                for f in files.values()
            ]
            yield env.all_of(flushes)
            phase["flush_end"] = env.now
            for f in files.values():
                yield from fs.close(f)
            phase["close_end"] = env.now
            phase["flush_start"] = fstart
            return t0

        done = env.process(main(), name="adaptive.main")

        def collect() -> OutputResult:
            t0 = done.value

            result = OutputResult(
                transport=self.name,
                n_writers=n_ranks,
                total_bytes=nbytes * n_ranks,
                open_time=phase["open_end"] - t0,
                write_time=phase["write_end"] - phase["open_end"],
                flush_time=phase["flush_end"] - phase["flush_start"],
                close_time=phase["close_end"] - phase["flush_end"],
                per_writer=[t for t in timings if t is not None],
                files=sorted(
                    f"/{output_name}.bp.dir/{g:04d}.bp"
                    for g in range(n_groups)
                )
                + [global_index_path],
                index=global_index,
                n_adaptive_writes=stats["adaptive_writes"],
                messages_sent=comm.messages_sent,
                coordinator_messages=comm.messages_by_rank.get(coord, 0),
                extra={
                    "n_groups": float(n_groups),
                    "busy_bounces": float(stats["busy_bounces"]),
                },
            )
            return self._finish(machine, result)

        return TransportRun(done=done, collect=collect)

    # -- the fault-hardened run --------------------------------------------
    def _launch_faulted(
        self,
        machine: "Machine",
        app: "AppKernel",
        output_name: str = "output",
    ) -> TransportRun:
        """Fault-tolerant variant of :meth:`launch` (``machine.faults`` set).

        Same protocol, hardened:

        * every data write carries a timeout; a timed-out writer backs
          off (capped exponential) and retries up to the policy budget
          before abandoning with ``WriteFailed``;
        * each group's sub-file is an *incarnation* ``(group, epoch)``.
          A failure against the current epoch makes the SC relocate to
          a fresh file on a healthy OST, bump the epoch, and re-signal
          everything it was hosting in one recovery burst (after a
          failure, minimizing time-at-risk beats pacing).  Messages
          about older epochs are stale: completions/failures from
          ranks nobody is re-hosting get a recovery signal, the rest
          are dropped;
        * the coordinator poisons steering targets that report
          failures, tracks SC liveness via heartbeats, and adopts a
          silent SC's group on its own rank under
          ``TAG_ADOPTED_BASE + group``;
        * the run is bounded by ``policy.run_timeout``.  However it
          ends, per-rank durability is accounted from the landing sets
          of the *current* incarnations; an unclean run raises
          :class:`~repro.errors.TransportError` carrying
          ``bytes_durable`` / ``bytes_lost`` and the partial result
          instead of hanging or silently under-reporting.
        """
        env = machine.env
        fs = machine.fs
        self._watch_fabric(machine)
        faults = machine.faults
        policy = faults.policy
        n_ranks = machine.n_ranks
        tenant = getattr(machine, "tenant", -1)
        n_groups = self.n_osts_used or min(machine.n_osts, n_ranks)
        if not 1 <= n_groups <= machine.n_osts:
            raise ValueError(
                f"n_osts_used {n_groups} out of range for pool of "
                f"{machine.n_osts}"
            )
        n_groups = min(n_groups, n_ranks)
        groups = self._make_group_map(n_ranks, n_groups)
        comm = SimComm(env, n_ranks, latency=machine.spec.latency)
        comm.faults = faults
        nbytes = app.per_process_bytes
        index_nbytes = float(
            sum(e.serialized_bytes for e in app.index_entries(0, 0.0))
        )

        tracer = env.tracer
        traced = tracer is not None and tracer.enabled
        # sc_rank/sc_tag are mutable: adoption redirects a group's SC
        # endpoint, and writers resolve the address at send time.
        sc_rank = [groups.sub_coordinator_of(g) for g in range(n_groups)]
        sc_tag = [TAG_SC] * n_groups
        coord = groups.coordinator
        group_of = [groups.group_of(r) for r in range(n_ranks)]

        files: Dict[int, object] = {}  # group -> current incarnation
        files_at: Dict[tuple, object] = {}  # (group, epoch) -> SimFile
        paths_at: Dict[tuple, str] = {}
        epoch_of = [0] * n_groups
        timings: List[Optional[WriterTiming]] = [None] * n_ranks
        stats = {
            "adaptive_writes": 0,
            "busy_bounces": 0,
            "retries": 0,
            "aborts": 0,
            "relocations": 0,
            "adoptions": 0,
            "verify_failures": 0,
        }
        phase: Dict[str, float] = {}
        global_index = GlobalIndex()
        global_index_path = f"/{output_name}.bp.dir/index.bp"

        # Landing sets of the *current* incarnation of every group —
        # the ground truth for durability accounting after the run.
        done_sets: Dict[int, set] = {g: set() for g in range(n_groups)}
        flush_failures: List[str] = []
        index_failures: List[int] = []
        run_flags = {"timed_out": False, "stop": False}

        files_ready = env.event()
        all_created = [0]

        def alive(ranks):
            return [r for r in ranks if r not in faults.crashed_ranks]

        # ---------------- Writer role (hardened Algorithm 1) --------------
        def writer_proc(rank: int, files_ready):
            yield files_ready
            g = group_of[rank]
            node = machine.node_of(rank)
            wpid, wtid = f"node/{node}", f"rank {rank}"
            built_index = False
            while True:
                if traced:
                    tracer.begin("wait", cat="writer", pid=wpid, tid=wtid)
                msg = yield comm.recv(rank, tag=TAG_WRITER)
                p = msg.payload
                if isinstance(p, WriterRelease):
                    if traced:
                        tracer.end("wait", cat="writer", pid=wpid, tid=wtid,
                                   args={"released": True})
                    return
                ws: WriteStart = p
                if traced:
                    tracer.end("wait", cat="writer", pid=wpid, tid=wtid,
                               args={"target_group": ws.target_group,
                                     "adaptive": ws.adaptive,
                                     "epoch": ws.epoch})
                if self.index_build_time and not built_index:
                    built_index = True
                    if traced:
                        tracer.begin("index", cat="writer", pid=wpid,
                                     tid=wtid)
                    yield env.timeout(self.index_build_time)
                    if traced:
                        tracer.end("index", cat="writer", pid=wpid, tid=wtid)
                start = env.now
                attempt = 0
                failure = None
                data_blocks = app.data_blocks(rank, ws.offset)
                verify_failed_once = False
                while True:
                    f = files_at[(ws.target_group, ws.epoch)]
                    if traced:
                        tracer.begin(
                            "write", cat="writer", pid=wpid, tid=wtid,
                            args={"nbytes": float(nbytes),
                                  "target_group": ws.target_group,
                                  "offset": float(ws.offset),
                                  "adaptive": ws.adaptive,
                                  "epoch": ws.epoch,
                                  "attempt": attempt},
                        )
                    try:
                        yield from fs.write(
                            f,
                            node=node,
                            offset=ws.offset,
                            nbytes=nbytes,
                            writer=rank,
                            timeout=policy.write_timeout,
                            blocks=data_blocks,
                            tenant=tenant,
                        )
                    except OstFailedError as exc:
                        if traced:
                            tracer.end("write", cat="writer", pid=wpid,
                                       tid=wtid,
                                       args={"failed": "ost_failed"})
                        # Fail-stop target: retrying the same incarnation
                        # cannot succeed.
                        failure = f"ost failed: {exc}"
                        break
                    except WriteTimeout:
                        if traced:
                            tracer.end("write", cat="writer", pid=wpid,
                                       tid=wtid, args={"failed": "timeout"})
                        attempt += 1
                        if attempt > policy.max_retries:
                            failure = (
                                f"timed out {attempt}x "
                                f"(budget {policy.max_retries} retries)"
                            )
                            break
                        stats["retries"] += 1
                        backoff = policy.backoff(attempt)
                        if traced:
                            tracer.instant(
                                "write.retry", cat="fault", pid=wpid,
                                tid=wtid,
                                args={"target_group": ws.target_group,
                                      "epoch": ws.epoch,
                                      "attempt": attempt,
                                      "backoff": backoff},
                            )
                        yield env.timeout(backoff)
                    else:
                        # Write–verify–rewrite: read the blocks back
                        # against our own checksums before declaring
                        # victory.  A mismatch burns a retry from the
                        # same budget — persistent corruption on one
                        # target must eventually poison it (the
                        # WriteFailed path below), not spin forever.
                        if policy.read_back_verify and not verify_stored(
                            f, data_blocks
                        ):
                            if traced:
                                tracer.end("write", cat="writer", pid=wpid,
                                           tid=wtid,
                                           args={"failed": "verify"})
                            attempt += 1
                            if attempt > policy.max_retries:
                                failure = (
                                    f"read-back verify failed {attempt}x "
                                    f"(budget {policy.max_retries} retries)"
                                )
                                break
                            stats["verify_failures"] += 1
                            verify_failed_once = True
                            backoff = policy.backoff(attempt)
                            if traced:
                                tracer.instant(
                                    "write.verify_fail", cat="integrity",
                                    pid=wpid, tid=wtid,
                                    args={"target_group": ws.target_group,
                                          "epoch": ws.epoch,
                                          "offset": float(ws.offset),
                                          "attempt": attempt,
                                          "backoff": backoff},
                                )
                            yield env.timeout(backoff)
                            continue
                        if traced:
                            tracer.end("write", cat="writer", pid=wpid,
                                       tid=wtid)
                            if verify_failed_once:
                                tracer.instant(
                                    "block.repair", cat="integrity",
                                    pid=wpid, tid=wtid,
                                    args={"target_group": ws.target_group,
                                          "epoch": ws.epoch,
                                          "offset": float(ws.offset)},
                                )
                        break
                if failure is None:
                    timings[rank] = WriterTiming(
                        rank=rank,
                        start=start,
                        end=env.now,
                        nbytes=nbytes,
                        target_group=ws.target_group,
                        adaptive=ws.adaptive,
                    )
                    wc = WriteComplete(
                        source_rank=rank,
                        source_group=g,
                        target_group=ws.target_group,
                        nbytes=nbytes,
                        index_nbytes=index_nbytes,
                        adaptive=ws.adaptive,
                        epoch=ws.epoch,
                        recovery=ws.recovery,
                    )
                    comm.send(rank, sc_rank[g], wc, tag=sc_tag[g])
                    if ws.target_group != g:
                        comm.send(rank, sc_rank[ws.target_group], wc,
                                  tag=sc_tag[ws.target_group])
                    entries = tuple(app.index_entries(rank, ws.offset))
                    comm.send(
                        rank,
                        sc_rank[ws.target_group],
                        IndexBody(rank, ws.target_group, entries,
                                  epoch=ws.epoch),
                        tag=sc_tag[ws.target_group],
                        nbytes=index_nbytes,
                    )
                else:
                    stats["aborts"] += 1
                    if traced:
                        tracer.instant(
                            "write.abort", cat="fault", pid=wpid, tid=wtid,
                            args={"target_group": ws.target_group,
                                  "epoch": ws.epoch, "reason": failure},
                        )
                    wf = WriteFailed(
                        source_rank=rank,
                        source_group=g,
                        target_group=ws.target_group,
                        nbytes=nbytes,
                        epoch=ws.epoch,
                        adaptive=ws.adaptive,
                        recovery=ws.recovery,
                        reason=failure,
                    )
                    comm.send(rank, sc_rank[ws.target_group], wf,
                              tag=sc_tag[ws.target_group])
                    if ws.adaptive and not ws.recovery and ws.target_group != g:
                        # Copy to our own SC, which relays it to C for
                        # steering bookkeeping (writers never talk to C).
                        comm.send(rank, sc_rank[g], wf, tag=sc_tag[g])

        # ---------------- Sub-coordinator role (hardened) ------------------
        def sc_body(g: int, me: int, tag: int, epoch: int, path: str, f,
                    burst: bool):
            members = groups.ranks_in(g)
            member_set = set(members)
            waiting = deque()
            cursor = 0.0
            active_local = 0
            member_done: set = set()  # members durably landed (anywhere)
            steered_away: set = set()  # members handed to adaptive steers
            done_set = done_sets[g]  # ranks landed on CURRENT incarnation
            done_set.clear()
            foreign_pending: set = set()  # foreign ranks re-hosted here
            missing_indices = 0
            done = False
            local_index = LocalIndex(path)
            sc_complete_sent = False

            def signal(w: int, recovery: bool) -> None:
                nonlocal cursor
                if traced:
                    tracer.instant(
                        "WRITE_START", cat="steer", pid="adaptive",
                        tid=f"sc {g}",
                        args={"writer": w, "target_group": g,
                              "offset": float(cursor), "epoch": epoch,
                              "recovery": recovery},
                    )
                comm.send(
                    me, w,
                    WriteStart(g, cursor, adaptive=(w not in member_set),
                               epoch=epoch, recovery=recovery),
                    tag=TAG_WRITER,
                )
                cursor += nbytes

            def signal_local() -> None:
                nonlocal active_local
                while (
                    not done
                    and waiting
                    and active_local < self.writers_per_target
                ):
                    w = waiting.popleft()
                    if w in faults.crashed_ranks:
                        continue
                    signal(w, recovery=False)
                    active_local += 1

            def incarnation_complete() -> bool:
                return member_set.issubset(
                    member_done | faults.crashed_ranks
                ) and set(alive(foreign_pending)).issubset(done_set)

            def maybe_sc_complete() -> None:
                nonlocal sc_complete_sent
                if sc_complete_sent or not incarnation_complete():
                    return
                sc_complete_sent = True
                comm.send(me, coord, ScComplete(g, cursor, epoch=epoch),
                          tag=TAG_COORD)

            def orphaned(rank: int) -> bool:
                """Is a stale reporter without a current-epoch home?"""
                return (
                    rank not in member_set
                    and rank not in foreign_pending
                    and rank not in done_set
                    and rank not in faults.crashed_ranks
                )

            def relocate(reporter: int, reason: str):
                nonlocal epoch, path, f, cursor, active_local, \
                    missing_indices, local_index, sc_complete_sent
                stats["relocations"] += 1
                epoch += 1
                epoch_of[g] = epoch
                old_done = set(done_set)
                # Members whose bytes live on another group keep their
                # completion; everything landed *here* must be redone.
                member_done.difference_update(old_done)
                path = f"/{output_name}.bp.dir/{g:04d}.e{epoch}.bp"
                ost = fs.allocate_healthy_osts(1)[0]
                f = yield from fs.create(path, osts=[ost], stripe_size=1e15)
                files[g] = f
                files_at[(g, epoch)] = f
                paths_at[(g, epoch)] = path
                if traced:
                    tracer.instant(
                        "SC_RELOCATE", cat="fault", pid="adaptive",
                        tid=f"sc {g}",
                        args={"epoch": epoch, "ost": int(ost),
                              "reason": reason},
                    )
                foreign = (old_done - member_set) | foreign_pending
                if reporter not in member_set:
                    foreign.add(reporter)
                done_set.clear()
                foreign_pending.clear()
                foreign_pending.update(alive(foreign))
                local_index = LocalIndex(path)
                missing_indices = 0
                cursor = 0.0
                active_local = 0
                waiting.clear()
                sc_complete_sent = False
                resignal = set(alive(members)) - member_done - steered_away
                for w in sorted(resignal):
                    signal(w, recovery=True)
                for w in sorted(foreign_pending):
                    signal(w, recovery=True)
                comm.send(me, coord, ScRelocated(g, epoch), tag=TAG_COORD)
                maybe_sc_complete()

            if burst:
                for w in alive(members):
                    signal(w, recovery=True)
            else:
                waiting.extend(alive(members))
                signal_local()
            maybe_sc_complete()

            while not done or missing_indices > 0 \
                    or not incarnation_complete():
                msg = yield comm.recv(me, tag=tag)
                p = msg.payload
                if isinstance(p, WriteComplete):
                    if p.target_group == g:
                        if p.epoch == epoch:
                            done_set.add(p.source_rank)
                            missing_indices += 1
                            if p.source_rank in member_set:
                                member_done.add(p.source_rank)
                            if p.source_group == g and not p.recovery:
                                active_local -= 1
                                signal_local()
                        elif orphaned(p.source_rank):
                            # Landed on a torn-down incarnation and
                            # nobody is re-hosting it: take it in.
                            foreign_pending.add(p.source_rank)
                            signal(p.source_rank, recovery=True)
                    if p.source_group == g:
                        member_done.add(p.source_rank)
                        if p.adaptive and not p.recovery:
                            comm.send(me, coord, p, tag=TAG_COORD)
                    maybe_sc_complete()
                elif isinstance(p, WriteFailed):
                    if p.target_group == g and p.epoch == epoch:
                        try:
                            yield from relocate(p.source_rank, p.reason)
                        except StripeLimitExceeded:
                            # No healthy OST left to relocate onto: the
                            # group is unrecoverable.  Keep draining
                            # messages; the run-timeout backstop ends
                            # the run with loss accounting.
                            if traced:
                                tracer.instant(
                                    "SC_STRANDED", cat="fault",
                                    pid="adaptive", tid=f"sc {g}",
                                    args={"epoch": epoch},
                                )
                    elif p.target_group == g and orphaned(p.source_rank):
                        foreign_pending.add(p.source_rank)
                        signal(p.source_rank, recovery=True)
                    if (p.source_group == g and p.adaptive
                            and not p.recovery):
                        comm.send(me, coord, p, tag=TAG_COORD)
                elif isinstance(p, IndexBody):
                    if p.epoch == epoch:
                        local_index.add(p.entries)
                        missing_indices -= 1
                    # Stale bodies are dropped: the write is being
                    # redone against the current incarnation anyway.
                elif isinstance(p, AdaptiveWriteStart):
                    if not waiting:
                        stats["busy_bounces"] += 1
                        if traced:
                            tracer.instant(
                                "WRITERS_BUSY", cat="steer",
                                pid="adaptive", tid=f"sc {g}",
                                args={"target_group": p.target_group},
                            )
                        comm.send(
                            me,
                            coord,
                            WritersBusy(g, p.target_group, p.offset),
                            tag=TAG_COORD,
                        )
                    else:
                        w = waiting.pop()
                        steered_away.add(w)
                        if traced:
                            tracer.instant(
                                "WRITE_START", cat="steer",
                                pid="adaptive", tid=f"sc {g}",
                                args={"writer": w,
                                      "target_group": p.target_group,
                                      "offset": float(p.offset),
                                      "adaptive": True,
                                      "epoch": p.epoch},
                            )
                        comm.send(
                            me,
                            w,
                            WriteStart(p.target_group, p.offset,
                                       adaptive=True, epoch=p.epoch),
                            tag=TAG_WRITER,
                        )
                elif isinstance(p, OverallWriteComplete):
                    done = True
                else:  # pragma: no cover - defensive
                    raise ProtocolError(f"SC {g}: unexpected {p!r}")

            entries = local_index.finalize()
            local_index.check_no_overlap()
            try:
                yield from fs.write(
                    f,
                    node=machine.node_of(me),
                    offset=f.size,
                    nbytes=local_index.serialized_bytes,
                    writer=me,
                    payload=("local_index", entries),
                    timeout=policy.write_timeout,
                    tenant=tenant,
                )
            except (OstFailedError, WriteTimeout) as exc:
                index_failures.append(g)
                if traced:
                    tracer.instant(
                        "index.abort", cat="fault", pid="adaptive",
                        tid=f"sc {g}", args={"error": str(exc)},
                    )
            comm.send(
                me,
                coord,
                ScIndex(g, path, entries, local_index.serialized_bytes),
                tag=TAG_COORD,
                nbytes=local_index.serialized_bytes,
            )

        def sc_proc(g: int, files_ready, all_created):
            me = sc_rank[g]
            path = f"/{output_name}.bp.dir/{g:04d}.bp"
            ost = fs.allocate_healthy_osts(1)[0]
            f = yield from fs.create(path, osts=[ost], stripe_size=1e15)
            files[g] = f
            files_at[(g, 0)] = f
            paths_at[(g, 0)] = path
            all_created[0] += 1
            if all_created[0] == n_groups:
                phase["open_end"] = env.now
                files_ready.succeed()
            yield files_ready
            yield from sc_body(g, me, TAG_SC, 0, path, f, burst=False)

        def adopted_sc_proc(g: int):
            epoch = epoch_of[g]
            path = f"/{output_name}.bp.dir/{g:04d}.e{epoch}.bp"
            ost = fs.allocate_healthy_osts(1)[0]
            f = yield from fs.create(path, osts=[ost], stripe_size=1e15)
            files[g] = f
            files_at[(g, epoch)] = f
            paths_at[(g, epoch)] = path
            if (g, 0) not in files_at:
                # The dead SC never even created its file: fill its seat
                # in the open barrier so writers are not stuck forever.
                all_created[0] += 1
                if all_created[0] == n_groups:
                    phase["open_end"] = env.now
                    files_ready.succeed()
            if not files_ready.triggered:
                yield files_ready
            yield from sc_body(g, coord, TAG_ADOPTED_BASE + g, epoch, path,
                               f, burst=True)

        # ---------------- Coordinator role (hardened) ----------------------
        # State is hoisted so the SC-liveness monitor (same rank) shares it.
        state: Dict[int, str] = {}
        cursor: Dict[int, float] = {}
        in_flight: Dict[int, bool] = {}
        target_epoch: Dict[int, int] = {}
        poisoned: set = set()
        last_seen: Dict[int, float] = {}
        adopted: set = set()
        sc_index_received: set = set()
        adopted_procs: List = []
        coord_flags = {"outstanding": 0, "overall_sent": False}

        def coord_proc(files_ready):
            yield files_ready
            for g in range(n_groups):
                state[g] = _WRITING
                target_epoch[g] = 0
                last_seen[g] = env.now
            rr = [0]

            def next_writing_sc(exclude: int) -> Optional[int]:
                for step in range(n_groups):
                    g = (rr[0] + step) % n_groups
                    if g != exclude and state[g] == _WRITING:
                        rr[0] = (g + 1) % n_groups
                        return g
                return None

            def try_schedule(target: int) -> None:
                if not self.steering:
                    return
                if in_flight.get(target):
                    return
                if target in poisoned or state.get(target) != _COMPLETE:
                    return
                if not self._steer_target_ok(target):
                    return
                g = next_writing_sc(exclude=target)
                if g is None:
                    return
                if traced:
                    target_file = files.get(target)
                    tracer.instant(
                        "ADAPTIVE_WRITE_START", cat="steer",
                        pid="adaptive", tid="coordinator",
                        args={
                            "target_group": target,
                            "target_ost": (
                                int(target_file.layout.osts[0])
                                if target_file is not None else -1
                            ),
                            "steer_from_group": g,
                            "offset": float(cursor[target]),
                            "epoch": target_epoch.get(target, 0),
                        },
                    )
                comm.send(
                    coord,
                    sc_rank[g],
                    AdaptiveWriteStart(target, cursor[target],
                                       epoch=target_epoch.get(target, 0)),
                    tag=sc_tag[g],
                )
                in_flight[target] = True
                coord_flags["outstanding"] += 1

            def finished() -> bool:
                return (
                    all(s == _COMPLETE for s in state.values())
                    and coord_flags["outstanding"] == 0
                )

            while not finished():
                msg = yield comm.recv(coord, tag=TAG_COORD)
                p = msg.payload
                if isinstance(p, WriteComplete):
                    if not p.adaptive:  # pragma: no cover - defensive
                        raise ProtocolError(
                            "C received non-adaptive WriteComplete"
                        )
                    stats["adaptive_writes"] += 1
                    coord_flags["outstanding"] -= 1
                    in_flight[p.target_group] = False
                    if (p.target_group in cursor
                            and p.epoch == target_epoch.get(
                                p.target_group, 0)):
                        cursor[p.target_group] += p.nbytes
                    try_schedule(p.target_group)
                elif isinstance(p, WriteFailed):
                    coord_flags["outstanding"] -= 1
                    in_flight[p.target_group] = False
                    poisoned.add(p.target_group)
                    if traced:
                        tracer.instant(
                            "STEER_POISON", cat="fault", pid="adaptive",
                            tid="coordinator",
                            args={"target_group": p.target_group,
                                  "reason": p.reason},
                        )
                    # Never reschedule onto a target that just failed;
                    # its SC re-announces via ScRelocated + ScComplete.
                elif isinstance(p, ScComplete):
                    state[p.source_group] = _COMPLETE
                    cursor[p.source_group] = p.final_offset
                    target_epoch[p.source_group] = p.epoch
                    last_seen[p.source_group] = env.now
                    if traced:
                        tracer.instant(
                            "SC_COMPLETE", cat="steer",
                            pid="adaptive", tid="coordinator",
                            args={"group": p.source_group,
                                  "final_offset": float(p.final_offset),
                                  "epoch": p.epoch},
                        )
                    try_schedule(p.source_group)
                elif isinstance(p, ScRelocated):
                    state[p.source_group] = _WRITING
                    target_epoch[p.source_group] = p.epoch
                    poisoned.discard(p.source_group)
                    cursor.pop(p.source_group, None)
                    last_seen[p.source_group] = env.now
                    if traced:
                        tracer.instant(
                            "SC_RELOCATED", cat="fault", pid="adaptive",
                            tid="coordinator",
                            args={"group": p.source_group,
                                  "epoch": p.epoch},
                        )
                elif isinstance(p, Heartbeat):
                    last_seen[p.source_group] = env.now
                elif isinstance(p, WritersBusy):
                    if state[p.source_group] == _WRITING:
                        state[p.source_group] = _BUSY
                    coord_flags["outstanding"] -= 1
                    in_flight[p.target_group] = False
                    try_schedule(p.target_group)
                else:  # pragma: no cover - defensive
                    raise ProtocolError(f"C: unexpected {p!r}")

            coord_flags["overall_sent"] = True
            for g in range(n_groups):
                comm.send(coord, sc_rank[g], OverallWriteComplete(),
                          tag=sc_tag[g])
            # Gather index pieces.  The endgame tolerates protocol echo
            # (heartbeats, stale relays, late relocations): SCs finish
            # their incarnations autonomously and ScIndex is the only
            # message that advances the gather.
            while len(sc_index_received) < n_groups:
                msg = yield comm.recv(coord, tag=TAG_COORD)
                p = msg.payload
                if isinstance(p, ScIndex):
                    if p.source_group not in sc_index_received:
                        sc_index_received.add(p.source_group)
                        global_index.add_file(p.file_path, p.entries)
                elif isinstance(p, Heartbeat):
                    last_seen[p.source_group] = env.now
            try:
                gi_ost = fs.allocate_healthy_osts(1)[0]
            except StripeLimitExceeded:
                gi_ost = fs.allocate_osts(1)[0]
            gi_file = yield from fs.create(global_index_path, osts=[gi_ost])
            try:
                yield from fs.write(
                    gi_file,
                    node=machine.node_of(coord),
                    offset=0,
                    nbytes=global_index.serialized_bytes,
                    writer=coord,
                    payload=("global_index", global_index),
                    timeout=policy.write_timeout,
                    tenant=tenant,
                )
            except (OstFailedError, WriteTimeout):
                index_failures.append(-1)
            files[-1] = gi_file
            phase["write_end"] = env.now

        # ---------------- SC liveness: heartbeats + adoption ---------------
        def heartbeat_proc(g: int):
            me = sc_rank[g]  # the original rank; dies with it
            while not run_flags["stop"]:
                comm.send(me, coord, Heartbeat(g, me), tag=TAG_COORD)
                yield env.timeout(policy.heartbeat_interval)

        def adopt(g: int) -> None:
            stats["adoptions"] += 1
            adopted.add(g)
            dead_rank = sc_rank[g]
            epoch_of[g] += 1
            sc_rank[g] = coord
            sc_tag[g] = TAG_ADOPTED_BASE + g
            state[g] = _WRITING
            target_epoch[g] = epoch_of[g]
            poisoned.discard(g)
            cursor.pop(g, None)
            last_seen[g] = env.now
            if traced:
                tracer.instant(
                    "SC_ADOPT", cat="fault", pid="adaptive",
                    tid="coordinator",
                    args={"group": g, "epoch": epoch_of[g],
                          "dead_rank": dead_rank},
                )
            proc = env.process(adopted_sc_proc(g),
                               name=f"adaptive.sc.{g}.adopt")
            adopted_procs.append(proc)
            faults.register(coord, proc)
            if coord_flags["overall_sent"]:
                comm.send(coord, coord, OverallWriteComplete(),
                          tag=TAG_ADOPTED_BASE + g)

        def monitor_proc(files_ready):
            yield files_ready
            while not run_flags["stop"]:
                yield env.timeout(policy.heartbeat_interval)
                now = env.now
                for g in range(n_groups):
                    if g in adopted or g in sc_index_received:
                        continue
                    if now - last_seen.get(g, now) > policy.sc_timeout:
                        adopt(g)

        # ---------------- Orchestration ------------------------------------
        def main():
            t0 = env.now
            faults.arm()  # plan times are relative to output start
            sc_procs = []
            hb_procs = []
            writer_procs = []
            for g in range(n_groups):
                pr = env.process(sc_proc(g, files_ready, all_created),
                                 name=f"adaptive.sc.{g}")
                sc_procs.append(pr)
                faults.register(sc_rank[g], pr)
                hb = env.process(heartbeat_proc(g), name=f"adaptive.hb.{g}")
                hb_procs.append(hb)
                faults.register(sc_rank[g], hb)
            for r in range(n_ranks):
                pr = env.process(writer_proc(r, files_ready),
                                 name=f"adaptive.w.{r}")
                writer_procs.append(pr)
                faults.register(r, pr)
            cp = env.process(coord_proc(files_ready), name="adaptive.coord")
            faults.register(coord, cp)
            mon = env.process(monitor_proc(files_ready),
                              name="adaptive.monitor")
            faults.register(coord, mon)

            deadline = env.timeout(policy.run_timeout)

            def protocol_pending():
                return [p for p in sc_procs + [cp] + adopted_procs
                        if p.is_alive]

            pending = protocol_pending()
            while pending:
                settled = AllSettled(env, pending)
                yield env.any_of([settled, deadline])
                if deadline.processed and protocol_pending():
                    run_flags["timed_out"] = True
                    break
                pending = protocol_pending()  # adoption may have spawned

            run_flags["stop"] = True
            if run_flags["timed_out"]:
                for p in protocol_pending():
                    p.kill("run timeout backstop")
            # Heartbeat senders and the monitor park exclusively on
            # their own private timeouts; cancelling the waited event
            # removes the stale calendar entry instead of leaving a
            # wakeup to fire into a dead closure after the run.
            for p in hb_procs + [mon]:
                if p.is_alive:
                    p.kill("protocol finished", cancel_wait=True)
            phase.setdefault("write_end", env.now)

            # Release the writer service loops; bound the goodbye so a
            # lost release message cannot hang the run.
            for r in range(n_ranks):
                if writer_procs[r].is_alive:
                    comm.send(coord, r, WriterRelease(), tag=TAG_WRITER)
            lingering = [p for p in writer_procs if p.is_alive]
            if lingering:
                grace = env.timeout(max(1.0, 4 * policy.heartbeat_interval))
                yield env.any_of([AllSettled(env, lingering), grace])
                for p in lingering:
                    if p.is_alive:
                        p.kill("release grace expired")

            fstart = env.now

            def guarded_flush(f):
                try:
                    yield from fs.flush(f, timeout=policy.flush_timeout)
                except (OstFailedError, WriteTimeout) as exc:
                    flush_failures.append(f"{f.path}: {exc}")

            flushes = [
                env.process(guarded_flush(f), name="adaptive.flush")
                for f in files.values()
            ]
            if flushes:
                yield AllSettled(env, flushes)
            phase["flush_end"] = env.now
            for f in files.values():
                yield from fs.close(f)
            phase["close_end"] = env.now
            phase["flush_start"] = fstart
            return t0

        done = env.process(main(), name="adaptive.main")

        def collect() -> OutputResult:
            t0 = done.value

            durable_ranks: set = set()
            for g in range(n_groups):
                durable_ranks |= done_sets[g]
            total = nbytes * n_ranks
            bytes_durable = nbytes * len(durable_ranks)
            bytes_lost = total - bytes_durable

            open_end = phase.get("open_end", t0)
            write_end = phase.get("write_end", open_end)
            flush_start = phase.get("flush_start", write_end)
            flush_end = phase.get("flush_end", flush_start)
            close_end = phase.get("close_end", flush_end)
            # Corruption surviving in the *current* incarnations, after
            # all verify-rewrites.  Informational for adaptive (`ok` is
            # about durability; detection is the scrub's job),
            # load-bearing for the statics' error accounting.
            bytes_corrupt = 0.0
            for g in range(n_groups):
                f = files_at.get((g, epoch_of[g]))
                if f is None:
                    continue
                for blk in f.stored_blocks():
                    if blk.corrupt or blk.torn:
                        bytes_corrupt += blk.nbytes
            fault_extra = {
                "n_groups": float(n_groups),
                "busy_bounces": float(stats["busy_bounces"]),
                "fault_retries": float(stats["retries"]),
                "fault_aborts": float(stats["aborts"]),
                "sc_relocations": float(stats["relocations"]),
                "sc_adoptions": float(stats["adoptions"]),
                "verify_failures": float(stats["verify_failures"]),
                "bytes_durable": bytes_durable,
                "bytes_lost": bytes_lost,
                "bytes_corrupt": bytes_corrupt,
            }
            fault_extra.update(faults.summary())
            result = OutputResult(
                transport=self.name,
                n_writers=n_ranks,
                total_bytes=total,
                open_time=open_end - t0,
                write_time=write_end - open_end,
                flush_time=flush_end - flush_start,
                close_time=close_end - flush_end,
                per_writer=[t for t in timings if t is not None],
                files=sorted(
                    paths_at.get((g, epoch_of[g]),
                                 f"/{output_name}.bp.dir/{g:04d}.bp")
                    for g in range(n_groups)
                )
                + [global_index_path],
                index=global_index,
                n_adaptive_writes=stats["adaptive_writes"],
                messages_sent=comm.messages_sent,
                coordinator_messages=comm.messages_by_rank.get(coord, 0),
                extra=fault_extra,
            )
            ok = (
                not run_flags["timed_out"]
                and not flush_failures
                and not index_failures
                and len(durable_ranks) == n_ranks
            )
            if ok:
                return self._finish(machine, result)
            if traced:
                tracer.close_open_spans()
            reasons = []
            if run_flags["timed_out"]:
                reasons.append(f"run timeout ({policy.run_timeout:g}s) hit")
            if faults.crashed_ranks:
                reasons.append(
                    f"{len(faults.crashed_ranks)} rank(s) crashed"
                )
            if len(durable_ranks) < n_ranks:
                reasons.append(
                    f"{n_ranks - len(durable_ranks)} writer(s) not durable"
                )
            if flush_failures:
                reasons.append(f"{len(flush_failures)} flush failure(s)")
            if index_failures:
                reasons.append(
                    f"{len(index_failures)} index write failure(s)"
                )
            raise TransportError(
                "adaptive output did not complete cleanly: "
                + "; ".join(reasons),
                bytes_durable=bytes_durable,
                bytes_lost=bytes_lost,
                partial=result,
                bytes_corrupt=bytes_corrupt,
            )

        return TransportRun(done=done, collect=collect)
