"""The tuned ADIOS MPI-IO baseline transport.

This is the paper's comparison point (Section III-A): "The MPI-IO
transport method was developed as one of the first options offered by
ADIOS ... leading to excellent peak IO performance seen on Jaguar and
its Lustre file system.  Substantial performance advantages are
derived from limited asynchronicity, by buffering all output data on
compute nodes before writing it."

Concretely the tuned method writes one shared file:

* stripe count capped at 160 OSTs (the Lustre 1.6 per-file limit the
  paper identifies as the structural bottleneck);
* stripe size set to the per-process chunk size, so each rank's
  buffered, contiguous chunk lands on exactly one OST and ranks
  round-robin over the file's stripes — the stripe-aligned layout the
  ADIOS Jaguar tuning used (Lofstead et al., IPDPS'09);
* all ranks write simultaneously after a coordination step that
  computes offsets (modelled as a barrier + tree collective).

With 16 384 writers over 160 OSTs that is ~102 concurrent streams per
storage target — precisely the internal-interference regime of Fig. 1
— and the whole operation gates on the slowest OST, which is what
external interference exploits.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.core.index import GlobalIndex
from repro.core.transports.base import (
    OutputResult,
    StaticFaultHarness,
    Transport,
    TransportRun,
    WriterTiming,
)
from repro.mpi.comm import SimComm

if TYPE_CHECKING:  # pragma: no cover
    from repro.apps.base import AppKernel
    from repro.machines.base import Machine

__all__ = ["MpiIoTransport"]


class MpiIoTransport(Transport):
    """Buffered shared-file MPI-IO output (the ADIOS MPI method).

    Parameters
    ----------
    stripe_count:
        Stripes requested for the shared file; clamped to the file
        system's per-file limit (160 on Lustre 1.6) and the pool size.
    build_index:
        Assemble the BP-style index over the shared file (ADIOS does;
        raw MPI-IO wouldn't — on by default because the baseline *is*
        ADIOS).
    """

    name = "mpiio"

    def __init__(self, stripe_count: Optional[int] = None,
                 build_index: bool = True):
        self.stripe_count = stripe_count
        self.build_index = build_index

    def launch(
        self,
        machine: "Machine",
        app: "AppKernel",
        output_name: str = "output",
    ) -> TransportRun:
        env = machine.env
        fs = machine.fs
        self._watch_fabric(machine)
        n_ranks = machine.n_ranks
        stripe_count = min(
            self.stripe_count or fs.max_stripe_count,
            fs.max_stripe_count,
            machine.n_osts,
        )
        chunk = app.per_process_bytes
        path = f"/{output_name}.bp"
        comm = SimComm(env, n_ranks, latency=machine.spec.latency)
        timings: List[Optional[WriterTiming]] = [None] * n_ranks
        phase = {}
        harness = StaticFaultHarness(machine)

        def rank_proc(rank: int, file_ready):
            f = yield file_ready
            node = machine.node_of(rank)
            tr = env.tracer
            traced = tr is not None and tr.enabled
            wpid, wtid = f"node/{node}", f"rank {rank}"
            # Offset exchange: every rank learns its slot via the
            # collective the real method runs (sizes are gathered and
            # offsets scanned); modelled at tree-collective cost.
            if traced:
                tr.begin("wait", cat="writer", pid=wpid, tid=wtid)
            yield env.timeout(
                machine.spec.latency.tree_collective(16.0, n_ranks)
            )
            if traced:
                tr.end("wait", cat="writer", pid=wpid, tid=wtid)
            start = env.now
            if traced:
                tr.begin(
                    "write", cat="writer", pid=wpid, tid=wtid,
                    args={"nbytes": float(chunk),
                          "target_group": rank % stripe_count},
                )
            landed = yield from harness.guarded_write(
                fs,
                f,
                node=node,
                offset=rank * chunk,
                nbytes=chunk,
                writer=rank,
                pid=wpid,
                tid=wtid,
                blocks=app.data_blocks(rank, rank * chunk),
            )
            if traced:
                tr.end("write", cat="writer", pid=wpid, tid=wtid,
                       args=None if landed else {"failed": True})
            if not landed:
                return
            timings[rank] = WriterTiming(
                rank=rank,
                start=start,
                end=env.now,
                nbytes=chunk,
                target_group=rank % stripe_count,
            )

        def main():
            t0 = env.now
            file_ready = env.event()
            procs = [
                env.process(rank_proc(r, file_ready), name=f"mpiio.{r}")
                for r in range(n_ranks)
            ]
            harness.arm({r: p for r, p in enumerate(procs)})
            # Rank 0 creates the shared file; stripe-aligned layout.
            f = yield from fs.create(
                path, stripe_count=stripe_count, stripe_size=chunk
            )
            phase["open_end"] = env.now
            file_ready.succeed(f)
            yield from harness.join(procs)
            phase["write_end"] = env.now
            # Explicit flush before close (the paper's measurement
            # protocol for the Section IV comparisons).
            yield from harness.guarded_flush(fs, f)
            phase["flush_end"] = env.now
            yield from fs.close(f)
            phase["close_end"] = env.now
            return t0, f

        done = env.process(main(), name="mpiio.main")

        def collect() -> OutputResult:
            t0, f = done.value

            index = None
            if self.build_index:
                index = GlobalIndex()
                entries = []
                for rank in range(n_ranks):
                    if harness.active and timings[rank] is None:
                        continue  # the rank's chunk never landed
                    entries.extend(app.index_entries(rank, rank * chunk))
                index.add_file(path, entries)
                f.attach_local_index(entries)

            result = OutputResult(
                transport=self.name,
                n_writers=n_ranks,
                total_bytes=chunk * n_ranks,
                open_time=phase["open_end"] - t0,
                write_time=phase["write_end"] - phase["open_end"],
                flush_time=phase["flush_end"] - phase["write_end"],
                close_time=phase["close_end"] - phase["flush_end"],
                per_writer=[t for t in timings if t is not None],
                files=[path],
                index=index,
                messages_sent=comm.messages_sent,
                extra={"stripe_count": float(stripe_count)},
            )
            if harness.active:
                return harness.finalize(self, result)
            return self._finish(machine, result)

        return TransportRun(done=done, collect=collect)
