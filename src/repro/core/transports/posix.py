"""POSIX file-per-process transport — the IOR configuration.

Section II's interference measurements use IOR "configured ... where
each process writes data to a separate file and to some fixed OST
using POSIX-IO.  Writers are split evenly across the 512 OSTs."  This
transport reproduces that pattern: every rank creates its own
single-stripe file pinned to ``rank % n_osts_used``, then all ranks
write their buffers concurrently.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.core.index import GlobalIndex
from repro.core.transports.base import (
    OutputResult,
    StaticFaultHarness,
    Transport,
    TransportRun,
    WriterTiming,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.apps.base import AppKernel
    from repro.machines.base import Machine

__all__ = ["PosixTransport"]


class PosixTransport(Transport):
    """One file per process, one fixed OST per file.

    Parameters
    ----------
    n_osts_used:
        Storage targets the writers are split across (the paper uses
        512 of Jaguar's 672).  Defaults to the whole pool.
    include_flush:
        Whether the operation ends with an explicit flush to disk.
        Section II timings measure the write only; Section IV adds
        the flush.
    build_index:
        Also assemble a global index over the per-process files (off
        by default — plain IOR has no index).
    """

    name = "posix"

    def __init__(
        self,
        n_osts_used: Optional[int] = None,
        include_flush: bool = False,
        build_index: bool = False,
    ):
        self.n_osts_used = n_osts_used
        self.include_flush = include_flush
        self.build_index = build_index

    def launch(
        self,
        machine: "Machine",
        app: "AppKernel",
        output_name: str = "output",
    ) -> TransportRun:
        env = machine.env
        fs = machine.fs
        self._watch_fabric(machine)
        n_ranks = machine.n_ranks
        n_osts = self.n_osts_used or machine.n_osts
        if not 1 <= n_osts <= machine.n_osts:
            raise ValueError(
                f"n_osts_used {n_osts} out of range for pool of "
                f"{machine.n_osts}"
            )
        nbytes = app.per_process_bytes
        timings: List[Optional[WriterTiming]] = [None] * n_ranks
        files: List[str] = []
        fobjs = {}
        phase = {}
        harness = StaticFaultHarness(machine)

        created = [0]

        def rank_proc(rank: int, barrier_done):
            path = f"/{output_name}/rank{rank:06d}.dat"
            f = yield from fs.create(path, osts=[rank % n_osts])
            files.append(path)
            fobjs[rank] = f
            created[0] += 1
            if created[0] == n_ranks:
                phase["open_end"] = env.now
                barrier_done.succeed()
            # Every rank waits for all creates before writing (IOR's
            # inter-phase barrier), so open time never pollutes write
            # time.
            yield barrier_done
            start = env.now
            node = machine.node_of(rank)
            tr = env.tracer
            traced = tr is not None and tr.enabled
            if traced:
                tr.begin(
                    "write", cat="writer", pid=f"node/{node}",
                    tid=f"rank {rank}",
                    args={"nbytes": float(nbytes),
                          "target_group": rank % n_osts},
                )
            landed = yield from harness.guarded_write(
                fs,
                f,
                node=node,
                offset=0,
                nbytes=nbytes,
                writer=rank,
                pid=f"node/{node}",
                tid=f"rank {rank}",
                blocks=app.data_blocks(rank, 0.0),
            )
            if traced:
                tr.end("write", cat="writer", pid=f"node/{node}",
                       tid=f"rank {rank}",
                       args=None if landed else {"failed": True})
            if not landed:
                return f
            timings[rank] = WriterTiming(
                rank=rank,
                start=start,
                end=env.now,
                nbytes=nbytes,
                target_group=rank % n_osts,
            )
            return f

        def main():
            t0 = env.now
            barrier_done = env.event()
            procs = [
                env.process(rank_proc(r, barrier_done), name=f"posix.{r}")
                for r in range(n_ranks)
            ]
            harness.arm({r: p for r, p in enumerate(procs)})
            yield from harness.join(procs)
            phase["write_end"] = env.now
            flush_t = 0.0
            if self.include_flush:
                fstart = env.now
                for r in range(n_ranks):
                    if r in fobjs:
                        yield from harness.guarded_flush(fs, fobjs[r])
                flush_t = env.now - fstart
            cstart = env.now
            for r in range(n_ranks):
                if r in fobjs:
                    yield from fs.close(fobjs[r])
            phase["close"] = env.now - cstart
            phase["flush"] = flush_t
            return t0

        done = env.process(main(), name="posix.main")

        def collect() -> OutputResult:
            t0 = done.value

            index = None
            if self.build_index:
                index = GlobalIndex()
                for rank in range(n_ranks):
                    if harness.active and timings[rank] is None:
                        continue  # the rank's data never landed
                    entries = app.index_entries(rank, 0.0)
                    index.add_file(
                        f"/{output_name}/rank{rank:06d}.dat", entries
                    )
                    if rank in fobjs:
                        fobjs[rank].attach_local_index(entries)

            open_end = phase.get("open_end", phase["write_end"])
            result = OutputResult(
                transport=self.name,
                n_writers=n_ranks,
                total_bytes=nbytes * n_ranks,
                open_time=open_end - t0,
                write_time=phase["write_end"] - open_end,
                flush_time=phase["flush"],
                close_time=phase["close"],
                per_writer=[t for t in timings if t is not None],
                files=sorted(files),
                index=index,
            )
            if harness.active:
                return harness.finalize(self, result)
            return self._finish(machine, result)

        return TransportRun(done=done, collect=collect)
