"""IO transports: POSIX, MPI-IO baseline, Adaptive IO, Stagger."""

from repro.core.transports.base import OutputResult, Transport, WriterTiming
from repro.core.transports.posix import PosixTransport
from repro.core.transports.mpiio import MpiIoTransport
from repro.core.transports.adaptive import AdaptiveTransport
from repro.core.transports.stagger import StaggerTransport
from repro.core.transports.splitfiles import SplitFilesTransport
from repro.core.transports.history import (
    HistoryAwareAdaptiveTransport,
    PerformanceHistory,
)

__all__ = [
    "AdaptiveTransport",
    "HistoryAwareAdaptiveTransport",
    "MpiIoTransport",
    "OutputResult",
    "PerformanceHistory",
    "PosixTransport",
    "SplitFilesTransport",
    "StaggerTransport",
    "Transport",
    "WriterTiming",
]
