"""The ADIOS *stagger* method — prior work, kept as an ablation.

"Some results for the ADIOS stagger IO approach were reported at the
2009 Cray User's Group.  Stagger addressed internal interference and
exposed the magnitude of the transient external interference."

Stagger does two things adaptive IO inherits, and nothing more:

* file opens are staggered in time so the metadata server sees a
  trickle, not a thundering herd;
* each storage target serves its writers one at a time (static
  serialization).

Crucially there is **no coordinator and no steering**: a group stuck
behind a slow OST stays stuck, which is exactly the gap adaptive IO
closes — making this the natural ablation baseline.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.core.groups import GroupMap
from repro.core.index import GlobalIndex
from repro.core.transports.base import (
    OutputResult,
    Transport,
    TransportRun,
    WriterTiming,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.apps.base import AppKernel
    from repro.machines.base import Machine

__all__ = ["StaggerTransport"]


class StaggerTransport(Transport):
    """Staggered opens + per-target serialization, no adaptation.

    Parameters
    ----------
    n_osts_used:
        Storage targets (= groups = sub-files); defaults to
        ``min(pool size, n_ranks)``.
    open_stagger:
        Seconds between consecutive groups' file creates.
    build_index:
        Assemble the global index (on by default; stagger is an ADIOS
        method and writes BP files).
    """

    name = "stagger"

    def __init__(
        self,
        n_osts_used: Optional[int] = None,
        open_stagger: float = 2.0e-3,
        build_index: bool = True,
    ):
        if open_stagger < 0:
            raise ValueError("open_stagger must be >= 0")
        self.n_osts_used = n_osts_used
        self.open_stagger = open_stagger
        self.build_index = build_index

    def launch(
        self,
        machine: "Machine",
        app: "AppKernel",
        output_name: str = "output",
    ) -> TransportRun:
        env = machine.env
        fs = machine.fs
        self._watch_fabric(machine)
        n_ranks = machine.n_ranks
        tenant = getattr(machine, "tenant", -1)
        n_groups = self.n_osts_used or min(machine.n_osts, n_ranks)
        if not 1 <= n_groups <= machine.n_osts:
            raise ValueError(
                f"n_osts_used {n_groups} out of range for pool of "
                f"{machine.n_osts}"
            )
        n_groups = min(n_groups, n_ranks)
        groups = GroupMap(n_ranks, n_groups)
        nbytes = app.per_process_bytes
        timings: List[Optional[WriterTiming]] = [None] * n_ranks
        files: Dict[int, object] = {}
        phase: Dict[str, float] = {}

        def group_proc(g: int, files_ready, all_created):
            # Staggered create: group g opens open_stagger * g later.
            yield env.timeout(self.open_stagger * g)
            path = f"/{output_name}.bp.dir/{g:04d}.bp"
            ost = fs.allocate_osts(1)[0]
            f = yield from fs.create(path, osts=[ost], stripe_size=1e15)
            files[g] = f
            all_created[0] += 1
            if all_created[0] == n_groups:
                phase["open_end"] = env.now
                files_ready.succeed()
            yield files_ready
            # Static serialization: members write one at a time, in
            # rank order, each at the running offset.
            offset = 0.0
            tr = env.tracer
            traced = tr is not None and tr.enabled
            for rank in groups.ranks_in(g):
                start = env.now
                node = machine.node_of(rank)
                if traced:
                    tr.begin(
                        "write", cat="writer", pid=f"node/{node}",
                        tid=f"rank {rank}",
                        args={"nbytes": float(nbytes), "target_group": g},
                    )
                yield from fs.write(
                    f,
                    node=node,
                    offset=offset,
                    nbytes=nbytes,
                    writer=rank,
                    blocks=app.data_blocks(rank, offset),
                    tenant=tenant,
                )
                if traced:
                    tr.end("write", cat="writer", pid=f"node/{node}",
                           tid=f"rank {rank}")
                timings[rank] = WriterTiming(
                    rank=rank,
                    start=start,
                    end=env.now,
                    nbytes=nbytes,
                    target_group=g,
                )
                offset += nbytes

        def main():
            t0 = env.now
            files_ready = env.event()
            all_created = [0]
            procs = [
                env.process(
                    group_proc(g, files_ready, all_created),
                    name=f"stagger.g{g}",
                )
                for g in range(n_groups)
            ]
            yield env.all_of(procs)
            phase["write_end"] = env.now
            flushes = [
                env.process(fs.flush(f), name="stagger.flush")
                for f in files.values()
            ]
            yield env.all_of(flushes)
            phase["flush_end"] = env.now
            for f in files.values():
                yield from fs.close(f)
            phase["close_end"] = env.now
            return t0

        done = env.process(main(), name="stagger.main")

        def collect() -> OutputResult:
            t0 = done.value

            index = None
            if self.build_index:
                index = GlobalIndex()
                for g in range(n_groups):
                    entries = []
                    offset = 0.0
                    for rank in groups.ranks_in(g):
                        entries.extend(app.index_entries(rank, offset))
                        offset += nbytes
                    index.add_file(
                        f"/{output_name}.bp.dir/{g:04d}.bp", entries
                    )
                    files[g].attach_local_index(entries)

            result = OutputResult(
                transport=self.name,
                n_writers=n_ranks,
                total_bytes=nbytes * n_ranks,
                open_time=phase["open_end"] - t0,
                write_time=phase["write_end"] - phase["open_end"],
                flush_time=phase["flush_end"] - phase["write_end"],
                close_time=phase["close_end"] - phase["flush_end"],
                per_writer=[t for t in timings if t is not None],
                files=sorted(
                    f"/{output_name}.bp.dir/{g:04d}.bp"
                    for g in range(n_groups)
                ),
                index=index,
                extra={"n_groups": float(n_groups)},
            )
            return self._finish(machine, result)

        return TransportRun(done=done, collect=collect)
