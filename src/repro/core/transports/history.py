"""History-aware adaptive IO — the paper's future-work extension.

"Finally, there are likely more complex and/or state-rich methods for
system adaptation, including those that take into account past usage
data."  (Section VI.)

This transport keeps a :class:`PerformanceHistory` across output
steps: an exponentially-weighted estimate of each storage target's
effective bandwidth, updated from every completed write.  The next
output step **seeds group sizes with it** — groups are sized
proportionally to their target's estimated speed, so a persistently
slow target starts with fewer writers instead of waiting for online
steering to bail it out write by write.

Against stationary slow targets this converges to a near-balanced
schedule by the second step; against purely transient noise it
degrades gracefully to vanilla adaptive behaviour (the history is
uninformative, the quotas stay near-uniform, and online steering
still reacts).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from repro.core.transports.adaptive import AdaptiveTransport
from repro.core.transports.base import OutputResult

if TYPE_CHECKING:  # pragma: no cover
    from repro.apps.base import AppKernel
    from repro.machines.base import Machine

__all__ = ["PerformanceHistory", "HistoryAwareAdaptiveTransport"]


class PerformanceHistory:
    """EWMA per-target bandwidth estimates across output steps.

    Parameters
    ----------
    n_targets:
        Storage targets tracked.
    alpha:
        EWMA weight of the newest observation.
    prior:
        Initial estimate (bytes/s) before any observation; any positive
        value works — only *relative* speeds matter downstream.
    """

    def __init__(self, n_targets: int, alpha: float = 0.4,
                 prior: float = 100e6, alpha_up: Optional[float] = None):
        if n_targets < 1:
            raise ValueError("n_targets must be >= 1")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if prior <= 0:
            raise ValueError("prior must be positive")
        if alpha_up is not None and not 0.0 < alpha_up <= 1.0:
            raise ValueError("alpha_up must be in (0, 1]")
        self.alpha = alpha
        # Asymmetric learning: quick to believe a target got slower,
        # slow to believe it recovered.  A quota-starved slow target
        # carries little data and therefore *measures* healthy, and a
        # symmetric filter would oscillate between avoiding and
        # flooding it every other step.
        self.alpha_up = alpha / 4 if alpha_up is None else alpha_up
        self.estimate = np.full(n_targets, float(prior))
        self.observations = np.zeros(n_targets, dtype=np.int64)

    def observe(self, target: int, bandwidth: float) -> None:
        """Fold one completed write's effective bandwidth in."""
        if bandwidth <= 0:
            return
        if self.observations[target] == 0:
            self.estimate[target] = bandwidth
        else:
            delta = bandwidth - self.estimate[target]
            a = self.alpha if delta < 0 else self.alpha_up
            self.estimate[target] += a * delta
        self.observations[target] += 1

    def observe_result(self, result: OutputResult) -> None:
        """Fold a whole output step's per-writer timings in.

        Per target we fold in the *slowest* writer's bandwidth of the
        step, not the mean: early writes absorb into cache at full
        ingest speed no matter how sick the target's disks are, so the
        straggler (which ran drain-paced) is the honest signal — the
        same slowest-writer quantity the paper's imbalance factor is
        built on.
        """
        worst: Dict[int, float] = {}
        for w in result.per_writer:
            if w.target_group >= 0 and w.bandwidth > 0:
                prev = worst.get(w.target_group)
                if prev is None or w.bandwidth < prev:
                    worst[w.target_group] = w.bandwidth
        for target, bw in worst.items():
            self.observe(target, bw)

    def relative_speeds(self, n: Optional[int] = None) -> np.ndarray:
        """Per-target speed weights normalized to mean 1."""
        est = self.estimate if n is None else self.estimate[:n]
        return est / est.mean()

    def slowest_first(self, n: Optional[int] = None) -> List[int]:
        """Target indices ordered slowest to fastest."""
        est = self.estimate if n is None else self.estimate[:n]
        return list(np.argsort(est))


class HistoryAwareAdaptiveTransport(AdaptiveTransport):
    """Adaptive IO seeded and steered by past usage data.

    Drop-in extension of :class:`AdaptiveTransport`; reuse the same
    instance across output steps so the history accumulates::

        transport = HistoryAwareAdaptiveTransport(n_osts_used=512)
        for step in range(n_steps):
            result = transport.run(machine, app, f"out.{step}")
    """

    name = "adaptive-history"

    def __init__(self, *args, history_alpha: float = 0.4,
                 max_skew: float = 8.0, **kwargs):
        super().__init__(*args, **kwargs)
        if max_skew < 1.0:
            raise ValueError("max_skew must be >= 1")
        self.history_alpha = history_alpha
        self.max_skew = max_skew
        self.history: Optional[PerformanceHistory] = None
        self.steps_run = 0

    # -- seeding -----------------------------------------------------------
    def group_quotas(self, n_ranks: int, n_groups: int) -> List[int]:
        """Writers initially assigned to each group, history-weighted.

        Quotas are proportional to estimated target speed, clamped to
        ``max_skew`` around uniform so one bad estimate cannot starve
        a group, and adjusted to sum exactly to ``n_ranks`` with at
        least one writer per group (each group's sub-coordinator is a
        writer).
        """
        if self.history is None or self.history.observations.sum() == 0:
            base, extra = divmod(n_ranks, n_groups)
            return [base + (1 if g < extra else 0) for g in range(n_groups)]
        speeds = self.history.relative_speeds(n_groups)
        lo, hi = 1.0 / self.max_skew, self.max_skew
        speeds = np.clip(speeds, lo, hi)
        raw = speeds / speeds.sum() * n_ranks
        quotas = np.maximum(1, np.floor(raw).astype(int))
        # Distribute the remainder to the largest fractional parts.
        deficit = n_ranks - int(quotas.sum())
        if deficit > 0:
            order = np.argsort(-(raw - np.floor(raw)))
            for i in range(deficit):
                quotas[order[i % n_groups]] += 1
        while quotas.sum() > n_ranks:
            donor = int(np.argmax(quotas))
            if quotas[donor] <= 1:
                break
            quotas[donor] -= 1
        return quotas.tolist()

    def run(
        self,
        machine: "Machine",
        app: "AppKernel",
        output_name: str = "output",
    ) -> OutputResult:
        n_groups = self.n_osts_used or min(machine.n_osts, machine.n_ranks)
        n_groups = min(n_groups, machine.n_ranks)
        if self.history is None:
            self.history = PerformanceHistory(
                n_groups, alpha=self.history_alpha
            )
        elif len(self.history.estimate) != n_groups:
            raise ValueError(
                "history tracks a different target count; use one "
                "transport instance per configuration"
            )
        result = super().run(machine, app, output_name=output_name)
        self.history.observe_result(result)
        self.steps_run += 1
        result.extra["history_steps"] = float(self.steps_run)
        return result

    def _make_group_map(self, n_ranks: int, n_groups: int):
        """History-weighted partition (uniform until data exists)."""
        return _WeightedGroupMap(
            n_ranks, self.group_quotas(n_ranks, n_groups)
        )

    def _steer_target_ok(self, target: int) -> bool:
        """Veto steering onto targets the history says are slow.

        A weighted-quota slow target frees up early; refilling it with
        steered writes would rebuild exactly the straggler tail the
        quota avoided.  Threshold: below 35% of the median estimated
        target speed.
        """
        if self.history is None or self.history.observations.sum() == 0:
            return True
        est = self.history.estimate
        return bool(est[target] >= 0.35 * float(np.median(est)))


class _WeightedGroupMap:
    """GroupMap-compatible partition with explicit per-group sizes."""

    def __init__(self, n_ranks: int, quotas: List[int]):
        if sum(quotas) != n_ranks:
            raise ValueError(
                f"quotas sum to {sum(quotas)}, expected {n_ranks}"
            )
        if any(q < 1 for q in quotas):
            raise ValueError("every group needs at least one writer")
        self.n_ranks = n_ranks
        self.n_groups = len(quotas)
        self._bounds = np.concatenate([[0], np.cumsum(quotas)])

    def group_of(self, rank: int) -> int:
        if not 0 <= rank < self.n_ranks:
            raise ValueError(f"rank {rank} out of range")
        return int(np.searchsorted(self._bounds, rank, side="right") - 1)

    def ranks_in(self, group: int) -> List[int]:
        if not 0 <= group < self.n_groups:
            raise ValueError(f"group {group} out of range")
        return list(
            range(int(self._bounds[group]), int(self._bounds[group + 1]))
        )

    def sub_coordinator_of(self, group: int) -> int:
        return self.ranks_in(group)[0]

    @property
    def coordinator(self) -> int:
        return 0

    def group_size(self, group: int) -> int:
        return len(self.ranks_in(group))

    @property
    def max_group_size(self) -> int:
        return int(np.diff(self._bounds).max())
