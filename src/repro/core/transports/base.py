"""Transport contract and the result record every transport produces.

Timing follows the paper's measurement protocol:

* Section II experiments "specifically omit file open and close
  times" — use :attr:`OutputResult.write_time`.
* Section IV experiments report "the actual write, flush, and file
  close operations" with "an explicit flush ... prior to the file
  close" — use :attr:`OutputResult.reported_time` (write + flush +
  close, open excluded).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from repro.core.index import GlobalIndex

if TYPE_CHECKING:  # pragma: no cover
    from repro.apps.base import AppKernel
    from repro.machines.base import Machine

__all__ = ["Transport", "OutputResult", "WriterTiming"]


@dataclass(frozen=True)
class WriterTiming:
    """Per-writer timing of the data write itself."""

    rank: int
    start: float  # when the writer began moving bytes
    end: float  # when its last byte was absorbed
    nbytes: float
    target_group: int = -1
    adaptive: bool = False

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def bandwidth(self) -> float:
        d = self.duration
        return self.nbytes / d if d > 0 else float("inf")


@dataclass
class OutputResult:
    """Everything one output operation produced."""

    transport: str
    n_writers: int
    total_bytes: float
    open_time: float
    write_time: float
    flush_time: float
    close_time: float
    per_writer: List[WriterTiming] = field(default_factory=list)
    files: List[str] = field(default_factory=list)
    index: Optional[GlobalIndex] = None
    n_adaptive_writes: int = 0
    messages_sent: int = 0
    coordinator_messages: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def reported_time(self) -> float:
        """Write + flush + close — the paper's Section IV metric."""
        return self.write_time + self.flush_time + self.close_time

    @property
    def aggregate_bandwidth(self) -> float:
        """Bytes/s over the reported (write+flush+close) window."""
        t = self.reported_time
        return self.total_bytes / t if t > 0 else float("inf")

    @property
    def write_bandwidth(self) -> float:
        """Bytes/s over the write window only — the Section II metric."""
        t = self.write_time
        return self.total_bytes / t if t > 0 else float("inf")

    @property
    def per_writer_bandwidths(self) -> np.ndarray:
        return np.array([w.bandwidth for w in self.per_writer])

    @property
    def per_writer_durations(self) -> np.ndarray:
        return np.array([w.duration for w in self.per_writer])

    @property
    def imbalance_factor(self) -> float:
        """Slowest / fastest per-writer write time (paper, Section II)."""
        d = self.per_writer_durations
        if d.size == 0:
            return float("nan")
        fastest = float(d.min())
        if fastest <= 0:
            return float("inf")
        return float(d.max()) / fastest

    def validate(self) -> None:
        """Sanity invariants every transport result must satisfy."""
        if self.total_bytes < 0:
            raise ValueError("negative total_bytes")
        for name in ("open_time", "write_time", "flush_time", "close_time"):
            if getattr(self, name) < 0:
                raise ValueError(f"negative {name}")
        if len(self.per_writer) != self.n_writers:
            raise ValueError(
                f"{len(self.per_writer)} writer timings for "
                f"{self.n_writers} writers"
            )
        written = sum(w.nbytes for w in self.per_writer)
        if abs(written - self.total_bytes) > max(1.0, 1e-6 * self.total_bytes):
            raise ValueError(
                f"writer bytes {written} != total {self.total_bytes}"
            )


class Transport(abc.ABC):
    """An IO method: turns an output spec into data on the file system.

    Instances are stateless w.r.t. simulations: :meth:`run` may be
    called repeatedly against different machines.
    """

    name: str = "base"

    @abc.abstractmethod
    def run(
        self,
        machine: "Machine",
        app: "AppKernel",
        output_name: str = "output",
    ) -> OutputResult:
        """Execute one full output operation; blocks the (real) caller
        until the simulated operation has completed."""

    def _finish(self, machine: "Machine", result: OutputResult) -> OutputResult:
        result.validate()
        return result
