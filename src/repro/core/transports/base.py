"""Transport contract and the result record every transport produces.

Timing follows the paper's measurement protocol:

* Section II experiments "specifically omit file open and close
  times" — use :attr:`OutputResult.write_time`.
* Section IV experiments report "the actual write, flush, and file
  close operations" with "an explicit flush ... prior to the file
  close" — use :attr:`OutputResult.reported_time` (write + flush +
  close, open excluded).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.index import GlobalIndex
from repro.errors import (
    FileNotFoundInNamespace,
    OstFailedError,
    TransportError,
    WriteTimeout,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.apps.base import AppKernel
    from repro.machines.base import Machine

__all__ = [
    "StaticFaultHarness",
    "Transport",
    "TransportRun",
    "OutputResult",
    "WriterTiming",
]


@dataclass(frozen=True)
class WriterTiming:
    """Per-writer timing of the data write itself."""

    rank: int
    start: float  # when the writer began moving bytes
    end: float  # when its last byte was absorbed
    nbytes: float
    target_group: int = -1
    adaptive: bool = False

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def bandwidth(self) -> float:
        d = self.duration
        return self.nbytes / d if d > 0 else float("inf")


@dataclass
class OutputResult:
    """Everything one output operation produced."""

    transport: str
    n_writers: int
    total_bytes: float
    open_time: float
    write_time: float
    flush_time: float
    close_time: float
    per_writer: List[WriterTiming] = field(default_factory=list)
    files: List[str] = field(default_factory=list)
    index: Optional[GlobalIndex] = None
    n_adaptive_writes: int = 0
    messages_sent: int = 0
    coordinator_messages: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def reported_time(self) -> float:
        """Write + flush + close — the paper's Section IV metric."""
        return self.write_time + self.flush_time + self.close_time

    @property
    def aggregate_bandwidth(self) -> float:
        """Bytes/s over the reported (write+flush+close) window."""
        t = self.reported_time
        return self.total_bytes / t if t > 0 else float("inf")

    @property
    def write_bandwidth(self) -> float:
        """Bytes/s over the write window only — the Section II metric."""
        t = self.write_time
        return self.total_bytes / t if t > 0 else float("inf")

    @property
    def per_writer_bandwidths(self) -> np.ndarray:
        return np.array([w.bandwidth for w in self.per_writer])

    @property
    def per_writer_durations(self) -> np.ndarray:
        return np.array([w.duration for w in self.per_writer])

    @property
    def imbalance_factor(self) -> float:
        """Slowest / fastest per-writer write time (paper, Section II)."""
        d = self.per_writer_durations
        if d.size == 0:
            return float("nan")
        fastest = float(d.min())
        if fastest <= 0:
            return float("inf")
        return float(d.max()) / fastest

    def validate(self) -> None:
        """Sanity invariants every transport result must satisfy."""
        if self.total_bytes < 0:
            raise ValueError("negative total_bytes")
        for name in ("open_time", "write_time", "flush_time", "close_time"):
            if getattr(self, name) < 0:
                raise ValueError(f"negative {name}")
        if len(self.per_writer) != self.n_writers:
            raise ValueError(
                f"{len(self.per_writer)} writer timings for "
                f"{self.n_writers} writers"
            )
        written = sum(w.nbytes for w in self.per_writer)
        if abs(written - self.total_bytes) > max(1.0, 1e-6 * self.total_bytes):
            raise ValueError(
                f"writer bytes {written} != total {self.total_bytes}"
            )


class StaticFaultHarness:
    """Fail-fast fault bookkeeping for the static transports.

    The static IO methods have no retry or failover story — the
    paper's whole point is that they cannot react to storage-target
    trouble.  Under an installed fault plan they get *defined*
    behaviour instead of a hang or a silent lie: every write carries
    the policy's per-attempt timeout, a failed write records the
    writer and moves on (no retry), the writer join is bounded by the
    run-timeout backstop, and an unclean run raises
    :class:`~repro.errors.TransportError` with durable/lost byte
    accounting and the partial result attached.

    With no plan installed (``machine.faults`` is None) every helper
    collapses to the fault-free code path — same simulation events,
    bit-identical results.
    """

    def __init__(self, machine: "Machine"):
        self.machine = machine
        self.faults = machine.faults
        # Tenant id for QoS flow tagging; a plain Machine has none and
        # stays untagged, a TenantView stamps its tenant on every write.
        self.tenant = getattr(machine, "tenant", -1)
        self.write_failures: List[Tuple[int, str]] = []
        self.flush_failures: List[str] = []
        self.timed_out = False

    @property
    def active(self) -> bool:
        return self.faults is not None

    @property
    def write_timeout(self) -> Optional[float]:
        return self.faults.policy.write_timeout if self.active else None

    def arm(self, procs_by_rank: Dict[int, object]) -> None:
        """Start the plan clock and expose rank procs to rank crashes."""
        if not self.active:
            return
        self.faults.arm()
        for rank, proc in procs_by_rank.items():
            self.faults.register(rank, proc)

    def guarded_write(self, fs, f, *, node, offset, nbytes, writer,
                      pid: str, tid: str, blocks=None):
        """Generator: one write attempt; returns True iff it landed.

        Failures (target fail-stopped, or hung past the policy
        timeout) are recorded and traced, never raised — the caller's
        process must survive so the join accounts for it.  ``blocks``
        (``(offset, nbytes, checksum)`` triples) registers the write's
        variable blocks with the storage layer for later scrubbing.
        """
        env = self.machine.env
        try:
            yield from fs.write(
                f, node=node, offset=offset, nbytes=nbytes, writer=writer,
                timeout=self.write_timeout, blocks=blocks,
                tenant=self.tenant,
            )
        except (OstFailedError, WriteTimeout) as exc:
            self.write_failures.append((writer, str(exc)))
            tr = env.tracer
            if tr is not None and tr.enabled:
                tr.instant(
                    "write.abort", cat="fault", pid=pid, tid=tid,
                    args={"reason": str(exc)},
                )
            return False
        return True

    def join(self, procs: List[object]):
        """Generator: wait for the writer procs.

        Fault-free: plain ``all_of`` (unchanged event structure).
        Faulted: settle-all bounded by the run-timeout backstop, so a
        stalled protocol (e.g. a rank crashed before a barrier filled)
        still terminates with accounting instead of deadlocking.
        """
        env = self.machine.env
        if not self.active:
            yield env.all_of(procs)
            return
        from repro.sim.events import AllSettled

        deadline = env.timeout(self.faults.policy.run_timeout)
        yield env.any_of([AllSettled(env, procs), deadline])
        if deadline.processed and any(p.is_alive for p in procs):
            self.timed_out = True
            for p in procs:
                if p.is_alive:
                    p.kill("run timeout backstop")

    def guarded_flush(self, fs, f):
        """Generator: flush with the policy timeout; failures recorded."""
        if not self.active:
            yield from fs.flush(f)
            return
        try:
            yield from fs.flush(f, timeout=self.faults.policy.flush_timeout)
        except (OstFailedError, WriteTimeout) as exc:
            self.flush_failures.append(str(exc))

    def bytes_corrupt(self, result: OutputResult) -> float:
        """Bytes of the output's stored blocks now corrupt or torn.

        The static methods have no verify/rewrite loop, so whatever
        the fault plan rotted stays rotten — it lands in the error
        accounting instead.
        """
        fs = self.machine.fs
        total = 0.0
        for path in result.files:
            try:
                f = fs.lookup(path)
            except FileNotFoundInNamespace:
                continue
            for blk in f.stored_blocks():
                if blk.corrupt or blk.torn:
                    total += blk.nbytes
        return total

    def finalize(self, transport: "Transport",
                 result: OutputResult) -> OutputResult:
        """Clean run → validated result; unclean → TransportError."""
        n_ranks = self.machine.n_ranks
        corrupt = self.bytes_corrupt(result) if self.active else 0.0
        clean = (
            not self.timed_out
            and not self.write_failures
            and not self.flush_failures
            and len(result.per_writer) == n_ranks
            and corrupt == 0.0
        )
        if self.active:
            # A write acknowledged into a target's cache is only as
            # durable as the cache: bytes a fail-stop destroyed before
            # they drained are subtracted from the completed writes.
            cache_lost = float(self.machine.pool.bytes_lost.sum())
            bytes_durable = max(
                0.0,
                float(sum(w.nbytes for w in result.per_writer))
                - cache_lost,
            )
            bytes_lost = result.total_bytes - bytes_durable
            result.extra["bytes_durable"] = bytes_durable
            result.extra["bytes_lost"] = bytes_lost
            result.extra["bytes_corrupt"] = corrupt
            result.extra.update(self.faults.summary())
        if clean:
            return transport._finish(self.machine, result)
        env = self.machine.env
        if env.tracer is not None and env.tracer.enabled:
            env.tracer.close_open_spans()
        reasons = []
        if self.timed_out:
            reasons.append(
                f"run timeout ({self.faults.policy.run_timeout:g}s) hit"
            )
        if self.write_failures:
            reasons.append(f"{len(self.write_failures)} write failure(s)")
        if self.flush_failures:
            reasons.append(f"{len(self.flush_failures)} flush failure(s)")
        if self.faults is not None and self.faults.crashed_ranks:
            reasons.append(
                f"{len(self.faults.crashed_ranks)} rank(s) crashed"
            )
        missing = n_ranks - len(result.per_writer)
        if missing > 0:
            reasons.append(f"{missing} writer(s) did not complete")
        if corrupt > 0.0:
            reasons.append(f"{corrupt:.0f} B of stored output corrupt/torn")
        raise TransportError(
            f"{result.transport} output did not complete cleanly: "
            + "; ".join(reasons),
            bytes_durable=result.extra.get("bytes_durable", 0.0),
            bytes_lost=result.extra.get("bytes_lost", result.total_bytes),
            partial=result,
            bytes_corrupt=corrupt,
        )


@dataclass
class TransportRun:
    """A launched-but-not-collected output operation.

    ``done`` is the simulation process driving the run: the caller
    decides when (and with whom) to drive the calendar —
    ``env.run(until=done)`` for a solo run, or one ``all_of`` over many
    tenants' handles for a multi-tenant run on a shared machine.
    ``collect()`` is called after ``done`` settles; it assembles the
    validated :class:`OutputResult` (or raises
    :class:`~repro.errors.TransportError` with accounting, exactly as
    :meth:`Transport.run` would).
    """

    done: object  # the simulation Process
    collect: "Callable[[], OutputResult]"


class Transport(abc.ABC):
    """An IO method: turns an output spec into data on the file system.

    Instances are stateless w.r.t. simulations: :meth:`run` may be
    called repeatedly against different machines.

    Concrete transports implement :meth:`launch`, which wires the
    operation's simulated processes into the machine's calendar and
    returns a :class:`TransportRun` without advancing simulated time.
    :meth:`run` is the classic blocking form — launch, drive the
    calendar to completion, collect.  Multi-tenant harnesses call
    :meth:`launch` directly so several transports share one calendar.
    """

    name: str = "base"

    @abc.abstractmethod
    def launch(
        self,
        machine: "Machine",
        app: "AppKernel",
        output_name: str = "output",
    ) -> TransportRun:
        """Wire up one output operation; do not advance simulated time."""

    def run(
        self,
        machine: "Machine",
        app: "AppKernel",
        output_name: str = "output",
    ) -> OutputResult:
        """Execute one full output operation; blocks the (real) caller
        until the simulated operation has completed."""
        handle = self.launch(machine, app, output_name)
        machine.env.run(until=handle.done)
        return handle.collect()

    def _watch_fabric(self, machine: "Machine") -> None:
        """Snapshot the fabric's churn counters at run start.

        :meth:`_finish` turns the snapshot into per-run deltas in
        ``result.extra`` — how many settles the run triggered, how many
        hit the allocator, and how many of those the incremental patch
        path / same-instant coalescing absorbed.  Group releases (N
        writers opening streams at one simulated instant) show up here
        as a large ``fabric_coalesced`` with a tiny ``fabric_reallocs``.
        """
        fab = machine.fs.fabric
        self._fabric_snap = (
            machine,
            fab.settle_count,
            fab.realloc_count,
            fab.incremental_count,
            fab.coalesced_count,
        )

    def _finish(self, machine: "Machine", result: OutputResult) -> OutputResult:
        snap = getattr(self, "_fabric_snap", None)
        if snap is not None and snap[0] is machine:
            self._fabric_snap = None
            fab = machine.fs.fabric
            result.extra["fabric_settles"] = float(fab.settle_count - snap[1])
            result.extra["fabric_reallocs"] = float(
                fab.realloc_count - snap[2]
            )
            result.extra["fabric_incremental"] = float(
                fab.incremental_count - snap[3]
            )
            result.extra["fabric_coalesced"] = float(
                fab.coalesced_count - snap[4]
            )
        result.validate()
        # One-way recording into the telemetry registry: the registry
        # observes the result, never feeds anything back into it, so a
        # run with telemetry attached stays bit-identical to one
        # without (the determinism test compares whole OutputResults).
        reg = machine.metrics
        if reg is not None:
            t = result.transport
            for phase in ("open", "write", "flush", "close"):
                reg.histogram(
                    "transport.phase_seconds", transport=t, phase=phase
                ).observe(getattr(result, f"{phase}_time"))
            reg.counter("transport.bytes", transport=t).inc(
                result.total_bytes
            )
            reg.counter("transport.runs", transport=t).inc()
            reg.counter("transport.adaptive_writes", transport=t).inc(
                result.n_adaptive_writes
            )
            extra = result.extra
            for key, metric in (
                ("fault_retries", "transport.retries"),
                ("fault_aborts", "transport.aborts"),
                ("verify_failures", "transport.verify_failures"),
            ):
                v = extra.get(key)
                if v:
                    reg.counter(metric, transport=t).inc(float(v))
        return result
