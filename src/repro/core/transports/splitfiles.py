"""Split-file output — the paper's Section II-3 alternative.

"Another approach to reducing internal interference is to split output
into a collection of files to match the parallel file system being
used.  In the case of Jaguar and its Lustre FS, for instance,
splitting output into 5 parts would enable an application to take full
advantage of the entire file system's resources."  (672 targets /
160-stripe cap ≈ 5 files.)

The paper's verdict — "this helps alleviate internal interference, but
does not solve it nor does it address external interference" — is
exactly what the split-files ablation bench demonstrates: more targets
help, but all writers still write simultaneously and nothing reacts to
slow targets.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.core.groups import GroupMap
from repro.core.index import GlobalIndex
from repro.core.transports.base import (
    OutputResult,
    StaticFaultHarness,
    Transport,
    TransportRun,
    WriterTiming,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.apps.base import AppKernel
    from repro.machines.base import Machine

__all__ = ["SplitFilesTransport"]


class SplitFilesTransport(Transport):
    """MPI-IO-style concurrent writing into K stripe-capped files.

    Parameters
    ----------
    n_files:
        Number of shared files; default ``ceil(pool / stripe cap)`` —
        enough to cover every storage target (the paper's "5 parts").
    """

    name = "splitfiles"

    def __init__(self, n_files: Optional[int] = None,
                 build_index: bool = True):
        if n_files is not None and n_files < 1:
            raise ValueError("n_files must be >= 1")
        self.n_files = n_files
        self.build_index = build_index

    def launch(
        self,
        machine: "Machine",
        app: "AppKernel",
        output_name: str = "output",
    ) -> TransportRun:
        env = machine.env
        fs = machine.fs
        self._watch_fabric(machine)
        n_ranks = machine.n_ranks
        cap = fs.max_stripe_count
        n_files = self.n_files or max(1, math.ceil(machine.n_osts / cap))
        n_files = min(n_files, n_ranks)
        groups = GroupMap(n_ranks, n_files)
        chunk = app.per_process_bytes
        timings: List[Optional[WriterTiming]] = [None] * n_ranks
        files: Dict[int, object] = {}
        paths: List[str] = []
        phase: Dict[str, float] = {}
        harness = StaticFaultHarness(machine)

        def rank_proc(rank: int, files_ready):
            yield files_ready
            g = groups.group_of(rank)
            slot = rank - groups.ranks_in(g)[0]
            start = env.now
            node = machine.node_of(rank)
            tr = env.tracer
            traced = tr is not None and tr.enabled
            if traced:
                tr.begin(
                    "write", cat="writer", pid=f"node/{node}",
                    tid=f"rank {rank}",
                    args={"nbytes": float(chunk), "target_group": g},
                )
            landed = yield from harness.guarded_write(
                fs,
                files[g],
                node=node,
                offset=slot * chunk,
                nbytes=chunk,
                writer=rank,
                pid=f"node/{node}",
                tid=f"rank {rank}",
                blocks=app.data_blocks(rank, slot * chunk),
            )
            if traced:
                tr.end("write", cat="writer", pid=f"node/{node}",
                       tid=f"rank {rank}",
                       args=None if landed else {"failed": True})
            if not landed:
                return
            timings[rank] = WriterTiming(
                rank=rank, start=start, end=env.now, nbytes=chunk,
                target_group=g,
            )

        def main():
            t0 = env.now
            files_ready = env.event()
            procs = [
                env.process(rank_proc(r, files_ready), name=f"split.{r}")
                for r in range(n_ranks)
            ]
            harness.arm({r: p for r, p in enumerate(procs)})
            for g in range(n_files):
                stripes = min(cap, machine.n_osts, groups.group_size(g))
                path = f"/{output_name}.part{g}.bp"
                f = yield from fs.create(
                    path, stripe_count=stripes, stripe_size=chunk
                )
                files[g] = f
                paths.append(path)
            phase["open_end"] = env.now
            files_ready.succeed()
            yield from harness.join(procs)
            phase["write_end"] = env.now
            flushes = [
                env.process(harness.guarded_flush(fs, f),
                            name="split.flush")
                for f in files.values()
            ]
            yield env.all_of(flushes)
            phase["flush_end"] = env.now
            for f in files.values():
                yield from fs.close(f)
            phase["close_end"] = env.now
            return t0

        done = env.process(main(), name="split.main")

        def collect() -> OutputResult:
            t0 = done.value

            index = None
            if self.build_index:
                index = GlobalIndex()
                for g in range(n_files):
                    entries = []
                    for slot, rank in enumerate(groups.ranks_in(g)):
                        if harness.active and timings[rank] is None:
                            continue  # the rank's chunk never landed
                        entries.extend(
                            app.index_entries(rank, slot * chunk)
                        )
                    index.add_file(paths[g], entries)
                    files[g].attach_local_index(entries)

            result = OutputResult(
                transport=self.name,
                n_writers=n_ranks,
                total_bytes=chunk * n_ranks,
                open_time=phase["open_end"] - t0,
                write_time=phase["write_end"] - phase["open_end"],
                flush_time=phase["flush_end"] - phase["write_end"],
                close_time=phase["close_end"] - phase["flush_end"],
                per_writer=[t for t in timings if t is not None],
                files=list(paths),
                index=index,
                extra={"n_files": float(n_files)},
            )
            if harness.active:
                return harness.finalize(self, result)
            return self._finish(machine, result)

        return TransportRun(done=done, collect=collect)
