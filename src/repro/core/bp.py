"""BP-style read path: global-index-driven reads of written output.

The paper (Section IV-C): "By using the global index, access to any
data can be performed using a single lookup into the index and then a
direct read of the value(s) from the appropriate data file(s)".  This
module implements that reader over the simulated file system, plus an
index *search* fallback for output sets whose global index was never
written ("we use a automatic, systematic search of the index in each
file") — the interim mode the paper describes, which the ablation
benches use to quantify what the global index buys.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, List, Optional, Tuple

from repro.core.index import GlobalIndex, IndexEntry
from repro.errors import FileSystemError

if TYPE_CHECKING:  # pragma: no cover
    from repro.lustre.filesystem import FileSystem

__all__ = ["BpReader"]


class BpReader:
    """Reads variable blocks back through the simulated file system.

    Parameters
    ----------
    fs:
        The file system holding the output set.
    index:
        The global index (from ``OutputResult.index``); optional —
        without it every lookup degrades to a per-file index scan.
    """

    def __init__(self, fs: "FileSystem", index: Optional[GlobalIndex] = None,
                 files: Optional[List[str]] = None):
        if index is None and not files:
            raise ValueError("need a global index or an explicit file list")
        self.fs = fs
        self.index = index
        self.files = files if files is not None else (
            index.files if index is not None else []
        )

    # -- lookup ------------------------------------------------------------
    def locate(
        self, var: str, writer: Optional[int] = None
    ) -> List[Tuple[str, IndexEntry]]:
        """(file, entry) for every block of *var* — one index lookup."""
        if self.index is not None:
            hits = self.index.lookup(var, writer=writer)
        else:
            hits = self._scan_files(var, writer)
        if not hits:
            raise KeyError(
                f"variable {var!r}"
                + (f" of writer {writer}" if writer is not None else "")
                + " not found"
            )
        return hits

    def _scan_files(
        self, var: str, writer: Optional[int]
    ) -> List[Tuple[str, IndexEntry]]:
        """The interim no-global-index mode: scan each file's local index."""
        hits: List[Tuple[str, IndexEntry]] = []
        for path in self.files:
            f = self.fs.lookup(path)
            for payload in f.payloads.values():
                if (
                    isinstance(payload, tuple)
                    and payload
                    and payload[0] == "local_index"
                ):
                    for e in payload[1]:
                        if e.var == var and (
                            writer is None or e.writer == writer
                        ):
                            hits.append((path, e))
        return hits

    # -- data path -----------------------------------------------------------
    def read_block(
        self, node: int, var: str, writer: int
    ) -> Generator:
        """Simulate reading one writer's block; returns (entry, seconds)."""
        hits = self.locate(var, writer=writer)
        if len(hits) > 1:
            raise FileSystemError(
                f"{var!r} of writer {writer} has {len(hits)} blocks; "
                "corrupt index"
            )
        path, entry = hits[0]
        f = self.fs.lookup(path)
        seconds = yield from self.fs.read(
            f, node=node, offset=entry.offset, nbytes=entry.nbytes
        )
        return entry, seconds

    def read_variable(self, node: int, var: str) -> Generator:
        """Simulate a restart-style read of every block of *var*.

        Returns (total_bytes, seconds).
        """
        hits = self.locate(var)
        start_bytes = 0.0
        t = 0.0
        for path, entry in hits:
            f = self.fs.lookup(path)
            seconds = yield from self.fs.read(
                f, node=node, offset=entry.offset, nbytes=entry.nbytes
            )
            t += seconds
            start_bytes += entry.nbytes
        return start_bytes, t

    def query_value_range(
        self, var: str, low: float, high: float
    ) -> List[Tuple[str, IndexEntry]]:
        """Characteristic-pruned block list (no data read needed)."""
        if self.index is None:
            raise FileSystemError("value-range queries need a global index")
        return self.index.query_value_range(var, low, high)
