"""BP-style read path: global-index-driven reads of written output.

The paper (Section IV-C): "By using the global index, access to any
data can be performed using a single lookup into the index and then a
direct read of the value(s) from the appropriate data file(s)".  This
module implements that reader over the simulated file system, plus an
index *search* fallback for output sets whose global index was never
written ("we use a automatic, systematic search of the index in each
file") — the interim mode the paper describes, which the ablation
benches use to quantify what the global index buys.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Dict,
    Generator,
    Iterable,
    List,
    Optional,
    Tuple,
)

from repro.core.index import GlobalIndex, IndexEntry
from repro.core.integrity import (
    BLOCK_STATUSES,
    BLOCK_UNINDEXED,
    BLOCK_UNVERIFIED,
    BLOCK_VALID,
    BlockReport,
    ScrubReport,
    classify_block,
    rebuild_global_index,
)
from repro.errors import FileNotFoundInNamespace, FileSystemError, IntegrityError

if TYPE_CHECKING:  # pragma: no cover
    from repro.lustre.file import SimFile
    from repro.lustre.filesystem import FileSystem

__all__ = ["BpReader"]


class BpReader:
    """Reads variable blocks back through the simulated file system.

    Parameters
    ----------
    fs:
        The file system holding the output set.
    index:
        The global index (from ``OutputResult.index``); optional —
        without it every lookup degrades to a per-file index scan.
    verify:
        Verifying read mode: every :meth:`read_block` /
        :meth:`read_variable` checks the stored block against its index
        entry (presence, wholeness, checksum) and raises
        :class:`IntegrityError` on damage — the reader-side half of the
        end-to-end integrity story.  Off by default: a plain reader
        happily returns rotten bytes, which is exactly the failure mode
        scrubbing exists to catch.
    """

    def __init__(self, fs: "FileSystem", index: Optional[GlobalIndex] = None,
                 files: Optional[List[str]] = None, verify: bool = False):
        if index is None and not files:
            raise ValueError("need a global index or an explicit file list")
        self.fs = fs
        self.index = index
        self.files = files if files is not None else (
            index.files if index is not None else []
        )
        self.verify = bool(verify)

    # -- lookup ------------------------------------------------------------
    def locate(
        self, var: str, writer: Optional[int] = None
    ) -> List[Tuple[str, IndexEntry]]:
        """(file, entry) for every block of *var* — one index lookup."""
        if self.index is not None:
            hits = self.index.lookup(var, writer=writer)
        else:
            hits = self._scan_files(var, writer)
        if not hits:
            raise KeyError(
                f"variable {var!r}"
                + (f" of writer {writer}" if writer is not None else "")
                + " not found"
            )
        return hits

    def _scan_files(
        self, var: str, writer: Optional[int]
    ) -> List[Tuple[str, IndexEntry]]:
        """The interim no-global-index mode: scan each file's local index."""
        hits: List[Tuple[str, IndexEntry]] = []
        for path in self.files:
            f = self.fs.lookup(path)
            for payload in f.payloads.values():
                if (
                    isinstance(payload, tuple)
                    and payload
                    and payload[0] == "local_index"
                ):
                    for e in payload[1]:
                        if e.var == var and (
                            writer is None or e.writer == writer
                        ):
                            hits.append((path, e))
        return hits

    # -- data path -----------------------------------------------------------
    def _check(self, path: str, f: "SimFile", entry: IndexEntry) -> None:
        """Verifying-mode gate: raise on a damaged block."""
        status = classify_block(f, entry)
        if status in (BLOCK_VALID, BLOCK_UNVERIFIED):
            return
        raise IntegrityError(
            f"{path}: block {entry.var!r} of writer {entry.writer} at "
            f"offset {entry.offset:.0f} is {status}",
            status=status,
        )

    def read_block(
        self, node: int, var: str, writer: int
    ) -> Generator:
        """Simulate reading one writer's block; returns (entry, seconds)."""
        hits = self.locate(var, writer=writer)
        if len(hits) > 1:
            raise FileSystemError(
                f"{var!r} of writer {writer} has {len(hits)} blocks; "
                "corrupt index"
            )
        path, entry = hits[0]
        f = self.fs.lookup(path)
        seconds = yield from self.fs.read(
            f, node=node, offset=entry.offset, nbytes=entry.nbytes
        )
        if self.verify:
            self._check(path, f, entry)
        return entry, seconds

    def read_variable(self, node: int, var: str) -> Generator:
        """Simulate a restart-style read of every block of *var*.

        Returns (total_bytes, seconds).
        """
        hits = self.locate(var)
        start_bytes = 0.0
        t = 0.0
        for path, entry in hits:
            f = self.fs.lookup(path)
            seconds = yield from self.fs.read(
                f, node=node, offset=entry.offset, nbytes=entry.nbytes
            )
            if self.verify:
                self._check(path, f, entry)
            t += seconds
            start_bytes += entry.nbytes
        return start_bytes, t

    # -- scrubbing -----------------------------------------------------------
    def _indexed_walk(
        self, extra_files: Optional[Iterable[str]] = None
    ) -> Tuple[Dict[str, List[IndexEntry]], List[str]]:
        """``file -> entries`` in scrub order, plus the full file set.

        With no global index, rebuilds one from the per-file local
        indices first — the fsck path for a damaged output set.  The
        file set is the indexed files plus ``extra_files`` (e.g.
        superseded ``NNNN.eK.bp`` incarnations a relocation left
        behind), which are walked for unindexed blocks only.
        """
        index = self.index
        if index is None:
            index, _uncovered = rebuild_global_index(self.fs, self.files)
        by_file = index.entries_by_file()
        file_set = list(by_file)
        for path in list(self.files) + list(extra_files or ()):
            if path not in by_file:
                by_file[path] = []
                file_set.append(path)
        return by_file, file_set

    def scrub(
        self, extra_files: Optional[Iterable[str]] = None
    ) -> ScrubReport:
        """Full-output integrity walk (pure state; no simulated time).

        Classifies every indexed block against its stored state, then
        sweeps every file — including ``extra_files`` such as relocated
        epoch incarnations — for stored blocks no index entry points
        at (``unindexed``).  See :meth:`scrub_sim` for the simulated
        read-back cost of the same walk.
        """
        by_file, file_set = self._indexed_walk(extra_files)
        counts = {s: 0 for s in BLOCK_STATUSES}
        bad: List[BlockReport] = []
        missing_files: List[str] = []
        n_blocks = 0
        bytes_scanned = 0.0
        bytes_bad = 0.0
        for path in sorted(file_set):
            entries = by_file.get(path, [])
            try:
                f = self.fs.lookup(path)
            except FileNotFoundInNamespace:
                f = None
                if entries:
                    missing_files.append(path)
            indexed_keys = set()
            for e in entries:
                indexed_keys.add((e.offset, e.nbytes))
                status = classify_block(f, e)
                counts[status] += 1
                n_blocks += 1
                bytes_scanned += e.nbytes
                if status not in (BLOCK_VALID, BLOCK_UNVERIFIED):
                    bad.append(BlockReport(
                        file=path, var=e.var, writer=e.writer,
                        offset=e.offset, nbytes=e.nbytes, status=status,
                    ))
                    bytes_bad += e.nbytes
            if f is None:
                continue
            for blk in f.stored_blocks():
                if (blk.offset, blk.nbytes) in indexed_keys:
                    continue
                counts[BLOCK_UNINDEXED] += 1
                n_blocks += 1
                bytes_scanned += blk.nbytes
                bytes_bad += blk.nbytes
                bad.append(BlockReport(
                    file=path, var="?",
                    writer=-1 if blk.writer is None else int(blk.writer),
                    offset=blk.offset, nbytes=blk.nbytes,
                    status=BLOCK_UNINDEXED,
                ))
        bad.sort(key=lambda b: (b.file, b.offset, b.var, b.writer))
        return ScrubReport(
            n_files=len(file_set),
            n_blocks=n_blocks,
            counts=counts,
            bad=tuple(bad),
            bytes_scanned=bytes_scanned,
            bytes_bad=bytes_bad,
            missing_files=tuple(sorted(missing_files)),
        )

    def scrub_sim(
        self, node: int, extra_files: Optional[Iterable[str]] = None
    ) -> Generator:
        """Scrub with simulated read-back cost; returns (report, seconds).

        Walks the same blocks as :meth:`scrub` but pays a simulated
        read per indexed block that is physically readable (files whose
        stripes touch a fail-stopped target are classified from state
        only — a real scrubber cannot read a dead OST either).  Emits
        ``scrub`` spans and per-damaged-block ``scrub.detect`` instants
        (cat ``integrity``) when a tracer is active.
        """
        from repro.lustre.ost import OstState

        report = self.scrub(extra_files)
        tr = self.env_tracer()
        start = self.fs.env.now
        if tr is not None:
            tr.begin("scrub", cat="integrity", pid="integrity",
                     tid="scrubber",
                     args={"n_blocks": report.n_blocks,
                           "n_files": report.n_files})
        by_file, _file_set = self._indexed_walk(extra_files)
        for path in sorted(by_file):
            entries = by_file[path]
            if not entries:
                continue
            try:
                f = self.fs.lookup(path)
            except FileNotFoundInNamespace:
                continue
            dead = self.fs.pool.faults_active and any(
                self.fs.pool.state[o] == OstState.FAILED
                for o in f.layout.osts
            )
            if dead:
                continue
            for e in entries:
                blk = f.block_at(e.offset, e.nbytes)
                if blk is None:
                    continue
                yield from self.fs.read(
                    f, node=node, offset=e.offset,
                    nbytes=min(e.nbytes, blk.valid_bytes),
                )
        if tr is not None:
            for b in report.bad:
                tr.instant(
                    "scrub.detect", cat="integrity", pid="integrity",
                    tid=f"rank {b.writer}" if b.writer >= 0 else "scrubber",
                    args={"status": b.status, "file": b.file,
                          "var": b.var, "offset": float(b.offset)},
                )
            tr.end("scrub", cat="integrity", pid="integrity",
                   tid="scrubber",
                   args={"n_bad": report.n_bad})
        return report, self.fs.env.now - start

    def env_tracer(self):
        """The active tracer of the bound simulation, if any."""
        tr = getattr(self.fs.env, "tracer", None)
        return tr if (tr is not None and tr.enabled) else None

    def query_value_range(
        self, var: str, low: float, high: float
    ) -> List[Tuple[str, IndexEntry]]:
        """Characteristic-pruned block list (no data read needed)."""
        if self.index is None:
            raise FileSystemError("value-range queries need a global index")
        return self.index.query_value_range(var, low, high)
