"""ADIOS-like middleware and the Adaptive IO method.

This package is the paper's contribution, built on the substrates in
:mod:`repro.lustre`, :mod:`repro.net`, :mod:`repro.mpi` and
:mod:`repro.interference`:

* :mod:`repro.core.transports.mpiio` — the tuned MPI-IO baseline
  transport (buffered, stripe-aligned shared file, capped at 160 OSTs
  by Lustre 1.6);
* :mod:`repro.core.transports.adaptive` — **Adaptive IO**:
  writer / sub-coordinator / coordinator roles implementing the
  paper's Algorithms 1-3, one active writer per storage target,
  dynamic steering of remaining work from slow targets to free ones;
* :mod:`repro.core.transports.stagger` — the earlier staggered-IO
  method (serialization without steering), kept as an ablation;
* :mod:`repro.core.transports.posix` — file-per-process POSIX-style
  output (the IOR configuration of Section II);
* :mod:`repro.core.index` / :mod:`repro.core.bp` — BP-style sub-files
  with local indices, merged global index and per-variable data
  characteristics.

Entry point: :class:`repro.core.middleware.Adios` or the functional
:mod:`repro.core.api`.
"""

from repro.core.index import (
    Characteristics,
    GlobalIndex,
    IndexEntry,
    LocalIndex,
)
from repro.core.groups import GroupMap
from repro.core.middleware import Adios
from repro.core.transports.base import OutputResult, Transport, WriterTiming

__all__ = [
    "Adios",
    "Characteristics",
    "GlobalIndex",
    "GroupMap",
    "IndexEntry",
    "LocalIndex",
    "OutputResult",
    "Transport",
    "WriterTiming",
]
