"""Protocol messages and tags of the adaptive-IO method.

One dataclass per message named in Algorithms 1-3 of the paper, plus
the writer-facing write signal.  Tags segregate the three logical
endpoints living on coordinator/sub-coordinator ranks (a rank can be
writer, SC and C at once — roles are processes sharing the rank's
inbox, distinguished by tag).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = [
    "TAG_WRITER",
    "TAG_SC",
    "TAG_COORD",
    "WriteStart",
    "WriteComplete",
    "IndexBody",
    "AdaptiveWriteStart",
    "WritersBusy",
    "OverallWriteComplete",
    "ScComplete",
    "ScIndex",
]

TAG_WRITER = 10  # messages addressed to a rank's writer role
TAG_SC = 11  # messages addressed to a rank's sub-coordinator role
TAG_COORD = 12  # messages addressed to the coordinator role


@dataclass(frozen=True)
class WriteStart:
    """SC -> writer: '(target, offset)' — go write your buffer.

    ``target_group`` identifies the sub-file/OST; ``offset`` is the
    byte position in it.  ``adaptive`` marks steered (foreign-target)
    writes for bookkeeping.
    """

    target_group: int
    offset: float
    adaptive: bool = False


@dataclass(frozen=True)
class WriteComplete:
    """writer -> SC (and SC -> C): a write against ``target_group`` done.

    ``source_rank``/``source_group`` identify the writer;
    ``nbytes`` lets the coordinator advance the target file's offset
    cursor for the next adaptive write; ``index_nbytes`` pre-announces
    the index body so the target SC can count missing indices.
    """

    source_rank: int
    source_group: int
    target_group: int
    nbytes: float
    index_nbytes: float
    adaptive: bool = False


@dataclass(frozen=True)
class IndexBody:
    """writer -> target SC: the local index for a completed write."""

    source_rank: int
    target_group: int
    entries: tuple  # tuple of IndexEntry


@dataclass(frozen=True)
class AdaptiveWriteStart:
    """C -> SC: schedule one of your waiting writers onto ``target_group``."""

    target_group: int
    offset: float


@dataclass(frozen=True)
class WritersBusy:
    """SC -> C: all my writers are already scheduled; cannot help."""

    source_group: int
    target_group: int  # the adaptive target we had to decline
    offset: float  # echo so C can re-offer the same slot elsewhere


@dataclass(frozen=True)
class OverallWriteComplete:
    """C -> all SCs: every byte is on its way; finalize indices."""


@dataclass(frozen=True)
class ScComplete:
    """SC -> C: all writers of my group have completed their writes.

    ``final_offset`` is my sub-file's data tail — the coordinator notes
    it and hands out adaptive offsets from there.
    """

    source_group: int
    final_offset: float


@dataclass(frozen=True)
class ScIndex:
    """SC -> C: my merged local index (sent after OVERALL completes)."""

    source_group: int
    file_path: str
    entries: tuple
    index_nbytes: float
