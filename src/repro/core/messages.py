"""Protocol messages and tags of the adaptive-IO method.

One dataclass per message named in Algorithms 1-3 of the paper, plus
the writer-facing write signal.  Tags segregate the three logical
endpoints living on coordinator/sub-coordinator ranks (a rank can be
writer, SC and C at once — roles are processes sharing the rank's
inbox, distinguished by tag).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = [
    "TAG_WRITER",
    "TAG_SC",
    "TAG_COORD",
    "TAG_ADOPTED_BASE",
    "WriteStart",
    "WriteComplete",
    "WriteFailed",
    "IndexBody",
    "AdaptiveWriteStart",
    "WritersBusy",
    "OverallWriteComplete",
    "ScComplete",
    "ScIndex",
    "ScRelocated",
    "Heartbeat",
    "WriterRelease",
    "CoordBatch",
]

TAG_WRITER = 10  # messages addressed to a rank's writer role
TAG_SC = 11  # messages addressed to a rank's sub-coordinator role
TAG_COORD = 12  # messages addressed to the coordinator role
# Adopted sub-coordinators: when the coordinator takes over a dead SC's
# group, the replacement endpoint lives on the coordinator's rank under
# TAG_ADOPTED_BASE + group so it never collides with the rank's own
# writer/SC/C roles (or with other adopted groups).
TAG_ADOPTED_BASE = 20


@dataclass(frozen=True)
class WriteStart:
    """SC -> writer: '(target, offset)' — go write your buffer.

    ``target_group`` identifies the sub-file/OST; ``offset`` is the
    byte position in it.  ``adaptive`` marks steered (foreign-target)
    writes for bookkeeping.  ``epoch`` is the target group's file
    incarnation (bumped on relocation after a storage failure);
    ``recovery`` marks re-issued writes whose first attempt was lost
    with a dead incarnation, so completion bookkeeping is not double
    counted.
    """

    target_group: int
    offset: float
    adaptive: bool = False
    epoch: int = 0
    recovery: bool = False


@dataclass(frozen=True)
class WriteComplete:
    """writer -> SC (and SC -> C): a write against ``target_group`` done.

    ``source_rank``/``source_group`` identify the writer;
    ``nbytes`` lets the coordinator advance the target file's offset
    cursor for the next adaptive write; ``index_nbytes`` pre-announces
    the index body so the target SC can count missing indices.
    """

    source_rank: int
    source_group: int
    target_group: int
    nbytes: float
    index_nbytes: float
    adaptive: bool = False
    epoch: int = 0
    recovery: bool = False


@dataclass(frozen=True)
class IndexBody:
    """writer -> target SC: the local index for a completed write."""

    source_rank: int
    target_group: int
    entries: tuple  # tuple of IndexEntry
    epoch: int = 0


@dataclass(frozen=True)
class AdaptiveWriteStart:
    """C -> SC: schedule one of your waiting writers onto ``target_group``."""

    target_group: int
    offset: float
    epoch: int = 0


@dataclass(frozen=True)
class WritersBusy:
    """SC -> C: all my writers are already scheduled; cannot help."""

    source_group: int
    target_group: int  # the adaptive target we had to decline
    offset: float  # echo so C can re-offer the same slot elsewhere


@dataclass(frozen=True)
class OverallWriteComplete:
    """C -> all SCs: every byte is on its way; finalize indices."""


@dataclass(frozen=True)
class ScComplete:
    """SC -> C: all writers of my group have completed their writes.

    ``final_offset`` is my sub-file's data tail — the coordinator notes
    it and hands out adaptive offsets from there.
    """

    source_group: int
    final_offset: float
    epoch: int = 0


@dataclass(frozen=True)
class ScIndex:
    """SC -> C: my merged local index (sent after OVERALL completes)."""

    source_group: int
    file_path: str
    entries: tuple
    index_nbytes: float


@dataclass(frozen=True)
class WriteFailed:
    """writer -> target SC (relayed SC -> C): a write attempt is abandoned.

    Sent after a fail-stop error or after the retry budget for a hung
    target is exhausted.  ``epoch`` is the incarnation the writer was
    writing against; a failure against the *current* epoch triggers
    relocation, a stale one is already being handled.
    """

    source_rank: int
    source_group: int
    target_group: int
    nbytes: float
    epoch: int = 0
    adaptive: bool = False
    recovery: bool = False
    reason: str = ""


@dataclass(frozen=True)
class ScRelocated:
    """SC -> C: my group's file moved to a new incarnation.

    The coordinator un-poisons the group, records the new epoch, and
    resumes steering toward it once it re-announces completion.
    """

    source_group: int
    epoch: int


@dataclass(frozen=True)
class Heartbeat:
    """SC -> C: liveness beacon (fault mode only)."""

    source_group: int
    rank: int


@dataclass(frozen=True)
class WriterRelease:
    """SC/C -> writer: shut down your service loop (fault mode only)."""


@dataclass(frozen=True)
class CoordBatch:
    """SC -> C: several same-instant control messages in one envelope.

    The batched (cohort) protocol accumulates every coordinator-bound
    64-byte control payload a single synchronous handler burst emits
    (e.g. a steered write's WriteComplete relay plus the ScComplete it
    unlocks) and ships them as one message.  The coordinator unwraps
    ``payloads`` in order through the same dispatch path as loose
    messages, so steering decisions are unchanged — only the number of
    simulated sends differs.
    """

    payloads: tuple  # tuple of coordinator-bound message dataclasses
