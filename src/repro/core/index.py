"""BP-style indexing: characteristics, local and global indices.

The ADIOS BP format writes each process group's data followed by a
per-file local index; a master ("global") index maps every variable
block to (file, offset).  The paper additionally stores *data
characteristics* — per-block min/max — which let queries prune without
reading data ("enabling quickly searching for both the content as well
as the logical location of the data of interest").
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "Characteristics",
    "IndexEntry",
    "LocalIndex",
    "GlobalIndex",
    "block_checksum",
]

_ENTRY_HEADER_BYTES = 64.0  # serialized per-entry overhead
_CHAR_BYTES = 24.0  # serialized characteristics block
_CKSUM_BYTES = 8.0  # serialized per-block checksum


def block_checksum(var: str, writer: int, nbytes: float) -> int:
    """Deterministic 64-bit content checksum of one variable block.

    The simulator stores no payload bytes, so a block's *content* is
    fully determined by what produced it: (variable, writer, size).
    Hashing that triple stands in for checksumming the real bytes —
    the writer computes it at write time, the index carries it, and
    any in-place mutation of the stored copy (bit flip, tear) breaks
    the equality exactly as a real CRC would.  Rewrites of the same
    block (retries, relocated incarnations) reproduce the same value,
    because the content is the same.
    """
    digest = hashlib.blake2b(
        f"{var}|{int(writer)}|{float(nbytes)!r}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "little")


@dataclass(frozen=True)
class Characteristics:
    """Per-block data characteristics (min/max/count)."""

    minimum: float
    maximum: float
    count: int

    def __post_init__(self):
        if self.count < 0:
            raise ValueError("count must be >= 0")
        if self.count > 0 and self.minimum > self.maximum:
            raise ValueError("minimum must be <= maximum")

    @classmethod
    def of(cls, data: np.ndarray) -> "Characteristics":
        """Characteristics of an actual array."""
        arr = np.asarray(data)
        if arr.size == 0:
            return cls(0.0, 0.0, 0)
        return cls(float(arr.min()), float(arr.max()), int(arr.size))

    def merge(self, other: "Characteristics") -> "Characteristics":
        if self.count == 0:
            return other
        if other.count == 0:
            return self
        return Characteristics(
            min(self.minimum, other.minimum),
            max(self.maximum, other.maximum),
            self.count + other.count,
        )

    def overlaps(self, low: float, high: float) -> bool:
        """Could a value in [low, high] live in this block?"""
        if self.count == 0:
            return False
        return not (high < self.minimum or low > self.maximum)


@dataclass(frozen=True)
class IndexEntry:
    """One variable block: who wrote which variable where.

    ``checksum`` is the per-block content checksum
    (:func:`block_checksum`) when the writing application computed
    one; ``None`` for checksum-free output sets, whose blocks a scrub
    can only classify as unverified.
    """

    var: str
    writer: int
    offset: float
    nbytes: float
    characteristics: Optional[Characteristics] = None
    checksum: Optional[int] = None

    def __post_init__(self):
        if self.offset < 0 or self.nbytes < 0:
            raise ValueError("offset and nbytes must be non-negative")
        extra = _CHAR_BYTES if self.characteristics is not None else 0.0
        if self.checksum is not None:
            extra += _CKSUM_BYTES
        object.__setattr__(
            self, "_serialized", _ENTRY_HEADER_BYTES + len(self.var) + extra
        )

    @property
    def serialized_bytes(self) -> float:
        return self._serialized


class LocalIndex:
    """The per-sub-file index a sub-coordinator assembles.

    Entries arrive out of order (adaptive writers interleave with the
    group's own); :meth:`finalize` sorts and seals, mirroring the SC's
    "sort and merge the index pieces" step.
    """

    def __init__(self, file_path: str):
        self.file_path = file_path
        self._entries: List[IndexEntry] = []
        self._final = False

    def add(self, entries: Iterable[IndexEntry]) -> None:
        if self._final:
            raise RuntimeError("index already finalized")
        self._entries.extend(entries)

    def finalize(self) -> Tuple[IndexEntry, ...]:
        self._final = True
        self._entries.sort(key=lambda e: (e.offset, e.var))
        return tuple(self._entries)

    @property
    def entries(self) -> Tuple[IndexEntry, ...]:
        return tuple(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def serialized_bytes(self) -> float:
        return float(
            sum(e.serialized_bytes for e in self._entries) + 128.0
        )

    def check_no_overlap(self) -> None:
        """Invariant: data extents within one sub-file never overlap."""
        spans = sorted((e.offset, e.offset + e.nbytes) for e in self._entries)
        for (a0, a1), (b0, _b1) in zip(spans, spans[1:]):
            if b0 < a1 - 1e-6:
                raise ValueError(
                    f"{self.file_path}: overlapping extents "
                    f"[{a0},{a1}) and starting at {b0}"
                )


class GlobalIndex:
    """The master index the coordinator writes at the end of output.

    Maps ``var -> [(file, IndexEntry), ...]`` so any block is a single
    lookup + direct read, "sometimes resulting in improved
    performance" vs single-file formats (paper, Section IV-C).
    """

    def __init__(self):
        self._by_var: Dict[str, List[Tuple[str, IndexEntry]]] = {}
        self._files: List[str] = []

    def add_file(self, file_path: str, entries: Sequence[IndexEntry]) -> None:
        if file_path in self._files:
            raise ValueError(f"duplicate file {file_path!r} in global index")
        self._files.append(file_path)
        for e in entries:
            self._by_var.setdefault(e.var, []).append((file_path, e))

    @property
    def files(self) -> List[str]:
        return list(self._files)

    @property
    def variables(self) -> List[str]:
        return sorted(self._by_var)

    @property
    def n_blocks(self) -> int:
        return sum(len(v) for v in self._by_var.values())

    def entries_by_file(self) -> Dict[str, List[IndexEntry]]:
        """``file -> [entries]``, each file's list in (offset, var) order.

        The scrub/fsck walk order: deterministic regardless of the
        message interleaving that built the index.
        """
        out: Dict[str, List[IndexEntry]] = {p: [] for p in self._files}
        for hits in self._by_var.values():
            for path, e in hits:
                out[path].append(e)
        for entries in out.values():
            entries.sort(key=lambda e: (e.offset, e.var, e.writer))
        return out

    def lookup(
        self, var: str, writer: Optional[int] = None
    ) -> List[Tuple[str, IndexEntry]]:
        """All blocks of *var* (optionally one writer's)."""
        hits = self._by_var.get(var, [])
        if writer is None:
            return list(hits)
        return [(f, e) for f, e in hits if e.writer == writer]

    def query_value_range(
        self, var: str, low: float, high: float
    ) -> List[Tuple[str, IndexEntry]]:
        """Blocks of *var* whose characteristics overlap [low, high].

        Blocks without characteristics are conservatively returned.
        """
        out = []
        for f, e in self._by_var.get(var, []):
            if e.characteristics is None or e.characteristics.overlaps(low, high):
                out.append((f, e))
        return out

    def total_bytes(self, var: Optional[str] = None) -> float:
        if var is not None:
            return sum(e.nbytes for _, e in self._by_var.get(var, []))
        return sum(
            e.nbytes for hits in self._by_var.values() for _, e in hits
        )

    @property
    def serialized_bytes(self) -> float:
        per_entry = sum(
            e.serialized_bytes + 32.0
            for hits in self._by_var.values()
            for _, e in hits
        )
        return float(per_entry + 256.0)
