"""The ADIOS-like middleware facade.

"The ADIOS layer is used to switch between the MPI-IO and the adaptive
transport methods" — this class is that switch: applications name a
transport (as ADIOS does in its XML config) and call ``write_output``;
everything else (grouping, protocol, files, index) is the transport's
business.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional

from repro.core.transports.adaptive import AdaptiveTransport
from repro.core.transports.base import OutputResult, Transport
from repro.core.transports.history import HistoryAwareAdaptiveTransport
from repro.core.transports.mpiio import MpiIoTransport
from repro.core.transports.posix import PosixTransport
from repro.core.transports.splitfiles import SplitFilesTransport
from repro.core.transports.stagger import StaggerTransport
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.apps.base import AppKernel
    from repro.machines.base import Machine

__all__ = ["Adios"]

_FACTORIES: Dict[str, Callable[..., Transport]] = {
    "posix": PosixTransport,
    "mpiio": MpiIoTransport,
    "adaptive": AdaptiveTransport,
    "stagger": StaggerTransport,
    "splitfiles": SplitFilesTransport,
    "adaptive-history": HistoryAwareAdaptiveTransport,
}


class Adios:
    """Middleware bound to a machine, with a selected transport.

    >>> from repro.machines import jaguar
    >>> from repro.apps import pixie3d
    >>> m = jaguar(n_osts=16).build(n_ranks=32, seed=0)
    >>> io = Adios(m, method="adaptive")
    >>> result = io.write_output(pixie3d("small"), name="restart.000")
    >>> result.total_bytes == pixie3d("small").per_process_bytes * 32
    True
    """

    def __init__(self, machine: "Machine", method: str = "mpiio",
                 **method_options):
        self.machine = machine
        self.method = method
        self.transport = self.make_transport(method, **method_options)
        self._step = 0

    @staticmethod
    def available_methods() -> list:
        return sorted(_FACTORIES)

    @staticmethod
    def make_transport(method: str, **options) -> Transport:
        try:
            factory = _FACTORIES[method]
        except KeyError:
            raise ConfigurationError(
                f"unknown IO method {method!r}; available: "
                f"{sorted(_FACTORIES)}"
            ) from None
        return factory(**options)

    @classmethod
    def register_method(
        cls, name: str, factory: Callable[..., Transport]
    ) -> None:
        """Register a custom transport (the ADIOS extension point)."""
        if name in _FACTORIES:
            raise ConfigurationError(f"method {name!r} already registered")
        _FACTORIES[name] = factory

    def write_output(
        self,
        app: "AppKernel",
        name: Optional[str] = None,
    ) -> OutputResult:
        """Run one full output operation of *app* through the transport."""
        if name is None:
            name = f"{app.name}.{self._step:05d}"
        self._step += 1
        return self.transport.run(self.machine, app, output_name=name)
