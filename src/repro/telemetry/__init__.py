"""Runtime telemetry: metrics registry, online monitoring, profiling.

The tracer (:mod:`repro.trace`) answers "what happened, in order";
this package answers "what is happening, now, and at what rate" — the
monitoring side of the tracing/monitoring split.  See DESIGN.md §12.
"""

from repro.telemetry.dashboard import render_dashboard
from repro.telemetry.monitor import OnlineMonitor, PoolSample, snapshot_machine
from repro.telemetry.profiler import Profiler, profiling
from repro.telemetry.registry import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Series,
    collecting,
    get_active_registry,
    set_active_registry,
)
from repro.telemetry.stragglers import StragglerDetector

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "OnlineMonitor",
    "PoolSample",
    "Profiler",
    "Series",
    "StragglerDetector",
    "collecting",
    "get_active_registry",
    "profiling",
    "render_dashboard",
    "set_active_registry",
    "snapshot_machine",
]
