"""Online straggler detection over per-OST service rates.

The paper's central observation is that a handful of laggard storage
targets dominate output time; its adaptive transport routes around
them using *observed* service.  This detector turns the same signal
into an explicit online flag stream:

* each OST carries an **EWMA** of its per-stream service rate
  (allocated inflow divided by active streams — what one writer
  actually gets from that target), updated at every sample;
* across OSTs the EWMAs are compared with a **robust z-score**
  (median / MAD, the 0.6745 factor making MAD sigma-consistent for
  normal data), so a minority of laggards cannot drag the baseline
  the way a mean/stddev score would let them;
* an OST is flagged when its z-score sits below ``-z_threshold`` AND
  its rate is below ``deficit`` of the pool median — the second
  condition keeps a tightly-packed pool (tiny MAD) from flagging
  noise-level variation.

Flags are computed online: transports (and the auto-tuning hook that
ROADMAP item 3 plans) may call :meth:`StragglerDetector.is_straggler`
/ :meth:`stragglers` mid-run.  Flag *transitions* are recorded so the
dashboard can annotate when each OST went bad.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

import numpy as np

__all__ = ["StragglerDetector"]

# MAD -> sigma consistency constant for the normal distribution.
_MAD_SIGMA = 0.6745


class StragglerDetector:
    """EWMA + robust z-score flagging of slow storage targets.

    Parameters
    ----------
    n_osts:
        Pool size (index space of every update/query).
    alpha:
        EWMA smoothing factor in (0, 1]; higher reacts faster.
    z_threshold:
        Flag when the robust z-score drops below ``-z_threshold``.
    deficit:
        Additional guard: the OST's EWMA must also be below
        ``deficit * median`` — z-scores explode when the pool is
        nearly uniform (MAD -> 0) and this keeps those non-events
        unflagged.
    min_samples:
        EWMA updates an OST must have seen before it can be flagged
        (or counted in the baseline).
    """

    def __init__(
        self,
        n_osts: int,
        alpha: float = 0.3,
        z_threshold: float = 3.5,
        deficit: float = 0.7,
        min_samples: int = 3,
    ):
        if n_osts < 1:
            raise ValueError("n_osts must be >= 1")
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if z_threshold <= 0:
            raise ValueError("z_threshold must be positive")
        if not 0.0 < deficit <= 1.0:
            raise ValueError("deficit must be in (0, 1]")
        self.n_osts = n_osts
        self.alpha = float(alpha)
        self.z_threshold = float(z_threshold)
        self.deficit = float(deficit)
        self.min_samples = int(min_samples)
        self.ewma = np.zeros(n_osts)
        self.n_updates = np.zeros(n_osts, dtype=np.int64)
        self._z = np.zeros(n_osts)
        self._flagged = np.zeros(n_osts, dtype=bool)
        self.first_flag_time: Dict[int, float] = {}
        #: (t, ost, flagged) transitions, for dashboard annotations.
        self.transitions: List[Tuple[float, int, bool]] = []

    # -- online update ---------------------------------------------------
    def update(self, t: float, rates: np.ndarray,
               active: np.ndarray) -> None:
        """Fold one sample of per-OST service rates.

        ``rates`` is the per-stream service rate per OST; ``active``
        masks the OSTs currently serving at least one stream — idle
        targets are neither updated nor judged (an OST nobody writes
        to is not slow, it is unused).
        """
        rates = np.asarray(rates, dtype=np.float64)
        active = np.asarray(active, dtype=bool)
        if rates.shape != (self.n_osts,) or active.shape != (self.n_osts,):
            raise ValueError("rates/active must have one entry per OST")
        idx = np.nonzero(active)[0]
        if idx.size == 0:
            return
        first = self.n_updates[idx] == 0
        a = self.alpha
        self.ewma[idx] = np.where(
            first, rates[idx], (1 - a) * self.ewma[idx] + a * rates[idx]
        )
        self.n_updates[idx] += 1
        self._rescore(t)

    def _rescore(self, t: float) -> None:
        seen = self.n_updates >= self.min_samples
        judged = np.nonzero(seen)[0]
        self._z[:] = 0.0
        new_flags = np.zeros(self.n_osts, dtype=bool)
        if judged.size >= 3:
            vals = self.ewma[judged]
            med = float(np.median(vals))
            mad = float(np.median(np.abs(vals - med)))
            if med > 0:
                # Floor the MAD so a near-uniform pool cannot produce
                # infinite z-scores out of float dust.
                mad = max(mad, 1e-6 * med)
                z = _MAD_SIGMA * (vals - med) / mad
                self._z[judged] = z
                new_flags[judged] = (z < -self.z_threshold) & (
                    vals < self.deficit * med
                )
        went_bad = np.nonzero(new_flags & ~self._flagged)[0]
        recovered = np.nonzero(self._flagged & ~new_flags)[0]
        for i in went_bad:
            i = int(i)
            self.first_flag_time.setdefault(i, t)
            self.transitions.append((t, i, True))
        for i in recovered:
            self.transitions.append((t, int(i), False))
        self._flagged = new_flags

    # -- queries (safe to call mid-run) ----------------------------------
    def is_straggler(self, ost: int) -> bool:
        return bool(self._flagged[int(ost)])

    def stragglers(self) -> Set[int]:
        """Currently-flagged OST indices."""
        return {int(i) for i in np.nonzero(self._flagged)[0]}

    def ever_flagged(self) -> Set[int]:
        """Every OST flagged at any point during the run."""
        return set(self.first_flag_time)

    def zscores(self) -> np.ndarray:
        """Latest robust z-score per OST (0 where not judged)."""
        return self._z.copy()

    def summary(self) -> dict:
        return {
            "flagged": sorted(self.stragglers()),
            "ever_flagged": sorted(self.ever_flagged()),
            "first_flag_time": {
                str(k): float(v)
                for k, v in sorted(self.first_flag_time.items())
            },
            "z_threshold": self.z_threshold,
        }
