"""The one sampling loop: machine state -> registry / detector / samples.

Everything that periodically observes a running machine goes through
:class:`OnlineMonitor` — the dashboard's per-OST timelines, the
straggler detector's rate feed, and :class:`repro.metrics.LoadRecorder`
(which delegates here).  Two drive modes:

``settle``
    Piggy-back on the flow network: after each settle the fabric state
    is *already* advanced to now, so the monitor reads it and records a
    sample whenever an interval boundary has passed.  No calendar
    events, no extra settles, **no perturbation**: a simulation with a
    settle-mode monitor attached is bit-identical to one without
    (splitting a cache-integration step at a sampling instant would
    change float rounding — this mode never splits anything).  This is
    what ``--metrics`` and :meth:`Machine.attach_metrics` use.

``timer``
    A sim process that wakes every ``interval`` simulated seconds and
    forces accounting up to now with ``fabric.invalidate()`` — exact
    cadence, at the cost of extra settles at the sampling instants.
    This is the historical :class:`LoadRecorder` behaviour and remains
    its mode: the recorder is an explicit, caller-owned instrument,
    not ambient telemetry.

Both modes produce :class:`PoolSample` records and (when a registry is
attached) the same labeled Series — ``ost.inflow{ost=i}``,
``ost.streams{ost=i}``, ``ost.cache_fill{ost=i}``,
``ost.drain_rate{ost=i}``, ``ost.state{ost=i}`` — plus engine-level
series (``sim.events``, ``sim.calendar_depth``) and aggregate fabric
inflow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

import numpy as np

from repro.sim.process import Interrupt
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.stragglers import StragglerDetector

if TYPE_CHECKING:  # pragma: no cover
    from repro.machines.base import Machine

__all__ = ["OnlineMonitor", "PoolSample", "snapshot_machine"]


@dataclass(frozen=True)
class PoolSample:
    """One snapshot of the storage system."""

    time: float
    stream_counts: np.ndarray  # active flows per OST
    inflow: np.ndarray  # allocated bytes/s per OST
    cache_fill: np.ndarray  # cache level / capacity per OST
    drain_rate: np.ndarray  # cache->disk bytes/s per OST
    state: np.ndarray  # OstState codes per OST


def snapshot_machine(machine: "Machine", settle: bool = True) -> PoolSample:
    """Read the machine's storage state as of now.

    ``settle=True`` first forces fabric accounting up to the current
    instant (an extra settle — perturbs float rounding downstream);
    ``settle=False`` reads the state as of the last settle, which is
    exact when called *from* the post-settle hook.
    """
    fabric = machine.fs.fabric
    pool = machine.pool
    if settle:
        fabric.invalidate()
    return PoolSample(
        time=machine.env.now,
        stream_counts=fabric.sink_stream_counts(),
        inflow=fabric.sink_inflow(),
        cache_fill=pool.cache_fill_fraction(),
        drain_rate=pool.drain_rates(),
        state=pool.state.copy(),
    )


class OnlineMonitor:
    """Samples a machine on a simulated-time cadence.

    Parameters
    ----------
    machine:
        The machine to observe.
    registry:
        Optional :class:`MetricsRegistry` receiving labeled Series.
        None records samples (and feeds the detector) only.
    interval:
        Minimum simulated seconds between samples.
    detector:
        Optional :class:`StragglerDetector` fed per-stream service
        rates each sample.  Pass ``"auto"`` to create one sized to
        the pool.
    mode:
        ``"settle"`` (non-perturbing post-settle hook) or ``"timer"``
        (exact-cadence sim process forcing a settle per sample).
    keep_samples:
        Retain :class:`PoolSample` records in :attr:`samples`.
    max_samples:
        Settle-mode memory bound: once this many samples are recorded,
        the interval doubles and every other stored sample is dropped
        (doubling decimation).  A run of any simulated length keeps at
        most ``max_samples`` points per series while the short runs the
        test suite and dashboard care about keep full resolution.
        Depends only on the simulated sampling sequence, so it is
        deterministic.  ``None`` disables (timer mode ignores it — the
        :class:`LoadRecorder` contract is an exact, caller-owned
        cadence).
    """

    def __init__(
        self,
        machine: "Machine",
        registry: Optional[MetricsRegistry] = None,
        interval: float = 0.05,
        detector: "StragglerDetector | str | None" = None,
        mode: str = "settle",
        keep_samples: bool = False,
        max_samples: Optional[int] = 512,
    ):
        if interval <= 0:
            raise ValueError("interval must be positive")
        if mode not in ("settle", "timer"):
            raise ValueError(f"unknown monitor mode {mode!r}")
        self.machine = machine
        self.registry = registry
        self.interval = float(interval)
        if detector == "auto":
            detector = StragglerDetector(machine.pool.n_sinks)
        self.detector: Optional[StragglerDetector] = detector
        if max_samples is not None and max_samples < 2:
            raise ValueError("max_samples must be >= 2 (or None)")
        self.mode = mode
        self.keep_samples = keep_samples
        self.max_samples = max_samples
        self._n_recorded = 0
        self.samples: List[PoolSample] = []
        self._installed = False
        self._prev_hook = None
        self._next_t = -np.inf
        self._running = False
        self._proc = None
        self._wake = None
        self._n_transitions_seen = 0
        self._bound = None  # lazily-built per-OST series table

    # -- settle mode -----------------------------------------------------
    def install(self) -> None:
        """Hook the fabric; sampling starts at the next settle."""
        if self.mode != "settle":
            raise RuntimeError("install() is for settle-mode monitors")
        if self._installed:
            return
        fabric = self.machine.fs.fabric
        self._prev_hook = fabric.on_settle
        fabric.on_settle = self._on_settle
        self._next_t = self.machine.env.now
        self._installed = True

    def remove(self) -> None:
        if not self._installed:
            return
        self.machine.fs.fabric.on_settle = self._prev_hook
        self._prev_hook = None
        self._installed = False

    def _on_settle(self, now: float) -> None:
        if now >= self._next_t:
            self._record(now, settle=False)
            self._next_t = now + self.interval
        if self._prev_hook is not None:
            self._prev_hook(now)

    # -- timer mode ------------------------------------------------------
    def start(self) -> None:
        """Begin (or, after :meth:`stop`, resume) timer-driven sampling."""
        if self.mode != "timer":
            raise RuntimeError("start() is for timer-mode monitors")
        if self._running:
            raise RuntimeError("monitor already running")
        self._running = True
        self._proc = self.machine.env.process(
            self._sampler(), name="load-recorder"
        )

    def stop(self) -> None:
        """Stop sampling and cancel the pending wakeup."""
        if not self._running:
            return
        self._running = False
        proc, self._proc = self._proc, None
        wake, self._wake = self._wake, None
        if proc is not None and proc.is_alive and proc.is_suspended:
            proc.interrupt("monitor stopped")
        if wake is not None and not wake.processed:
            wake.cancel()  # drop the pending wakeup from the calendar

    def _sampler(self):
        env = self.machine.env
        while self._running:
            self._record(env.now, settle=True)
            self._wake = env.timeout(self.interval)
            try:
                yield self._wake
            except Interrupt:
                return
            finally:
                self._wake = None

    # -- the one recording path ------------------------------------------
    def clear(self) -> None:
        self.samples.clear()

    def _record(self, now: float, settle: bool) -> None:
        snap = snapshot_machine(self.machine, settle=settle)
        if self.keep_samples:
            self.samples.append(snap)
        det = self.detector
        if det is not None:
            counts = snap.stream_counts
            active = counts > 0
            per_stream = snap.inflow / np.maximum(counts, 1)
            det.update(now, per_stream, active)
        reg = self.registry
        if reg is not None:
            self._record_registry(reg, snap, now)
        self._n_recorded += 1
        if (
            self.mode == "settle"
            and self.max_samples is not None
            and self._n_recorded >= self.max_samples
        ):
            self._decimate()

    def _decimate(self) -> None:
        """Double the interval, halve the stored resolution.

        Keeps memory bounded for arbitrarily long runs: each call
        covers twice the simulated span with the same sample budget.
        Detector state is untouched (its EWMAs already folded every
        sample in); only stored timelines thin out.
        """
        self.interval *= 2.0
        if self.keep_samples:
            self.samples = self.samples[::2]
        bound = self._bound
        if bound is not None:
            reg = self.registry
            run = reg.run if reg is not None else 0
            targets = []
            for key in ("inflow", "streams", "cache", "drain", "state"):
                targets.extend(bound[key])
            targets += [bound["total_inflow"], bound["events"],
                        bound["depth"], bound["straggler_count"]]
            for s in targets:
                kept = [x for x in s.samples if x[0] != run]
                kept += [x for x in s.samples if x[0] == run][::2]
                s.samples = kept
        self._n_recorded = (self._n_recorded + 1) // 2

    def _record_registry(self, reg: MetricsRegistry, snap: PoolSample,
                         now: float) -> None:
        bound = self._bound
        if bound is None:
            n = self.machine.pool.n_sinks
            bound = self._bound = {
                "inflow": [reg.series("ost.inflow", ost=i) for i in range(n)],
                "streams": [reg.series("ost.streams", ost=i)
                            for i in range(n)],
                "cache": [reg.series("ost.cache_fill", ost=i)
                          for i in range(n)],
                "drain": [reg.series("ost.drain_rate", ost=i)
                          for i in range(n)],
                "state": [reg.series("ost.state", ost=i) for i in range(n)],
                "total_inflow": reg.series("fabric.total_inflow"),
                "events": reg.series("sim.events"),
                "depth": reg.series("sim.calendar_depth"),
                "straggler_count": reg.series("stragglers.count"),
            }
        for i in range(len(bound["inflow"])):
            bound["inflow"][i].sample(now, float(snap.inflow[i]))
            bound["streams"][i].sample(now, int(snap.stream_counts[i]))
            bound["cache"][i].sample(now, float(snap.cache_fill[i]))
            bound["drain"][i].sample(now, float(snap.drain_rate[i]))
            bound["state"][i].sample(now, int(snap.state[i]))
        bound["total_inflow"].sample(now, float(snap.inflow.sum()))
        env = self.machine.env
        bound["events"].sample(now, float(env.events_scheduled))
        bound["depth"].sample(now, float(env.calendar_depth))
        det = self.detector
        if det is not None:
            bound["straggler_count"].sample(now, float(len(det.stragglers())))
            # Persist flag transitions as they happen so a JSON
            # snapshot (and the dashboard built from it) carries the
            # annotations without needing the live detector object.
            new = det.transitions[self._n_transitions_seen:]
            self._n_transitions_seen = len(det.transitions)
            for t, ost, flagged in new:
                reg.series("ost.straggler", ost=ost).sample(
                    t, 1.0 if flagged else 0.0
                )
