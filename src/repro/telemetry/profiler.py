"""Wall-clock self-profiler: where does the *simulator's* time go?

ROADMAP item 5 observed that the adaptive transport at 8192 procs
costs 7.3s of real time against MPI-IO's 1.4s and asked for a
breakdown.  This profiler attributes real (``perf_counter``) time to
simulator subsystems:

==============  ======================================================
``engine``      the calendar loop itself (heap pops, dispatch)
``fabric.settle``  flow-network settles: max-min reallocation, pool
                integration, completion bookkeeping
``protocol``    simulation-process bodies — transport protocol code
                (writers, sub-coordinators, steering), interference
                generators, background jobs
``protocol.stream``  the batched transport's group-stream callbacks
                (boundary timers, rate-change re-predictions, member
                completion bookkeeping) which run outside any process
``tracer``      trace-event recording, when a tracer is attached
``other``       real time outside ``env.run`` (index assembly, result
                construction, harness code) — total minus the above
==============  ======================================================

Attribution is exclusive (stack-based): settle time spent inside a
process step counts as ``fabric.settle``, not ``protocol``.

Cost model: profiling is **opt-in per run**.  While no profiler is
installed anywhere in the process, ``Process._step`` and the tracer
record methods are their original, unpatched functions — zero cost.
:meth:`Profiler.install` class-patches them (reference-counted;
restored on the last :meth:`uninstall`) with wrappers that resolve
the owning environment's ``env.profiler`` attribute, so concurrent
unprofiled environments in the same process still skip in one
attribute check.  ``env.run`` and ``fabric._settle`` are wrapped as
per-instance attributes — no other environment even sees them.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.machines.base import Machine

__all__ = ["Profiler", "profiling"]

SECTIONS = ("engine", "fabric.settle", "protocol", "protocol.stream",
            "tracer")

# _GroupStream entry points that run as plain calendar/watcher
# callbacks, outside any Process._step (which would otherwise absorb
# them into ``protocol``).
_STREAM_METHODS = (
    "begin", "_on_timer", "_on_rate_change", "_on_flow_done",
    "_on_lane_done",
)


class Profiler:
    """Accumulates exclusive wall-clock time per subsystem."""

    def __init__(self):
        self.self_time: Dict[str, float] = {}
        self.calls: Dict[str, int] = {}
        self.wall_total: Optional[float] = None
        self._stack: List[list] = []  # [name, t0, child_time]
        self._machines: List["Machine"] = []

    # -- core accounting -------------------------------------------------
    def push(self, name: str) -> None:
        self._stack.append([name, perf_counter(), 0.0])

    def pop(self) -> None:
        name, t0, child = self._stack.pop()
        dt = perf_counter() - t0
        self.self_time[name] = self.self_time.get(name, 0.0) + dt - child
        self.calls[name] = self.calls.get(name, 0) + 1
        if self._stack:
            self._stack[-1][2] += dt

    @contextmanager
    def section(self, name: str):
        self.push(name)
        try:
            yield
        finally:
            self.pop()

    # -- wiring ----------------------------------------------------------
    def install(self, machine: "Machine") -> None:
        """Attach to a machine's environment, fabric and tracer."""
        env = machine.env
        if env.profiler is not None:
            raise RuntimeError("environment already has a profiler")
        env.profiler = self
        env.run = _wrapped(env.run, self, "engine")
        fabric = machine.fs.fabric
        fabric._settle = _wrapped(fabric._settle, self, "fabric.settle")
        _patch_classes()
        self._machines.append(machine)

    def uninstall(self, machine: "Machine") -> None:
        if machine not in self._machines:
            return
        self._machines.remove(machine)
        env = machine.env
        env.profiler = None
        env.__dict__.pop("run", None)  # restore the class method
        machine.fs.fabric.__dict__.pop("_settle", None)
        _unpatch_classes()

    # -- reporting -------------------------------------------------------
    def to_dict(self) -> dict:
        sections = {}
        for name in sorted(set(SECTIONS) | set(self.self_time)):
            sections[name] = {
                "seconds": float(self.self_time.get(name, 0.0)),
                "calls": int(self.calls.get(name, 0)),
            }
        tracked = sum(self.self_time.values())
        out = {"sections": sections, "tracked_seconds": float(tracked)}
        if self.wall_total is not None:
            out["wall_seconds"] = float(self.wall_total)
            out["other_seconds"] = float(max(self.wall_total - tracked, 0.0))
        return out

    def report(self) -> str:
        """Flame-table text rendering, widest section first."""
        d = self.to_dict()
        total = d.get("wall_seconds", d["tracked_seconds"]) or 1e-12
        rows = sorted(
            d["sections"].items(), key=lambda kv: -kv[1]["seconds"]
        )
        lines = [f"{'subsystem':<14} {'seconds':>9} {'calls':>10} {'share':>7}"]
        lines.append("-" * len(lines[0]))
        for name, s in rows:
            lines.append(
                f"{name:<14} {s['seconds']:>9.3f} {s['calls']:>10d} "
                f"{100.0 * s['seconds'] / total:>6.1f}%"
            )
        if "other_seconds" in d:
            lines.append(
                f"{'other':<14} {d['other_seconds']:>9.3f} {'-':>10} "
                f"{100.0 * d['other_seconds'] / total:>6.1f}%"
            )
            lines.append(f"{'total':<14} {d['wall_seconds']:>9.3f}")
        return "\n".join(lines)


def _wrapped(bound_method, prof: Profiler, name: str):
    def timed(*args, **kwargs):
        prof.push(name)
        try:
            return bound_method(*args, **kwargs)
        finally:
            prof.pop()

    return timed


# -- class patches (refcounted; zero cost while not installed) ------------
_patch_depth = 0
_saved = {}


def _patch_classes() -> None:
    global _patch_depth
    _patch_depth += 1
    if _patch_depth > 1:
        return
    from repro.sim.process import Process
    from repro.trace.tracer import Tracer

    _saved["step"] = orig_step = Process._step

    def profiled_step(self, send=None, throw=None):
        prof = self.env.profiler
        if prof is None:
            return orig_step(self, send, throw)
        prof.push("protocol")
        try:
            return orig_step(self, send, throw)
        finally:
            prof.pop()

    Process._step = profiled_step

    for meth in ("begin", "end", "complete", "instant", "counter"):
        _saved[meth] = _make_traced(Tracer, meth)

    from repro.core.transports.adaptive import _GroupStream

    for meth in _STREAM_METHODS:
        _saved["stream." + meth] = _make_stream_profiled(_GroupStream, meth)


def _make_traced(cls, meth: str):
    orig = getattr(cls, meth)

    def profiled(self, *args, **kwargs):
        env = self._env
        prof = env.profiler if env is not None else None
        if prof is None:
            return orig(self, *args, **kwargs)
        prof.push("tracer")
        try:
            return orig(self, *args, **kwargs)
        finally:
            prof.pop()

    setattr(cls, meth, profiled)
    return orig


def _make_stream_profiled(cls, meth: str):
    orig = getattr(cls, meth)

    def profiled(self, *args, **kwargs):
        prof = self.env.profiler
        if prof is None:
            return orig(self, *args, **kwargs)
        prof.push("protocol.stream")
        try:
            return orig(self, *args, **kwargs)
        finally:
            prof.pop()

    setattr(cls, meth, profiled)
    return orig


def _unpatch_classes() -> None:
    global _patch_depth
    _patch_depth -= 1
    if _patch_depth > 0:
        return
    from repro.sim.process import Process
    from repro.trace.tracer import Tracer
    from repro.core.transports.adaptive import _GroupStream

    Process._step = _saved.pop("step")
    for meth in ("begin", "end", "complete", "instant", "counter"):
        setattr(Tracer, meth, _saved.pop(meth))
    for meth in _STREAM_METHODS:
        setattr(_GroupStream, meth, _saved.pop("stream." + meth))


@contextmanager
def profiling(machine: "Machine", profiler: Optional[Profiler] = None):
    """Profile everything the machine simulates inside the block.

    Measures total wall time across the block so the report can show
    the ``other`` (outside-``env.run``) share.
    """
    prof = profiler if profiler is not None else Profiler()
    prof.install(machine)
    t0 = perf_counter()
    try:
        yield prof
    finally:
        prof.wall_total = (prof.wall_total or 0.0) + perf_counter() - t0
        prof.uninstall(machine)
