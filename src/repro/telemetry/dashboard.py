"""Self-contained single-file HTML dashboard for one run's telemetry.

Input is a :meth:`MetricsRegistry.snapshot` dict (plus, optionally, a
:meth:`Profiler.to_dict` breakdown) — everything is rendered inline
(CSS + SVG, no external assets, no JavaScript dependencies), so the
output file can be attached to a ticket or opened from a cluster
scratch directory as-is.

Content:

* summary tiles (runs, OSTs, settles, events, flagged stragglers);
* an inline-SVG time-series of per-OST inflow with straggler OSTs
  highlighted and first-flag annotations;
* the matching per-OST cache-fill time-series;
* the straggler table (first flag time per OST);
* the self-profiler's subsystem flame table.
"""

from __future__ import annotations

import html
from typing import Dict, List, Optional, Tuple

__all__ = ["render_dashboard"]

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 72rem; color: #1a1a2e;
       background: #fafafa; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
.tiles { display: flex; gap: 1rem; flex-wrap: wrap; }
.tile { background: #fff; border: 1px solid #e0e0e8; border-radius: 8px;
        padding: .8rem 1.2rem; min-width: 8rem; }
.tile .v { font-size: 1.5rem; font-weight: 600; }
.tile .k { font-size: .75rem; color: #667; text-transform: uppercase;
           letter-spacing: .05em; }
.tile.bad .v { color: #c0392b; }
svg { background: #fff; border: 1px solid #e0e0e8; border-radius: 8px; }
table { border-collapse: collapse; background: #fff; }
th, td { border: 1px solid #e0e0e8; padding: .35rem .8rem;
         font-size: .85rem; text-align: right; }
th { background: #f0f0f5; }
td:first-child, th:first-child { text-align: left; }
.note { color: #667; font-size: .8rem; }
"""

_STRAGGLER = "#c0392b"
_NORMAL = "#4878a8"


def _series_by_ost(snapshot: dict, name: str, run: int
                   ) -> Dict[int, List[Tuple[float, float]]]:
    out: Dict[int, List[Tuple[float, float]]] = {}
    for m in snapshot.get("metrics", ()):
        if m["kind"] != "series" or m["name"] != name:
            continue
        ost = m.get("labels", {}).get("ost")
        if ost is None:
            continue
        pts = [(t, v) for r, t, v in m["state"] if r == run]
        if pts:
            out[int(ost)] = pts
    return out


def _scalar_series(snapshot: dict, name: str, run: int
                   ) -> List[Tuple[float, float]]:
    for m in snapshot.get("metrics", ()):
        if (m["kind"] == "series" and m["name"] == name
                and not m.get("labels")):
            return [(t, v) for r, t, v in m["state"] if r == run]
    return []


def _counter_total(snapshot: dict, name: str) -> Optional[float]:
    total = None
    for m in snapshot.get("metrics", ()):
        if m["kind"] == "counter" and m["name"] == name:
            total = (total or 0.0) + float(m["state"])
    return total


def _by_label(snapshot: dict, name: str, label: str) -> Dict[str, float]:
    """Metric totals keyed by one label's value (e.g. per tenant)."""
    out: Dict[str, float] = {}
    for m in snapshot.get("metrics", ()):
        if m["name"] != name or m["kind"] not in ("counter", "gauge"):
            continue
        key = m.get("labels", {}).get(label)
        if key is None:
            continue
        out[str(key)] = out.get(str(key), 0.0) + float(m["state"])
    return out


def _pick_run(snapshot: dict) -> int:
    """The run with the most per-OST inflow samples (the main cell)."""
    counts: Dict[int, int] = {}
    for m in snapshot.get("metrics", ()):
        if m["kind"] == "series" and m["name"] == "ost.inflow":
            for r, _t, _v in m["state"]:
                counts[r] = counts.get(r, 0) + 1
    if not counts:
        return 0
    return max(counts.items(), key=lambda kv: kv[1])[0]


def _flag_times(snapshot: dict, run: int) -> Dict[int, float]:
    """First flag time per OST, from the persisted transition series."""
    flags: Dict[int, float] = {}
    for m in snapshot.get("metrics", ()):
        if m["kind"] != "series" or m["name"] != "ost.straggler":
            continue
        ost = int(m.get("labels", {}).get("ost", -1))
        for r, t, v in m["state"]:
            if r == run and v >= 1.0 and ost not in flags:
                flags[ost] = t
    return flags


def _svg_timeseries(
    per_ost: Dict[int, List[Tuple[float, float]]],
    flagged: Dict[int, float],
    y_label: str,
    y_scale: float = 1.0,
    width: int = 1080,
    height: int = 300,
    max_normal: int = 64,
) -> str:
    if not per_ost:
        return "<p class='note'>no samples recorded</p>"
    pad_l, pad_r, pad_t, pad_b = 64, 16, 14, 30
    all_pts = [p for pts in per_ost.values() for p in pts]
    t0 = min(p[0] for p in all_pts)
    t1 = max(p[0] for p in all_pts)
    v1 = max(max(p[1] for p in all_pts) * y_scale, 1e-12)
    span_t = max(t1 - t0, 1e-12)

    def x(t: float) -> float:
        return pad_l + (t - t0) / span_t * (width - pad_l - pad_r)

    def y(v: float) -> float:
        return height - pad_b - v / v1 * (height - pad_t - pad_b)

    # Stragglers always drawn (on top); normal OSTs thinned if many.
    normals = sorted(o for o in per_ost if o not in flagged)
    if len(normals) > max_normal:
        step = len(normals) / max_normal
        normals = [normals[int(i * step)] for i in range(max_normal)]
    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" xmlns="http://www.w3.org/2000/svg">'
    ]
    # Axes + labels.
    parts.append(
        f'<line x1="{pad_l}" y1="{height - pad_b}" x2="{width - pad_r}" '
        f'y2="{height - pad_b}" stroke="#99a"/>'
        f'<line x1="{pad_l}" y1="{pad_t}" x2="{pad_l}" '
        f'y2="{height - pad_b}" stroke="#99a"/>'
    )
    for frac in (0.0, 0.5, 1.0):
        tv = t0 + frac * span_t
        vv = frac * v1
        parts.append(
            f'<text x="{x(tv):.1f}" y="{height - 8}" font-size="11" '
            f'fill="#667" text-anchor="middle">{tv:.2f}s</text>'
        )
        parts.append(
            f'<text x="{pad_l - 6}" y="{y(vv) + 4:.1f}" font-size="11" '
            f'fill="#667" text-anchor="end">{vv:.3g}</text>'
        )
    parts.append(
        f'<text x="14" y="{height / 2:.0f}" font-size="11" fill="#445" '
        f'transform="rotate(-90 14 {height / 2:.0f})" '
        f'text-anchor="middle">{html.escape(y_label)}</text>'
    )

    def polyline(ost: int, color: str, opacity: float, w: float) -> str:
        pts = " ".join(
            f"{x(t):.1f},{y(v * y_scale):.1f}" for t, v in per_ost[ost]
        )
        return (
            f'<polyline points="{pts}" fill="none" stroke="{color}" '
            f'stroke-width="{w}" stroke-opacity="{opacity}">'
            f"<title>ost {ost}</title></polyline>"
        )

    for ost in normals:
        parts.append(polyline(ost, _NORMAL, 0.35, 1.0))
    for ost in sorted(flagged):
        if ost in per_ost:
            parts.append(polyline(ost, _STRAGGLER, 0.9, 1.6))
    # First-flag annotations: dashed vertical line + OST label.
    for ost, t in sorted(flagged.items(), key=lambda kv: kv[1]):
        parts.append(
            f'<line x1="{x(t):.1f}" y1="{pad_t}" x2="{x(t):.1f}" '
            f'y2="{height - pad_b}" stroke="{_STRAGGLER}" '
            f'stroke-dasharray="4 3" stroke-opacity="0.6"/>'
            f'<text x="{x(t) + 3:.1f}" y="{pad_t + 10}" font-size="10" '
            f'fill="{_STRAGGLER}">ost {ost}</text>'
        )
    parts.append("</svg>")
    note = ""
    if len(per_ost) > len(normals) + len(flagged):
        note = (
            f"<p class='note'>showing {len(normals)} of "
            f"{len(per_ost) - len(flagged)} unflagged OSTs "
            f"(plus all {len(flagged)} flagged)</p>"
        )
    return "".join(parts) + note


def _qos_table(snapshot: dict) -> Optional[str]:
    """Per-tenant QoS panel: served/throttled bytes + aggressor ticks.

    Returns None when the snapshot carries no QoS metrics (no control
    plane installed), so the dashboard omits the section entirely.
    """
    served = _by_label(snapshot, "qos.served_bytes", "tenant")
    if not served:
        return None
    throttled = _by_label(snapshot, "qos.throttled_bytes", "tenant")
    aggro = _by_label(snapshot, "qos.aggressor_ticks", "tenant")
    rows = []
    for name in sorted(served):
        s = served.get(name, 0.0)
        th = throttled.get(name, 0.0)
        at = aggro.get(name, 0.0)
        frac = th / (s + th) if (s + th) > 0 else 0.0
        tag = (
            " <span style='color:#c0392b'>(aggressor)</span>"
            if at > 0 else ""
        )
        rows.append(
            f"<tr><td>{html.escape(name)}{tag}</td>"
            f"<td>{s / 1e6:.1f}</td><td>{th / 1e6:.1f}</td>"
            f"<td>{100.0 * frac:.1f}%</td><td>{int(at)}</td></tr>"
        )
    return (
        "<table><tr><th>tenant</th><th>served (MB)</th>"
        "<th>throttled (MB)</th><th>throttled share</th>"
        "<th>aggressor ticks</th></tr>" + "".join(rows) + "</table>"
    )


def _profile_table(profile: dict) -> str:
    sections = profile.get("sections", {})
    total = profile.get("wall_seconds", profile.get("tracked_seconds", 0.0))
    total = total or 1e-12
    rows = sorted(sections.items(), key=lambda kv: -kv[1]["seconds"])
    body = []
    for name, s in rows:
        share = 100.0 * s["seconds"] / total
        bar = (
            f'<div style="background:{_NORMAL};height:10px;'
            f'width:{max(share, 0.5):.1f}%"></div>'
        )
        body.append(
            f"<tr><td>{html.escape(name)}</td>"
            f"<td>{s['seconds']:.3f}</td><td>{s['calls']}</td>"
            f"<td>{share:.1f}%</td><td style='min-width:14rem;"
            f"text-align:left'>{bar}</td></tr>"
        )
    if "other_seconds" in profile:
        share = 100.0 * profile["other_seconds"] / total
        body.append(
            f"<tr><td>other</td><td>{profile['other_seconds']:.3f}</td>"
            f"<td>-</td><td>{share:.1f}%</td><td></td></tr>"
        )
    return (
        "<table><tr><th>subsystem</th><th>seconds</th><th>calls</th>"
        "<th>share</th><th></th></tr>" + "".join(body) + "</table>"
        + (f"<p class='note'>total wall: {total:.3f}s</p>"
           if "wall_seconds" in profile else "")
    )


def render_dashboard(
    snapshot: dict,
    profile: Optional[dict] = None,
    title: str = "repro run telemetry",
) -> str:
    """Render the snapshot (and optional profile) as a full HTML page."""
    run = _pick_run(snapshot)
    inflow = _series_by_ost(snapshot, "ost.inflow", run)
    cache = _series_by_ost(snapshot, "ost.cache_fill", run)
    flagged = _flag_times(snapshot, run)
    n_runs = int(snapshot.get("n_runs", 0)) or 1
    settles = _counter_total(snapshot, "fabric.settles")
    events = _scalar_series(snapshot, "sim.events", run)

    tiles = [
        ("runs in snapshot", str(n_runs), ""),
        ("OSTs sampled", str(len(inflow)), ""),
        (
            "stragglers flagged",
            str(len(flagged)),
            " bad" if flagged else "",
        ),
    ]
    if settles is not None:
        tiles.append(("fabric settles", f"{int(settles)}", ""))
    if events:
        tiles.append(("calendar events", f"{int(events[-1][1])}", ""))
    tile_html = "".join(
        f"<div class='tile{cls}'><div class='v'>{v}</div>"
        f"<div class='k'>{k}</div></div>"
        for k, v, cls in tiles
    )

    straggler_rows = "".join(
        f"<tr><td>ost {ost}</td><td>{t:.3f}s</td></tr>"
        for ost, t in sorted(flagged.items(), key=lambda kv: kv[1])
    )
    straggler_html = (
        "<table><tr><th>target</th><th>first flagged at</th></tr>"
        + straggler_rows + "</table>"
        if flagged
        else "<p class='note'>no stragglers flagged</p>"
    )

    sections = [
        f"<h1>{html.escape(title)}</h1>",
        f"<p class='note'>showing run {run} of {n_runs}</p>",
        f"<div class='tiles'>{tile_html}</div>",
        "<h2>Per-OST inflow</h2>",
        _svg_timeseries(inflow, flagged, "inflow (MB/s)", y_scale=1e-6),
        "<h2>Per-OST cache fill</h2>",
        _svg_timeseries(cache, flagged, "cache fill (fraction)"),
        "<h2>Stragglers</h2>",
        straggler_html,
    ]
    qos_html = _qos_table(snapshot)
    if qos_html is not None:
        congested = _counter_total(snapshot, "qos.congested_ticks")
        note = (
            f"<p class='note'>congested controller ticks: "
            f"{int(congested or 0)}</p>"
        )
        sections += ["<h2>QoS tenants</h2>", qos_html, note]
    if profile:
        sections += ["<h2>Self-profile (wall-clock)</h2>",
                     _profile_table(profile)]
    return (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        f"<title>{html.escape(title)}</title><style>{_CSS}</style></head>"
        "<body>" + "".join(sections) + "</body></html>"
    )
