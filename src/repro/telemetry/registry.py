"""The metrics registry: labeled instruments over simulated time.

Four instrument kinds, deliberately few:

==========  ==========================================================
Counter     monotonically increasing count (settles, retries, bytes)
Gauge       last-written value (active flows, calendar depth)
Histogram   bucketed distribution of observations (write latencies)
Series      sim-time-stamped samples — the raw material for per-OST
            timelines in the dashboard
==========  ==========================================================

Instruments are labeled: ``registry.counter("ost.state_change",
kind="failed")`` and ``registry.series("ost.inflow", ost=17)`` are
distinct time series, exported as ``repro_ost_state_change
{kind="failed"}`` in the Prometheus text format.

Cost model (mirrors the tracer): instrumented layers hold a nullable
reference (``env.metrics``, ``fabric.metrics`` …) and skip the call
entirely when it is None — one attribute load per site when telemetry
is off.  A registry constructed with ``enabled=False`` additionally
hands out shared no-op instruments, so code holding an instrument
reference needs no branch of its own; :data:`NULL_REGISTRY` is the
canonical disabled singleton.

Like the tracer, one registry may observe several simulation runs (a
sweep builds a fresh environment per cell): each :meth:`bind` starts a
new *run*, Series samples carry the run index, and
:meth:`MetricsRegistry.absorb` merges a worker process's snapshot
while re-indexing its runs — the exact contract
:meth:`repro.trace.Tracer.absorb` established for parallel sweeps.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from contextlib import contextmanager
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "Series",
    "collecting",
    "get_active_registry",
    "set_active_registry",
]

LabelsKey = Tuple[Tuple[str, str], ...]


def _labels_key(labels: Dict[str, object]) -> LabelsKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """Monotonic count.  ``inc`` is the only mutator."""

    __slots__ = ("name", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, labels: LabelsKey = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        self.value += n

    def state(self):
        return self.value

    def merge(self, state) -> None:
        self.value += state


class Gauge:
    """Last-written value."""

    __slots__ = ("name", "labels", "value")
    kind = "gauge"

    def __init__(self, name: str, labels: LabelsKey = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, v: float) -> None:
        self.value = v

    def state(self):
        return self.value

    def merge(self, state) -> None:
        self.value = state  # last writer wins, like set()


# Default bucket bounds suit simulated-seconds latencies (sub-ms to
# minutes); pass explicit ``buckets`` for anything else.
_DEFAULT_BUCKETS = (0.001, 0.01, 0.1, 1.0, 10.0, 60.0, 600.0)


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics)."""

    __slots__ = ("name", "labels", "bounds", "counts", "sum", "count")
    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: LabelsKey = (),
        buckets: Tuple[float, ...] = _DEFAULT_BUCKETS,
    ):
        self.name = name
        self.labels = labels
        self.bounds = tuple(float(b) for b in buckets)
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError("histogram buckets must be strictly increasing")
        self.counts = [0] * (len(self.bounds) + 1)  # last = +Inf overflow
        self.sum = 0.0
        self.count = 0

    def observe(self, v: float) -> None:
        self.counts[bisect_left(self.bounds, v)] += 1
        self.sum += v
        self.count += 1

    def state(self):
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }

    def merge(self, state) -> None:
        if list(state["bounds"]) != list(self.bounds):
            raise ValueError(
                f"histogram {self.name}: bucket bounds differ across "
                "merged registries"
            )
        for i, c in enumerate(state["counts"]):
            self.counts[i] += c
        self.sum += state["sum"]
        self.count += state["count"]


class Series:
    """Sim-time-stamped samples ``(run, t, value)``.

    The registry stamps each sample with its current run index, so a
    sweep's per-cell timelines stay separable after the fact (and
    after a worker merge).
    """

    __slots__ = ("name", "labels", "samples", "_registry")
    kind = "series"

    def __init__(self, name: str, labels: LabelsKey = (),
                 registry: Optional["MetricsRegistry"] = None):
        self.name = name
        self.labels = labels
        self.samples: List[Tuple[int, float, float]] = []
        self._registry = registry

    def sample(self, t: float, v: float) -> None:
        run = self._registry.run if self._registry is not None else 0
        self.samples.append((run, t, v))

    @property
    def last(self) -> Optional[float]:
        return self.samples[-1][2] if self.samples else None

    def state(self):
        return [[r, t, v] for r, t, v in self.samples]

    def merge(self, state, run_base: int = 0) -> None:
        self.samples.extend(
            (int(r) + run_base, float(t), v) for r, t, v in state
        )


class _NullInstrument:
    """Shared do-nothing instrument handed out by a disabled registry."""

    __slots__ = ()
    name = "null"
    labels: LabelsKey = ()
    value = 0.0
    sum = 0.0
    count = 0
    samples: List[Tuple[int, float, float]] = []
    last = None

    def inc(self, n: float = 1.0) -> None:
        pass

    def set(self, v: float) -> None:
        pass

    def observe(self, v: float) -> None:
        pass

    def sample(self, t: float, v: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()

_KINDS = {
    "counter": Counter,
    "gauge": Gauge,
    "histogram": Histogram,
    "series": Series,
}


class MetricsRegistry:
    """Creates, owns and exports instruments.

    ``enabled=False`` makes every accessor return the shared no-op
    instrument: a layer can bind instruments unconditionally and pay
    nothing at record time.  (Hot paths should still prefer the
    ``attr is None`` skip — see the module docstring.)
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._instruments: Dict[Tuple[str, str, LabelsKey], object] = {}
        self.run = 0
        self._env: Optional["Environment"] = None
        self._n_binds = 0

    # -- lifecycle -------------------------------------------------------
    def bind(self, env: "Environment") -> None:
        """Attach to an environment; a new environment starts a new run."""
        if env is self._env:
            return
        self._env = env
        self.run = self._n_binds
        self._n_binds += 1

    @property
    def n_runs(self) -> int:
        return max(self._n_binds, 1)

    def clear(self) -> None:
        self._instruments.clear()

    def __len__(self) -> int:
        return len(self._instruments)

    # -- instrument accessors (get-or-create) ----------------------------
    def _get(self, kind: str, name: str, labels: Dict[str, object],
             **kwargs):
        if not self.enabled:
            return _NULL_INSTRUMENT
        key = (kind, name, _labels_key(labels))
        inst = self._instruments.get(key)
        if inst is None:
            if kind == "series":
                inst = Series(name, key[2], registry=self)
            else:
                inst = _KINDS[kind](name, key[2], **kwargs)
            self._instruments[key] = inst
        return inst

    def counter(self, name: str, **labels) -> Counter:
        return self._get("counter", name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get("gauge", name, labels)

    def histogram(
        self,
        name: str,
        buckets: Tuple[float, ...] = _DEFAULT_BUCKETS,
        **labels,
    ) -> Histogram:
        return self._get("histogram", name, labels, buckets=buckets)

    def series(self, name: str, **labels) -> Series:
        return self._get("series", name, labels)

    # -- queries ---------------------------------------------------------
    def instruments(self, name: Optional[str] = None) -> List[object]:
        """All instruments, optionally filtered by metric name."""
        out = [
            inst for (_k, n, _l), inst in sorted(self._instruments.items())
            if name is None or n == name
        ]
        return out

    def find(self, kind: str, name: str, **labels):
        """The instrument if it exists, else None (never creates)."""
        return self._instruments.get((kind, name, _labels_key(labels)))

    # -- snapshot / merge ------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-safe dump of every instrument (and the run count)."""
        metrics = []
        for (kind, name, labels), inst in sorted(self._instruments.items()):
            metrics.append(
                {
                    "kind": kind,
                    "name": name,
                    "labels": dict(labels),
                    "state": inst.state(),
                }
            )
        return {"version": 1, "n_runs": self._n_binds, "metrics": metrics}

    def absorb(self, snap: dict) -> None:
        """Merge a worker registry's :meth:`snapshot`.

        Counters and histograms add; gauges take the absorbed value;
        Series samples are appended with their run indices re-based
        onto this registry's sequence (same contract as
        ``Tracer.absorb``), so a parallel sweep yields the same
        one-run-per-sample structure as a serial one.
        """
        if not self.enabled or not snap:
            return
        run_base = self._n_binds
        for m in snap.get("metrics", ()):
            kind, name = m["kind"], m["name"]
            labels = m.get("labels", {})
            if kind == "histogram":
                inst = self._get(kind, name, labels,
                                 buckets=tuple(m["state"]["bounds"]))
            else:
                inst = self._get(kind, name, labels)
            if kind == "series":
                inst.merge(m["state"], run_base=run_base)
            else:
                inst.merge(m["state"])
        self._n_binds = run_base + max(int(snap.get("n_runs", 0)), 1)

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, default=float)

    # -- Prometheus text exposition --------------------------------------
    def to_prometheus(self, prefix: str = "repro") -> str:
        """Text exposition format (one point in time).

        Counters export as ``<name>_total``; histograms as the
        standard ``_bucket``/``_sum``/``_count`` triplet; a Series
        exports its most recent value as a gauge (Prometheus has no
        native timeline type — the full timeline lives in the JSON
        snapshot and the dashboard).
        """
        by_name: Dict[Tuple[str, str], List[object]] = {}
        for (kind, name, _labels), inst in sorted(self._instruments.items()):
            by_name.setdefault((kind, name), []).append(inst)
        lines: List[str] = []
        for (kind, name), insts in by_name.items():
            metric = f"{prefix}_{_sanitize(name)}"
            if kind == "counter":
                metric += "_total"
            lines.append(f"# TYPE {metric} "
                         f"{'gauge' if kind == 'series' else kind}")
            for inst in insts:
                if kind == "histogram":
                    cum = 0
                    for bound, n in zip(inst.bounds, inst.counts):
                        cum += n
                        lines.append(
                            f"{metric}_bucket"
                            f"{_fmt_labels(inst.labels, le=_fmt_num(bound))}"
                            f" {cum}"
                        )
                    lines.append(
                        f"{metric}_bucket"
                        f"{_fmt_labels(inst.labels, le='+Inf')}"
                        f" {inst.count}"
                    )
                    lines.append(
                        f"{metric}_sum{_fmt_labels(inst.labels)}"
                        f" {_fmt_num(inst.sum)}"
                    )
                    lines.append(
                        f"{metric}_count{_fmt_labels(inst.labels)}"
                        f" {inst.count}"
                    )
                elif kind == "series":
                    if inst.last is None:
                        continue
                    lines.append(
                        f"{metric}{_fmt_labels(inst.labels)}"
                        f" {_fmt_num(inst.last)}"
                    )
                else:
                    lines.append(
                        f"{metric}{_fmt_labels(inst.labels)}"
                        f" {_fmt_num(inst.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")


def _sanitize(name: str) -> str:
    return "".join(c if c.isalnum() or c == "_" else "_" for c in name)


def _fmt_num(v: float) -> str:
    f = float(v)
    if f == int(f) and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def _fmt_labels(labels: LabelsKey, **extra: str) -> str:
    items = list(labels) + sorted(extra.items())
    if not items:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in items)
    return "{" + body + "}"


#: The canonical disabled registry: hand this to code that requires a
#: registry argument when telemetry is off.
NULL_REGISTRY = MetricsRegistry(enabled=False)


# -- active-registry plumbing (mirrors the tracer's) ----------------------
_ACTIVE: Optional[MetricsRegistry] = None


def set_active_registry(registry: Optional[MetricsRegistry]) -> None:
    """Install (or clear, with None) the process-wide active registry."""
    global _ACTIVE
    _ACTIVE = registry


def get_active_registry() -> Optional[MetricsRegistry]:
    """The registry newly built machines attach to, if any."""
    return _ACTIVE


@contextmanager
def collecting(registry: Optional[MetricsRegistry] = None):
    """Scope in which every machine built records into *registry*."""
    reg = registry if registry is not None else MetricsRegistry()
    previous = get_active_registry()
    set_active_registry(reg)
    try:
        yield reg
    finally:
        set_active_registry(previous)
