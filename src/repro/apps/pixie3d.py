"""Pixie3D (Chacón): 3D implicit extended-MHD IO kernel.

"The output data of Pixie3D consists of eight double-precision, 3D
arrays.  The small run uses 32-cubes, large uses 128-cubes, while
extra large uses 256-cubes ... the small run generates 2 MB/process,
large generates 128 MB/process, and extra large generates
1 GB/process.  Weak scaling is employed."
"""

from __future__ import annotations

from repro.apps.base import AppKernel, Variable

__all__ = ["pixie3d", "PIXIE3D_MODELS"]

# The eight extended-MHD state arrays: density, momentum (3), magnetic
# field (3), temperature.
_VAR_NAMES_RANGES = [
    ("rho", (0.1, 10.0)),
    ("px", (-5.0, 5.0)),
    ("py", (-5.0, 5.0)),
    ("pz", (-5.0, 5.0)),
    ("bx", (-2.0, 2.0)),
    ("by", (-2.0, 2.0)),
    ("bz", (-2.0, 2.0)),
    ("temp", (0.0, 100.0)),
]

PIXIE3D_MODELS = {
    "small": 32,
    "large": 128,
    "xl": 256,
}


def pixie3d(model: str = "large") -> AppKernel:
    """The Pixie3D IO kernel at one of the paper's three sizes.

    ``model`` is "small" (2 MB/process), "large" (128 MB/process) or
    "xl" (1 GB/process).
    """
    try:
        cube = PIXIE3D_MODELS[model]
    except KeyError:
        raise ValueError(
            f"unknown Pixie3D model {model!r}; choose from "
            f"{sorted(PIXIE3D_MODELS)}"
        ) from None
    variables = [
        Variable(name, shape=(cube, cube, cube), dtype="f8", value_range=rng)
        for name, rng in _VAR_NAMES_RANGES
    ]
    return AppKernel(f"pixie3d.{model}", variables)
