"""XGC1 (Chang & Ku): gyrokinetic particle-in-cell edge-plasma kernel.

"These tests are performed using a configuration that generates 38 MB
per process and weak scaling is used."  The variable split below is a
representative PIC restart: the particle phase-space array dominates,
with particle weights and a small field mesh alongside — summing to
exactly 38 MB (decimal) per process.
"""

from __future__ import annotations

from repro.apps.base import AppKernel, Variable

__all__ = ["xgc1"]


def xgc1() -> AppKernel:
    """The paper's 38 MB/process XGC1 production configuration."""
    # 8 phase-space components x 520 000 ions x 8 B = 33.28 MB
    # 1 weight             x 520 000 ions x 8 B =  4.16 MB
    # potential mesh            70 000 nodes x 8 B =  0.56 MB
    #                                        total = 38.00 MB
    variables = [
        Variable(
            "iphase", shape=(520_000, 8), dtype="f8",
            value_range=(-3.14159, 3.14159),
        ),
        Variable(
            "iweight", shape=(520_000,), dtype="f8", value_range=(0.0, 2.0)
        ),
        Variable(
            "pot", shape=(70_000,), dtype="f8", value_range=(-500.0, 500.0)
        ),
    ]
    return AppKernel("xgc1", variables)
