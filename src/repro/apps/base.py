"""Application data models: variables, sizes, index generation."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.index import Characteristics, IndexEntry, block_checksum

__all__ = ["Variable", "AppKernel"]

_DTYPE_BYTES = {
    "f8": 8,
    "f4": 4,
    "i8": 8,
    "i4": 4,
}


@dataclass(frozen=True)
class Variable:
    """One output variable as seen per process.

    Parameters
    ----------
    name:
        Variable name in the output set.
    shape:
        Per-process block shape.
    dtype:
        Element type code ("f8", "f4", "i8", "i4").
    value_range:
        Physical range the synthetic characteristics are drawn from.
    """

    name: str
    shape: Tuple[int, ...]
    dtype: str = "f8"
    value_range: Tuple[float, float] = (-1.0, 1.0)

    def __post_init__(self):
        if self.dtype not in _DTYPE_BYTES:
            raise ValueError(f"unknown dtype {self.dtype!r}")
        if any(d < 1 for d in self.shape):
            raise ValueError("shape dims must be >= 1")
        lo, hi = self.value_range
        if lo > hi:
            raise ValueError("value_range must be (low, high)")
        # Precomputed: count/nbytes are read per (rank, var) on the
        # index hot path — n_ranks * n_vars times per output.
        n = 1
        for d in self.shape:
            n *= d
        object.__setattr__(self, "_count", n)
        object.__setattr__(self, "_nbytes", float(n * _DTYPE_BYTES[self.dtype]))

    @property
    def count(self) -> int:
        return self._count

    @property
    def nbytes(self) -> float:
        return self._nbytes


class AppKernel:
    """An application's per-process output model.

    Every process emits the same variable set (weak scaling), so the
    kernel is shared across ranks; per-rank synthetic characteristics
    are derived deterministically from (app, rank, var).

    ``checksums`` (default on) makes every index entry carry a
    per-block content checksum and every write register its blocks
    with the storage layer, enabling read-back verification and
    scrubbing.  Turn it off to model checksum-free output (blocks
    classify as unverified, silent corruption goes undetected).
    """

    def __init__(self, name: str, variables: List[Variable],
                 checksums: bool = True):
        if not variables:
            raise ValueError("an app kernel needs at least one variable")
        names = [v.name for v in variables]
        if len(set(names)) != len(names):
            raise ValueError("duplicate variable names")
        self.name = name
        self.variables: Tuple[Variable, ...] = tuple(variables)
        self.checksums = bool(checksums)
        self._cksum_cache: dict = {}

    def _checksum(self, var: Variable, rank: int) -> Optional[int]:
        """Cached :func:`block_checksum` — index_entries and data_blocks
        hash the same (var, rank) triple once each per write otherwise."""
        if not self.checksums:
            return None
        key = (var.name, rank)
        c = self._cksum_cache.get(key)
        if c is None:
            c = block_checksum(var.name, rank, var.nbytes)
            self._cksum_cache[key] = c
        return c

    @property
    def per_process_bytes(self) -> float:
        return float(sum(v.nbytes for v in self.variables))

    def total_bytes(self, n_ranks: int) -> float:
        return self.per_process_bytes * n_ranks

    def _var_digest(self, rank: int, var: Variable) -> bytes:
        return hashlib.sha256(
            f"{self.name}:{rank}:{var.name}".encode()
        ).digest()

    def _var_rng(self, rank: int, var: Variable) -> np.random.Generator:
        digest = self._var_digest(rank, var)
        return np.random.default_rng(int.from_bytes(digest[:8], "little"))

    def characteristics_of(self, rank: int, var: Variable) -> Characteristics:
        """Deterministic synthetic min/max for one rank's block.

        Derived straight from the (app, rank, var) digest: the batched
        protocol builds every rank's index entries inside the cohort
        processes, so this runs n_ranks * n_vars times per output and
        must not pay a fresh numpy Generator per call (~12us each —
        a third of the 8192-proc cell's wall time before this).
        """
        digest = self._var_digest(rank, var)
        lo, hi = var.value_range
        span = hi - lo
        a = lo + span * (int.from_bytes(digest[8:16], "little") / 2.0**64)
        b = lo + span * (int.from_bytes(digest[16:24], "little") / 2.0**64)
        if b < a:
            a, b = b, a
        return Characteristics(float(a), float(b), var.count)

    def index_entries(
        self,
        rank: int,
        base_offset: float,
        with_characteristics: bool = True,
    ) -> List[IndexEntry]:
        """The local index of one rank's output at ``base_offset``.

        Variables are laid out back-to-back in declaration order, the
        ADIOS process-group layout.
        """
        entries: List[IndexEntry] = []
        offset = base_offset
        for var in self.variables:
            chars = (
                self.characteristics_of(rank, var)
                if with_characteristics
                else None
            )
            entries.append(
                IndexEntry(
                    var=var.name,
                    writer=rank,
                    offset=offset,
                    nbytes=var.nbytes,
                    characteristics=chars,
                    checksum=self._checksum(var, rank),
                )
            )
            offset += var.nbytes
        return entries

    def data_blocks(
        self, rank: int, base_offset: float
    ) -> List[Tuple[float, float, Optional[int]]]:
        """``(offset, nbytes, checksum)`` per variable block of one rank.

        What a writer hands to :meth:`FileSystem.write` so the storage
        layer records the blocks it absorbed; matches
        :meth:`index_entries` block for block (same layout, same
        checksums) without paying for characteristics.
        """
        blocks: List[Tuple[float, float, Optional[int]]] = []
        offset = base_offset
        for var in self.variables:
            blocks.append((
                offset,
                var.nbytes,
                self._checksum(var, rank),
            ))
            offset += var.nbytes
        return blocks

    def sample_block(self, rank: int, var_name: str, n: int = 64) -> np.ndarray:
        """A small representative data block (tests / examples only)."""
        var = next((v for v in self.variables if v.name == var_name), None)
        if var is None:
            raise KeyError(f"{self.name} has no variable {var_name!r}")
        rng = self._var_rng(rank, var)
        lo, hi = var.value_range
        return rng.uniform(lo, hi, size=min(n, var.count))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"AppKernel({self.name!r}, {len(self.variables)} vars, "
            f"{self.per_process_bytes / 1e6:.1f} MB/process)"
        )
