"""GTC (gyrokinetic toroidal code) IO kernel.

The paper cites GTC as generating ~128 MB per process at production
scale ("this 128 MB/process data size is comparable to what many of
the fusion codes generate on a per process basis, such as GTC").
"""

from __future__ import annotations

from repro.apps.base import AppKernel, Variable

__all__ = ["gtc"]


def gtc(particles_per_process: int = 2_000_000) -> AppKernel:
    """A GTC restart kernel; default ~128 MB/process.

    8 phase-space components per particle at 8 bytes each =
    64 B/particle; 2 M particles -> 128 MB.
    """
    if particles_per_process < 1:
        raise ValueError("particles_per_process must be >= 1")
    variables = [
        Variable(
            "zion",
            shape=(particles_per_process, 8),
            dtype="f8",
            value_range=(-1.0, 1.0),
        ),
    ]
    return AppKernel("gtc", variables)
