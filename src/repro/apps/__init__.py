"""Application IO kernels: the workloads the paper measures.

Only the *output shape* of each code matters to the IO layer — which
variables of which sizes each process emits per output step — so each
kernel is a data model, not a solver:

* :func:`~repro.apps.pixie3d.pixie3d` — 8 double-precision 3D arrays;
  "small" 32-cubes (2 MB/process), "large" 128-cubes (128 MB/process),
  "extra large" 256-cubes (1 GB/process), weak scaling.
* :func:`~repro.apps.xgc1.xgc1` — gyrokinetic PIC edge-plasma code,
  38 MB/process production configuration.
* :func:`~repro.apps.gtc.gtc` / :func:`~repro.apps.s3d.s3d` —
  companion fusion/combustion kernels used for context in the paper's
  discussion of typical sizes.
"""

from repro.apps.base import AppKernel, Variable
from repro.apps.pixie3d import pixie3d
from repro.apps.xgc1 import xgc1
from repro.apps.gtc import gtc
from repro.apps.s3d import s3d

__all__ = ["AppKernel", "Variable", "gtc", "pixie3d", "s3d", "xgc1"]
