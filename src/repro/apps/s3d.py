"""S3D (turbulent combustion DNS) IO kernel.

The paper uses S3D as a size yardstick: the Pixie3D small model is
"maybe 10% of a typical data size for an application like the S3D
combustion simulation", and 38 MB/process matches "larger S3D runs".
Default here: ~20 MB/process (a mid-sized run).
"""

from __future__ import annotations

from repro.apps.base import AppKernel, Variable

__all__ = ["s3d"]


def s3d(grid: int = 64, n_species: int = 8) -> AppKernel:
    """An S3D restart kernel: velocity, thermodynamic state, species.

    Per-process bytes = (3 + 2 + n_species) * grid^3 * 8.
    The default (64^3, 8 species) gives ~27 MB/process.
    """
    if grid < 1 or n_species < 1:
        raise ValueError("grid and n_species must be >= 1")
    shape = (grid, grid, grid)
    variables = [
        Variable("u", shape, value_range=(-100.0, 100.0)),
        Variable("v", shape, value_range=(-100.0, 100.0)),
        Variable("w", shape, value_range=(-100.0, 100.0)),
        Variable("temp", shape, value_range=(300.0, 2500.0)),
        Variable("pressure", shape, value_range=(0.5, 50.0)),
    ] + [
        Variable(f"Y_{i}", shape, value_range=(0.0, 1.0))
        for i in range(n_species)
    ]
    return AppKernel(f"s3d.{grid}", variables)
