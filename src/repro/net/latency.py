"""Small-message latency model for the control plane.

Control messages (the WRITE_COMPLETE / ADAPTIVE_WRITE_START traffic of
Algorithms 1-3, index shipping, collective trees) are latency-bound,
not bandwidth-bound, so they bypass the fluid network and use the
classic alpha-beta (LogP-lite) model:

    t(size) = alpha + size * beta        (+ per-hop term if configured)

Defaults approximate a SeaStar-class torus: ~6 us one-way latency and
~2 GB/s per-message streaming rate.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MessageLatencyModel"]


@dataclass(frozen=True)
class MessageLatencyModel:
    """alpha-beta message latency.

    Parameters
    ----------
    alpha:
        Fixed per-message latency, seconds.
    beta:
        Seconds per byte (inverse bandwidth).
    hop_latency:
        Extra seconds per network hop when a hop count is supplied.
    """

    alpha: float = 6.0e-6
    beta: float = 1.0 / 2.0e9
    hop_latency: float = 0.0

    def __post_init__(self):
        if self.alpha < 0 or self.beta < 0 or self.hop_latency < 0:
            raise ValueError("latency parameters must be non-negative")

    def point_to_point(self, nbytes: float, hops: int = 0) -> float:
        """One-way latency of an *nbytes* message."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.alpha + nbytes * self.beta + hops * self.hop_latency

    def tree_collective(self, nbytes: float, n_participants: int) -> float:
        """Cost of a binomial-tree collective over *n_participants*."""
        if n_participants < 1:
            raise ValueError("n_participants must be >= 1")
        depth = max(1, (n_participants - 1)).bit_length()
        return depth * self.point_to_point(nbytes)
