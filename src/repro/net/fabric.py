"""Max-min fair fluid-flow network.

Every bulk transfer in the simulator (a writer streaming its buffer to a
storage target, a background-interference job hammering an OST, an
analysis read) is a *flow*: ``(source NIC, sink port, remaining bytes,
optional per-flow rate cap)``.  At any instant the instantaneous rate of
each flow is its share under the **max-min fair allocation** subject to

* per-source capacity (node NIC injection bandwidth),
* per-sink capacity (storage-target ingest, supplied by a
  :class:`SinkPool` and allowed to depend on stream count, cache state
  and external load), and
* the per-flow cap.

The network is *event-lazy*: rates are only recomputed when the flow
set or a capacity changes.  Between recomputations every flow drains
linearly, so the network arms exactly one timer at the earliest of
(next flow completion, next sink capacity transition) and advances all
flow state vectorially in numpy when it fires.  Per state change the
work is O(flows) of numpy, never O(flows) of Python — the property that
makes 16 384-writer experiments feasible.

Churn (flow arrival and departure) gets two further optimizations:

* **Same-instant coalescing** — mutations mark the affected sinks dirty
  and defer the settle to a zero-delay, low-priority calendar entry, so
  a writer group releasing N flows at one simulated timestamp triggers
  one reallocation instead of N.
* **Incremental reallocation** — while no source NIC is saturated the
  max-min allocation decomposes per sink, so a settle whose dirty set
  is small recomputes only the affected sinks' *canonical shares* and
  patches the rates in place.  The canonical-share arithmetic (see
  :func:`_waterfill_sink_shares`) is grouping-independent, which makes
  the patched result bit-identical to a full batch recomputation — the
  repo's parallel==serial determinism contract depends on that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Protocol, Set, Tuple

import numpy as np

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment

__all__ = [
    "FlowNetwork",
    "FlowStats",
    "SinkPool",
    "UniformSinkPool",
    "max_min_fair_rates",
]

_EPS_BYTES = 1e-3  # flows within this many bytes of done are done
_BIG_RATE = 1e18  # rate for flows constrained by nothing
# A source is treated as unsaturated only when its load clears capacity
# by this relative margin; anything tighter goes to the general
# progressive-filling allocator.  The margin is part of the allocation
# *decision*, applied identically by the batch and incremental paths,
# so both always pick the same regime.
_SRC_HEADROOM = 1.0 - 1e-9


@dataclass(frozen=True)
class FlowStats:
    """Completion record delivered as the flow event's value."""

    flow_id: int
    source: int
    sink: int
    nbytes: float
    start_time: float
    end_time: float

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time

    @property
    def mean_rate(self) -> float:
        d = self.duration
        return self.nbytes / d if d > 0 else float("inf")


class SinkPool(Protocol):
    """State provider for the sink side of the network.

    One pool manages *all* sinks with vectorized state so the fabric
    never loops over sinks in Python.  The Lustre OST pool implements
    this protocol; tests use :class:`UniformSinkPool`.
    """

    n_sinks: int

    def advance(self, dt: float, inflow: np.ndarray, now: float) -> None:
        """Integrate internal state over ``dt`` given the inflow rates."""

    def capacities(self, counts: np.ndarray, now: float) -> np.ndarray:
        """Current ingest capacity per sink, given stream counts."""

    def next_transition(
        self, inflow: np.ndarray, counts: np.ndarray, now: float
    ) -> float:
        """Seconds until some sink's capacity will change, or ``inf``."""


class UniformSinkPool:
    """Trivial pool: fixed, state-free capacity per sink."""

    def __init__(self, n_sinks: int, capacity: float):
        if n_sinks < 1:
            raise ValueError("n_sinks must be >= 1")
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.n_sinks = n_sinks
        self._caps = np.full(n_sinks, float(capacity))

    def advance(self, dt: float, inflow: np.ndarray, now: float) -> None:
        pass

    def capacities(self, counts: np.ndarray, now: float) -> np.ndarray:
        return self._caps

    def next_transition(
        self, inflow: np.ndarray, counts: np.ndarray, now: float
    ) -> float:
        return float("inf")


def _waterfill_sink_shares(
    dst_idx: np.ndarray,
    flow_cap: np.ndarray,
    cap_dst: np.ndarray,
    cnt_dst: np.ndarray,
) -> np.ndarray:
    """Canonical per-sink fair-share levels, ignoring source capacities.

    For each sink the share is the waterfill level: flows whose cap
    fits under the level are frozen at their caps, the rest split the
    remaining capacity evenly.  Iteration freezes caps in rising
    waves until a fixed point.

    The arithmetic is deliberately *grouping-independent*: the
    committed (cap-frozen) bandwidth per sink is accumulated with
    ``np.bincount`` over flows in ascending slot order, and every
    iteration recomputes shares from scratch out of the frozen set.
    Recomputing one sink's share from just that sink's flows therefore
    reproduces the exact same floats as a pass over the whole flow set
    — the property the incremental reallocator relies on for
    bit-identity with the batch allocator.

    ``dst_idx``/``flow_cap`` describe the flow subset (in ascending
    slot order); ``cap_dst``/``cnt_dst`` are full-size per-sink arrays,
    where ``cnt_dst`` counts only the subset's flows.  Sinks with
    infinite capacity or zero count get an infinite share.
    """
    n_dst = len(cap_dst)
    infinite = ~np.isfinite(cap_dst)
    with np.errstate(divide="ignore", invalid="ignore"):
        share = np.where(cnt_dst > 0, cap_dst / cnt_dst, np.inf)
    share[infinite] = np.inf
    n_flows = len(dst_idx)
    if n_flows == 0:
        return share
    frozen = np.zeros(n_flows, dtype=bool)
    for _ in range(n_flows + 1):
        newly = ~frozen & (flow_cap <= share[dst_idx])
        if not newly.any():
            break
        frozen |= newly
        order = np.nonzero(frozen)[0]  # ascending slot order
        committed = np.bincount(
            dst_idx[order], weights=flow_cap[order], minlength=n_dst
        )
        live = cnt_dst - np.bincount(dst_idx[order], minlength=n_dst)
        with np.errstate(divide="ignore", invalid="ignore"):
            share = np.where(live > 0, (cap_dst - committed) / live, np.inf)
        share[infinite] = np.inf
        np.maximum(share, 0.0, out=share)
    return share


def _max_min_shares(
    src_idx: np.ndarray,
    dst_idx: np.ndarray,
    cap_src: np.ndarray,
    cap_dst: np.ndarray,
    flow_cap: Optional[np.ndarray] = None,
    counts_src: Optional[np.ndarray] = None,
    counts_dst: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Max-min fair rates plus, when available, canonical sink shares.

    Returns ``(rates, share_dst)``.  ``share_dst`` is the per-sink
    canonical share array such that

        ``rates == minimum(flow_cap, share_dst[dst_idx], _BIG_RATE)``

    whenever the allocation is sink/cap-bound everywhere (no source
    saturated) — the regime :class:`FlowNetwork`'s incremental path can
    patch locally.  ``share_dst`` is ``None`` when a source constraint
    binds and the general progressive-filling allocator produced the
    rates instead.
    """
    n_flows = len(src_idx)
    n_dst = len(cap_dst)
    if n_flows == 0:
        return np.zeros(0), np.full(n_dst, np.inf)
    if flow_cap is None:
        flow_cap = np.full(n_flows, np.inf)
    cap_dst = np.asarray(cap_dst, dtype=np.float64)
    cap_src = np.asarray(cap_src, dtype=np.float64)
    if counts_dst is None:
        cnt_dst = np.bincount(dst_idx, minlength=n_dst).astype(np.float64)
    else:
        cnt_dst = np.asarray(counts_dst, dtype=np.float64)
    share_dst = _waterfill_sink_shares(dst_idx, flow_cap, cap_dst, cnt_dst)
    rates = np.minimum(flow_cap, share_dst[dst_idx])
    np.minimum(rates, _BIG_RATE, out=rates)
    src_load = np.bincount(src_idx, weights=rates, minlength=len(cap_src))
    if np.all(src_load <= cap_src * _SRC_HEADROOM):
        return rates, share_dst
    rates = _progressive_filling(
        src_idx, dst_idx, cap_src, cap_dst, flow_cap,
        counts_src=counts_src, counts_dst=counts_dst,
    )
    return rates, None


def max_min_fair_rates(
    src_idx: np.ndarray,
    dst_idx: np.ndarray,
    cap_src: np.ndarray,
    cap_dst: np.ndarray,
    flow_cap: Optional[np.ndarray] = None,
    counts_src: Optional[np.ndarray] = None,
    counts_dst: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Max-min fair rates for flows over a bipartite capacity graph.

    Parameters
    ----------
    src_idx, dst_idx:
        Per-flow endpoint indices into ``cap_src`` / ``cap_dst``.
    cap_src, cap_dst:
        Resource capacities (bytes/s).  ``inf`` entries are legal.
    flow_cap:
        Optional per-flow rate ceiling.
    counts_src, counts_dst:
        Optional precomputed per-resource flow counts (what
        ``np.bincount(src_idx, minlength=len(cap_src))`` would return).
        The flow network maintains these incrementally and passes them
        in so the allocator never re-derives them.

    Returns
    -------
    rates:
        Per-flow allocated rate, same length as ``src_idx``.
    """
    return _max_min_shares(
        src_idx, dst_idx, cap_src, cap_dst, flow_cap,
        counts_src=counts_src, counts_dst=counts_dst,
    )[0]


def _progressive_filling(
    src_idx: np.ndarray,
    dst_idx: np.ndarray,
    cap_src: np.ndarray,
    cap_dst: np.ndarray,
    flow_cap: np.ndarray,
    counts_src: Optional[np.ndarray] = None,
    counts_dst: Optional[np.ndarray] = None,
) -> np.ndarray:
    """General max-min allocator: textbook progressive filling.

    Handles the entangled case where source saturation couples sinks
    together.  Slower than the per-sink waterfill but fully general.
    """
    n_flows = len(src_idx)
    n_src = len(cap_src)
    n_dst = len(cap_dst)

    # Per-resource live-flow counts; maintained incrementally across
    # rounds (subtracting the newly frozen flows) instead of a fresh
    # O(flows) bincount per round.
    if counts_src is None:
        cnt_src = np.bincount(src_idx, minlength=n_src).astype(np.float64)
    else:
        cnt_src = np.asarray(counts_src, dtype=np.float64).copy()
    if counts_dst is None:
        cnt_dst = np.bincount(dst_idx, minlength=n_dst).astype(np.float64)
    else:
        cnt_dst = np.asarray(counts_dst, dtype=np.float64).copy()

    residual_src = cap_src.astype(np.float64)
    residual_dst = cap_dst.astype(np.float64)
    finite = cap_src[np.isfinite(cap_src)]
    scale = float(finite.max()) if finite.size else 1.0
    finite_d = cap_dst[np.isfinite(cap_dst)]
    if finite_d.size:
        scale = max(scale, float(finite_d.max()))
    tol = 1e-12 * max(scale, 1.0)

    # First filling round, unrolled: raise every flow uniformly to the
    # first saturation level.  When that one level freezes *all* flows
    # (one shared bottleneck — by far the common case: a homogeneous
    # writer population gated by sink capacity or by the per-flow cap)
    # the allocation is done and the progressive-filling loop is never
    # entered.
    with np.errstate(divide="ignore", invalid="ignore"):
        inc_src = np.where(cnt_src > 0, residual_src / cnt_src, np.inf)
        inc_dst = np.where(cnt_dst > 0, residual_dst / cnt_dst, np.inf)
    level = min(
        float(inc_src.min()),
        float(inc_dst.min()),
        float(flow_cap.min()),
    )
    if not np.isfinite(level):
        # Flows touch only infinite-capacity resources.
        return np.minimum(flow_cap, _BIG_RATE)
    level = max(level, 0.0)
    residual_src = residual_src - level * cnt_src
    residual_dst = residual_dst - level * cnt_dst
    sat_src = residual_src <= tol
    sat_dst = residual_dst <= tol
    newly = sat_src[src_idx] | sat_dst[dst_idx] | (flow_cap - level <= tol)
    if newly.all():
        return np.minimum(level, flow_cap)
    if not newly.any():
        # Numerical safety: freeze everything to guarantee progress
        # (should not happen with exact arithmetic).
        return np.minimum(level, flow_cap)

    # General case: progressive filling over the shrinking live set.
    # Each round's work is O(live flows), so the total across rounds is
    # O(flows), not O(rounds x flows).
    rates = np.zeros(n_flows)
    rates[newly] = np.minimum(level, flow_cap[newly])
    cnt_src -= np.bincount(src_idx[newly], minlength=n_src)
    cnt_dst -= np.bincount(dst_idx[newly], minlength=n_dst)
    live_idx = np.nonzero(~newly)[0]
    src_live = src_idx[live_idx]
    dst_live = dst_idx[live_idx]
    fcap_live = flow_cap[live_idx]

    for _ in range(n_flows + 2):
        if live_idx.size == 0:
            break
        with np.errstate(divide="ignore", invalid="ignore"):
            inc_src = np.where(cnt_src > 0, residual_src / cnt_src, np.inf)
            inc_dst = np.where(cnt_dst > 0, residual_dst / cnt_dst, np.inf)
        inc = min(
            float(inc_src.min()),
            float(inc_dst.min()),
            float(fcap_live.min()) - level,
        )
        if not np.isfinite(inc):
            # Remaining flows touch only infinite-capacity resources.
            rates[live_idx] = np.minimum(fcap_live, _BIG_RATE)
            break
        inc = max(inc, 0.0)
        level += inc
        residual_src -= inc * cnt_src
        residual_dst -= inc * cnt_dst
        sat_src = residual_src <= tol
        sat_dst = residual_dst <= tol
        newly = sat_src[src_live] | sat_dst[dst_live] | (
            fcap_live - level <= tol
        )
        if not newly.any():
            # Numerical safety (see above).
            newly = np.ones(live_idx.size, dtype=bool)
        frozen_idx = live_idx[newly]
        rates[frozen_idx] = np.minimum(level, flow_cap[frozen_idx])
        cnt_src -= np.bincount(src_live[newly], minlength=n_src)
        cnt_dst -= np.bincount(dst_live[newly], minlength=n_dst)
        keep = ~newly
        live_idx = live_idx[keep]
        src_live = src_live[keep]
        dst_live = dst_live[keep]
        fcap_live = fcap_live[keep]
    return rates


class FlowNetwork:
    """The live flow manager bound to a simulation environment.

    Parameters
    ----------
    env:
        Simulation environment.
    source_capacities:
        Per-source (node NIC) capacity array, bytes/s.
    sink_pool:
        Provider of sink-side capacities and state (the OST pool).
    default_flow_cap:
        Per-flow rate ceiling applied when :meth:`start_flow` does not
        override it; models the single-stream client limit.

    Notes
    -----
    Flow mutations (:meth:`start_flow`, :meth:`cancel_flow`,
    :meth:`fail_sink`) do not resettle synchronously: they record the
    affected sinks and defer one settle to the end of the current
    simulated instant (a zero-delay, priority-2 calendar entry, which
    sorts after every same-instant control event).  All N flows a
    writer group releases at one timestamp are therefore priced at one
    reallocation.  :meth:`invalidate` remains synchronous — callers use
    it to force accounting up to *now* before reading state.
    """

    def __init__(
        self,
        env: "Environment",
        source_capacities: np.ndarray,
        sink_pool: SinkPool,
        default_flow_cap: float = np.inf,
    ):
        self.env = env
        self.pool = sink_pool
        self._cap_src = np.asarray(source_capacities, dtype=np.float64).copy()
        if (self._cap_src <= 0).any():
            raise ValueError("source capacities must be positive")
        self.default_flow_cap = float(default_flow_cap)
        self.n_sources = len(self._cap_src)
        self.n_sinks = sink_pool.n_sinks

        cap0 = 64
        self._src = np.zeros(cap0, dtype=np.int64)
        self._dst = np.zeros(cap0, dtype=np.int64)
        self._remaining = np.zeros(cap0, dtype=np.float64)
        self._rate = np.zeros(cap0, dtype=np.float64)
        self._fcap = np.full(cap0, np.inf, dtype=np.float64)
        self._tenant = np.full(cap0, -1, dtype=np.int64)
        self._active = np.zeros(cap0, dtype=bool)
        self._free: list[int] = list(range(cap0 - 1, -1, -1))
        self._records: Dict[int, Tuple[Event, float, float]] = {}
        self._slot_of: Dict[int, int] = {}
        self._id_of_slot: Dict[int, int] = {}

        self._next_id = 0
        self._last_settle = env.now
        self._stall_now = -1.0
        self._stall_streak = 0
        self._inflow = np.zeros(self.n_sinks, dtype=np.float64)
        # Per-sink / per-source active stream counts, maintained
        # incrementally on start/cancel/complete — never re-derived
        # with a bincount over the flow set.
        self._counts = np.zeros(self.n_sinks, dtype=np.int64)
        self._src_counts = np.zeros(self.n_sources, dtype=np.int64)
        # Flow-set generation vs. the generation the current rate
        # allocation was computed for: when they match and sink
        # capacities are unchanged, a settle can skip reallocation.
        self._flowset_gen = 0
        self._alloc_gen = -1
        self._last_caps: Optional[np.ndarray] = None
        # Incremental-reallocation state: the canonical per-sink shares
        # of the current allocation (valid only when it was computed on
        # the sink-bound fast path with every source unsaturated), and
        # the set of sinks whose flow membership changed since.
        self._share_dst = np.full(self.n_sinks, np.inf)
        self._shares_valid = False
        self._dirty_sinks: Set[int] = set()
        # Above this many dirty sinks a full vectorized batch pass is
        # cheaper than gathering the affected subset.
        self._incr_max_dirty = max(4, self.n_sinks // 8)
        # Deferred-settle and timer calendar entries (cancelled via
        # Event.cancel when superseded — no tombstones left in the heap).
        self._settle_pending = False
        self._settle_event: Optional[Event] = None
        self._timer_event: Optional[Event] = None
        # Rate-change watchers: flow id -> [callback, last notified
        # rate].  Notified at the end of every settle whose allocation
        # changed the flow's rate; pruned automatically when the flow
        # completes, cancels or fails.  Aggregate-flow owners (the
        # adaptive transport's group streams) hang here to re-predict
        # member-boundary crossings without forcing extra settles.
        self._watchers: Dict[int, list] = {}
        # Vectorized watcher scan: parallel (fid, slot, last-rate)
        # snapshot rebuilt lazily whenever the watcher set changes, so
        # a settle pays one fancy-index + compare instead of a Python
        # loop over every watched flow.
        self._watch_dirty = False
        self._watch_fids: list = []
        self._watch_slots = np.empty(0, dtype=np.intp)
        self._watch_last = np.empty(0, dtype=np.float64)
        # QoS: per-tenant aggregate rate limits (bytes/s, indexed by
        # tenant id) installed by the control plane, plus the byte
        # ledgers the graceful-degradation contract reports from.  All
        # None until :meth:`set_tenant_limits` is first called — every
        # QoS touch point below is guarded on that, so a fabric that
        # never sees a limit runs the exact pre-QoS code path
        # (bit-identity when QoS is disabled).
        self._tenant_limits: Optional[np.ndarray] = None
        self._tenant_throttle_rate: Optional[np.ndarray] = None
        self.tenant_served: Optional[np.ndarray] = None
        self.tenant_throttled: Optional[np.ndarray] = None
        self.total_bytes_delivered = 0.0
        self.settle_count = 0
        self.realloc_count = 0
        self.incremental_count = 0  # reallocs served by the patch path
        self.coalesced_count = 0  # mutations folded into a pending settle
        # Post-settle observation hook: called as ``hook(now)`` at the
        # end of every settle, when flow/pool state is already advanced
        # to now.  Readers hanging here (OnlineMonitor) observe without
        # scheduling events or forcing extra settles, so attaching one
        # cannot perturb the simulation.  Hooks chain by saving and
        # calling the previous value.
        self.on_settle = None
        # Optional MetricsRegistry; bind_metrics pre-resolves the
        # fabric's instruments so the per-settle cost when attached is
        # one attribute check plus a few dict-free increments.
        self.metrics = None

    def bind_metrics(self, registry) -> None:
        """Attach (or detach, with None) a metrics registry."""
        self.metrics = registry
        if registry is None:
            return
        self._m_settles = registry.counter("fabric.settles")
        self._m_realloc_batch = registry.counter(
            "fabric.reallocs", kind="batch"
        )
        self._m_realloc_incr = registry.counter(
            "fabric.reallocs", kind="incremental"
        )
        self._m_coalesced = registry.counter("fabric.coalesced_settles")
        self._m_flows = registry.gauge("fabric.active_flows")

    # -- public API ------------------------------------------------------
    @property
    def active_flow_count(self) -> int:
        return len(self._records)

    def sink_stream_counts(self) -> np.ndarray:
        """Current active stream count per sink (snapshot)."""
        return self._counts.copy()

    def sink_inflow(self) -> np.ndarray:
        """Current allocated inflow per sink, bytes/s (snapshot)."""
        if self._settle_pending:
            self._settle()
        return self._inflow.copy()

    @property
    def qos_enabled(self) -> bool:
        return self._tenant_limits is not None

    def set_tenant_limits(self, limits: Optional[np.ndarray]) -> None:
        """Install (or clear, with None) per-tenant aggregate rate caps.

        ``limits[t]`` bounds the summed rate of every active flow
        tagged with tenant ``t``; ``inf`` entries leave a tenant
        unconstrained.  The cap composes with max-min fairness as an
        equal per-flow split of the tenant budget, so within a tenant
        flows stay mutually fair.  Installing limits invalidates the
        current allocation (the skip-reallocation fast path keys on the
        flow set and sink capacities only) and requests a settle, so a
        limit change takes effect at the end of the current instant.

        Byte ledgers (``tenant_served`` / ``tenant_throttled``)
        accumulate across calls while the tenant count is stable; they
        survive a ``set_tenant_limits(None)`` so post-run accounting
        can still read them.
        """
        if limits is None:
            self._tenant_limits = None
            self._tenant_throttle_rate = None
        else:
            limits = np.asarray(limits, dtype=np.float64).copy()
            if (limits < 0).any():
                raise ValueError("tenant limits must be non-negative")
            self._tenant_limits = limits
            n = len(limits)
            if self.tenant_served is None or len(self.tenant_served) != n:
                self.tenant_served = np.zeros(n, dtype=np.float64)
                self.tenant_throttled = np.zeros(n, dtype=np.float64)
            self._tenant_throttle_rate = np.zeros(n, dtype=np.float64)
        # Force the next settle through a real reallocation: the
        # fast-path guard (_alloc_gen == _flowset_gen, caps unchanged)
        # cannot see a limit change.
        self._alloc_gen = -1
        self._shares_valid = False
        self._request_settle()

    def tenant_accounting(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(served_bytes, throttled_bytes)`` per tenant, advanced to now.

        ``throttled`` integrates the gap between what the uncapped
        max-min allocation would have granted each tenant and what the
        QoS-capped allocation did grant — the bytes backpressure
        deferred, never errored.  Zero-length arrays before any limits
        were installed.
        """
        if self.tenant_served is None:
            return np.zeros(0), np.zeros(0)
        if self._tenant_limits is not None:
            self._advance_only()
        return self.tenant_served.copy(), self.tenant_throttled.copy()

    def start_flow(
        self,
        source: int,
        sink: int,
        nbytes: float,
        flow_cap: Optional[float] = None,
        tenant: int = -1,
    ) -> Event:
        """Begin a transfer; the returned event fires with a FlowStats."""
        return self.start_flow_with_id(
            source, sink, nbytes, flow_cap, tenant=tenant
        )[0]

    def start_flow_with_id(
        self,
        source: int,
        sink: int,
        nbytes: float,
        flow_cap: Optional[float] = None,
        tenant: int = -1,
    ) -> Tuple[Event, int]:
        """Like :meth:`start_flow` but also returns the flow id.

        Fault-aware callers keep the id so they can :meth:`cancel_flow`
        a transfer whose deadline expired.  ``tenant`` tags the flow
        for the QoS control plane; ``-1`` (the default) means untagged
        — never subject to a tenant limit.
        """
        if not 0 <= source < self.n_sources:
            raise IndexError(f"source {source} out of range")
        if not 0 <= sink < self.n_sinks:
            raise IndexError(f"sink {sink} out of range")
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        ev = Event(self.env)
        fid = self._next_id
        self._next_id += 1
        if nbytes <= _EPS_BYTES:
            ev.succeed(
                FlowStats(fid, source, sink, nbytes, self.env.now, self.env.now)
            )
            return ev, fid
        slot = self._alloc_slot()
        self._src[slot] = source
        self._dst[slot] = sink
        self._remaining[slot] = float(nbytes)
        self._rate[slot] = 0.0
        self._fcap[slot] = (
            self.default_flow_cap if flow_cap is None else float(flow_cap)
        )
        self._tenant[slot] = int(tenant)
        self._active[slot] = True
        self._records[fid] = (ev, float(nbytes), self.env.now)
        self._slot_of[fid] = slot
        self._id_of_slot[slot] = fid
        self._counts[sink] += 1
        self._src_counts[source] += 1
        self._flowset_gen += 1
        self._dirty_sinks.add(sink)
        tr = self.env.tracer
        if tr is not None and tr.enabled:
            tr.begin(
                "flow",
                cat="fabric",
                pid=f"ost/{sink}",
                tid=f"flow {fid}",
                args={"source": source, "nbytes": float(nbytes)},
            )
        self._request_settle()
        return ev, fid

    def cancel_flow(self, flow_id: int) -> float:
        """Abort a flow; returns the bytes left undelivered.

        The flow's event fails with :class:`~repro.sim.events.EventAborted`.
        """
        if flow_id not in self._records:
            raise KeyError(f"unknown or finished flow {flow_id}")
        self._advance_only()
        slot = self._slot_of.pop(flow_id)
        ev, _nbytes, _t0 = self._records.pop(flow_id)
        del self._id_of_slot[slot]
        left = float(self._remaining[slot])
        self._active[slot] = False
        self._free.append(slot)
        self._counts[self._dst[slot]] -= 1
        self._src_counts[self._src[slot]] -= 1
        self._flowset_gen += 1
        self._dirty_sinks.add(int(self._dst[slot]))
        tr = self.env.tracer
        if tr is not None and tr.enabled:
            tr.end(
                "flow",
                cat="fabric",
                pid=f"ost/{int(self._dst[slot])}",
                tid=f"flow {flow_id}",
                args={"cancelled": True, "undelivered": left},
            )
        ev.abort(("cancelled", flow_id))
        self._unwatch(flow_id)
        self._request_settle()
        return left

    def fail_sink(self, sink: int) -> float:
        """Fail every in-flight flow to *sink* (fail-stop semantics).

        Each affected flow's event **fails** with
        :class:`~repro.errors.OstFailedError` — waiters see the error
        raised at their yield point instead of the completion silently
        never arriving.  Returns the total bytes left undelivered.
        """
        from repro.errors import OstFailedError

        self._advance_only()
        act = np.nonzero(self._active)[0]
        victims = act[self._dst[act] == sink]
        if victims.size == 0:
            self._request_settle()
            return 0.0
        tr = self.env.tracer
        traced = tr is not None and tr.enabled
        total_left = 0.0
        for slot in victims:
            slot = int(slot)
            fid = self._id_of_slot.pop(slot)
            ev, _nbytes, _t0 = self._records.pop(fid)
            del self._slot_of[fid]
            left = float(self._remaining[slot])
            total_left += left
            self._active[slot] = False
            self._rate[slot] = 0.0
            self._free.append(slot)
            self._counts[self._dst[slot]] -= 1
            self._src_counts[self._src[slot]] -= 1
            if traced:
                tr.end(
                    "flow",
                    cat="fabric",
                    pid=f"ost/{sink}",
                    tid=f"flow {fid}",
                    args={"failed": True, "undelivered": left},
                )
            ev.fail(OstFailedError(sink, f"ost {sink} failed mid-transfer"))
            self._unwatch(fid)
        self._flowset_gen += 1
        self._dirty_sinks.add(int(sink))
        self._request_settle()
        return total_left

    def invalidate(self) -> None:
        """Resettle now (a capacity changed out-of-band).

        Synchronous: any deferred settle is folded in, and accounting
        (flow progress, pool state, completions) is current on return.
        """
        self._settle()

    def flow_progress(self, flow_id: int) -> Tuple[float, float]:
        """``(delivered_bytes, current_rate)`` of a live flow, now.

        Pure query: flows drain linearly between settles, so progress
        at *now* is derived arithmetically from the last settle's state
        without mutating anything or forcing a reallocation.  Raises
        ``KeyError`` for unknown/finished flows.
        """
        slot = self._slot_of.get(flow_id)
        if slot is None:
            raise KeyError(f"unknown or finished flow {flow_id}")
        _ev, nbytes, _t0 = self._records[flow_id]
        rate = float(self._rate[slot])
        remaining = float(self._remaining[slot]) - rate * (
            self.env.now - self._last_settle
        )
        return nbytes - remaining, rate

    def adjust_flow_bytes(self, flow_id: int, delta: float) -> float:
        """Shrink (or grow) a live flow's total byte count by ``delta``.

        Progress is advanced to *now* first, then the adjustment lands
        on the undelivered tail — the paper's steering steal maps to a
        negative ``delta`` truncating the bytes not yet streamed.  The
        flow's rate (and every other flow's) is unchanged, so the
        deferred settle this requests rides the skip-reallocation fast
        path and merely re-arms the completion timer.  Returns the new
        remaining byte count.
        """
        slot = self._slot_of.get(flow_id)
        if slot is None:
            raise KeyError(f"unknown or finished flow {flow_id}")
        self._advance_only()
        new_remaining = float(self._remaining[slot]) + float(delta)
        if new_remaining < -_EPS_BYTES:
            raise ValueError(
                f"flow {flow_id}: adjustment {delta} exceeds the "
                f"{self._remaining[slot]} undelivered bytes"
            )
        self._remaining[slot] = new_remaining
        ev, nbytes, t0 = self._records[flow_id]
        self._records[flow_id] = (ev, nbytes + float(delta), t0)
        self._request_settle()
        return new_remaining

    def watch_flow(self, flow_id: int, callback) -> None:
        """Call ``callback(now, new_rate)`` whenever the flow's rate
        changes at a settle.

        One watcher per flow.  The callback runs at the end of the
        settle (state already advanced to now); it must not resettle
        synchronously, but may start flows, adjust byte counts or
        schedule calendar entries.  The watcher is dropped when the
        flow completes, cancels or fails.
        """
        if flow_id not in self._records:
            raise KeyError(f"unknown or finished flow {flow_id}")
        slot = self._slot_of[flow_id]
        self._watchers[flow_id] = [callback, float(self._rate[slot]), slot]
        self._watch_dirty = True

    def unwatch_flow(self, flow_id: int) -> None:
        self._unwatch(flow_id)

    def _unwatch(self, flow_id: int) -> None:
        if self._watchers.pop(flow_id, None) is not None:
            self._watch_dirty = True

    # -- internals ---------------------------------------------------------
    def _alloc_slot(self) -> int:
        if not self._free:
            old = len(self._active)
            new = old * 2
            for name in ("_src", "_dst"):
                arr = getattr(self, name)
                grown = np.zeros(new, dtype=arr.dtype)
                grown[:old] = arr
                setattr(self, name, grown)
            grown_tenant = np.full(new, -1, dtype=np.int64)
            grown_tenant[:old] = self._tenant
            self._tenant = grown_tenant
            for name, fill in (
                ("_remaining", 0.0),
                ("_rate", 0.0),
                ("_fcap", np.inf),
            ):
                arr = getattr(self, name)
                grown = np.full(new, fill, dtype=np.float64)
                grown[:old] = arr
                setattr(self, name, grown)
            grown_active = np.zeros(new, dtype=bool)
            grown_active[:old] = self._active
            self._active = grown_active
            self._free.extend(range(new - 1, old - 1, -1))
        return self._free.pop()

    def _request_settle(self) -> None:
        """Defer one settle to the end of the current instant.

        The settle runs as a zero-delay priority-2 calendar entry, i.e.
        after every priority-1 event already scheduled (or scheduled
        later) at this timestamp — so all same-instant mutations share
        it.  A synchronous :meth:`_settle` in the meantime supersedes
        the deferred one (its calendar entry is cancelled).
        """
        if self._settle_pending:
            self.coalesced_count += 1
            if self.metrics is not None:
                self._m_coalesced.inc()
            return
        self._settle_pending = True
        self._settle_event = self.env.schedule_callback(
            0.0, self._on_deferred_settle, priority=2
        )

    def _on_deferred_settle(self) -> None:
        self._settle_pending = False
        self._settle_event = None
        self._settle()

    def _advance_only(self) -> None:
        """Advance flow progress and pool state to now, no reallocation."""
        now = self.env.now
        dt = now - self._last_settle
        if dt > 0:
            act = self._active
            delivered = self._rate[act] * dt
            self._remaining[act] -= delivered
            self.total_bytes_delivered += float(delivered.sum())
            if self._tenant_limits is not None:
                ten = self._tenant[act]
                tagged = ten >= 0
                if tagged.any():
                    self.tenant_served += np.bincount(
                        ten[tagged], weights=delivered[tagged],
                        minlength=len(self.tenant_served),
                    )
                self.tenant_throttled += self._tenant_throttle_rate * dt
            self.pool.advance(dt, self._inflow, now)
        self._last_settle = now

    def _settle(self) -> None:
        """Advance state to now, complete finished flows, reallocate."""
        if self._settle_pending:
            # Folding a deferred settle into this synchronous one;
            # withdraw its calendar entry instead of leaving a stale
            # firing behind.
            self._settle_pending = False
            ev, self._settle_event = self._settle_event, None
            if ev is not None:
                ev.cancel()
        self._advance_only()
        now = self.env.now
        self.settle_count += 1
        tr = self.env.tracer
        traced = tr is not None and tr.enabled

        # Complete drained flows.
        act_slots = np.nonzero(self._active)[0]
        done_slots = act_slots[self._remaining[act_slots] <= _EPS_BYTES]
        if done_slots.size:
            self._flowset_gen += 1
        for slot in done_slots:
            fid = self._id_of_slot.pop(int(slot))
            ev, nbytes, t0 = self._records.pop(fid)
            del self._slot_of[fid]
            self._active[slot] = False
            self._rate[slot] = 0.0
            self._free.append(int(slot))
            self._counts[self._dst[slot]] -= 1
            self._src_counts[self._src[slot]] -= 1
            self._dirty_sinks.add(int(self._dst[slot]))
            if traced:
                tr.end(
                    "flow",
                    cat="fabric",
                    pid=f"ost/{int(self._dst[slot])}",
                    tid=f"flow {fid}",
                    args={"duration": now - t0},
                )
            self._unwatch(fid)
            ev.succeed(
                FlowStats(fid, int(self._src[slot]), int(self._dst[slot]), nbytes, t0, now)
            )

        act_slots = np.nonzero(self._active)[0]
        if act_slots.size == 0:
            self._inflow = np.zeros(self.n_sinks, dtype=np.float64)
            self._last_caps = None
            self._shares_valid = False
            self._dirty_sinks.clear()
            self._alloc_gen = self._flowset_gen
            if self._tenant_throttle_rate is not None:
                self._tenant_throttle_rate[:] = 0.0
            # capacities() is where the pool updates internal state
            # (e.g. the cache-full hysteresis flag) — it must run even
            # with no flows, or a drained cache keeps reporting an
            # overdue transition and the timer livelocks at delay 0.
            # The pool keeps a reference to the counts it is given, so
            # hand it a snapshot, never the live incremental array.
            self.pool.capacities(self._counts.copy(), now)
            if traced:
                tr.instant(
                    "reallocate", cat="fabric", pid="fabric", tid="settle",
                    args={"flows": 0, "total_inflow": 0.0},
                )
                tr.counter("inflow", pid="fabric",
                           values={"bytes_per_s": 0.0})
            t_pool = self.pool.next_transition(self._inflow, self._counts, now)
            self._arm_timer(t_pool)
            if self.metrics is not None:
                self._m_settles.inc()
                self._m_flows.set(0)
            hook = self.on_settle
            if hook is not None:
                hook(now)
            return

        dst = self._dst[act_slots]
        # Snapshot: the pool retains the array (its advance() uses the
        # counts from the *last* settle), so it must not alias the
        # incrementally-updated live counts.
        counts = self._counts.copy()
        caps = np.asarray(
            self.pool.capacities(counts, now), dtype=np.float64
        )
        if (
            self._alloc_gen == self._flowset_gen
            and self._last_caps is not None
            and np.array_equal(caps, self._last_caps)
        ):
            # Neither the flow set nor any capacity changed since the
            # current allocation was computed (a pool transition timer
            # fired early, or an out-of-band invalidate was a no-op):
            # existing rates are still the max-min allocation, so skip
            # straight to re-arming the timer.
            rates = self._rate[act_slots]
        else:
            rates = self._reallocate(act_slots, dst, counts, caps)
            if traced:
                total = float(self._inflow.sum())
                tr.instant(
                    "reallocate", cat="fabric", pid="fabric", tid="settle",
                    args={"flows": int(act_slots.size), "total_inflow": total},
                )
                tr.counter("inflow", pid="fabric",
                           values={"bytes_per_s": total})

        with np.errstate(divide="ignore"):
            finish = np.where(
                rates > 0, self._remaining[act_slots] / rates, np.inf
            )
        t_complete = float(finish.min()) if finish.size else np.inf
        t_pool = self.pool.next_transition(self._inflow, counts, now)
        self._arm_timer(min(t_complete, t_pool))
        if self.metrics is not None:
            self._m_settles.inc()
            self._m_flows.set(int(act_slots.size))
        if self._watchers:
            # Snapshot (dict insertion = registration) order keeps
            # notification deterministic across runs; the numpy compare
            # makes the common nothing-changed settle O(1)-ish instead
            # of a Python loop over every watched flow.
            if self._watch_dirty:
                self._watch_fids = list(self._watchers.keys())
                recs = self._watchers
                self._watch_slots = np.fromiter(
                    (recs[f][2] for f in self._watch_fids),
                    dtype=np.intp, count=len(self._watch_fids),
                )
                self._watch_last = np.fromiter(
                    (recs[f][1] for f in self._watch_fids),
                    dtype=np.float64, count=len(self._watch_fids),
                )
                self._watch_dirty = False
            cur = self._rate[self._watch_slots]
            if not np.array_equal(cur, self._watch_last):
                for i in np.nonzero(cur != self._watch_last)[0]:
                    fid = self._watch_fids[int(i)]
                    rec = self._watchers.get(fid)
                    if rec is None:  # pruned by an earlier callback
                        continue
                    r = float(cur[i])
                    rec[1] = r
                    self._watch_last[i] = r
                    rec[0](now, r)
        hook = self.on_settle
        if hook is not None:
            hook(now)

    def _reallocate(
        self,
        act_slots: np.ndarray,
        dst: np.ndarray,
        counts: np.ndarray,
        caps: np.ndarray,
    ) -> np.ndarray:
        """Recompute the allocation — incrementally when possible."""
        if self._tenant_limits is not None:
            return self._reallocate_qos(act_slots, dst, counts, caps)
        rates = None
        if self._shares_valid and self._last_caps is not None:
            dirty = self._dirty_sinks
            if not np.array_equal(caps, self._last_caps):
                changed = np.nonzero(caps != self._last_caps)[0]
                if changed.size + len(dirty) <= self._incr_max_dirty:
                    dirty = dirty | {int(i) for i in changed}
                else:
                    dirty = None
            if dirty is not None and len(dirty) <= self._incr_max_dirty:
                rates = self._incremental_rates(
                    act_slots, dst, counts, caps, dirty
                )
        incremental = rates is not None
        if rates is None:
            rates, share_dst = _max_min_shares(
                self._src[act_slots], dst, self._cap_src, caps,
                self._fcap[act_slots],
                counts_src=self._src_counts, counts_dst=counts,
            )
            self._rate[act_slots] = rates
            self._inflow = np.bincount(
                dst, weights=rates, minlength=self.n_sinks
            )
            if share_dst is not None:
                self._share_dst = share_dst
                self._shares_valid = True
            else:
                self._shares_valid = False
        self._dirty_sinks.clear()
        self._alloc_gen = self._flowset_gen
        self._last_caps = caps.copy()
        self.realloc_count += 1
        if self.metrics is not None:
            (self._m_realloc_incr if incremental
             else self._m_realloc_batch).inc()
        return rates

    def _reallocate_qos(
        self,
        act_slots: np.ndarray,
        dst: np.ndarray,
        counts: np.ndarray,
        caps: np.ndarray,
    ) -> np.ndarray:
        """Batch reallocation with per-tenant aggregate caps composed in.

        A tenant's limit is split equally across its active flows and
        composed into each flow's cap before the max-min pass, so
        flows within a tenant stay mutually fair while the tenant's
        aggregate never exceeds its budget.  A shadow uncapped pass
        prices the throttling: the per-tenant rate gap between the two
        allocations integrates (in :meth:`_advance_only`) into the
        ``tenant_throttled`` byte ledger.  The incremental patch path
        is bypassed entirely — tenant caps couple sinks through the
        tenant budget, so the per-sink decomposition it relies on does
        not hold.
        """
        limits = self._tenant_limits
        n_tenants = len(limits)
        src = self._src[act_slots]
        fcap = self._fcap[act_slots]
        ten = self._tenant[act_slots]
        tagged = ten >= 0
        uncapped, _ = _max_min_shares(
            src, dst, self._cap_src, caps, fcap,
            counts_src=self._src_counts, counts_dst=counts,
        )
        eff = fcap.copy()
        if tagged.any():
            tcnt = np.bincount(ten[tagged], minlength=n_tenants)
            with np.errstate(divide="ignore", invalid="ignore"):
                per_flow = np.where(tcnt > 0, limits / tcnt, np.inf)
            ten_t = ten[tagged]
            eff[tagged] = np.minimum(fcap[tagged], per_flow[ten_t])
            rates, _ = _max_min_shares(
                src, dst, self._cap_src, caps, eff,
                counts_src=self._src_counts, counts_dst=counts,
            )
            self._tenant_throttle_rate = np.maximum(
                np.bincount(ten_t, weights=uncapped[tagged],
                            minlength=n_tenants)
                - np.bincount(ten_t, weights=rates[tagged],
                              minlength=n_tenants),
                0.0,
            )
        else:
            rates = uncapped
            self._tenant_throttle_rate = np.zeros(n_tenants)
        self._rate[act_slots] = rates
        self._inflow = np.bincount(
            dst, weights=rates, minlength=self.n_sinks
        )
        self._shares_valid = False
        self._dirty_sinks.clear()
        self._alloc_gen = self._flowset_gen
        self._last_caps = caps.copy()
        self.realloc_count += 1
        if self.metrics is not None:
            self._m_realloc_batch.inc()
        return rates

    def _incremental_rates(
        self,
        act_slots: np.ndarray,
        dst: np.ndarray,
        counts: np.ndarray,
        caps: np.ndarray,
        dirty: Set[int],
    ) -> Optional[np.ndarray]:
        """Patch the allocation for a small set of perturbed sinks.

        Valid only while no source is saturated: then the max-min
        allocation decomposes per sink, so only the dirty sinks'
        canonical shares need recomputing — O(flows at dirty sinks)
        plus one O(active) feasibility pass, instead of the batch
        allocator's multi-round global filling.  Returns ``None`` when
        the patched allocation would push any source within the
        headroom margin of saturation (the perturbation cascades, the
        per-sink decomposition no longer holds) — the caller falls back
        to the batch allocator.  The arithmetic matches the batch
        sink-bound fast path operation for operation, so a successful
        patch is bit-identical to what the batch pass would produce.
        """
        if not dirty:
            return self._rate[act_slots]
        dirty_arr = np.fromiter(dirty, dtype=np.int64, count=len(dirty))
        if len(dirty) <= 4:
            mask = np.zeros(dst.shape, dtype=bool)
            for d in dirty_arr:
                mask |= dst == d
        else:
            mask = np.isin(dst, dirty_arr)
        sub_slots = act_slots[mask]
        dst_sub = dst[mask]
        fcap_sub = self._fcap[sub_slots]
        cnt_sub = np.zeros(self.n_sinks, dtype=np.float64)
        cnt_sub[dirty_arr] = counts[dirty_arr]
        share = _waterfill_sink_shares(dst_sub, fcap_sub, caps, cnt_sub)
        new_sub = np.minimum(fcap_sub, share[dst_sub])
        np.minimum(new_sub, _BIG_RATE, out=new_sub)
        rates = self._rate[act_slots].copy()
        rates[mask] = new_sub
        src_load = np.bincount(
            self._src[act_slots], weights=rates, minlength=self.n_sources
        )
        if not np.all(src_load <= self._cap_src * _SRC_HEADROOM):
            return None
        self._share_dst[dirty_arr] = share[dirty_arr]
        self._rate[sub_slots] = new_sub
        infl = np.bincount(dst_sub, weights=new_sub, minlength=self.n_sinks)
        self._inflow[dirty_arr] = infl[dirty_arr]
        self.incremental_count += 1
        return rates

    def _arm_timer(self, delay: float) -> None:
        if self._timer_event is not None:
            # The previous "next state change" prediction is obsolete;
            # withdraw it from the calendar (lazy heap discard) rather
            # than letting a tombstone fire into a stale closure.
            self._timer_event.cancel()
            self._timer_event = None
        if not np.isfinite(delay):
            return
        # Livelock tripwire: huge numbers of sub-nanosecond re-arms at
        # one simulated instant mean some state machine is stuck at a
        # threshold.  Fail loudly — a hang would hide the bug.
        if delay < 1e-9 and self.env.now == self._stall_now:
            self._stall_streak += 1
            if self._stall_streak > 100_000:
                raise RuntimeError(
                    f"flow network stalled at t={self.env.now}: "
                    f"{self._stall_streak} zero-delay settles"
                )
        else:
            self._stall_now = self.env.now
            self._stall_streak = 0
        # Clamp only: a crossing predicted a hair in the past (float
        # rounding) fires immediately, and _settle is idempotent — an
        # early-by-rounding fire recomputes the same allocation and
        # re-arms, while bytes only ever move by measured elapsed time,
        # never by the prediction.  No epsilon padding is applied.
        delay = max(delay, 0.0)
        self._timer_event = self.env.schedule_callback(delay, self._on_timer)

    def _on_timer(self) -> None:
        self._timer_event = None
        self._settle()
