"""Max-min fair fluid-flow network.

Every bulk transfer in the simulator (a writer streaming its buffer to a
storage target, a background-interference job hammering an OST, an
analysis read) is a *flow*: ``(source NIC, sink port, remaining bytes,
optional per-flow rate cap)``.  At any instant the instantaneous rate of
each flow is its share under the **max-min fair allocation** subject to

* per-source capacity (node NIC injection bandwidth),
* per-sink capacity (storage-target ingest, supplied by a
  :class:`SinkPool` and allowed to depend on stream count, cache state
  and external load), and
* the per-flow cap.

The network is *event-lazy*: rates are only recomputed when the flow
set or a capacity changes.  Between recomputations every flow drains
linearly, so the network arms exactly one timer at the earliest of
(next flow completion, next sink capacity transition) and advances all
flow state vectorially in numpy when it fires.  Per state change the
work is O(flows) of numpy, never O(flows) of Python — the property that
makes 16 384-writer experiments feasible.

The allocation is computed by *progressive filling*: raise the rate of
every unfrozen flow uniformly until some resource (or flow cap)
saturates, freeze the flows it constrains, remove the committed
bandwidth, and repeat.  This is the textbook max-min algorithm; each
round is vectorized and the number of rounds is bounded by the number
of distinct bottleneck levels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Protocol, Tuple

import numpy as np

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment

__all__ = [
    "FlowNetwork",
    "FlowStats",
    "SinkPool",
    "UniformSinkPool",
    "max_min_fair_rates",
]

_EPS_BYTES = 1e-3  # flows within this many bytes of done are done
_BIG_RATE = 1e18  # rate for flows constrained by nothing


@dataclass(frozen=True)
class FlowStats:
    """Completion record delivered as the flow event's value."""

    flow_id: int
    source: int
    sink: int
    nbytes: float
    start_time: float
    end_time: float

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time

    @property
    def mean_rate(self) -> float:
        d = self.duration
        return self.nbytes / d if d > 0 else float("inf")


class SinkPool(Protocol):
    """State provider for the sink side of the network.

    One pool manages *all* sinks with vectorized state so the fabric
    never loops over sinks in Python.  The Lustre OST pool implements
    this protocol; tests use :class:`UniformSinkPool`.
    """

    n_sinks: int

    def advance(self, dt: float, inflow: np.ndarray, now: float) -> None:
        """Integrate internal state over ``dt`` given the inflow rates."""

    def capacities(self, counts: np.ndarray, now: float) -> np.ndarray:
        """Current ingest capacity per sink, given stream counts."""

    def next_transition(
        self, inflow: np.ndarray, counts: np.ndarray, now: float
    ) -> float:
        """Seconds until some sink's capacity will change, or ``inf``."""


class UniformSinkPool:
    """Trivial pool: fixed, state-free capacity per sink."""

    def __init__(self, n_sinks: int, capacity: float):
        if n_sinks < 1:
            raise ValueError("n_sinks must be >= 1")
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.n_sinks = n_sinks
        self._caps = np.full(n_sinks, float(capacity))

    def advance(self, dt: float, inflow: np.ndarray, now: float) -> None:
        pass

    def capacities(self, counts: np.ndarray, now: float) -> np.ndarray:
        return self._caps

    def next_transition(
        self, inflow: np.ndarray, counts: np.ndarray, now: float
    ) -> float:
        return float("inf")


def max_min_fair_rates(
    src_idx: np.ndarray,
    dst_idx: np.ndarray,
    cap_src: np.ndarray,
    cap_dst: np.ndarray,
    flow_cap: Optional[np.ndarray] = None,
    counts_src: Optional[np.ndarray] = None,
    counts_dst: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Max-min fair rates for flows over a bipartite capacity graph.

    Parameters
    ----------
    src_idx, dst_idx:
        Per-flow endpoint indices into ``cap_src`` / ``cap_dst``.
    cap_src, cap_dst:
        Resource capacities (bytes/s).  ``inf`` entries are legal.
    flow_cap:
        Optional per-flow rate ceiling.
    counts_src, counts_dst:
        Optional precomputed per-resource flow counts (what
        ``np.bincount(src_idx, minlength=len(cap_src))`` would return).
        The flow network maintains these incrementally and passes them
        in so the allocator never re-derives them.

    Returns
    -------
    rates:
        Per-flow allocated rate, same length as ``src_idx``.
    """
    n_flows = len(src_idx)
    if n_flows == 0:
        return np.zeros(0)
    n_src = len(cap_src)
    n_dst = len(cap_dst)
    if flow_cap is None:
        flow_cap = np.full(n_flows, np.inf)

    # Per-resource live-flow counts; maintained incrementally across
    # rounds (subtracting the newly frozen flows) instead of a fresh
    # O(flows) bincount per round.
    if counts_src is None:
        cnt_src = np.bincount(src_idx, minlength=n_src).astype(np.float64)
    else:
        cnt_src = np.asarray(counts_src, dtype=np.float64).copy()
    if counts_dst is None:
        cnt_dst = np.bincount(dst_idx, minlength=n_dst).astype(np.float64)
    else:
        cnt_dst = np.asarray(counts_dst, dtype=np.float64).copy()

    residual_src = cap_src.astype(np.float64)
    residual_dst = cap_dst.astype(np.float64)
    finite = cap_src[np.isfinite(cap_src)]
    scale = float(finite.max()) if finite.size else 1.0
    finite_d = cap_dst[np.isfinite(cap_dst)]
    if finite_d.size:
        scale = max(scale, float(finite_d.max()))
    tol = 1e-12 * max(scale, 1.0)

    # First filling round, unrolled: raise every flow uniformly to the
    # first saturation level.  When that one level freezes *all* flows
    # (one shared bottleneck — by far the common case: a homogeneous
    # writer population gated by sink capacity or by the per-flow cap)
    # the allocation is done and the progressive-filling loop is never
    # entered.
    with np.errstate(divide="ignore", invalid="ignore"):
        inc_src = np.where(cnt_src > 0, residual_src / cnt_src, np.inf)
        inc_dst = np.where(cnt_dst > 0, residual_dst / cnt_dst, np.inf)
    level = min(
        float(inc_src.min()),
        float(inc_dst.min()),
        float(flow_cap.min()),
    )
    if not np.isfinite(level):
        # Flows touch only infinite-capacity resources.
        return np.minimum(flow_cap, _BIG_RATE)
    level = max(level, 0.0)
    residual_src = residual_src - level * cnt_src
    residual_dst = residual_dst - level * cnt_dst
    sat_src = residual_src <= tol
    sat_dst = residual_dst <= tol
    newly = sat_src[src_idx] | sat_dst[dst_idx] | (flow_cap - level <= tol)
    if newly.all():
        return np.minimum(level, flow_cap)
    if not newly.any():
        # Numerical safety: freeze everything to guarantee progress
        # (should not happen with exact arithmetic).
        return np.minimum(level, flow_cap)

    # General case: progressive filling over the shrinking live set.
    # Each round's work is O(live flows), so the total across rounds is
    # O(flows), not O(rounds x flows).
    rates = np.zeros(n_flows)
    rates[newly] = np.minimum(level, flow_cap[newly])
    cnt_src -= np.bincount(src_idx[newly], minlength=n_src)
    cnt_dst -= np.bincount(dst_idx[newly], minlength=n_dst)
    live_idx = np.nonzero(~newly)[0]
    src_live = src_idx[live_idx]
    dst_live = dst_idx[live_idx]
    fcap_live = flow_cap[live_idx]

    for _ in range(n_flows + 2):
        if live_idx.size == 0:
            break
        with np.errstate(divide="ignore", invalid="ignore"):
            inc_src = np.where(cnt_src > 0, residual_src / cnt_src, np.inf)
            inc_dst = np.where(cnt_dst > 0, residual_dst / cnt_dst, np.inf)
        inc = min(
            float(inc_src.min()),
            float(inc_dst.min()),
            float(fcap_live.min()) - level,
        )
        if not np.isfinite(inc):
            # Remaining flows touch only infinite-capacity resources.
            rates[live_idx] = np.minimum(fcap_live, _BIG_RATE)
            break
        inc = max(inc, 0.0)
        level += inc
        residual_src -= inc * cnt_src
        residual_dst -= inc * cnt_dst
        sat_src = residual_src <= tol
        sat_dst = residual_dst <= tol
        newly = sat_src[src_live] | sat_dst[dst_live] | (
            fcap_live - level <= tol
        )
        if not newly.any():
            # Numerical safety (see above).
            newly = np.ones(live_idx.size, dtype=bool)
        frozen_idx = live_idx[newly]
        rates[frozen_idx] = np.minimum(level, flow_cap[frozen_idx])
        cnt_src -= np.bincount(src_live[newly], minlength=n_src)
        cnt_dst -= np.bincount(dst_live[newly], minlength=n_dst)
        keep = ~newly
        live_idx = live_idx[keep]
        src_live = src_live[keep]
        dst_live = dst_live[keep]
        fcap_live = fcap_live[keep]
    return rates


class FlowNetwork:
    """The live flow manager bound to a simulation environment.

    Parameters
    ----------
    env:
        Simulation environment.
    source_capacities:
        Per-source (node NIC) capacity array, bytes/s.
    sink_pool:
        Provider of sink-side capacities and state (the OST pool).
    default_flow_cap:
        Per-flow rate ceiling applied when :meth:`start_flow` does not
        override it; models the single-stream client limit.
    """

    def __init__(
        self,
        env: "Environment",
        source_capacities: np.ndarray,
        sink_pool: SinkPool,
        default_flow_cap: float = np.inf,
    ):
        self.env = env
        self.pool = sink_pool
        self._cap_src = np.asarray(source_capacities, dtype=np.float64).copy()
        if (self._cap_src <= 0).any():
            raise ValueError("source capacities must be positive")
        self.default_flow_cap = float(default_flow_cap)
        self.n_sources = len(self._cap_src)
        self.n_sinks = sink_pool.n_sinks

        cap0 = 64
        self._src = np.zeros(cap0, dtype=np.int64)
        self._dst = np.zeros(cap0, dtype=np.int64)
        self._remaining = np.zeros(cap0, dtype=np.float64)
        self._rate = np.zeros(cap0, dtype=np.float64)
        self._fcap = np.full(cap0, np.inf, dtype=np.float64)
        self._active = np.zeros(cap0, dtype=bool)
        self._free: list[int] = list(range(cap0 - 1, -1, -1))
        self._records: Dict[int, Tuple[Event, float, float]] = {}
        self._slot_of: Dict[int, int] = {}
        self._id_of_slot: Dict[int, int] = {}

        self._next_id = 0
        self._last_settle = env.now
        self._generation = 0
        self._stall_now = -1.0
        self._stall_streak = 0
        self._inflow = np.zeros(self.n_sinks, dtype=np.float64)
        # Per-sink / per-source active stream counts, maintained
        # incrementally on start/cancel/complete — never re-derived
        # with a bincount over the flow set.
        self._counts = np.zeros(self.n_sinks, dtype=np.int64)
        self._src_counts = np.zeros(self.n_sources, dtype=np.int64)
        # Flow-set generation vs. the generation the current rate
        # allocation was computed for: when they match and sink
        # capacities are unchanged, a settle can skip reallocation.
        self._flowset_gen = 0
        self._alloc_gen = -1
        self._last_caps: Optional[np.ndarray] = None
        self.total_bytes_delivered = 0.0
        self.settle_count = 0
        self.realloc_count = 0

    # -- public API ------------------------------------------------------
    @property
    def active_flow_count(self) -> int:
        return len(self._records)

    def sink_stream_counts(self) -> np.ndarray:
        """Current active stream count per sink (snapshot)."""
        return self._counts.copy()

    def sink_inflow(self) -> np.ndarray:
        """Current allocated inflow per sink, bytes/s (snapshot)."""
        return self._inflow.copy()

    def start_flow(
        self,
        source: int,
        sink: int,
        nbytes: float,
        flow_cap: Optional[float] = None,
    ) -> Event:
        """Begin a transfer; the returned event fires with a FlowStats."""
        return self.start_flow_with_id(source, sink, nbytes, flow_cap)[0]

    def start_flow_with_id(
        self,
        source: int,
        sink: int,
        nbytes: float,
        flow_cap: Optional[float] = None,
    ) -> Tuple[Event, int]:
        """Like :meth:`start_flow` but also returns the flow id.

        Fault-aware callers keep the id so they can :meth:`cancel_flow`
        a transfer whose deadline expired.
        """
        if not 0 <= source < self.n_sources:
            raise IndexError(f"source {source} out of range")
        if not 0 <= sink < self.n_sinks:
            raise IndexError(f"sink {sink} out of range")
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        ev = Event(self.env)
        fid = self._next_id
        self._next_id += 1
        if nbytes <= _EPS_BYTES:
            ev.succeed(
                FlowStats(fid, source, sink, nbytes, self.env.now, self.env.now)
            )
            return ev, fid
        slot = self._alloc_slot()
        self._src[slot] = source
        self._dst[slot] = sink
        self._remaining[slot] = float(nbytes)
        self._rate[slot] = 0.0
        self._fcap[slot] = (
            self.default_flow_cap if flow_cap is None else float(flow_cap)
        )
        self._active[slot] = True
        self._records[fid] = (ev, float(nbytes), self.env.now)
        self._slot_of[fid] = slot
        self._id_of_slot[slot] = fid
        self._counts[sink] += 1
        self._src_counts[source] += 1
        self._flowset_gen += 1
        tr = self.env.tracer
        if tr is not None and tr.enabled:
            tr.begin(
                "flow",
                cat="fabric",
                pid=f"ost/{sink}",
                tid=f"flow {fid}",
                args={"source": source, "nbytes": float(nbytes)},
            )
        self._settle()
        return ev, fid

    def cancel_flow(self, flow_id: int) -> float:
        """Abort a flow; returns the bytes left undelivered.

        The flow's event fails with :class:`~repro.sim.events.EventAborted`.
        """
        if flow_id not in self._records:
            raise KeyError(f"unknown or finished flow {flow_id}")
        self._advance_only()
        slot = self._slot_of.pop(flow_id)
        ev, _nbytes, _t0 = self._records.pop(flow_id)
        del self._id_of_slot[slot]
        left = float(self._remaining[slot])
        self._active[slot] = False
        self._free.append(slot)
        self._counts[self._dst[slot]] -= 1
        self._src_counts[self._src[slot]] -= 1
        self._flowset_gen += 1
        tr = self.env.tracer
        if tr is not None and tr.enabled:
            tr.end(
                "flow",
                cat="fabric",
                pid=f"ost/{int(self._dst[slot])}",
                tid=f"flow {flow_id}",
                args={"cancelled": True, "undelivered": left},
            )
        ev.abort(("cancelled", flow_id))
        self._settle()
        return left

    def fail_sink(self, sink: int) -> float:
        """Fail every in-flight flow to *sink* (fail-stop semantics).

        Each affected flow's event **fails** with
        :class:`~repro.errors.OstFailedError` — waiters see the error
        raised at their yield point instead of the completion silently
        never arriving.  Returns the total bytes left undelivered.
        """
        from repro.errors import OstFailedError

        self._advance_only()
        act = np.nonzero(self._active)[0]
        victims = act[self._dst[act] == sink]
        if victims.size == 0:
            self._settle()
            return 0.0
        tr = self.env.tracer
        traced = tr is not None and tr.enabled
        total_left = 0.0
        for slot in victims:
            slot = int(slot)
            fid = self._id_of_slot.pop(slot)
            ev, _nbytes, _t0 = self._records.pop(fid)
            del self._slot_of[fid]
            left = float(self._remaining[slot])
            total_left += left
            self._active[slot] = False
            self._rate[slot] = 0.0
            self._free.append(slot)
            self._counts[self._dst[slot]] -= 1
            self._src_counts[self._src[slot]] -= 1
            if traced:
                tr.end(
                    "flow",
                    cat="fabric",
                    pid=f"ost/{sink}",
                    tid=f"flow {fid}",
                    args={"failed": True, "undelivered": left},
                )
            ev.fail(OstFailedError(sink, f"ost {sink} failed mid-transfer"))
        self._flowset_gen += 1
        self._settle()
        return total_left

    def invalidate(self) -> None:
        """Force a resettle now (a capacity changed out-of-band)."""
        self._settle()

    # -- internals ---------------------------------------------------------
    def _alloc_slot(self) -> int:
        if not self._free:
            old = len(self._active)
            new = old * 2
            for name in ("_src", "_dst"):
                arr = getattr(self, name)
                grown = np.zeros(new, dtype=arr.dtype)
                grown[:old] = arr
                setattr(self, name, grown)
            for name, fill in (
                ("_remaining", 0.0),
                ("_rate", 0.0),
                ("_fcap", np.inf),
            ):
                arr = getattr(self, name)
                grown = np.full(new, fill, dtype=np.float64)
                grown[:old] = arr
                setattr(self, name, grown)
            grown_active = np.zeros(new, dtype=bool)
            grown_active[:old] = self._active
            self._active = grown_active
            self._free.extend(range(new - 1, old - 1, -1))
        return self._free.pop()

    def _advance_only(self) -> None:
        """Advance flow progress and pool state to now, no reallocation."""
        now = self.env.now
        dt = now - self._last_settle
        if dt > 0:
            act = self._active
            delivered = self._rate[act] * dt
            self._remaining[act] -= delivered
            self.total_bytes_delivered += float(delivered.sum())
            self.pool.advance(dt, self._inflow, now)
        self._last_settle = now

    def _settle(self) -> None:
        """Advance state to now, complete finished flows, reallocate."""
        self._advance_only()
        now = self.env.now
        self.settle_count += 1
        tr = self.env.tracer
        traced = tr is not None and tr.enabled

        # Complete drained flows.
        act_slots = np.nonzero(self._active)[0]
        done_slots = act_slots[self._remaining[act_slots] <= _EPS_BYTES]
        if done_slots.size:
            self._flowset_gen += 1
        for slot in done_slots:
            fid = self._id_of_slot.pop(int(slot))
            ev, nbytes, t0 = self._records.pop(fid)
            del self._slot_of[fid]
            self._active[slot] = False
            self._rate[slot] = 0.0
            self._free.append(int(slot))
            self._counts[self._dst[slot]] -= 1
            self._src_counts[self._src[slot]] -= 1
            if traced:
                tr.end(
                    "flow",
                    cat="fabric",
                    pid=f"ost/{int(self._dst[slot])}",
                    tid=f"flow {fid}",
                    args={"duration": now - t0},
                )
            ev.succeed(
                FlowStats(fid, int(self._src[slot]), int(self._dst[slot]), nbytes, t0, now)
            )

        act_slots = np.nonzero(self._active)[0]
        if act_slots.size == 0:
            self._inflow = np.zeros(self.n_sinks, dtype=np.float64)
            self._last_caps = None
            # capacities() is where the pool updates internal state
            # (e.g. the cache-full hysteresis flag) — it must run even
            # with no flows, or a drained cache keeps reporting an
            # overdue transition and the timer livelocks at delay 0.
            # The pool keeps a reference to the counts it is given, so
            # hand it a snapshot, never the live incremental array.
            self.pool.capacities(self._counts.copy(), now)
            if traced:
                tr.instant(
                    "reallocate", cat="fabric", pid="fabric", tid="settle",
                    args={"flows": 0, "total_inflow": 0.0},
                )
                tr.counter("inflow", pid="fabric",
                           values={"bytes_per_s": 0.0})
            t_pool = self.pool.next_transition(self._inflow, self._counts, now)
            self._arm_timer(t_pool)
            return

        dst = self._dst[act_slots]
        # Snapshot: the pool retains the array (its advance() uses the
        # counts from the *last* settle), so it must not alias the
        # incrementally-updated live counts.
        counts = self._counts.copy()
        caps = np.asarray(
            self.pool.capacities(counts, now), dtype=np.float64
        )
        if (
            self._alloc_gen == self._flowset_gen
            and self._last_caps is not None
            and np.array_equal(caps, self._last_caps)
        ):
            # Neither the flow set nor any capacity changed since the
            # current allocation was computed (a pool transition timer
            # fired early, or an out-of-band invalidate was a no-op):
            # existing rates are still the max-min allocation, so skip
            # straight to re-arming the timer.
            rates = self._rate[act_slots]
        else:
            rates = max_min_fair_rates(
                self._src[act_slots], dst, self._cap_src, caps,
                self._fcap[act_slots],
                counts_src=self._src_counts, counts_dst=counts,
            )
            self._rate[act_slots] = rates
            self._inflow = np.bincount(
                dst, weights=rates, minlength=self.n_sinks
            )
            self._alloc_gen = self._flowset_gen
            self._last_caps = caps.copy()
            self.realloc_count += 1
            if traced:
                total = float(self._inflow.sum())
                tr.instant(
                    "reallocate", cat="fabric", pid="fabric", tid="settle",
                    args={"flows": int(act_slots.size), "total_inflow": total},
                )
                tr.counter("inflow", pid="fabric",
                           values={"bytes_per_s": total})

        with np.errstate(divide="ignore"):
            finish = np.where(
                rates > 0, self._remaining[act_slots] / rates, np.inf
            )
        t_complete = float(finish.min()) if finish.size else np.inf
        t_pool = self.pool.next_transition(self._inflow, counts, now)
        self._arm_timer(min(t_complete, t_pool))

    def _arm_timer(self, delay: float) -> None:
        self._generation += 1
        if not np.isfinite(delay):
            return
        # Livelock tripwire: huge numbers of sub-nanosecond re-arms at
        # one simulated instant mean some state machine is stuck at a
        # threshold.  Fail loudly — a hang would hide the bug.
        if delay < 1e-9 and self.env.now == self._stall_now:
            self._stall_streak += 1
            if self._stall_streak > 100_000:
                raise RuntimeError(
                    f"flow network stalled at t={self.env.now}: "
                    f"{self._stall_streak} zero-delay settles"
                )
        else:
            self._stall_now = self.env.now
            self._stall_streak = 0
        gen = self._generation
        # Tiny epsilon keeps us from firing a hair *before* the crossing
        # due to float rounding; _settle is idempotent so firing late by
        # 1e-9 s only moves work, never loses bytes.
        delay = max(delay, 0.0)

        def fire() -> None:
            if gen == self._generation:
                self._settle()

        self.env.schedule_callback(delay, fire)
