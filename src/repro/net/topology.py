"""Compute-node topology and rank placement.

Models the aspect of the machine that matters to the paper's IO story:
MPI ranks are packed sequentially onto multi-core nodes ("process IDs
are typically assigned sequentially to cores in a node"), and all cores
of a node share one network injection port.  Grouping consecutive ranks
per storage target therefore reduces same-node injection contention —
one of the stated design choices of adaptive IO.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Topology"]


@dataclass(frozen=True)
class Topology:
    """Placement of MPI ranks onto compute nodes.

    Parameters
    ----------
    n_ranks:
        Number of MPI ranks in the job.
    cores_per_node:
        Ranks packed per node (12 on Jaguar XT5's dual hex-core nodes).
    nic_bandwidth:
        Injection bandwidth of one node's NIC, bytes/s, shared by all
        ranks on the node.
    placement:
        ``"packed"`` (default, sequential) or ``"round_robin"``
        (rank *i* on node ``i % n_nodes``) — round-robin exists to let
        ablations quantify the cost of ignoring locality.
    """

    n_ranks: int
    cores_per_node: int = 12
    nic_bandwidth: float = 2.0e9
    placement: str = "packed"
    _node_of_rank: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self):
        if self.n_ranks < 1:
            raise ValueError(f"n_ranks must be >= 1, got {self.n_ranks}")
        if self.cores_per_node < 1:
            raise ValueError(
                f"cores_per_node must be >= 1, got {self.cores_per_node}"
            )
        if self.nic_bandwidth <= 0:
            raise ValueError("nic_bandwidth must be positive")
        n_nodes = self.n_nodes
        ranks = np.arange(self.n_ranks)
        if self.placement == "packed":
            nodes = ranks // self.cores_per_node
        elif self.placement == "round_robin":
            nodes = ranks % n_nodes
        else:
            raise ValueError(f"unknown placement {self.placement!r}")
        object.__setattr__(self, "_node_of_rank", nodes.astype(np.int64))

    @property
    def n_nodes(self) -> int:
        """Number of compute nodes occupied by the job."""
        return -(-self.n_ranks // self.cores_per_node)

    def node_of(self, rank: int) -> int:
        """Node index hosting *rank*."""
        return int(self._node_of_rank[rank])

    @property
    def node_of_rank(self) -> np.ndarray:
        """Vectorized rank → node mapping (read-only view)."""
        view = self._node_of_rank.view()
        view.flags.writeable = False
        return view

    def ranks_on_node(self, node: int) -> np.ndarray:
        """All ranks hosted on *node*."""
        return np.nonzero(self._node_of_rank == node)[0]

    def nic_capacities(self) -> np.ndarray:
        """Per-node NIC capacity array for the flow network."""
        return np.full(self.n_nodes, self.nic_bandwidth, dtype=np.float64)
