"""Interconnect model: node topology, fluid flow network, message latency.

The data plane of the simulator is a *fluid-flow* model: each bulk
transfer is a flow with a byte count; at any instant the set of active
flows shares the bipartite capacity graph (compute-node NICs on one
side, storage-target ingest ports on the other) according to the
max-min fair allocation.  The :class:`~repro.net.fabric.FlowNetwork`
recomputes the allocation only when the flow set or a capacity changes,
advancing all flows vectorially in numpy — this is what makes
16k-writer simulations tractable in pure Python.
"""

from repro.net.topology import Topology
from repro.net.fabric import FlowNetwork, FlowStats, SinkPool, UniformSinkPool
from repro.net.latency import MessageLatencyModel

__all__ = [
    "FlowNetwork",
    "FlowStats",
    "MessageLatencyModel",
    "SinkPool",
    "Topology",
    "UniformSinkPool",
]
