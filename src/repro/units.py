"""Units and conventions used throughout the simulator.

* time  — seconds (float)
* size  — bytes (int or float; fluid flows use floats)
* rate  — bytes/second

The paper reports bandwidths in MB/s and GB/s with decimal prefixes
(storage-vendor convention); we follow that so reproduced numbers read
like the paper's.
"""

from __future__ import annotations

__all__ = [
    "KB",
    "MB",
    "GB",
    "TB",
    "KiB",
    "MiB",
    "GiB",
    "bytes_to_mb",
    "bytes_to_gb",
    "mb",
    "gb",
    "fmt_bytes",
    "fmt_rate",
]

KB = 1000
MB = 1000**2
GB = 1000**3
TB = 1000**4

KiB = 1024
MiB = 1024**2
GiB = 1024**3


def mb(n: float) -> float:
    """*n* megabytes in bytes."""
    return n * MB


def gb(n: float) -> float:
    """*n* gigabytes in bytes."""
    return n * GB


def bytes_to_mb(n: float) -> float:
    return n / MB


def bytes_to_gb(n: float) -> float:
    return n / GB


def fmt_bytes(n: float) -> str:
    """Human-readable size: ``fmt_bytes(3e9) == '3.00 GB'``."""
    for unit, name in ((TB, "TB"), (GB, "GB"), (MB, "MB"), (KB, "KB")):
        if abs(n) >= unit:
            return f"{n / unit:.2f} {name}"
    return f"{n:.0f} B"


def fmt_rate(rate: float) -> str:
    """Human-readable rate: ``fmt_rate(2.5e9) == '2.50 GB/s'``."""
    return fmt_bytes(rate) + "/s"
