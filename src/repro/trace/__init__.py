"""End-to-end simulation tracing.

A :class:`Tracer` records structured events — spans (begin/end),
instants and counters — from every instrumented layer of the simulator
(engine, fabric, storage targets, MPI, transports) into an in-memory
buffer.  Two exporters turn the buffer into standard artifacts:

* :mod:`repro.trace.chrome` — Chrome trace-event JSON, loadable in
  Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``;
* :mod:`repro.trace.counters` — a Darshan-style per-writer counter
  report (bytes, write counts, time per phase).

Tracing is opt-in and zero-cost when off: instrumentation sites check
``env.tracer is None`` (a single attribute load) before touching the
tracer, and a constructed-but-disabled tracer's record methods return
immediately without allocating.

The *active tracer* registry lets a harness switch tracing on for every
machine built inside a scope without threading a tracer argument
through every figure and benchmark::

    with tracing(Tracer()) as t:
        result = fig6.run("smoke")
    chrome.export(t.events, "trace.json")

:meth:`repro.machines.base.MachineSpec.build` consults the registry.
"""

from repro.trace.tracer import (
    TraceEvent,
    Tracer,
    check_well_formed,
    get_active_tracer,
    set_active_tracer,
    tracing,
)

__all__ = [
    "TraceEvent",
    "Tracer",
    "check_well_formed",
    "get_active_tracer",
    "set_active_tracer",
    "tracing",
]
