"""The tracer: an in-memory buffer of structured simulation events.

Event model (a strict subset of the Chrome trace-event phases, so the
export in :mod:`repro.trace.chrome` is a direct mapping):

========  =====================================================
``ph``    meaning
========  =====================================================
``B``     span begin — something with duration started
``E``     span end — must pair with the latest open ``B`` of the
          same name on the same (pid, tid) track
``X``     complete span — duration known at record time
``i``     instant — a point occurrence (a protocol decision, a
          state transition)
``C``     counter — named numeric values sampled at a time point
========  =====================================================

``pid``/``tid`` are human-readable track labels, not OS ids: by
convention ``pid`` names the resource ("ost/3", "node/7", "mpi",
"fabric", "sim", "adaptive") and ``tid`` the actor within it
("rank 5", "flow 12", "coordinator").  The Chrome exporter maps them
to numeric ids and emits metadata so Perfetto shows the labels.

Timestamps are simulated seconds.  A tracer bound to an
:class:`~repro.sim.engine.Environment` stamps events with ``env.now``
automatically; unbound call sites (the OST pool, which only receives
``now`` as an argument) pass ``ts`` explicitly.

One tracer may observe several simulation runs (a sweep builds a fresh
environment per cell); each bind starts a new *run* and events carry
the run index so exporters can keep runs apart.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment

__all__ = [
    "TraceEvent",
    "Tracer",
    "check_well_formed",
    "get_active_tracer",
    "set_active_tracer",
    "tracing",
]


@dataclass(frozen=True)
class TraceEvent:
    """One recorded occurrence."""

    ph: str  # "B" | "E" | "X" | "i" | "C"
    name: str
    cat: str
    ts: float  # simulated seconds
    pid: str  # resource track label ("ost/3", "node/7", "mpi", ...)
    tid: str  # actor track label ("rank 5", "flow 12", ...)
    run: int = 0
    dur: float = 0.0  # "X" only: span duration, seconds
    args: Optional[Dict[str, Any]] = None


class Tracer:
    """Collects :class:`TraceEvent` records from instrumented layers.

    Parameters
    ----------
    enabled:
        When False every record method is a no-op; instrumentation
        sites additionally skip the call entirely when ``env.tracer``
        is None, so an untraced simulation pays one attribute load per
        site and nothing else.
    """

    __slots__ = ("enabled", "events", "run", "_env", "_n_binds")

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.events: List[TraceEvent] = []
        self.run = 0
        self._env: Optional["Environment"] = None
        self._n_binds = 0

    # -- lifecycle -------------------------------------------------------
    def bind(self, env: "Environment") -> None:
        """Attach to an environment; a new environment starts a new run."""
        if env is self._env:
            return
        self._env = env
        self.run = self._n_binds
        self._n_binds += 1

    @property
    def n_runs(self) -> int:
        return max(self._n_binds, 1)

    def absorb(self, events: List[TraceEvent]) -> None:
        """Merge another tracer's buffer (e.g. from a worker process).

        Each distinct run index in *events* is assigned a fresh run
        index here, continuing this tracer's own sequence — so a sweep
        that fans samples out over processes produces the same
        one-run-per-sample structure (and the same ``runN`` track
        prefixes in the Chrome export) as a serial sweep.
        """
        if not events:
            return
        from dataclasses import replace

        base = self._n_binds
        max_run = 0
        append = self.events.append
        for ev in events:
            if ev.run > max_run:
                max_run = ev.run
            append(replace(ev, run=base + ev.run))
        self._n_binds = base + max_run + 1

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)

    def _ts(self, ts: Optional[float]) -> float:
        if ts is not None:
            return ts
        return self._env.now if self._env is not None else 0.0

    # -- recording -------------------------------------------------------
    def begin(
        self,
        name: str,
        cat: str,
        pid: str,
        tid: str,
        ts: Optional[float] = None,
        args: Optional[dict] = None,
    ) -> None:
        if not self.enabled:
            return
        self.events.append(
            TraceEvent("B", name, cat, self._ts(ts), pid, tid, self.run,
                       args=args)
        )

    def end(
        self,
        name: str,
        cat: str,
        pid: str,
        tid: str,
        ts: Optional[float] = None,
        args: Optional[dict] = None,
    ) -> None:
        if not self.enabled:
            return
        self.events.append(
            TraceEvent("E", name, cat, self._ts(ts), pid, tid, self.run,
                       args=args)
        )

    def complete(
        self,
        name: str,
        cat: str,
        pid: str,
        tid: str,
        ts: float,
        dur: float,
        args: Optional[dict] = None,
    ) -> None:
        """A span whose duration is known at record time (Chrome "X")."""
        if not self.enabled:
            return
        self.events.append(
            TraceEvent("X", name, cat, ts, pid, tid, self.run, dur=dur,
                       args=args)
        )

    def instant(
        self,
        name: str,
        cat: str,
        pid: str,
        tid: str,
        ts: Optional[float] = None,
        args: Optional[dict] = None,
    ) -> None:
        if not self.enabled:
            return
        self.events.append(
            TraceEvent("i", name, cat, self._ts(ts), pid, tid, self.run,
                       args=args)
        )

    def counter(
        self,
        name: str,
        pid: str,
        values: Dict[str, float],
        tid: str = "counters",
        ts: Optional[float] = None,
    ) -> None:
        if not self.enabled:
            return
        self.events.append(
            TraceEvent("C", name, "counter", self._ts(ts), pid, tid,
                       self.run, args=dict(values))
        )

    @contextmanager
    def span(self, name: str, cat: str, pid: str, tid: str,
             args: Optional[dict] = None):
        """Context-manager convenience for non-yielding code paths."""
        self.begin(name, cat, pid, tid, args=args)
        try:
            yield
        finally:
            self.end(name, cat, pid, tid)

    def close_open_spans(self, ts: Optional[float] = None) -> int:
        """Close every still-open ``B`` span of the current run.

        When a transport aborts mid-run (a fault made it raise), the
        processes holding spans open never reach their ``end()`` calls
        and the Chrome trace would carry dangling ``B`` events.  This
        appends matching ``E`` events (tagged ``{"aborted": True}``) in
        proper nesting order, so :func:`check_well_formed` passes on
        aborted runs too.  Returns the number of spans closed.
        """
        if not self.enabled:
            return 0
        stacks: Dict[tuple, List[TraceEvent]] = {}
        for ev in self.events:
            if ev.run != self.run:
                continue
            key = (ev.pid, ev.tid)
            if ev.ph == "B":
                stacks.setdefault(key, []).append(ev)
            elif ev.ph == "E":
                stack = stacks.get(key)
                if stack:
                    stack.pop()
        t = self._ts(ts)
        closed = 0
        for (pid, tid), stack in stacks.items():
            for b in reversed(stack):
                self.events.append(
                    TraceEvent("E", b.name, b.cat, max(t, b.ts), pid, tid,
                               self.run, args={"aborted": True})
                )
                closed += 1
        return closed


def check_well_formed(
    events: List[TraceEvent], allow_unclosed: bool = False
) -> List[str]:
    """Validate span nesting; returns a list of problem descriptions.

    Per (run, pid, tid) track, ``B``/``E`` events must form a properly
    nested sequence: every ``E`` closes the most recent open ``B`` of
    the same name, and no ``B`` is left open at the end.  ``X``, ``i``
    and ``C`` events are self-contained and only checked for
    non-negative duration.

    ``allow_unclosed`` skips the still-open-at-end check: a trace cut
    at simulation end legitimately leaves spans open (e.g. background
    interference flows that outlive the measured output).
    """
    errors: List[str] = []
    stacks: Dict[tuple, List[TraceEvent]] = {}
    for ev in events:
        key = (ev.run, ev.pid, ev.tid)
        if ev.ph == "B":
            stacks.setdefault(key, []).append(ev)
        elif ev.ph == "E":
            stack = stacks.get(key)
            if not stack:
                errors.append(
                    f"E {ev.name!r} at t={ev.ts} on {key} with no open span"
                )
            else:
                top = stack.pop()
                if top.name != ev.name:
                    errors.append(
                        f"E {ev.name!r} at t={ev.ts} on {key} closes "
                        f"B {top.name!r} (improper nesting)"
                    )
                elif ev.ts < top.ts:
                    errors.append(
                        f"span {ev.name!r} on {key} ends at {ev.ts} "
                        f"before it begins at {top.ts}"
                    )
        elif ev.ph == "X" and ev.dur < 0:
            errors.append(
                f"X {ev.name!r} at t={ev.ts} has negative duration {ev.dur}"
            )
    if not allow_unclosed:
        for key, stack in stacks.items():
            for ev in stack:
                errors.append(
                    f"B {ev.name!r} at t={ev.ts} on {key} never closed"
                )
    return errors


# -- active-tracer registry ----------------------------------------------
_ACTIVE: Optional[Tracer] = None


def set_active_tracer(tracer: Optional[Tracer]) -> None:
    """Install (or clear, with None) the process-wide active tracer."""
    global _ACTIVE
    _ACTIVE = tracer


def get_active_tracer() -> Optional[Tracer]:
    """The tracer newly built machines attach to, if any."""
    return _ACTIVE


@contextmanager
def tracing(tracer: Tracer):
    """Scope in which every machine built picks up *tracer*."""
    previous = get_active_tracer()
    set_active_tracer(tracer)
    try:
        yield tracer
    finally:
        set_active_tracer(previous)
