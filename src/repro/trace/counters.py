"""Darshan-style per-writer I/O counters derived from a trace.

Darshan's insight is that a handful of per-rank counters — bytes
moved, operation counts, time per phase — diagnose most parallel-IO
pathologies without a full timeline.  This module folds the writer
phase spans every transport records (``wait`` for waiting on a
coordinator/SC signal, ``index`` for local index construction,
``write`` for the data movement itself; category ``writer``) into one
:class:`WriterCounters` record per writer per run, and renders them as
a report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.trace.tracer import TraceEvent

__all__ = ["WriterCounters", "per_writer_counters", "render_report"]

PHASES = ("wait", "index", "write")


@dataclass
class WriterCounters:
    """Counters for one writer (one rank) in one run."""

    run: int
    writer: str  # tid label, e.g. "rank 5"
    node: str  # pid label, e.g. "node/3"
    bytes_written: float = 0.0
    write_count: int = 0
    adaptive_writes: int = 0
    retries: int = 0  # write.retry fault instants (timeout + backoff)
    aborts: int = 0  # write.abort fault instants (gave up)
    corrupt_detected: int = 0  # verify failures + scrub detections
    repaired: int = 0  # block.repair integrity instants
    time: Dict[str, float] = field(
        default_factory=lambda: {p: 0.0 for p in PHASES}
    )

    @property
    def total_time(self) -> float:
        return sum(self.time.values())

    @property
    def slowest_phase(self) -> str:
        return max(PHASES, key=lambda p: self.time[p])

    @property
    def fastest_phase(self) -> str:
        return min(PHASES, key=lambda p: self.time[p])

    @property
    def bandwidth(self) -> float:
        t = self.time["write"]
        return self.bytes_written / t if t > 0 else float("inf")


def per_writer_counters(events: List[TraceEvent]) -> List[WriterCounters]:
    """Fold writer-phase spans into per-(run, writer) counters.

    Unclosed spans (a simulation stopped mid-write) contribute nothing;
    only completed begin/end pairs are counted.
    """
    counters: Dict[Tuple[int, str], WriterCounters] = {}
    open_spans: Dict[Tuple[int, str, str, str], TraceEvent] = {}

    def writer_of(ev: TraceEvent) -> WriterCounters:
        wkey = (ev.run, ev.tid)
        wc = counters.get(wkey)
        if wc is None:
            wc = WriterCounters(run=ev.run, writer=ev.tid, node=ev.pid)
            counters[wkey] = wc
        return wc

    for ev in events:
        if ev.cat == "fault" and ev.ph == "i":
            # Retry/abort instants the fault-tolerant write path emits.
            if ev.name == "write.retry":
                writer_of(ev).retries += 1
            elif ev.name == "write.abort":
                writer_of(ev).aborts += 1
            continue
        if ev.cat == "integrity" and ev.ph == "i":
            # Integrity instants: per-writer detections (a failed
            # read-back verify or a scrub hit attributed to the block's
            # writer) and repairs (a verify-failed block rewritten ok).
            if ev.name in ("write.verify_fail", "scrub.detect"):
                writer_of(ev).corrupt_detected += 1
            elif ev.name == "block.repair":
                writer_of(ev).repaired += 1
            continue
        if ev.cat != "writer" or ev.name not in PHASES:
            continue
        key = (ev.run, ev.pid, ev.tid, ev.name)
        if ev.ph == "B":
            open_spans[key] = ev
            continue
        if ev.ph != "E":
            continue
        b = open_spans.pop(key, None)
        if b is None:
            continue
        wc = writer_of(ev)
        wc.time[ev.name] += ev.ts - b.ts
        if ev.name == "write":
            wc.write_count += 1
            args = b.args or {}
            wc.bytes_written += float(args.get("nbytes", 0.0))
            if args.get("adaptive"):
                wc.adaptive_writes += 1
    return sorted(counters.values(), key=_sort_key)


def _sort_key(wc: WriterCounters):
    # "rank 12" sorts numerically, anything else lexically after.
    parts = wc.writer.rsplit(" ", 1)
    try:
        rank = int(parts[-1])
    except ValueError:
        rank = 1 << 30
    return (wc.run, rank, wc.writer)


def _fmt_bytes(n: float) -> str:
    for unit, div in (("GB", 1e9), ("MB", 1e6), ("KB", 1e3)):
        if n >= div:
            return f"{n / div:.1f} {unit}"
    return f"{n:.0f} B"


def render_report(
    counters: List[WriterCounters], top: Optional[int] = None
) -> str:
    """Darshan-style text report; ``top`` keeps the N slowest writers."""
    if not counters:
        return "no writer-phase spans in trace (was tracing enabled?)"
    lines: List[str] = []
    runs = sorted({wc.run for wc in counters})
    for run in runs:
        run_wcs = [wc for wc in counters if wc.run == run]
        shown = run_wcs
        if top is not None and len(run_wcs) > top:
            shown = sorted(
                run_wcs, key=lambda w: w.total_time, reverse=True
            )[:top]
        total_bytes = sum(w.bytes_written for w in run_wcs)
        total_writes = sum(w.write_count for w in run_wcs)
        adaptive = sum(w.adaptive_writes for w in run_wcs)
        retries = sum(w.retries for w in run_wcs)
        aborts = sum(w.aborts for w in run_wcs)
        detected = sum(w.corrupt_detected for w in run_wcs)
        repaired = sum(w.repaired for w in run_wcs)
        summary = (
            f"# run {run}: {len(run_wcs)} writers, "
            f"{_fmt_bytes(total_bytes)} in {total_writes} writes "
            f"({adaptive} steered adaptively)"
        )
        # Fault/integrity columns appear only when faults actually bit:
        # the fault-free report stays byte-identical.
        faulty = retries > 0 or aborts > 0
        integrity = detected > 0 or repaired > 0
        if faulty:
            summary += f"; {retries} retries, {aborts} aborts"
        if integrity:
            summary += (
                f"; {detected} corrupt block(s) detected, "
                f"{repaired} repaired"
            )
        lines.append(summary)
        header = (
            f"{'writer':<12} {'bytes':>10} {'writes':>6} {'adapt':>5} "
        )
        if faulty:
            header += f"{'retry':>5} {'abort':>5} "
        if integrity:
            header += f"{'det':>4} {'rep':>4} "
        header += (
            f"{'t_wait':>9} {'t_index':>9} {'t_write':>9} "
            f"{'slowest':>8} {'fastest':>8}"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for wc in shown:
            row = (
                f"{wc.writer:<12} {_fmt_bytes(wc.bytes_written):>10} "
                f"{wc.write_count:>6d} {wc.adaptive_writes:>5d} "
            )
            if faulty:
                row += f"{wc.retries:>5d} {wc.aborts:>5d} "
            if integrity:
                row += f"{wc.corrupt_detected:>4d} {wc.repaired:>4d} "
            row += (
                f"{wc.time['wait']:>9.4f} {wc.time['index']:>9.4f} "
                f"{wc.time['write']:>9.4f} "
                f"{wc.slowest_phase:>8} {wc.fastest_phase:>8}"
            )
            lines.append(row)
        if shown is not run_wcs and len(shown) < len(run_wcs):
            lines.append(
                f"... {len(run_wcs) - len(shown)} more writers "
                f"(slowest {len(shown)} shown; use --all for every writer)"
            )
        waits = [w.time["wait"] for w in run_wcs]
        writes = [w.time["write"] for w in run_wcs]
        lines.append(
            f"# aggregate: max t_wait {max(waits):.4f}s, "
            f"max t_write {max(writes):.4f}s, "
            f"mean t_write {sum(writes) / len(writes):.4f}s"
        )
        lines.append("")
    return "\n".join(lines).rstrip()
