"""Chrome trace-event JSON export/import.

The exported file is the "JSON object format" of the Trace Event
specification: ``{"traceEvents": [...], "displayTimeUnit": "ms"}``.
Open it at https://ui.perfetto.dev or ``chrome://tracing``.

Mapping choices:

* simulated seconds become microseconds (the format's unit);
* string track labels become numeric pid/tid with ``process_name`` /
  ``thread_name`` metadata events, so Perfetto displays "ost/3" and
  "rank 17" instead of bare numbers;
* when the tracer observed several runs (a sweep), process labels are
  prefixed with ``run<N>`` to keep the runs' overlapping timelines on
  separate tracks.

:func:`load` inverts the mapping back into :class:`TraceEvent`
records, which is what the round-trip tests and the
``python -m repro.tools.trace`` CLI consume.
"""

from __future__ import annotations

import json
import re
from typing import Dict, List, Tuple, Union

from repro.trace.tracer import TraceEvent

__all__ = ["to_chrome", "export", "load"]

_SECONDS_TO_US = 1e6
_RUN_PREFIX = re.compile(r"^run(\d+) (.*)$")


def to_chrome(events: List[TraceEvent]) -> dict:
    """Convert a tracer's event buffer into a Chrome trace dict."""
    multi_run = any(ev.run != 0 for ev in events)
    pid_ids: Dict[str, int] = {}
    tid_ids: Dict[Tuple[int, str], int] = {}
    meta: List[dict] = []
    records: List[dict] = []

    for ev in events:
        plabel = f"run{ev.run} {ev.pid}" if multi_run else ev.pid
        pid = pid_ids.get(plabel)
        if pid is None:
            pid = len(pid_ids) + 1
            pid_ids[plabel] = pid
            meta.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": plabel},
                }
            )
        tkey = (pid, ev.tid)
        tid = tid_ids.get(tkey)
        if tid is None:
            tid = len(tid_ids) + 1
            tid_ids[tkey] = tid
            meta.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": ev.tid},
                }
            )
        rec = {
            "ph": ev.ph,
            "name": ev.name,
            "cat": ev.cat or "default",
            "ts": ev.ts * _SECONDS_TO_US,
            "pid": pid,
            "tid": tid,
        }
        if ev.ph == "X":
            rec["dur"] = ev.dur * _SECONDS_TO_US
        if ev.ph == "i":
            rec["s"] = "t"  # thread-scoped instant
        if ev.args:
            rec["args"] = ev.args
        records.append(rec)

    return {"traceEvents": meta + records, "displayTimeUnit": "ms"}


def export(events: List[TraceEvent], path: str) -> str:
    """Write the Chrome trace JSON for *events* to *path*."""
    with open(path, "w") as fh:
        json.dump(to_chrome(events), fh, default=_jsonable)
        fh.write("\n")
    return path


def _jsonable(obj):
    """Best-effort serialization for numpy scalars and odd arg values."""
    for cast in (float, str):
        try:
            return cast(obj)
        except (TypeError, ValueError):
            continue
    raise TypeError(f"cannot serialize {type(obj).__name__}")


def load(source: Union[str, dict]) -> List[TraceEvent]:
    """Load a Chrome trace file (or parsed dict) back into TraceEvents.

    Metadata events are consumed to restore the string pid/tid labels;
    the ``run<N>`` prefix (written for multi-run traces) is parsed back
    into the event's ``run`` field.
    """
    if isinstance(source, dict):
        doc = source
    else:
        with open(source) as fh:
            doc = json.load(fh)
    raw = doc["traceEvents"] if isinstance(doc, dict) else doc

    pnames: Dict[int, str] = {}
    tnames: Dict[Tuple[int, int], str] = {}
    for rec in raw:
        if rec.get("ph") == "M":
            if rec.get("name") == "process_name":
                pnames[rec["pid"]] = rec["args"]["name"]
            elif rec.get("name") == "thread_name":
                tnames[(rec["pid"], rec["tid"])] = rec["args"]["name"]

    events: List[TraceEvent] = []
    for rec in raw:
        ph = rec.get("ph")
        if ph not in ("B", "E", "X", "i", "C"):
            continue
        plabel = pnames.get(rec["pid"], str(rec["pid"]))
        run = 0
        m = _RUN_PREFIX.match(plabel)
        if m:
            run = int(m.group(1))
            plabel = m.group(2)
        tlabel = tnames.get((rec["pid"], rec["tid"]), str(rec["tid"]))
        events.append(
            TraceEvent(
                ph=ph,
                name=rec.get("name", ""),
                cat=rec.get("cat", ""),
                ts=rec.get("ts", 0.0) / _SECONDS_TO_US,
                pid=plabel,
                tid=tlabel,
                run=run,
                dur=rec.get("dur", 0.0) / _SECONDS_TO_US,
                args=rec.get("args"),
            )
        )
    return events
