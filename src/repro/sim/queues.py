"""Waitable containers: Store, PriorityStore, Resource.

These are the blocking building blocks the control plane uses:
mailboxes for the simulated MPI layer and admission tokens for the
metadata server are all stores/resources underneath.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import TYPE_CHECKING, Any, Deque, List, Optional

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment

__all__ = ["Store", "PriorityStore", "Resource"]


class Store:
    """Unbounded (or bounded) FIFO queue of Python objects.

    ``put(item)`` and ``get()`` both return events to be yielded; gets
    block while empty, puts block while at capacity.
    """

    def __init__(self, env: "Environment", capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple] = deque()  # (event, item)

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> list:
        """Snapshot of queued items (for inspection/tests)."""
        return list(self._items)

    def put(self, item: Any) -> Event:
        ev = Event(self.env)
        if len(self._items) < self.capacity:
            self._enqueue(item)
            ev.succeed(item)
        else:
            self._putters.append((ev, item))
        return ev

    def get(self) -> Event:
        ev = Event(self.env)
        if self._items:
            ev.succeed(self._dequeue())
            self._admit_putter()
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> Optional[Any]:
        """Non-blocking get: an item, or None when empty."""
        if not self._items:
            return None
        item = self._dequeue()
        self._admit_putter()
        return item

    # -- internals ------------------------------------------------------
    def _enqueue(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def _dequeue(self) -> Any:
        return self._items.popleft()

    def _admit_putter(self) -> None:
        if self._putters and len(self._items) < self.capacity:
            ev, item = self._putters.popleft()
            self._enqueue(item)
            ev.succeed(item)


class PriorityStore(Store):
    """Store delivering the smallest item first (heap ordering)."""

    def __init__(self, env: "Environment", capacity: float = float("inf")):
        super().__init__(env, capacity)
        self._heap: List[Any] = []

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def items(self) -> list:
        return sorted(self._heap)

    def _enqueue(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            heapq.heappush(self._heap, item)

    def _dequeue(self) -> Any:
        return heapq.heappop(self._heap)

    def try_get(self) -> Optional[Any]:
        if not self._heap:
            return None
        item = self._dequeue()
        self._admit_putter()
        return item

    def get(self) -> Event:
        ev = Event(self.env)
        if self._heap:
            ev.succeed(self._dequeue())
            self._admit_putter()
        else:
            self._getters.append(ev)
        return ev

    def put(self, item: Any) -> Event:
        ev = Event(self.env)
        if len(self._heap) < self.capacity:
            self._enqueue(item)
            ev.succeed(item)
        else:
            self._putters.append((ev, item))
        return ev


class Resource:
    """Counted resource with FIFO admission (like a semaphore).

    Usage::

        req = resource.request()
        yield req
        try:
            ...critical section...
        finally:
            resource.release()
    """

    def __init__(self, env: "Environment", capacity: int = 1):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def request(self) -> Event:
        ev = Event(self.env)
        if self._in_use < self.capacity:
            self._in_use += 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        if self._in_use <= 0:
            raise RuntimeError("release() without matching request()")
        if self._waiters:
            # Hand the slot directly to the next waiter.
            self._waiters.popleft().succeed()
        else:
            self._in_use -= 1
