"""Event primitives for the simulation kernel.

An :class:`Event` is a one-shot occurrence: it is *pending* until
triggered, then fires exactly once, delivering a value (or an exception)
to every registered callback.  Processes suspend on events by yielding
them; the kernel registers a resume callback.

Design notes
------------
Events are deliberately tiny — the data plane of the simulator (bulk
transfers) does not allocate one event per byte-range but is managed by
the vectorized flow network in :mod:`repro.net.fabric`; events only carry
control-plane occurrences (message deliveries, completions, state
changes), so allocation cost is not the bottleneck.

:meth:`Event.cancel` is the supported way to withdraw a superseded
calendar entry (e.g. the flow network's re-armed "next state change"
timer): the heap entry is skipped lazily at pop time, so cancellation
is O(1) and leaves no tombstone to fire into a stale closure.
"""

from __future__ import annotations

from heapq import heappush
from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Environment

__all__ = [
    "Event",
    "Timeout",
    "Condition",
    "AnyOf",
    "AllOf",
    "AllSettled",
    "EventAborted",
]

_PENDING = object()


class EventAborted(Exception):
    """Raised inside a process waiting on an event that was failed."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence on the simulation calendar.

    Parameters
    ----------
    env:
        Owning environment.

    Attributes
    ----------
    callbacks:
        List of ``fn(event)`` invoked (in registration order) when the
        event fires.  ``None`` once processed — appending afterwards is a
        bug the kernel turns into an immediate error.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_scheduled", "_cancelled")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self._scheduled = False
        self._cancelled = False

    # -- state ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value (scheduled or processed)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return bool(self._ok)

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise RuntimeError("event value not yet available")
        return self._value

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with *value*."""
        if self._value is not _PENDING:
            raise RuntimeError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; waiters see *exception* raised."""
        if self._value is not _PENDING:
            raise RuntimeError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self

    def abort(self, cause: Any = None) -> "Event":
        """Convenience: fail with :class:`EventAborted`."""
        return self.fail(EventAborted(cause))

    def cancel(self) -> "Event":
        """Withdraw a scheduled event from the calendar.

        The heap entry is discarded lazily (the calendar skips it
        without advancing the clock), so cancelling the last pending
        event really does leave the calendar empty.  Cancelling an
        already-processed event is an error; cancelling twice is a
        no-op.
        """
        if self.processed:
            raise RuntimeError(f"{self!r} already processed")
        self._cancelled = True
        return self

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    # -- chaining ------------------------------------------------------
    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        if self.callbacks is None:
            raise RuntimeError(f"{self!r} already processed")
        self.callbacks.append(fn)

    def __and__(self, other: "Event") -> "Condition":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        return AnyOf(self.env, [self, other])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = (
            "pending"
            if self._value is _PENDING
            else ("ok" if self._ok else "failed")
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """Event that fires ``delay`` time units after creation.

    The canonical way for a process to let simulated time pass::

        yield env.timeout(3.5)
    """

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        # Inlined Event.__init__ + Environment._schedule: a timeout is
        # born triggered-and-scheduled, and this constructor is the
        # single hottest allocation site in the kernel (every process
        # hop makes one), so it pays to skip the generic paths.
        self.env = env
        self.callbacks = []
        self._ok = True
        self._value = value
        self._scheduled = True
        self._cancelled = False
        self.delay = delay
        env._seq += 1
        heappush(env._queue, (env._now + delay, 1, env._seq, self))


class Condition(Event):
    """Composite event over a set of sub-events.

    Fires when ``evaluate(events, n_fired)`` returns True.  The value is
    a dict mapping each *triggered-so-far* sub-event to its value, in
    firing order.  A failing sub-event fails the condition.
    """

    __slots__ = ("events", "_fired")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = tuple(events)
        self._fired: list = []
        for ev in self.events:
            if ev.env is not env:
                raise ValueError("all sub-events must share one environment")
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            if ev.processed:
                self._on_sub_event(ev)
            else:
                ev.add_callback(self._on_sub_event)

    def _evaluate(self, n_fired: int) -> bool:
        raise NotImplementedError

    def _on_sub_event(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev.ok:
            self.fail(ev._value)
            return
        self._fired.append(ev)
        if self._evaluate(len(self._fired)):
            self.succeed(self._collect())

    def _collect(self) -> dict:
        return {ev: ev._value for ev in self._fired}


class AllOf(Condition):
    """Fires once every sub-event has fired."""

    __slots__ = ()

    def _evaluate(self, n_fired: int) -> bool:
        return n_fired == len(self.events)


class AnyOf(Condition):
    """Fires as soon as any sub-event fires."""

    __slots__ = ()

    def _evaluate(self, n_fired: int) -> bool:
        return n_fired >= 1


class AllSettled(Condition):
    """Fires once every sub-event has *settled* — succeeded or failed.

    Unlike :class:`AllOf`, a failing sub-event does not fail the
    condition: it is collected like any other outcome.  The value maps
    each sub-event to its value (the exception instance for failed
    sub-events), in settling order.  This is the join primitive for
    fault-tolerant shutdown: "wait for every worker to finish, however
    it finished".
    """

    __slots__ = ()

    def _evaluate(self, n_fired: int) -> bool:
        return n_fired == len(self.events)

    def _on_sub_event(self, ev: Event) -> None:
        if self.triggered:
            return
        self._fired.append(ev)
        if self._evaluate(len(self._fired)):
            self.succeed(self._collect())
