"""The simulation environment: clock, calendar, and run loop."""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Any, Callable, Generator, Optional

from repro.sim.events import Event, Timeout
from repro.sim.process import Process

if TYPE_CHECKING:  # pragma: no cover
    from repro.trace.tracer import Tracer

__all__ = ["Environment", "StopSimulation", "SimulationError", "Deadlock"]


class StopSimulation(Exception):
    """Raised internally to halt :meth:`Environment.run` early."""


class SimulationError(RuntimeError):
    """An unhandled exception escaped a simulation process."""

    def __init__(self, process: Process, cause: BaseException):
        super().__init__(f"process {process.name!r} crashed: {cause!r}")
        self.process = process
        self.cause = cause


class Deadlock(RuntimeError):
    """The event calendar drained while processes were still waiting.

    The classic symptom of a hung storage target with no timeout armed
    anywhere: every live process is parked on an event nothing will
    ever fire.  Carries the list of unfinished processes so the report
    names the suspects instead of just "ran out of events".
    """

    def __init__(self, processes: "list[Process]", detail: str = ""):
        names = ", ".join(sorted(p.name for p in processes)) or "none"
        msg = (
            f"deadlock: event calendar empty with "
            f"{len(processes)} live waiting process(es): {names}"
        )
        if detail:
            msg = f"{msg} ({detail})"
        super().__init__(msg)
        self.processes = list(processes)


class Environment:
    """Owns simulated time and the pending-event calendar.

    Parameters
    ----------
    initial_time:
        Starting value of the clock (seconds by convention throughout
        :mod:`repro`).
    strict:
        When True (default) an unhandled exception in any process aborts
        the whole simulation with :class:`SimulationError` — silent
        process death hides protocol bugs.
    tracer:
        Optional :class:`~repro.trace.tracer.Tracer` observing this
        simulation.  ``env.tracer`` is None by default so instrumented
        layers pay a single attribute check when tracing is off.
    """

    def __init__(
        self,
        initial_time: float = 0.0,
        strict: bool = True,
        tracer: Optional["Tracer"] = None,
    ):
        self._now = float(initial_time)
        self._queue: list = []  # heap of (time, priority, seq, event)
        self._seq = 0
        self._active_process: Optional[Process] = None
        self._live: set = set()  # processes spawned but not yet finished
        self.strict = strict
        self._crashed: Optional[SimulationError] = None
        self.tracer: Optional["Tracer"] = None
        #: Optional MetricsRegistry / Profiler (telemetry package).
        #: Plain nullable attributes, same cost model as ``tracer``:
        #: instrumented layers pay one attribute check when off.
        self.metrics = None
        self.profiler = None
        if tracer is not None:
            self.set_tracer(tracer)

    def set_tracer(self, tracer: Optional["Tracer"]) -> None:
        """Attach (or detach, with None) a tracer to this environment."""
        self.tracer = tracer
        if tracer is not None:
            tracer.bind(self)

    def set_metrics(self, registry) -> None:
        """Attach (or detach, with None) a metrics registry."""
        self.metrics = registry
        if registry is not None:
            registry.bind(self)

    # -- introspection (sampled by telemetry, not updated per event) ------
    @property
    def events_scheduled(self) -> int:
        """Total events ever scheduled — a monotone throughput counter."""
        return self._seq

    @property
    def calendar_depth(self) -> int:
        """Events currently pending (including cancelled tombstones)."""
        return len(self._queue)

    # -- clock -----------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    # -- event construction ----------------------------------------------
    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing *delay* time units from now."""
        return Timeout(self, delay, value)

    def process(
        self,
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> Process:
        """Launch *generator* as a new simulation process."""
        p = Process(self, generator, name=name)
        tr = self.tracer
        if tr is not None and tr.enabled:
            tr.instant("process.spawn", cat="process", pid="sim", tid=p.name)

            def _trace_exit(_ev, _tr=tr, _name=p.name) -> None:
                _tr.instant("process.exit", cat="process", pid="sim",
                            tid=_name)

            p.add_callback(_trace_exit)
        return p

    def any_of(self, events) -> Event:
        from repro.sim.events import AnyOf

        return AnyOf(self, events)

    def all_of(self, events) -> Event:
        from repro.sim.events import AllOf

        return AllOf(self, events)

    # -- scheduling --------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0, priority: int = 1) -> None:
        if event._scheduled:
            raise RuntimeError(f"{event!r} scheduled twice")
        event._scheduled = True
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))

    def schedule_callback(
        self, delay: float, fn: Callable[[], None], priority: int = 1
    ) -> Event:
        """Run a plain callable at ``now + delay`` (no process needed).

        Used by the flow network to arm its single "next state change"
        timer.  Returns the underlying event, which supports
        :meth:`~repro.sim.events.Event.cancel`: a cancelled timer is
        discarded lazily when the calendar reaches it (the heap entry
        is skipped without advancing the clock), so the calendar stays
        a plain heap and cancelling the last pending event leaves it
        genuinely empty.  Callers that re-arm often (the flow network)
        should cancel the superseded event — a cancelled entry is one
        tuple skipped during a heap pop, whereas an uncancelled stale
        entry fires into a dead closure and, under heavy churn, piles
        thousands of tombstones onto one simulated instant.
        """
        ev = Event(self)
        ev._ok = True
        ev._value = None
        ev.add_callback(lambda _ev: fn())
        self._schedule(ev, delay=delay, priority=priority)
        return ev

    def _crash(self, process: Process, cause: BaseException) -> None:
        if self._crashed is None:
            self._crashed = SimulationError(process, cause)

    # -- liveness ---------------------------------------------------------
    def unfinished_processes(self) -> "list[Process]":
        """Processes that have been spawned but have not yet finished.

        After :meth:`run` returns (or raises), anything listed here was
        still parked on an event — the starting point for diagnosing a
        hang or partial run.
        """
        return [p for p in self._live if p.is_alive]

    def check_deadlock(self) -> None:
        """Raise :class:`Deadlock` if the calendar is empty but processes wait.

        Cheap enough to call after any :meth:`run` that returned without
        its awaited condition: an empty calendar with live processes
        means nothing will ever wake them.
        """
        if self.peek() != float("inf"):
            return
        waiting = self.unfinished_processes()
        if waiting:
            raise Deadlock(waiting)

    # -- run loop -----------------------------------------------------------
    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if idle.

        Cancelled entries are discarded here rather than at their fire
        time, so they never hold the clock hostage: cancelling the last
        pending event leaves the calendar genuinely empty.
        """
        q = self._queue
        while q and q[0][3]._cancelled:
            heapq.heappop(q)
        return q[0][0] if q else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        q = self._queue
        pop = heapq.heappop
        while q and q[0][3]._cancelled:
            pop(q)
        if not q:
            raise StopSimulation("calendar empty")
        t, _prio, _seq, event = pop(q)
        if t > self._now:
            self._now = t
        elif t < self._now - 1e-12:
            raise RuntimeError(
                f"time went backwards: event at {t} < now {self._now}"
            )
        callbacks, event.callbacks = event.callbacks, None
        for fn in callbacks:
            fn(event)
            if self._crashed is not None:
                raise self._crashed

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the calendar drains, *until* time passes, or event fires.

        Returns the event's value when *until* is an event.
        """
        if until is None:
            stop_time = float("inf")
            stop_event: Optional[Event] = None
        elif isinstance(until, Event):
            stop_event = until
            stop_time = float("inf")
            if stop_event.processed:
                if stop_event.ok:
                    return stop_event.value
                raise stop_event.value
        else:
            stop_time = float(until)
            stop_event = None
            if stop_time < self._now:
                raise ValueError(
                    f"until={stop_time} is in the past (now={self._now})"
                )

        # The hot loop: equivalent to peek()+step() per iteration, but
        # with the heap scanned once, the heap/pop lookups hoisted, and
        # the stop-event check reduced to a slot load.  The simulation
        # spends most of its wall-clock here.
        q = self._queue
        pop = heapq.heappop
        try:
            while q:
                while q and q[0][3]._cancelled:
                    pop(q)
                if not q:
                    break
                t = q[0][0]
                if t > stop_time:
                    self._now = stop_time
                    return None
                event = pop(q)[3]
                if t > self._now:
                    self._now = t
                elif t < self._now - 1e-12:
                    raise RuntimeError(
                        f"time went backwards: event at {t} < "
                        f"now {self._now}"
                    )
                callbacks, event.callbacks = event.callbacks, None
                for fn in callbacks:
                    fn(event)
                    if self._crashed is not None:
                        raise self._crashed
                if stop_event is not None and stop_event.callbacks is None:
                    if stop_event._ok:
                        return stop_event._value
                    raise stop_event._value
        except StopSimulation:
            pass
        if stop_event is not None:
            raise Deadlock(
                self.unfinished_processes(),
                detail="calendar drained before the awaited event fired",
            )
        if stop_time != float("inf"):
            self._now = stop_time
        return None
