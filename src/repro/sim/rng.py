"""Deterministic named random streams.

Every stochastic component in the simulator draws from its own named
child generator spawned from one root seed, so (a) whole experiments are
reproducible from a single integer, and (b) adding a new noise source
does not perturb the draws of existing ones.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np

__all__ = ["RngRegistry"]


class RngRegistry:
    """Registry of named, independent ``numpy.random.Generator`` streams.

    >>> rngs = RngRegistry(seed=7)
    >>> a = rngs.get("ost.3.noise")
    >>> b = rngs.get("ost.4.noise")
    >>> a is rngs.get("ost.3.noise")
    True

    Streams are derived by hashing the stream name together with the root
    seed, so the mapping name → stream is stable across processes and
    Python versions.
    """

    def __init__(self, seed: int = 0):
        if not isinstance(seed, int):
            raise TypeError(f"seed must be int, got {type(seed).__name__}")
        self.seed = seed
        self._streams: Dict[str, np.random.Generator] = {}

    def _derive(self, name: str) -> int:
        digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
        return int.from_bytes(digest[:8], "little")

    def get(self, name: str) -> np.random.Generator:
        """The generator for *name*, creating it on first use."""
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.default_rng(self._derive(name))
            self._streams[name] = gen
        return gen

    def fork(self, name: str) -> "RngRegistry":
        """A sub-registry whose streams are namespaced under *name*.

        Used to give each sample of a multi-sample experiment its own
        coherent universe of streams.
        """
        return RngRegistry(self._derive(f"fork:{name}"))

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RngRegistry(seed={self.seed}, streams={len(self._streams)})"
