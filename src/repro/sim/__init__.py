"""Discrete-event simulation kernel.

A small, dependency-free DES kernel in the style of SimPy: simulation
*processes* are Python generators that ``yield`` :class:`~repro.sim.events.Event`
objects to suspend until the event fires.  The :class:`~repro.sim.engine.Environment`
owns the event calendar and the clock.

The kernel is the substrate everything else in :mod:`repro` runs on: the
simulated MPI layer, the Lustre-like file system, the interference
generators, and the adaptive-IO protocol processes are all kernel
processes exchanging kernel events.

Example
-------
>>> from repro.sim import Environment
>>> env = Environment()
>>> log = []
>>> def ticker(env, period):
...     while True:
...         yield env.timeout(period)
...         log.append(env.now)
>>> _ = env.process(ticker(env, 10.0))
>>> env.run(until=35.0)
>>> log
[10.0, 20.0, 30.0]
"""

from repro.sim.events import (
    AllOf,
    AllSettled,
    AnyOf,
    Event,
    EventAborted,
    Timeout,
)
from repro.sim.process import Interrupt, Mailbox, Process, ProcessKilled
from repro.sim.engine import Deadlock, Environment, SimulationError, StopSimulation
from repro.sim.queues import PriorityStore, Resource, Store
from repro.sim.rng import RngRegistry

__all__ = [
    "AllOf",
    "AllSettled",
    "AnyOf",
    "Deadlock",
    "Environment",
    "Event",
    "EventAborted",
    "Interrupt",
    "Mailbox",
    "PriorityStore",
    "Process",
    "ProcessKilled",
    "Resource",
    "RngRegistry",
    "SimulationError",
    "StopSimulation",
    "Store",
    "Timeout",
]
