"""Generator-based simulation processes.

A :class:`Process` drives a Python generator: each value the generator
yields must be an :class:`~repro.sim.events.Event`; the process suspends
until that event fires, then resumes with the event's value (or with the
event's exception raised at the yield point).  A process is itself an
event that fires when the generator returns — so processes can wait on
each other (fork/join) simply by yielding the child process.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment

__all__ = ["Process", "Interrupt", "ProcessKilled", "Mailbox"]


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The interrupted process may catch it and continue; the event it was
    waiting on remains pending and may be re-awaited.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class ProcessKilled(Exception):
    """Failure value of a process that was forcibly killed."""


class Process(Event):
    """A running simulation process (also an event: fires on return).

    Parameters
    ----------
    env:
        Owning environment.
    generator:
        The generator to drive.
    name:
        Optional label for tracebacks and debugging.
    """

    __slots__ = ("generator", "name", "_waiting_on")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(
                f"process body must be a generator, got {type(generator).__name__}"
            )
        super().__init__(env)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        env._live.add(self)
        # Bootstrap: resume once at the current sim time.
        init = Event(env)
        init._ok = True
        init._value = None
        init.add_callback(self._resume)
        env._schedule(init)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    @property
    def is_suspended(self) -> bool:
        """True while the process is parked on an event (interruptible)."""
        return self._waiting_on is not None

    # -- control -------------------------------------------------------
    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its wait point."""
        if not self.is_alive:
            raise RuntimeError(f"{self.name}: cannot interrupt a dead process")
        if self._waiting_on is None:
            raise RuntimeError(
                f"{self.name}: cannot interrupt before first suspension"
            )
        # Detach from the event we were waiting on; it may still fire but
        # must not resume us twice.
        waited = self._waiting_on
        self._waiting_on = None
        if waited.callbacks is not None:
            try:
                waited.callbacks.remove(self._resume)
            except ValueError:
                pass
        # Resume immediately (at current time) with the interrupt.
        kick = Event(self.env)
        kick._ok = False
        kick._value = Interrupt(cause)
        kick.add_callback(self._resume_with_interrupt)
        self.env._schedule(kick, priority=0)

    def kill(self, cause: Any = None, cancel_wait: bool = False) -> None:
        """Terminate the process; its event fails with ProcessKilled.

        With ``cancel_wait=True`` the event the process was parked on
        is additionally :meth:`~repro.sim.events.Event.cancel`-ed,
        removing its calendar entry instead of leaving a stale wakeup
        to fire into nothing.  Only safe when the caller knows the
        event is private to this process (e.g. its own heartbeat
        timeout) — cancelling a shared event would starve the other
        waiters.
        """
        if not self.is_alive:
            return
        waited = self._waiting_on
        self._waiting_on = None
        if waited is not None and waited.callbacks is not None:
            try:
                waited.callbacks.remove(self._resume)
            except ValueError:
                pass
            if cancel_wait and not waited.processed:
                waited.cancel()
        self.generator.close()
        self.fail(ProcessKilled(cause))
        self.env._live.discard(self)

    # -- kernel resume paths --------------------------------------------
    def _resume_with_interrupt(self, kick: Event) -> None:
        self._step(throw=kick._value)

    def _resume(self, event: Event) -> None:
        if self._waiting_on is not event and self._waiting_on is not None:
            return  # stale callback after interrupt
        self._waiting_on = None
        if event.ok:
            self._step(send=event._value)
        else:
            self._step(throw=event._value)

    def _step(self, send: Any = None, throw: Optional[BaseException] = None) -> None:
        env = self.env
        env._active_process = self
        try:
            if throw is not None:
                target = self.generator.throw(throw)
            else:
                target = self.generator.send(send)
        except StopIteration as stop:
            self.succeed(stop.value)
            env._live.discard(self)
            return
        except BaseException as exc:
            self.fail(exc)
            env._live.discard(self)
            if env.strict:
                env._crash(self, exc)
            return
        finally:
            env._active_process = None

        if not isinstance(target, Event):
            err = TypeError(
                f"{self.name}: processes must yield Event instances, "
                f"got {target!r}"
            )
            self.generator.close()
            self.fail(err)
            env._live.discard(self)
            if env.strict:
                env._crash(self, err)
            return
        if target.env is not env:
            err = ValueError(f"{self.name}: yielded event from foreign environment")
            self.generator.close()
            self.fail(err)
            env._live.discard(self)
            if env.strict:
                env._crash(self, err)
            return

        self._waiting_on = target
        if target.processed:
            # Already fired: resume on the next scheduling round (keeps
            # resume ordering FIFO and avoids unbounded recursion).
            kick = Event(env)
            kick._ok = target._ok
            kick._value = target._value
            self._waiting_on = kick
            kick.add_callback(self._resume)
            env._schedule(kick)
        else:
            target.add_callback(self._resume)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if self.is_alive else "done"
        return f"<Process {self.name} {state}>"


class Mailbox:
    """Single-consumer FIFO queue for cohort-style processes.

    The batched adaptive protocol replaces thousands of per-rank
    processes with one cohort process per sub-coordinator; the cohort
    multiplexes *every* input — delivered MPI messages, stream-member
    boundary notifications, delayed self-wakeups — through one mailbox
    instead of one suspended process per source.  ``put`` is callable
    from plain callbacks (no process context needed); ``get`` returns
    an event the consumer yields on, pre-succeeded when items are
    already queued so the consumer never blocks behind an empty poll.

    Deliberately single-consumer: at most one outstanding ``get`` at a
    time, which keeps wakeup ordering trivially FIFO and deterministic.
    """

    __slots__ = ("env", "_items", "_waiter")

    def __init__(self, env: "Environment"):
        self.env = env
        self._items: deque = deque()
        self._waiter: Optional[Event] = None

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Enqueue an item; wakes the waiting consumer, if any."""
        waiter = self._waiter
        if waiter is not None:
            self._waiter = None
            waiter.succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Event firing with the next item (immediately if queued)."""
        if self._waiter is not None:
            raise RuntimeError("mailbox already has a pending consumer")
        ev = Event(self.env)
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._waiter = ev
        return ev
