"""Franklin XT4 (NERSC).

Paper facts: 38 128 Opteron compute cores, Lustre scratch with 96
storage targets and 436 TB.  Franklin's NERSC monitoring data supplies
the paper's second production-variability series (CoV ≈ 59%).
"""

from __future__ import annotations

from repro.lustre.ost import OstPoolConfig
from repro.machines.base import MachineSpec
from repro.units import GB, MB

__all__ = ["franklin"]


def franklin(n_osts: int = 96) -> MachineSpec:
    """The Franklin machine spec."""
    return MachineSpec(
        name="franklin",
        max_cores=38_128,
        cores_per_node=4,
        nic_bandwidth=1.2 * GB,
        ost_config=OstPoolConfig(
            n_osts=n_osts,
            drain_peak=160.0 * MB,
            ingest_peak=400.0 * MB,
            cache_capacity=192.0 * MB,
        ),
        max_stripe_count=160,
        default_stripe_size=1.0 * MB,
        per_stream_cap=280.0 * MB,
        mds_concurrency=6,
        mds_mean_service_time=1.5e-3,
    )
