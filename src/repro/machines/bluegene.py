"""A BlueGene/P with GPFS — the paper's named future-work target.

"Our future work will examine the benefits of adaptive IO on systems
beyond Lustre at ORNL, including Franklin at NERSC, PanFS on Sandia's
XTP, and perhaps, GPFS on a BlueGene/P machine."

GPFS differs from Lustre in the ways that matter to this model:

* data is wide-striped over *all* NSD servers by default — there is no
  per-file target cap, so the MPI-IO baseline is not structurally
  starved of targets;
* NSD servers have large coalescing buffers and handle concurrent
  streams more gracefully than a Lustre 1.6 OST (shallower efficiency
  curve), but degrade too under heavy concurrency;
* compute nodes reach storage through dedicated IO nodes at a fixed
  compute:IO ratio (64:1 on a typical BG/P), which caps per-node
  injection far below a Cray's SeaStar.

The extension bench (bench_extension_machines) uses this spec to ask
the paper's open question: does adaptive IO still pay off when the
stripe cap disappears?  (Answer in this model: yes under interference
— steering is about *slow* targets, not only *too few* targets — but
the structural 3-5x gap closes.)
"""

from __future__ import annotations

from repro.lustre.ost import EfficiencyCurve, OstPoolConfig
from repro.machines.base import MachineSpec
from repro.units import GB, MB

__all__ = ["bluegene_p"]


def gpfs_drain_curve() -> EfficiencyCurve:
    """NSD server efficiency vs concurrent streams (GPFS coalescing)."""
    return EfficiencyCurve(
        [
            (1, 0.78),
            (2, 0.96),
            (4, 1.00),
            (16, 0.96),
            (64, 0.84),
            (256, 0.60),
            (1024, 0.40),
        ]
    )


def gpfs_ingest_curve() -> EfficiencyCurve:
    return EfficiencyCurve(
        [
            (1, 0.95),
            (8, 1.00),
            (128, 0.95),
            (1024, 0.75),
        ]
    )


def bluegene_p(n_nsd_servers: int = 128) -> MachineSpec:
    """A mid-sized BlueGene/P rack group with GPFS.

    4 cores/node, modest per-node injection (traffic funnels through
    shared IO nodes), 128 NSD servers with ~350 MB/s each.
    """
    return MachineSpec(
        name="bluegene_p",
        max_cores=163_840,  # 40 racks of 1024 quad-core nodes
        cores_per_node=4,
        nic_bandwidth=0.425 * GB,  # IO-node funnel share per node
        ost_config=OstPoolConfig(
            n_osts=n_nsd_servers,
            drain_peak=350.0 * MB,
            ingest_peak=700.0 * MB,
            cache_capacity=1.0 * GB,  # NSD pagepool is generous
            drain_curve=gpfs_drain_curve(),
            ingest_curve=gpfs_ingest_curve(),
            stable_fraction=0.75,
        ),
        # GPFS wide-striping: no Lustre-style per-file cap.
        max_stripe_count=n_nsd_servers,
        default_stripe_size=4.0 * MB,  # GPFS block size
        per_stream_cap=350.0 * MB,
        mds_concurrency=16,  # distributed token/metadata management
        mds_mean_service_time=0.8e-3,
    )
