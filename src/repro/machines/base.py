"""Machine specification and the runtime bundle built from it."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults import FaultInjector, FaultPlan
    from repro.qos import QosConfig
    from repro.telemetry import MetricsRegistry, OnlineMonitor
    from repro.trace.tracer import Tracer

from repro.errors import ConfigurationError
from repro.lustre.filesystem import FileSystem
from repro.lustre.mds import MetadataServer
from repro.lustre.ost import OstPool, OstPoolConfig
from repro.net.latency import MessageLatencyModel
from repro.net.topology import Topology
from repro.sim.engine import Environment
from repro.sim.rng import RngRegistry
from repro.units import MB

__all__ = ["MachineSpec", "Machine"]


@dataclass(frozen=True)
class MachineSpec:
    """Everything needed to instantiate a machine + file system.

    A spec is immutable and cheap; :meth:`build` stamps out a live
    :class:`Machine` bound to a fresh simulation environment.
    """

    name: str
    max_cores: int
    cores_per_node: int
    nic_bandwidth: float
    ost_config: OstPoolConfig
    max_stripe_count: int = 160
    default_stripe_size: float = 1.0 * MB
    per_stream_cap: float = 300.0 * MB
    mds_concurrency: int = 8
    mds_mean_service_time: float = 1.0e-3
    latency: MessageLatencyModel = field(default_factory=MessageLatencyModel)

    def __post_init__(self):
        if self.max_cores < 1:
            raise ConfigurationError("max_cores must be >= 1")
        if self.per_stream_cap <= 0:
            raise ConfigurationError("per_stream_cap must be positive")

    @property
    def n_osts(self) -> int:
        return self.ost_config.n_osts

    def with_overrides(self, **kwargs) -> "MachineSpec":
        """A copy of the spec with some fields replaced."""
        return replace(self, **kwargs)

    def build(
        self,
        n_ranks: int,
        seed: int = 0,
        env: Optional[Environment] = None,
        placement: str = "packed",
        extra_service_nodes: int = 0,
        tracer: Optional["Tracer"] = None,
        faults: Optional["FaultPlan"] = None,
        metrics: Optional["MetricsRegistry"] = None,
        qos: Optional["QosConfig"] = None,
    ) -> "Machine":
        """Instantiate the machine for a job of ``n_ranks`` processes.

        ``extra_service_nodes`` reserves additional NIC-equipped nodes
        beyond the job's own — hosts for interference generators
        (other batch jobs, attached analysis clusters) that share the
        file system but not the job's compute nodes.

        ``tracer`` attaches an observability tracer; when omitted the
        process-wide active tracer (``repro.trace.tracing``) is used if
        one is installed, so harnesses can trace whole sweeps without
        threading the tracer through every call site.

        ``faults`` installs a fault plan; when omitted the process-wide
        active plan (``repro.faults.with_faults``) or a plan file named
        by ``REPRO_FAULTS`` is used.  With no plan from any source,
        ``machine.faults`` is None and all fault machinery is off.

        ``metrics`` attaches a telemetry registry (and a non-perturbing
        settle-hook monitor feeding it); like ``tracer`` it falls back
        to the process-wide active registry
        (``repro.telemetry.collecting``) when omitted.

        ``qos`` stores a multi-tenant bandwidth-contract config on the
        machine (``machine.qos``); when omitted the process-wide active
        config (``repro.qos.with_qos``) or a contract file named by
        ``REPRO_QOS`` is used.  The config is inert until a harness
        (``repro.qos.run_tenants``) installs the control plane.
        """
        if n_ranks < 1:
            raise ConfigurationError("n_ranks must be >= 1")
        if n_ranks > self.max_cores:
            raise ConfigurationError(
                f"{self.name} has {self.max_cores} cores; "
                f"cannot run {n_ranks} ranks"
            )
        if extra_service_nodes < 0:
            raise ConfigurationError("extra_service_nodes must be >= 0")
        if env is None:
            env = Environment()
        rngs = RngRegistry(seed)
        topology = Topology(
            n_ranks=n_ranks,
            cores_per_node=self.cores_per_node,
            nic_bandwidth=self.nic_bandwidth,
            placement=placement,
        )
        pool = OstPool(self.ost_config)
        mds = MetadataServer(
            env,
            concurrency=self.mds_concurrency,
            mean_service_time=self.mds_mean_service_time,
            rng=rngs.get("mds.service"),
        )
        import numpy as np

        source_caps = np.concatenate(
            [
                topology.nic_capacities(),
                np.full(extra_service_nodes, self.nic_bandwidth),
            ]
        )
        fs = FileSystem(
            env,
            pool,
            source_caps,
            max_stripe_count=self.max_stripe_count,
            default_stripe_size=self.default_stripe_size,
            per_stream_cap=self.per_stream_cap,
            mds=mds,
        )
        machine = Machine(
            spec=self,
            env=env,
            topology=topology,
            pool=pool,
            fs=fs,
            rngs=rngs,
            service_node_base=topology.n_nodes,
            n_service_nodes=extra_service_nodes,
        )
        if tracer is None:
            from repro.trace import get_active_tracer

            tracer = get_active_tracer()
        if tracer is None:
            tracer = env.tracer
        if tracer is not None:
            machine.attach_tracer(tracer)
        if metrics is None:
            from repro.telemetry import get_active_registry

            metrics = get_active_registry()
        if metrics is None:
            metrics = env.metrics
        if metrics is not None:
            machine.attach_metrics(metrics)
        from repro.faults import FaultInjector, resolve_fault_plan

        plan = resolve_fault_plan(faults)
        if plan is not None:
            machine.faults = FaultInjector(
                env, fs, plan, rngs, n_ranks=n_ranks
            )
        from repro.qos import resolve_qos_config

        machine.qos = resolve_qos_config(qos)
        return machine


@dataclass
class Machine:
    """A live machine: environment + topology + file system + RNGs."""

    spec: MachineSpec
    env: Environment
    topology: Topology
    pool: OstPool
    fs: FileSystem
    rngs: RngRegistry
    service_node_base: int = 0
    n_service_nodes: int = 0
    faults: Optional["FaultInjector"] = None
    metrics: Optional["MetricsRegistry"] = None
    monitor: Optional["OnlineMonitor"] = None
    qos: Optional["QosConfig"] = None

    def attach_tracer(self, tracer: "Tracer") -> None:
        """Bind a tracer to every traced layer of this machine."""
        self.env.set_tracer(tracer)
        self.pool.bind_tracer(tracer)

    def attach_metrics(self, registry: "MetricsRegistry") -> None:
        """Bind a metrics registry to every instrumented layer.

        Also installs a settle-hook :class:`OnlineMonitor` (with an
        auto-sized straggler detector) so per-OST time series flow into
        the registry without perturbing the simulation — telemetry
        on/off is bit-identical by construction.
        """
        from repro.telemetry import OnlineMonitor

        self.env.set_metrics(registry)
        self.fs.fabric.bind_metrics(registry)
        self.pool.bind_metrics(registry)
        self.fs.bind_metrics(registry)
        self.metrics = registry
        self.monitor = OnlineMonitor(
            self, registry=registry, detector="auto", mode="settle"
        )
        self.monitor.install()

    def service_node(self, i: int) -> int:
        """Source index of the i-th reserved interference node."""
        if not 0 <= i < self.n_service_nodes:
            raise IndexError(
                f"service node {i} not reserved (have {self.n_service_nodes})"
            )
        return self.service_node_base + i

    @property
    def n_ranks(self) -> int:
        return self.topology.n_ranks

    @property
    def n_osts(self) -> int:
        return self.pool.n_sinks

    def node_of(self, rank: int) -> int:
        return self.topology.node_of(rank)
