"""XTP (Sandia) — Cray XT5 with a Panasas file system.

Paper facts: 160 nodes of dual hex-core Opterons (1 920 cores), PanFS
with 40 StorageBlades totalling 61 TB.  Being a small non-production
machine, XTP shows almost no internal interference (<5% degradation
512 -> 1024 writers) and, without a second job, little external
variability — both properties come from the flat PanFS efficiency
curves in :mod:`repro.lustre.panfs`.
"""

from __future__ import annotations

from repro.lustre.ost import OstPoolConfig
from repro.lustre.panfs import panfs_efficiency_curve, panfs_ingest_curve
from repro.machines.base import MachineSpec
from repro.units import GB, MB

__all__ = ["xtp"]


def xtp(n_blades: int = 40) -> MachineSpec:
    """The XTP machine spec (StorageBlades play the OST role)."""
    return MachineSpec(
        name="xtp",
        max_cores=1_920,
        cores_per_node=12,
        nic_bandwidth=1.6 * GB,
        ost_config=OstPoolConfig(
            n_osts=n_blades,
            drain_peak=220.0 * MB,
            ingest_peak=500.0 * MB,
            cache_capacity=4.0 * GB,  # blade NVRAM staging is generous
            drain_curve=panfs_efficiency_curve(),
            ingest_curve=panfs_ingest_curve(),
        ),
        # PanFS object RAID does not share Lustre's 160-target cap; any
        # file may span all blades.
        max_stripe_count=40,
        default_stripe_size=1.0 * MB,
        per_stream_cap=320.0 * MB,
        mds_concurrency=8,
        mds_mean_service_time=1.0e-3,
    )
