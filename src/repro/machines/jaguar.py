"""Jaguar XT5 (ORNL) — the paper's primary platform.

Paper facts encoded here: 18 680 nodes of dual hex-core Opterons
(224 160 cores, 12 per node), a 672-target Lustre 1.6 scratch system
of ~10 PB, ~180 MB/s theoretical per-OST peak, the 160-OST single-file
stripe cap, and ~2 GB storage-target caches.
"""

from __future__ import annotations

from repro.lustre.ost import OstPoolConfig
from repro.machines.base import MachineSpec
from repro.units import GB, MB

__all__ = ["jaguar"]


def jaguar(
    n_osts: int = 672,
    per_ost_peak: float = 180.0 * MB,
    cache_capacity: float = 192.0 * MB,
) -> MachineSpec:
    """The Jaguar/Spider machine spec (parameters overridable for tests)."""
    return MachineSpec(
        name="jaguar",
        max_cores=224_160,
        cores_per_node=12,
        nic_bandwidth=1.6 * GB,
        ost_config=OstPoolConfig(
            n_osts=n_osts,
            drain_peak=per_ost_peak,
            ingest_peak=450.0 * MB,
            cache_capacity=cache_capacity,
        ),
        max_stripe_count=160,
        default_stripe_size=1.0 * MB,
        per_stream_cap=300.0 * MB,
        mds_concurrency=8,
        mds_mean_service_time=1.2e-3,
    )
