"""Machine presets: the three systems the paper measures.

* :func:`~repro.machines.jaguar.jaguar` — ORNL Jaguar XT5: 18 680 nodes
  (dual hex-core), 672-OST Lustre 1.6 shared scratch.
* :func:`~repro.machines.franklin.franklin` — NERSC Franklin XT4:
  96-OST Lustre scratch.
* :func:`~repro.machines.xtp.xtp` — Sandia XTP: 160 nodes, PanFS with
  40 StorageBlades.
"""

from repro.machines.base import Machine, MachineSpec
from repro.machines.jaguar import jaguar
from repro.machines.franklin import franklin
from repro.machines.xtp import xtp
from repro.machines.bluegene import bluegene_p

__all__ = [
    "Machine",
    "MachineSpec",
    "bluegene_p",
    "franklin",
    "jaguar",
    "xtp",
]
