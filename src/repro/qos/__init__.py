"""Multi-tenant QoS: contracts, token buckets, congestion control.

The paper treats competing traffic as unmanaged weather; this package
makes it a managed resource.  Per-tenant bandwidth contracts (reserved
floor + burst ceiling) are enforced at the fabric by composing
per-tenant rate caps into the max-min fair allocation, metered by
decentralized token buckets with idle→busy borrowing (AdapTBF), and
governed by an AIMD feedback controller that throttles aggressors
toward their floors when the OST pool reports shared-storage
congestion.  Degradation is graceful by construction: an over-contract
tenant is backpressured, never errored, and every throttled byte is
ledgered.

``with_qos`` / ``resolve_qos_config`` mirror the fault and telemetry
context managers: a process-wide active config that
``MachineSpec.build`` picks up, with the ``REPRO_QOS`` environment
variable (path to a contract JSON) as the ambient fallback.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.qos.contracts import QosConfig, TenantContract, check_admission
from repro.qos.controller import CongestionController
from repro.qos.multitenant import (
    MultiTenantResult,
    TenantJob,
    TenantOutcome,
    TenantView,
    jain_index,
    run_tenants,
)
from repro.qos.plane import QosControlPlane
from repro.qos.tokens import TokenBucketArray

__all__ = [
    "TenantContract",
    "QosConfig",
    "check_admission",
    "TokenBucketArray",
    "CongestionController",
    "QosControlPlane",
    "TenantJob",
    "TenantView",
    "TenantOutcome",
    "MultiTenantResult",
    "run_tenants",
    "jain_index",
    "with_qos",
    "get_active_qos",
    "resolve_qos_config",
]

_active_qos: Optional[QosConfig] = None


@contextmanager
def with_qos(config: QosConfig) -> Iterator[QosConfig]:
    """Install a process-wide QoS config for the dynamic extent.

    Machines built inside the block (without an explicit ``qos``
    argument) pick it up, the same way ``with_faults`` and
    ``collecting`` work for fault plans and telemetry.
    """
    global _active_qos
    prev = _active_qos
    _active_qos = config
    try:
        yield config
    finally:
        _active_qos = prev


def get_active_qos() -> Optional[QosConfig]:
    return _active_qos


def resolve_qos_config(
    explicit: Optional[QosConfig] = None,
) -> Optional[QosConfig]:
    """Explicit argument > ``with_qos`` context > ``REPRO_QOS`` file."""
    if explicit is not None:
        return explicit
    if _active_qos is not None:
        return _active_qos
    path = os.environ.get("REPRO_QOS", "").strip()
    if path:
        return QosConfig.load_json(path)
    return None
