"""AIMD congestion controller: throttle aggressors toward their floors.

The feedback loop of the control plane.  Input per tick: the OST
pool's congestion scores (cache-fill saturation — the same signal the
telemetry monitor exports as per-OST series) and each tenant's
observed served/demand rates.  Output: a per-tenant *allowance*
between floor and ceiling.

Dynamics are textbook AIMD, applied to the headroom above the floor:

* **congested** → every tenant serving above its floor while holding
  real demand (an *aggressor*) has its headroom multiplicatively
  decreased: ``allow = floor + (allow - floor) * decrease``.  Tenants
  at or under their floor — the victims — are never touched, which is
  what bounds their tail latency.
* **quiet** → allowances recover additively toward the ceiling at
  ``increase_per_s`` of the floor-to-ceiling band per second.

The floor is a hard lower bound: no congestion state ever pushes an
allowance below the contract's reservation.
"""

from __future__ import annotations

import numpy as np

from repro.qos.contracts import QosConfig

__all__ = ["CongestionController"]

# A tenant is an aggressor only when serving measurably above its
# floor; the 5% band keeps float jitter from flagging a tenant that is
# exactly at its reservation.
_AGGRESSOR_BAND = 1.05


class CongestionController:
    def __init__(self, config: QosConfig, ceilings: np.ndarray):
        self.config = config
        self.floors = config.floors()
        # Ceilings are handed in pre-clamped to a finite fabric-scale
        # value by the plane (config ceilings may be inf).
        self.ceilings = np.asarray(ceilings, dtype=np.float64).copy()
        self.allow = self.ceilings.copy()
        self.congested_ticks = 0
        self.quiet_ticks = 0
        self.throttle_events = 0
        #: Per-tenant count of ticks the tenant was throttled as an
        #: aggressor — the attribution record the telemetry layer and
        #: the sweep's accounting surface.
        self.aggressor_ticks = np.zeros(len(self.floors), dtype=np.int64)

    def congested(self, scores: np.ndarray) -> bool:
        """Overload predicate over per-OST congestion scores."""
        if scores.size == 0:
            return False
        hot = scores >= self.config.congestion_threshold
        return float(hot.mean()) >= self.config.congestion_fraction

    def update(
        self,
        dt: float,
        scores: np.ndarray,
        served_rate: np.ndarray,
        demand_rate: np.ndarray,
    ) -> np.ndarray:
        """One feedback step; returns the new per-tenant allowance."""
        if self.congested(scores):
            self.congested_ticks += 1
            aggressor = (
                (served_rate > self.floors * _AGGRESSOR_BAND)
                & (demand_rate > self.floors)
            )
            if aggressor.any():
                self.allow[aggressor] = (
                    self.floors[aggressor]
                    + (self.allow[aggressor] - self.floors[aggressor])
                    * self.config.decrease
                )
                self.throttle_events += int(aggressor.sum())
                self.aggressor_ticks[aggressor] += 1
        else:
            self.quiet_ticks += 1
            band = self.ceilings - self.floors
            self.allow = np.minimum(
                self.ceilings,
                self.allow + self.config.increase_per_s * band * dt,
            )
        np.maximum(self.allow, self.floors, out=self.allow)
        return self.allow
