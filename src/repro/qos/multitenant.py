"""Run N tenants' transports concurrently on one shared machine.

The "many jobs, one fabric" harness.  Each tenant gets a contiguous
rank block of the host machine through a :class:`TenantView` — a thin
facade that re-bases ``node_of``/``n_ranks`` and stamps the tenant id
— and its transport is *launched* (not run to completion) so all
tenants' simulated processes interleave on the one calendar, contend
on the one fabric, and fall under the one QoS control plane.

Graceful degradation is enforced at collection: a throttled tenant
finishes late, never errors, and both clean results and
:class:`~repro.errors.TransportError` partials carry the tenant's
served-vs-throttled byte ledger in ``extra``.

Rank-crash faults are rejected up front: the fault injector keys
crash targets by global rank, which is ambiguous across tenants' local
rank spaces.  OST fail-stop/hang/brownout faults — the resilience
cross-check — work unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.errors import ConfigurationError, FileSystemError, TransportError
from repro.qos.contracts import QosConfig
from repro.qos.plane import QosControlPlane

__all__ = ["TenantJob", "TenantView", "TenantOutcome",
           "MultiTenantResult", "run_tenants", "jain_index"]


def jain_index(values: np.ndarray) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)``, in (0, 1].

    1.0 means perfectly even; ``1/n`` means one tenant took everything.
    """
    x = np.asarray(values, dtype=np.float64)
    if x.size == 0:
        return 1.0
    denom = float(x.size * (x ** 2).sum())
    if denom <= 0:
        return 1.0
    return float(x.sum()) ** 2 / denom


@dataclass(frozen=True)
class TenantJob:
    """One tenant's workload: a transport, an app kernel, a rank count."""

    name: str
    transport: object  # Transport
    app: object  # AppKernel
    n_ranks: int

    def __post_init__(self):
        if self.n_ranks < 1:
            raise ConfigurationError(f"{self.name}: n_ranks must be >= 1")


class TenantView:
    """Machine facade scoping one tenant to a contiguous rank block.

    Ranks ``[0, n_ranks)`` of the view map to host ranks
    ``[rank_base, rank_base + n_ranks)``; every other attribute
    (env, fs, pool, spec, faults, metrics, ...) delegates to the host
    machine, so all tenants share one fabric and one OST pool.  The
    ``tenant`` attribute is what transports stamp onto their writes.
    """

    def __init__(self, machine, tenant: int, rank_base: int, n_ranks: int):
        if rank_base < 0 or rank_base + n_ranks > machine.n_ranks:
            raise ConfigurationError(
                f"tenant {tenant}: ranks [{rank_base}, "
                f"{rank_base + n_ranks}) exceed host machine's "
                f"{machine.n_ranks} ranks"
            )
        self._machine = machine
        self.tenant = tenant
        self.rank_base = rank_base
        self._n_ranks = n_ranks

    @property
    def n_ranks(self) -> int:
        return self._n_ranks

    @property
    def n_osts(self) -> int:
        return self._machine.n_osts

    def node_of(self, rank: int) -> int:
        if not 0 <= rank < self._n_ranks:
            raise IndexError(
                f"tenant {self.tenant}: rank {rank} out of range "
                f"[0, {self._n_ranks})"
            )
        return self._machine.node_of(self.rank_base + rank)

    def __getattr__(self, name):
        return getattr(self._machine, name)


@dataclass
class TenantOutcome:
    """What one tenant's run produced, clean or degraded."""

    name: str
    tenant: int
    result: Optional[object]  # OutputResult (partial when error is set)
    error: Optional[TransportError]
    completion_seconds: float
    served_bytes: float = 0.0
    throttled_bytes: float = 0.0

    @property
    def clean(self) -> bool:
        return self.error is None

    @property
    def per_writer_durations(self) -> np.ndarray:
        if self.result is None:
            return np.zeros(0)
        return self.result.per_writer_durations

    @property
    def served_throughput(self) -> float:
        """Served bytes over the tenant's completion window (B/s)."""
        t = self.completion_seconds
        return self.served_bytes / t if t > 0 else 0.0


@dataclass
class MultiTenantResult:
    """All tenants' outcomes plus the control plane's ledger."""

    outcomes: List[TenantOutcome]
    qos: Optional[Dict] = None
    makespan: float = 0.0
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return all(o.clean for o in self.outcomes)

    def fairness(self, floors: Optional[np.ndarray] = None) -> float:
        """Jain index over per-tenant throughput, floor-normalized.

        With ``floors`` given, each tenant's served throughput is
        divided by its contracted floor first — fairness then means
        "everyone got the same multiple of what they reserved", the
        mixed-SLO reading of the index.
        """
        tp = np.array([o.served_throughput for o in self.outcomes])
        if floors is not None:
            floors = np.asarray(floors, dtype=np.float64)
            tp = np.where(floors > 0, tp / np.maximum(floors, 1e-12), tp)
        return jain_index(tp)


def run_tenants(
    machine,
    jobs: List[TenantJob],
    qos: Optional[QosConfig] = None,
) -> MultiTenantResult:
    """Launch every tenant's transport on one machine; collect them all.

    With ``qos`` given (or carried on ``machine.qos`` from
    ``MachineSpec.build``), a :class:`QosControlPlane` is admitted and
    installed before any tenant starts (contract order must match job
    order).  Without it, tenants contend under raw max-min fairness —
    the ablation baseline.
    """
    if qos is None:
        qos = getattr(machine, "qos", None)
    total = sum(j.n_ranks for j in jobs)
    if total > machine.n_ranks:
        raise ConfigurationError(
            f"{total} tenant ranks exceed the machine's {machine.n_ranks}"
        )
    if machine.faults is not None:
        for ev in machine.faults.timeline:
            if "rank" in ev.kind:
                raise ConfigurationError(
                    f"fault kind {ev.kind!r} is rank-addressed; rank "
                    "faults are ambiguous across tenants' local rank "
                    "spaces — use OST faults in multi-tenant runs"
                )
    plane: Optional[QosControlPlane] = None
    if qos is not None:
        if qos.n_tenants != len(jobs):
            raise ConfigurationError(
                f"{qos.n_tenants} contracts for {len(jobs)} tenant jobs"
            )
        plane = QosControlPlane(machine, qos)
        plane.install()

    env = machine.env
    t_start = env.now
    finish: Dict[int, float] = {}
    handles = []
    base = 0
    for t, job in enumerate(jobs):
        view = TenantView(machine, t, base, job.n_ranks)
        base += job.n_ranks
        handle = job.transport.launch(
            view, job.app, output_name=f"{job.name}/output"
        )

        def _mark(_ev, _t=t) -> None:
            finish[_t] = env.now

        handle.done.add_callback(_mark)
        handles.append((job, handle))

    from repro.sim.events import AllSettled

    env.run(until=AllSettled(env, [h.done for _, h in handles]))
    makespan = env.now - t_start

    if plane is not None:
        plane.stop()
    served, throttled = machine.fs.fabric.tenant_accounting()

    outcomes = []
    for t, (job, handle) in enumerate(handles):
        try:
            result, error = handle.collect(), None
        except TransportError as exc:
            result, error = exc.partial, exc
        except FileSystemError as exc:
            result, error = None, TransportError(
                f"{job.name}: {exc}", partial=None
            )
        o = TenantOutcome(
            name=job.name,
            tenant=t,
            result=result,
            error=error,
            completion_seconds=finish.get(t, makespan) - t_start,
        )
        if t < len(served):
            o.served_bytes = float(served[t])
            o.throttled_bytes = float(throttled[t])
        elif result is not None:
            o.served_bytes = float(result.total_bytes)
        if result is not None and t < len(served):
            result.extra["qos_served_bytes"] = o.served_bytes
            result.extra["qos_throttled_bytes"] = o.throttled_bytes
        outcomes.append(o)

    return MultiTenantResult(
        outcomes=outcomes,
        qos=plane.summary() if plane is not None else None,
        makespan=makespan,
    )
